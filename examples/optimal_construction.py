#!/usr/bin/env python3
"""The two-step optimization, step by step (paper, Section 5).

Starts from the classic ``P0`` protocol expressed at the knowledge level
("decide 0 on B_i^N ∃0; decide 1 at time t+1 otherwise"), applies the
prime and double-prime steps of Proposition 5.1, and shows:

* each step dominates the previous protocol;
* two steps reach a fixed point (Theorem 5.2);
* the result passes the Theorem 5.3 optimality characterization;
* where exactly the optimized protocol beats the original.

Run: ``python examples/optimal_construction.py``
"""

from repro import (
    check_eba,
    check_optimality,
    compare,
    construction_sequence,
    crash_system,
    fip,
    pair_from_formulas,
)
from repro.knowledge.formulas import Believes, Exists, Predicate
from repro.metrics.stats import decision_time_stats
from repro.metrics.tables import format_float, render_table
from repro.model.system import TruthAssignment

N, T = 3, 1


def p0_knowledge_pair(system):
    """P0 as a knowledge-based decision pair."""

    def zero(processor):
        return Believes(processor, Exists(0))

    def one(processor):
        def compute(sys):
            believes0 = Believes(processor, Exists(0)).evaluate(sys)
            return TruthAssignment.from_predicate(
                sys,
                lambda run_index, time: time >= sys.t + 1
                and not believes0.at(run_index, time),
            )

        return Predicate(("example-p0-one", processor), compute)

    return pair_from_formulas(system, zero, one, "P0")


def main() -> None:
    system = crash_system(n=N, t=T)
    base = p0_knowledge_pair(system)

    sequence = construction_sequence(system, base, steps=3)
    outcomes = [fip(pair).outcome(system) for pair in sequence]

    rows = []
    for pair, outcome in zip(sequence, outcomes):
        stats = decision_time_stats(outcome)
        rows.append(
            [pair.name, check_eba(outcome).ok, format_float(stats.mean),
             stats.maximum]
        )
    print(render_table(["protocol", "EBA", "mean decision t", "max"], rows))

    print()
    for earlier, later in zip(outcomes, outcomes[1:]):
        print(compare(later, earlier))

    # Theorem 5.2: step 3 changes nothing — the fixed point is reached.
    from repro import equivalent_decisions

    fixed, _ = equivalent_decisions(outcomes[3], outcomes[2])
    print(f"\nfixed point after two steps: {fixed}")

    # Theorem 5.3: the two-step result is optimal.
    sticky = fip(sequence[2]).sticky_pair(system)
    print(check_optimality(system, sticky))

    # Show one concrete improvement: a run where the optimized protocol
    # decides 1 earlier than P0's time-(t+1) default.
    report = compare(outcomes[2], outcomes[0])
    if report.improvements:
        witness = report.improvements[0]
        print("\nexample improvement: "
              + witness.describe(sequence[2].name, base.name))


if __name__ == "__main__":
    main()
