#!/usr/bin/env python3
"""Quickstart: run the paper's optimal crash-mode EBA protocol.

This example walks the library's three layers in ~60 lines:

1. enumerate the *exact* system of full-information runs for a small
   synchronous network with crash failures;
2. build the optimal EBA protocol ``F^{Λ,2}`` by optimizing the
   never-deciding protocol ``F^Λ`` with the paper's two-step construction;
3. check the EBA specification over every run, inspect one concrete run,
   and execute the message-efficient twin ``P0opt`` on the simulator.

Run: ``python examples/quickstart.py``
"""

from repro import (
    CrashBehavior,
    FailurePattern,
    InitialConfiguration,
    check_eba,
    crash_system,
    execute,
    f_lambda_2_pair,
    fip,
    p0opt,
)

N, T = 3, 1


def main() -> None:
    # 1. The system: every initial configuration crossed with every
    #    canonical crash pattern (knowledge tests over it are exact).
    system = crash_system(n=N, t=T)
    print(f"enumerated {len(system.runs)} runs "
          f"({len(system.table)} distinct local states)")

    # 2. The optimal protocol, derived — not hand-coded: two construction
    #    steps starting from the protocol that never decides.
    pair = f_lambda_2_pair(system)
    protocol = fip(pair)
    outcome = protocol.outcome(system)

    # 3a. Specification check over the whole run space.
    report = check_eba(outcome)
    print(report)
    report.raise_on_failure()

    # 3b. One interesting run: processor 0 holds the only 0 and crashes in
    #     round 1, whispering it to processor 1 alone.
    config = InitialConfiguration((0, 1, 1))
    pattern = FailurePattern({0: CrashBehavior(1, frozenset((1,)))})
    run = outcome.get((config, pattern))
    print(f"\nrun: config={config}, {pattern}")
    for processor, record in sorted(run.nonfaulty_decisions().items()):
        value, time = record
        print(f"  nonfaulty processor {processor} decides {value} "
              f"at time {time}")

    # 3c. The concrete implementation decides identically (Theorem 6.2)
    #     with linear-size messages on the round-based simulator.
    trace = execute(p0opt(), config, pattern, horizon=T + 2, t=T)
    print(f"\nP0opt on the simulator: decisions={trace.decisions}, "
          f"messages sent per round={trace.sent_counts}")


if __name__ == "__main__":
    main()
