#!/usr/bin/env python3
"""How much does dropping simultaneity buy?  (paper, Section 1 / [DRS90])

Compares the optimal EBA protocol ``P0opt`` against two simultaneous
baselines over the exhaustive crash scenario space:

* ``SBA-CK`` — decide on common knowledge of an initial value, the
  optimum simultaneous protocol of [DM90]/[MT88];
* ``FloodSBA`` — the classic always-``t+1`` flood.

Prints decision-time distributions and the cumulative decision-share
series, then scales the concrete comparison to a larger network with
seeded random crash scenarios.

Run: ``python examples/eba_vs_sba.py``
"""

from repro import (
    FailureMode,
    check_eba,
    check_sba,
    compare,
    crash_system,
    fip,
    flood_sba,
    p0opt,
    run_over_scenarios,
    sba_common_knowledge_pair,
)
from repro.metrics.stats import decision_time_stats, per_time_cumulative_share
from repro.metrics.tables import format_float, render_table
from repro.workloads.scenarios import random_scenarios

N, T, HORIZON = 3, 1, 3


def summarize(outcomes, horizon):
    rows = []
    for outcome in outcomes:
        stats = decision_time_stats(outcome)
        shares = per_time_cumulative_share(outcome, horizon)
        rows.append(
            [outcome.name, format_float(stats.mean), stats.maximum]
            + [format_float(share) for share in shares]
        )
    headers = ["protocol", "mean t", "max t"] + [
        f"decided<=t{time}" for time in range(horizon + 1)
    ]
    return render_table(headers, rows)


def main() -> None:
    system = crash_system(n=N, t=T, horizon=HORIZON)
    scenarios = system.scenarios()

    eba_out = run_over_scenarios(p0opt(), scenarios, HORIZON, T)
    flood_out = run_over_scenarios(flood_sba(), scenarios, HORIZON, T)
    ck_out = fip(sba_common_knowledge_pair(system)).outcome(system)

    assert check_eba(eba_out).ok
    assert check_sba(flood_out).ok
    assert check_sba(ck_out).ok

    print("exhaustive crash scenarios, "
          f"n={N}, t={T}:\n")
    print(summarize([eba_out, ck_out, flood_out], HORIZON))
    print()
    print(compare(eba_out, ck_out))
    print(compare(ck_out, flood_out))

    # Larger network, seeded random scenarios (concrete protocols only —
    # the knowledge-level SBA needs an enumerated system).
    big_n, big_t, big_h = 6, 2, 4
    big = random_scenarios(
        FailureMode.CRASH, big_n, big_t, big_h, count=300, seed=42
    )
    eba_big = run_over_scenarios(p0opt(), big, big_h, big_t)
    flood_big = run_over_scenarios(flood_sba(), big, big_h, big_t)
    print(f"\nrandom crash scenarios, n={big_n}, t={big_t}, "
          f"{len(big)} samples:\n")
    print(summarize([eba_big, flood_big], big_h))


if __name__ == "__main__":
    main()
