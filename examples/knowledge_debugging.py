#!/usr/bin/env python3
"""Debugging a decision rule with the analysis toolkit.

Walks the epistemic anatomy of one adversarial crash run — processor 0
holds the only 0, crashes in round 1, and whispers it to processor 1
alone — using every tool in :mod:`repro.analysis`:

* the space-time diagram of the run;
* the belief matrix ("who believes ∃0, when");
* the knowledge table tracing the exact formulas of ``F^{Λ,2}``'s decision
  rule;
* a *witness path* explaining, link by indistinguishable link, why
  ``C□_{N∧Z^{Λ,1}} ∃1`` fails in the all-ones failure-free run — i.e. why
  no processor may decide 1 at time 0.

Run: ``python examples/knowledge_debugging.py``
"""

from repro import CrashBehavior, FailurePattern, InitialConfiguration, crash_system, fip
from repro.analysis import (
    belief_matrix,
    knowledge_table,
    render_outcome_diagram,
    who_learns_value,
    witness_path,
)
from repro.knowledge.formulas import Believes, ContinualCommon, Exists, Not
from repro.knowledge.nonrigid import nonfaulty_and_zeros
from repro.protocols.f_lambda import f_lambda_sequence

N, T = 3, 1


def main() -> None:
    system = crash_system(n=N, t=T)
    config = InitialConfiguration((0, 1, 1))
    pattern = FailurePattern({0: CrashBehavior(1, frozenset((1,)))})
    run_index = system.run_index_for(config, pattern)

    base, first, second = f_lambda_sequence(system)
    outcome = fip(second).outcome(system)

    print("== the run, as a space-time diagram ==")
    print(render_outcome_diagram(outcome.get((config, pattern))))

    print("\n== who believes ∃0, and when ==")
    print(belief_matrix(system, run_index, Exists(0), "∃0"))
    print("first-learned times:", who_learns_value(system, run_index, 0))

    print("\n== the decision rule of F^{Λ,2}, traced ==")
    n_and_z1 = nonfaulty_and_zeros(first)
    cbox = ContinualCommon(n_and_z1, Exists(1))
    print(
        knowledge_table(
            system,
            run_index,
            [
                ("∃0", Exists(0)),
                ("C□_{N∧Z¹}∃1", cbox),
                ("B_2^N ∃0", Believes(2, Exists(0))),
                ("B_2^N(∃1∧C□)", Believes(2, cbox)),
                ("B_2^N ¬C□", Believes(2, Not(cbox))),
            ],
        )
    )

    print("\n== why nobody decides 1 at time 0 (a reachability witness) ==")
    # In the all-ones failure-free run, C□_{N∧Z¹}∃1 fails at time 0 in the
    # sense that the belief B_i^N(C□∃1) does: processor i cannot exclude a
    # run where another processor holds a 0 — and from THAT run the
    # S-□-reachability walk reaches the all-zeros run, where ∃1 is false.
    all_ones = system.run_index_for(
        InitialConfiguration((1, 1, 1)), FailurePattern(())
    )
    mixed = system.run_index_for(
        InitialConfiguration((0, 1, 1)), FailurePattern(())
    )
    all_zeros = system.run_index_for(
        InitialConfiguration((0, 0, 0)), FailurePattern(())
    )
    path = witness_path(system, n_and_z1, mixed, all_zeros)
    assert path is not None
    for link in path:
        print("  " + link.describe(system))
    holds = cbox.evaluate(system)
    print(
        f"\nC□ in all-ones failure-free run: {holds.at(all_ones, 0)}; "
        f"in the 0-containing run it reaches: {holds.at(mixed, 0)}; "
        f"decision on 1 therefore waits until the round-1 exchange."
    )


if __name__ == "__main__":
    main()
