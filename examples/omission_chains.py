#!/usr/bin/env python3
"""Omission failures: 0-chains, the f+1 bound and the F* optimum
(paper, Section 6.2).

Demonstrates, over the exhaustive omission system:

* the chain protocol ``FIP(Z⁰, O⁰)`` decides by time ``f + 1`` in every
  run with ``f`` actual failures (Proposition 6.4) — printed as a
  worst-case-by-``f`` table;
* the concrete ``ChainEBA`` implementation on the simulator, including one
  adversarial run where a faulty 0-holder whispers its value to a single
  processor;
* ``F*`` dominating the chain protocol and passing the optimality check
  (Proposition 6.6).

Run: ``python examples/omission_chains.py``
"""

from repro import (
    FailurePattern,
    InitialConfiguration,
    OmissionBehavior,
    chain_eba,
    chain_pair,
    check_eba,
    check_optimality,
    compare,
    execute,
    f_star_pair,
    fip,
    omission_system,
    run_over_scenarios,
)
from repro.metrics.tables import render_table

N, T, HORIZON = 3, 1, 3


def main() -> None:
    system = omission_system(n=N, t=T, horizon=HORIZON)
    print(f"exhaustive omission system: {len(system.runs)} runs")

    # Knowledge-level chain protocol: EBA + the f+1 bound.
    chain = fip(chain_pair(system))
    chain_out = chain.outcome(system)
    print(check_eba(chain_out))

    worst = {}
    for run in chain_out:
        f = run.pattern.num_faulty()
        latest = run.max_nonfaulty_decision_time()
        worst[f] = max(worst.get(f, 0), latest)
    print(render_table(
        ["actual failures f", "worst nonfaulty decision time", "bound f+1"],
        [[f, latest, f + 1] for f, latest in sorted(worst.items())],
    ))

    # A concrete adversarial run: faulty processor 0 holds the only 0 and
    # delivers it to processor 1 alone, in round 1.
    whisper = OmissionBehavior({r: [2] for r in range(1, HORIZON + 1)})
    config = InitialConfiguration((0, 1, 1))
    trace = execute(
        chain_eba(), config, FailurePattern({0: whisper}), HORIZON, T
    )
    print("\nChainEBA under the whisper attack:")
    for processor, record in enumerate(trace.decisions):
        print(f"  processor {processor}: decides {record[0]} at t={record[1]}")

    # F*: the optimal omission-mode EBA protocol.
    star = fip(f_star_pair(system))
    star_out = star.outcome(system)
    print()
    print(check_eba(star_out))
    print(compare(star_out, chain_out))
    print(check_optimality(system, star.sticky_pair(system)))

    # The concrete implementation is dominated by the exact-knowledge one.
    concrete_out = run_over_scenarios(
        chain_eba(), system.scenarios(), HORIZON, T
    )
    print(compare(chain_out, concrete_out))


if __name__ == "__main__":
    main()
