"""Shared fixtures: exhaustively enumerated systems at the test sizes.

Systems are expensive to enumerate and strictly immutable once built (all
mutation is confined to internal memo caches), so they are session-scoped
and shared across the whole suite.  The library-level cache in
:mod:`repro.model.builder` additionally shares them with code under test
that builds its own.
"""

from __future__ import annotations

import pytest

from repro.model.builder import crash_system, omission_system


@pytest.fixture(scope="session")
def crash3(request):
    """Exhaustive crash system, n=3, t=1, horizon=3 (224 runs)."""
    return crash_system(3, 1, 3)


@pytest.fixture(scope="session")
def crash4(request):
    """Exhaustive crash system, n=4, t=1, horizon=3 (1360 runs)."""
    return crash_system(4, 1, 3)


@pytest.fixture(scope="session")
def omission3(request):
    """Exhaustive omission system, n=3, t=1, horizon=3 (1520 runs)."""
    return omission_system(3, 1, 3)
