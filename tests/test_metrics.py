"""Tests for metrics and table rendering."""

from repro.core.outcomes import ProtocolOutcome, RunOutcome
from repro.metrics.stats import (
    decision_time_stats,
    mean_decision_gap,
    message_stats,
    per_time_cumulative_share,
)
from repro.metrics.tables import format_float, render_table
from repro.model.config import InitialConfiguration
from repro.model.failures import FailurePattern
from repro.sim.trace import Trace


def _outcome(name, decision_rows):
    outcome = ProtocolOutcome(name)
    for index, decisions in enumerate(decision_rows):
        values = [(index >> bit) & 1 for bit in range(2)]
        outcome.add(
            RunOutcome(
                config=InitialConfiguration(values),
                pattern=FailurePattern(()),
                decisions=tuple(decisions),
                horizon=3,
            )
        )
    return outcome


class TestDecisionTimeStats:
    def test_basic_distribution(self):
        outcome = _outcome("P", [[(0, 0), (0, 1)], [(1, 2), (1, 2)]])
        stats = decision_time_stats(outcome)
        assert stats.count == 4
        assert stats.undecided == 0
        assert stats.mean == 1.25
        assert stats.minimum == 0 and stats.maximum == 2
        assert stats.histogram_dict() == {0: 1, 1: 1, 2: 2}

    def test_undecided_counted(self):
        outcome = _outcome("P", [[None, (0, 1)]])
        stats = decision_time_stats(outcome)
        assert stats.undecided == 1
        assert stats.count == 2

    def test_all_undecided(self):
        outcome = _outcome("P", [[None, None]])
        stats = decision_time_stats(outcome)
        assert stats.mean is None
        assert stats.maximum is None


class TestMeanDecisionGap:
    def test_positive_gap(self):
        fast = _outcome("fast", [[(0, 0), (0, 0)]])
        slow = _outcome("slow", [[(0, 2), (0, 1)]])
        assert mean_decision_gap(slow, fast) == 1.5

    def test_undecided_samples_skipped(self):
        fast = _outcome("fast", [[(0, 0), (0, 0)]])
        slow = _outcome("slow", [[None, (0, 1)]])
        assert mean_decision_gap(slow, fast) == 1.0

    def test_no_shared_samples(self):
        fast = _outcome("fast", [[None, None]])
        slow = _outcome("slow", [[None, None]])
        assert mean_decision_gap(slow, fast) is None


class TestCumulativeShare:
    def test_monotone_cdf(self):
        outcome = _outcome("P", [[(0, 0), (0, 2)], [(1, 1), (1, 3)]])
        shares = per_time_cumulative_share(outcome, 3)
        assert shares == [0.25, 0.5, 0.75, 1.0]

    def test_undecided_caps_below_one(self):
        outcome = _outcome("P", [[(0, 0), None]])
        shares = per_time_cumulative_share(outcome, 3)
        assert shares[-1] == 0.5


class TestMessageStats:
    def _trace(self, sent, delivered):
        return Trace(
            protocol_name="P",
            config=InitialConfiguration((0, 1)),
            pattern=FailurePattern(()),
            horizon=2,
            sent_counts=sent,
            delivered_counts=delivered,
        )

    def test_aggregation(self):
        stats = message_stats(
            [self._trace([4, 4], [4, 3]), self._trace([2, 0], [2, 0])]
        )
        assert stats.total_sent == 10
        assert stats.total_delivered == 9
        assert stats.mean_sent_per_run == 5.0
        assert stats.mean_delivered_per_run == 4.5

    def test_empty(self):
        stats = message_stats([])
        assert stats.runs == 0
        assert stats.mean_sent_per_run == 0.0


class TestTables:
    def test_render_alignment(self):
        table = render_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_none_rendered_as_dash(self):
        table = render_table(["x"], [[None]])
        assert "-" in table.splitlines()[2]

    def test_format_float(self):
        assert format_float(1.23456) == "1.23"
        assert format_float(None) == "-"
        assert format_float(7) == "7"
        assert format_float(1.5, digits=1) == "1.5"
