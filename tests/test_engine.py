"""Tests for the synchronous execution engine and traces."""

import pytest

from repro.errors import ConfigurationError
from repro.model.config import InitialConfiguration
from repro.model.failures import (
    CrashBehavior,
    FailurePattern,
    OmissionBehavior,
)
from repro.protocols.base import ConcreteProtocol, broadcast
from repro.sim.engine import execute, run_over_scenarios


class EchoProtocol(ConcreteProtocol):
    """Test protocol: broadcast own id each round; remember who was heard;
    decide own initial value at time 1."""

    name = "echo"

    def initial_state(self, processor, n, t, initial_value):
        return {
            "me": processor,
            "n": n,
            "value": initial_value,
            "heard": [],
            "time": 0,
        }

    def messages(self, state, round_number):
        return broadcast(state["n"], state["me"], ("id", state["me"]))

    def transition(self, state, round_number, received):
        new = dict(state)
        new["heard"] = state["heard"] + [frozenset(received)]
        new["time"] = round_number
        return new

    def output(self, state):
        return state["value"] if state["time"] >= 1 else None


class MisaddressedProtocol(EchoProtocol):
    name = "misaddressed"

    def messages(self, state, round_number):
        return {99: "boom"}


def _config(*values):
    return InitialConfiguration(values)


class TestExecute:
    def test_failure_free_delivery(self):
        trace = execute(EchoProtocol(), _config(0, 1, 1), FailurePattern(()), 2, 1)
        for processor in range(3):
            state = trace.state_of(processor, 2)
            assert state["heard"] == [
                frozenset(range(3)) - {processor},
                frozenset(range(3)) - {processor},
            ]

    def test_decisions_recorded_at_first_output(self):
        trace = execute(EchoProtocol(), _config(0, 1), FailurePattern(()), 3, 1)
        assert trace.decisions == [(0, 1), (1, 1)]

    def test_crash_filters_messages(self):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset((1,)))})
        trace = execute(EchoProtocol(), _config(0, 1, 1), pattern, 2, 1)
        assert trace.state_of(1, 2)["heard"] == [
            frozenset((0, 2)),
            frozenset((2,)),
        ]
        assert trace.state_of(2, 2)["heard"] == [
            frozenset((1,)),
            frozenset((1,)),
        ]

    def test_omission_filters_selectively(self):
        pattern = FailurePattern({0: OmissionBehavior({2: [1]})})
        trace = execute(EchoProtocol(), _config(0, 1, 1), pattern, 2, 1)
        assert trace.state_of(1, 2)["heard"] == [
            frozenset((0, 2)),
            frozenset((2,)),
        ]

    def test_message_counts(self):
        trace = execute(EchoProtocol(), _config(0, 1, 1), FailurePattern(()), 2, 1)
        assert trace.sent_counts == [6, 6]
        assert trace.delivered_counts == [6, 6]
        assert trace.total_sent() == 12

    def test_dropped_messages_counted(self):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        trace = execute(EchoProtocol(), _config(0, 1, 1), pattern, 1, 1)
        assert trace.sent_counts == [6]
        assert trace.delivered_counts == [4]

    def test_bad_destination_rejected(self):
        with pytest.raises(ConfigurationError):
            execute(MisaddressedProtocol(), _config(0, 1), FailurePattern(()), 1, 1)

    def test_zero_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            execute(EchoProtocol(), _config(0, 1), FailurePattern(()), 0, 1)

    def test_pattern_fault_bound_enforced(self):
        pattern = FailurePattern(
            {0: CrashBehavior(1, frozenset()), 1: CrashBehavior(1, frozenset())}
        )
        with pytest.raises(ConfigurationError):
            execute(EchoProtocol(), _config(0, 1, 1), pattern, 1, 1)

    def test_trace_outcome_projection(self):
        trace = execute(EchoProtocol(), _config(1, 0), FailurePattern(()), 2, 1)
        outcome = trace.to_outcome()
        assert outcome.decisions == ((1, 1), (0, 1))
        assert outcome.scenario_key() == (trace.config, trace.pattern)


class TestRunOverScenarios:
    def test_covers_all_scenarios(self):
        scenarios = [
            (_config(0, 1), FailurePattern(())),
            (_config(1, 1), FailurePattern(())),
        ]
        outcome = run_over_scenarios(EchoProtocol(), scenarios, 2, 1)
        assert len(outcome) == 2
        assert outcome.name == "echo"

    def test_deterministic(self):
        scenarios = [(_config(0, 1), FailurePattern(()))]
        a = run_over_scenarios(EchoProtocol(), scenarios, 2, 1)
        b = run_over_scenarios(EchoProtocol(), scenarios, 2, 1)
        first = next(iter(a))
        second = next(iter(b))
        assert first.decisions == second.decisions
