"""Integration tests: the paper's omission-mode results end to end
(Propositions 6.3, 6.4, 6.6 at the exhaustive test sizes)."""

import pytest

from repro.core.domination import compare, equivalent_decisions
from repro.core.optimality import check_optimality
from repro.core.specs import check_eba, check_nontrivial_agreement
from repro.model.builder import restricted_system
from repro.model.config import uniform_configuration
from repro.model.failures import (
    FailureMode,
    FailurePattern,
    OmissionBehavior,
)
from repro.protocols.chain_eba import chain_eba
from repro.protocols.chain_fip import chain_pair
from repro.protocols.f_lambda import f_lambda_2_pair
from repro.protocols.f_star import f_star_pair, f_star_via_construction
from repro.protocols.fip import fip
from repro.sim.engine import run_over_scenarios


class TestProposition64:
    def test_chain_fip_is_eba(self, omission3):
        protocol = fip(chain_pair(omission3))
        protocol.assert_no_nonfaulty_conflicts(omission3)
        assert check_eba(protocol.outcome(omission3)).ok

    def test_chain_fip_decides_by_f_plus_1(self, omission3):
        outcome = fip(chain_pair(omission3)).outcome(omission3)
        for run in outcome:
            latest = run.max_nonfaulty_decision_time()
            assert latest is not None
            assert latest <= run.pattern.num_faulty() + 1

    def test_concrete_chain_eba_is_eba(self, omission3):
        outcome = run_over_scenarios(
            chain_eba(), omission3.scenarios(), omission3.horizon, omission3.t
        )
        assert check_eba(outcome).ok

    def test_concrete_chain_eba_f_plus_1(self, omission3):
        outcome = run_over_scenarios(
            chain_eba(), omission3.scenarios(), omission3.horizon, omission3.t
        )
        for run in outcome:
            latest = run.max_nonfaulty_decision_time()
            assert latest is not None
            assert latest <= run.pattern.num_faulty() + 1

    def test_knowledge_level_dominates_concrete(self, omission3):
        """The exact-belief protocol never decides later than the
        conservative concrete implementation."""
        knowledge = fip(chain_pair(omission3)).outcome(omission3)
        concrete = run_over_scenarios(
            chain_eba(), omission3.scenarios(), omission3.horizon, omission3.t
        )
        assert compare(knowledge, concrete).dominates


class TestProposition66:
    def test_f_star_is_eba(self, omission3):
        protocol = fip(f_star_pair(omission3))
        protocol.assert_no_nonfaulty_conflicts(omission3)
        assert check_eba(protocol.outcome(omission3)).ok

    def test_f_star_dominates_chain(self, omission3):
        star = fip(f_star_pair(omission3)).outcome(omission3)
        chain = fip(chain_pair(omission3)).outcome(omission3)
        assert compare(star, chain).dominates

    def test_f_star_optimal(self, omission3):
        pair = fip(f_star_pair(omission3)).sticky_pair(omission3)
        assert check_optimality(omission3, pair).optimal

    def test_lemma_a10_a11_first_step_collapses(self, omission3):
        base, first, _ = f_star_via_construction(omission3)
        base_out = fip(base).outcome(omission3)
        first_out = fip(first).outcome(omission3)
        assert equivalent_decisions(first_out, base_out)[0]

    def test_construction_equals_direct_f_star(self, omission3):
        _, _, second = f_star_via_construction(omission3)
        direct = fip(f_star_pair(omission3)).outcome(omission3)
        constructed = fip(second).outcome(omission3)
        assert equivalent_decisions(constructed, direct)[0]


class TestProposition63Prerequisites:
    """The full-system E9 check is benchmark-sized; here we verify the
    hypotheses and the t = 1 contrast cheaply."""

    def test_t1_omission_f_lambda_2_is_still_eba(self, omission3):
        """Proposition 6.3 needs t > 1: with a single fault the optimized
        protocol still terminates everywhere."""
        protocol = fip(f_lambda_2_pair(omission3))
        outcome = protocol.outcome(omission3)
        assert check_eba(outcome).ok

    def test_f_lambda_2_always_nontrivial_agreement(self, omission3):
        outcome = fip(f_lambda_2_pair(omission3)).outcome(omission3)
        assert check_nontrivial_agreement(outcome).ok

    def test_restricted_subsystem_over_approximates(self):
        """Sanity for the DESIGN.md transfer argument: a sub-system makes
        deciding easier, never harder.  In the (too poor) Prop 6.3 pattern
        family the target run *does* decide — which is exactly why E9 uses
        the full enumeration."""
        from repro.workloads.scenarios import proposition_6_3_family

        family, target = proposition_6_3_family(n=4, horizon=3)
        system = restricted_system(
            FailureMode.OMISSION, 4, 2, 3, [pattern for _, pattern in family]
        )
        outcome = fip(f_lambda_2_pair(system)).outcome(system)
        run = outcome.get(target)
        assert run.all_nonfaulty_decided()  # spurious, by design


class TestSilentCarrierScenario:
    """The Proposition 6.3 witness shape at t = 1: with a single fault the
    silent-carrier run is decidable and everyone decides 1."""

    def test_silent_carrier_t1(self, omission3):
        silent = OmissionBehavior(
            {r: [1, 2] for r in range(1, omission3.horizon + 1)}
        )
        target = (
            uniform_configuration(3, 1),
            FailurePattern({0: silent}),
        )
        outcome = fip(f_lambda_2_pair(omission3)).outcome(omission3)
        run = outcome.get(target)
        for processor in run.nonfaulty:
            value, _ = run.decisions[processor]
            assert value == 1
