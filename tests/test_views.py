"""Unit tests for view interning and full-information state semantics."""

import pytest

from repro.errors import ConfigurationError
from repro.model.views import ViewTable


@pytest.fixture
def table():
    return ViewTable()


class TestLeaves:
    def test_leaf_interning_is_stable(self, table):
        a = table.leaf(0, 1)
        b = table.leaf(0, 1)
        assert a == b
        assert len(table) == 1

    def test_distinct_processors_distinct_leaves(self, table):
        assert table.leaf(0, 1) != table.leaf(1, 1)

    def test_distinct_values_distinct_leaves(self, table):
        assert table.leaf(0, 0) != table.leaf(0, 1)

    def test_leaf_metadata(self, table):
        view = table.leaf(2, 0)
        info = table.info(view)
        assert info.processor == 2
        assert info.time == 0
        assert info.initial_value == 0
        assert info.previous is None
        assert info.heard_from == ()


class TestExtension:
    def test_extension_embeds_senders(self, table):
        a0 = table.leaf(0, 1)
        b0 = table.leaf(1, 0)
        a1 = table.extend(a0, {1: b0})
        info = table.info(a1)
        assert info.time == 1
        assert info.previous == a0
        assert info.senders == frozenset((1,))

    def test_extension_interned(self, table):
        a0 = table.leaf(0, 1)
        b0 = table.leaf(1, 0)
        assert table.extend(a0, {1: b0}) == table.extend(a0, {1: b0})

    def test_different_heard_sets_distinct(self, table):
        a0 = table.leaf(0, 1)
        b0 = table.leaf(1, 0)
        assert table.extend(a0, {}) != table.extend(a0, {1: b0})

    def test_rejects_time_mismatch(self, table):
        a0 = table.leaf(0, 1)
        b0 = table.leaf(1, 0)
        b1 = table.extend(b0, {})
        a1 = table.extend(a0, {})
        with pytest.raises(ConfigurationError):
            table.extend(a1, {1: b0})  # b0 is time 0, a1 expects time 1

    def test_rejects_wrong_owner(self, table):
        a0 = table.leaf(0, 1)
        b0 = table.leaf(1, 0)
        with pytest.raises(ConfigurationError):
            table.extend(a0, {2: b0})  # view b0 belongs to 1, not 2


class TestDerivedQueries:
    def _two_rounds(self, table):
        a0, b0, c0 = table.leaf(0, 0), table.leaf(1, 1), table.leaf(2, 1)
        a1 = table.extend(a0, {1: b0, 2: c0})
        b1 = table.extend(b0, {0: a0, 2: c0})
        a2 = table.extend(a1, {1: b1})
        return a0, a1, a2

    def test_history_chain(self, table):
        a0, a1, a2 = self._two_rounds(table)
        assert table.history(a2) == [a0, a1, a2]

    def test_known_values_recursive(self, table):
        _, _, a2 = self._two_rounds(table)
        assert table.known_values(a2) == frozenset((0, 1))

    def test_known_values_isolated(self, table):
        a0 = table.leaf(0, 1)
        lonely = table.extend(a0, {})
        assert table.known_values(lonely) == frozenset((1,))

    def test_known_initial_values(self, table):
        _, a1, _ = self._two_rounds(table)
        assert table.known_initial_values(a1) == {0: 0, 1: 1, 2: 1}

    def test_heard_from_at(self, table):
        _, _, a2 = self._two_rounds(table)
        assert table.heard_from_at(a2, 1) == frozenset((1, 2))
        assert table.heard_from_at(a2, 2) == frozenset((1,))

    def test_heard_from_at_bounds(self, table):
        a0, _, a2 = self._two_rounds(table)
        with pytest.raises(ConfigurationError):
            table.heard_from_at(a2, 3)
        with pytest.raises(ConfigurationError):
            table.heard_from_at(a0, 1)

    def test_cross_table_sharing(self, table):
        """The same structural history interned twice yields the same id —
        the property knowledge evaluation relies on."""
        a0 = table.leaf(0, 1)
        b0 = table.leaf(1, 1)
        first = table.extend(a0, {1: b0})
        second = table.extend(table.leaf(0, 1), {1: table.leaf(1, 1)})
        assert first == second
