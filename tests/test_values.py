"""Unit tests for :mod:`repro.core.values`."""

import pytest

from repro.core.values import (
    VALUES,
    all_same,
    check_decision,
    check_value,
    other,
)


class TestOther:
    def test_other_of_zero_is_one(self):
        assert other(0) == 1

    def test_other_of_one_is_zero(self):
        assert other(1) == 0

    def test_other_rejects_non_binary(self):
        with pytest.raises(ValueError):
            other(2)

    def test_other_rejects_none(self):
        with pytest.raises(ValueError):
            other(None)


class TestCheckValue:
    def test_accepts_both_values(self):
        for value in VALUES:
            assert check_value(value) == value

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_value(-1)

    def test_rejects_bool_like_large(self):
        with pytest.raises(ValueError):
            check_value(7)


class TestCheckDecision:
    def test_none_is_legal_undecided(self):
        assert check_decision(None) is None

    def test_binary_decisions_legal(self):
        assert check_decision(0) == 0
        assert check_decision(1) == 1

    def test_rejects_other_values(self):
        with pytest.raises(ValueError):
            check_decision(2)


class TestAllSame:
    def test_unanimous_zero(self):
        assert all_same([0, 0, 0]) == 0

    def test_unanimous_one(self):
        assert all_same([1, 1]) == 1

    def test_mixed_returns_none(self):
        assert all_same([0, 1, 0]) is None

    def test_empty_returns_none(self):
        assert all_same([]) is None

    def test_singleton(self):
        assert all_same([1]) == 1
