"""Tests for Proposition 4.1 and Lemma 4.2 — the basic facts about
``decide_i(y)`` that the Section 4 analysis builds on."""

import pytest

from repro.knowledge.formulas import (
    And,
    Believes,
    Decided,
    Iff,
    Implies,
    IsNonfaulty,
    Knows,
    Not,
)
from repro.protocols.f_lambda import f_lambda_2_pair
from repro.protocols.f_star import f_star_pair
from repro.protocols.fip import fip


@pytest.fixture(scope="module")
def crash_pair(crash3):
    return fip(f_lambda_2_pair(crash3)).sticky_pair(crash3)


@pytest.fixture(scope="module")
def omission_pair(omission3):
    return fip(f_star_pair(omission3)).sticky_pair(omission3)


class TestProposition41:
    def test_part_a_no_double_decision(self, crash3, crash_pair):
        """decide_i(y) ⇒ ¬decide_i(1-y), on the effective decision sets."""
        for processor in range(crash3.n):
            for value in (0, 1):
                assert Implies(
                    Decided(crash_pair, processor, value),
                    Not(Decided(crash_pair, processor, 1 - value)),
                ).is_valid(crash3)

    def test_part_a_omission(self, omission3, omission_pair):
        for processor in range(omission3.n):
            assert Implies(
                Decided(omission_pair, processor, 0),
                Not(Decided(omission_pair, processor, 1)),
            ).is_valid(omission3)

    def test_part_b_knowledge_of_own_decision(self, crash3, crash_pair):
        """K_i decide_i(y) ⇔ decide_i(y) — decisions are state-determined,
        so the processor always knows its own."""
        for processor in range(crash3.n):
            for value in (0, 1):
                decided = Decided(crash_pair, processor, value)
                assert Iff(Knows(processor, decided), decided).is_valid(
                    crash3
                )
                assert Iff(
                    Knows(processor, Not(decided)), Not(decided)
                ).is_valid(crash3)

    def test_part_c_belief_for_nonfaulty(self, crash3, crash_pair):
        """For i ∈ N, B_i^N decide_i(y) ⇔ decide_i(y)."""
        for processor in range(crash3.n):
            decided = Decided(crash_pair, processor, 0)
            assert Implies(
                IsNonfaulty(processor),
                And(
                    (
                        Iff(Believes(processor, decided), decided),
                        Iff(
                            Believes(processor, Not(decided)), Not(decided)
                        ),
                    )
                ),
            ).is_valid(crash3)


class TestLemma42:
    def test_opposite_decisions_exclude_each_other_run_wide(
        self, crash3, crash_pair
    ):
        """If nonfaulty i decided 0 at some point of a run, no nonfaulty j
        decides 1 at ANY point of that run (⊡¬decide_j(1))."""
        outcome = fip(crash_pair).outcome(crash3)
        for run in outcome:
            values = {
                record[0]
                for processor, record in run.nonfaulty_decisions().items()
                if record is not None
            }
            assert len(values) <= 1

    def test_lemma_4_2_formula_level(self, omission3, omission_pair):
        from repro.knowledge.formulas import AtAllTimes

        for i in range(omission3.n):
            for j in range(omission3.n):
                formula = Implies(
                    And(
                        (
                            IsNonfaulty(i),
                            IsNonfaulty(j),
                            Decided(omission_pair, i, 0),
                        )
                    ),
                    AtAllTimes(Not(
                        And(
                            (
                                Decided(omission_pair, j, 1),
                                IsNonfaulty(j),
                            )
                        )
                    )),
                )
                assert formula.is_valid(omission3), (i, j)
