"""Property-based tests (hypothesis) for the knowledge layer: random
formulas over the exhaustive n=3 crash system must satisfy the logic's
structural laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knowledge.formulas import (
    AllStarted,
    Always,
    And,
    AtAllTimes,
    Believes,
    Common,
    ContinualCommon,
    Eventually,
    Exists,
    Implies,
    IsNonfaulty,
    Knows,
    Not,
    Or,
)
from repro.knowledge.nonrigid import NONFAULTY
from repro.model.builder import crash_system


@pytest.fixture(scope="module")
def system():
    return crash_system(3, 1, 3)


def atoms():
    return st.sampled_from(
        [
            Exists(0),
            Exists(1),
            AllStarted(0),
            AllStarted(1),
            IsNonfaulty(0),
            IsNonfaulty(1),
            IsNonfaulty(2),
        ]
    )


def formulas(max_depth=3):
    def extend(children):
        processor = st.integers(min_value=0, max_value=2)
        return st.one_of(
            st.builds(Not, children),
            st.builds(lambda a, b: And((a, b)), children, children),
            st.builds(lambda a, b: Or((a, b)), children, children),
            st.builds(lambda i, phi: Knows(i, phi), processor, children),
            st.builds(lambda i, phi: Believes(i, phi), processor, children),
            st.builds(Always, children),
            st.builds(Eventually, children),
            st.builds(AtAllTimes, children),
        )

    return st.recursive(atoms(), extend, max_leaves=6)


@given(phi=formulas())
@settings(max_examples=40, deadline=None)
def test_knowledge_axiom_random_formulas(system, phi):
    """K_i φ ⇒ φ for arbitrary formulas (S5 'T' axiom)."""
    for processor in range(3):
        assert Implies(Knows(processor, phi), phi).is_valid(system)


@given(phi=formulas())
@settings(max_examples=30, deadline=None)
def test_positive_introspection_random_formulas(system, phi):
    knows = Knows(1, phi)
    assert Implies(knows, Knows(1, knows)).is_valid(system)


@given(phi=formulas())
@settings(max_examples=30, deadline=None)
def test_knowledge_state_determined(system, phi):
    """K_i φ truth depends only on i's local state (by construction, but a
    regression guard for the group-broadcast evaluator)."""
    truth = Knows(0, phi).evaluate(system)
    by_state = {}
    for run_index, run in enumerate(system.runs):
        for time in range(system.horizon + 1):
            view = run.view(0, time)
            value = truth.at(run_index, time)
            assert by_state.setdefault(view, value) == value


@given(phi=formulas())
@settings(max_examples=25, deadline=None)
def test_temporal_laws_random_formulas(system, phi):
    assert Implies(Always(phi), phi).is_valid(system)
    assert Implies(phi, Eventually(phi)).is_valid(system)
    assert Implies(AtAllTimes(phi), Always(phi)).is_valid(system)
    duality = Eventually(phi).evaluate(system) == Not(
        Always(Not(phi))
    ).evaluate(system)
    assert duality


@given(phi=formulas())
@settings(max_examples=15, deadline=None)
def test_continual_implies_common_random_formulas(system, phi):
    """C□_S φ ⇒ C_S φ for arbitrary (including point-level) operands; this
    exercises the greatest-fixed-point evaluator."""
    assert Implies(
        ContinualCommon(NONFAULTY, phi), Common(NONFAULTY, phi)
    ).is_valid(system)


@given(phi=formulas())
@settings(max_examples=15, deadline=None)
def test_continual_run_invariance_random_formulas(system, phi):
    truth = ContinualCommon(NONFAULTY, phi).evaluate(system)
    for row in truth.values:
        assert len(set(row)) == 1


@given(phi=formulas())
@settings(max_examples=20, deadline=None)
def test_belief_consistent_for_members(system, phi):
    """(i ∈ N ∧ B_i^N φ) ⇒ φ for arbitrary formulas."""
    for processor in range(3):
        assert Implies(
            And((IsNonfaulty(processor), Believes(processor, phi))), phi
        ).is_valid(system)
