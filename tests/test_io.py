"""Tests for JSON serialization: hand-written cases plus hypothesis
round-trips over random patterns and outcomes."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.outcomes import ProtocolOutcome, RunOutcome
from repro.errors import ConfigurationError
from repro.io.export import (
    FORMAT_VERSION,
    behavior_from_json,
    behavior_to_json,
    dump_outcome,
    experiment_result_to_json,
    load_outcome,
    outcome_from_json,
    outcome_to_json,
    pattern_from_json,
    pattern_to_json,
)
from repro.experiments.framework import ExperimentResult
from repro.model.config import InitialConfiguration
from repro.model.failures import (
    CrashBehavior,
    FailurePattern,
    GeneralOmissionBehavior,
    OmissionBehavior,
    ReceiveOmissionBehavior,
)


class TestBehaviorRoundTrips:
    @pytest.mark.parametrize(
        "behavior",
        [
            CrashBehavior(2, frozenset((0, 2))),
            CrashBehavior(1, frozenset()),
            OmissionBehavior({1: [2], 3: [0, 1]}),
            ReceiveOmissionBehavior({2: [1]}),
            GeneralOmissionBehavior({1: [0]}, {2: [1, 2]}),
            GeneralOmissionBehavior({}, {1: [0]}),
        ],
    )
    def test_round_trip(self, behavior):
        data = behavior_to_json(behavior)
        json.dumps(data)  # must be JSON-serializable
        assert behavior_from_json(data) == behavior

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            behavior_from_json({"kind": "byzantine"})

    def test_unknown_behavior_rejected(self):
        with pytest.raises(ConfigurationError):
            behavior_to_json("junk")


class TestPatternRoundTrips:
    def test_mixed_pattern(self):
        pattern = FailurePattern(
            {
                0: CrashBehavior(1, frozenset((1,))),
                2: OmissionBehavior({2: [0]}),
            }
        )
        assert pattern_from_json(pattern_to_json(pattern)) == pattern

    def test_failure_free(self):
        assert pattern_from_json(pattern_to_json(FailurePattern(()))) == (
            FailurePattern(())
        )


class TestOutcomeRoundTrips:
    def _outcome(self):
        outcome = ProtocolOutcome("demo")
        outcome.add(
            RunOutcome(
                config=InitialConfiguration((0, 1, 1)),
                pattern=FailurePattern({0: CrashBehavior(1, frozenset())}),
                decisions=((0, 0), (1, 2), None),
                horizon=3,
            )
        )
        outcome.add(
            RunOutcome(
                config=InitialConfiguration((1, 1, 1)),
                pattern=FailurePattern(()),
                decisions=((1, 1), (1, 1), (1, 1)),
                horizon=3,
            )
        )
        return outcome

    def test_round_trip_preserves_everything(self):
        original = self._outcome()
        restored = outcome_from_json(outcome_to_json(original))
        assert restored.name == original.name
        assert restored.scenario_keys() == original.scenario_keys()
        for key in original.scenario_keys():
            assert restored.get(key).decisions == original.get(key).decisions
            assert restored.get(key).horizon == original.get(key).horizon

    def test_file_round_trip(self, tmp_path):
        original = self._outcome()
        path = str(tmp_path / "outcome.json")
        dump_outcome(original, path)
        restored = load_outcome(path)
        assert restored.scenario_keys() == original.scenario_keys()

    def test_version_checked(self):
        data = outcome_to_json(self._outcome())
        data["format_version"] = 99
        with pytest.raises(ConfigurationError):
            outcome_from_json(data)

    def test_round_trip_of_real_protocol_outcome(self, crash3):
        from repro.protocols.p0opt import p0opt
        from repro.sim.engine import run_over_scenarios

        original = run_over_scenarios(p0opt(), crash3.scenarios(), 3, 1)
        restored = outcome_from_json(outcome_to_json(original))
        for key in original.scenario_keys():
            assert restored.get(key).decisions == original.get(key).decisions


class TestExperimentResultExport:
    def test_exports_jsonable(self):
        result = ExperimentResult(
            experiment_id="EX",
            title="demo",
            paper_claim="claim",
            ok=True,
            table="a b",
            notes=["n"],
            data={"nested": {"set": frozenset((1, 2))}, "obj": object()},
        )
        data = experiment_result_to_json(result)
        json.dumps(data)  # every payload coerced to JSON types
        assert data["experiment_id"] == "EX"
        assert data["format_version"] == FORMAT_VERSION


def _behavior_strategy():
    crash = st.builds(
        CrashBehavior,
        st.integers(min_value=1, max_value=4),
        st.sets(st.integers(min_value=0, max_value=3), max_size=3).map(
            frozenset
        ),
    )
    table = st.dictionaries(
        st.integers(min_value=1, max_value=4),
        st.sets(st.integers(min_value=0, max_value=3), min_size=1, max_size=3),
        max_size=3,
    )
    omission = st.builds(OmissionBehavior, table)
    receive = st.builds(ReceiveOmissionBehavior, table)
    general = st.builds(GeneralOmissionBehavior, table, table)
    return st.one_of(crash, omission, receive, general)


@given(behavior=_behavior_strategy())
@settings(max_examples=80, deadline=None)
def test_property_behavior_round_trip(behavior):
    data = behavior_to_json(behavior)
    json.dumps(data)
    assert behavior_from_json(data) == behavior


@given(
    assignments=st.dictionaries(
        st.integers(min_value=0, max_value=3),
        _behavior_strategy(),
        max_size=2,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_pattern_round_trip(assignments):
    pattern = FailurePattern(assignments)
    assert pattern_from_json(pattern_to_json(pattern)) == pattern
