"""Unit tests for systems and truth assignments."""

import pytest

from repro.errors import ConfigurationError, EvaluationError
from repro.model.adversary import ExhaustiveCrashAdversary
from repro.model.builder import (
    clear_system_cache,
    crash_system,
    default_horizon,
    omission_system,
    restricted_system,
    system_for,
)
from repro.model.config import InitialConfiguration, all_configurations
from repro.model.failures import FailureMode, FailurePattern, OmissionBehavior
from repro.model.system import TruthAssignment, build_system


class TestBuildSystem:
    def test_run_count(self, crash3):
        adversary = ExhaustiveCrashAdversary(3, 1, 3)
        assert len(crash3.runs) == 8 * adversary.count_patterns()

    def test_scenario_index_round_trip(self, crash3):
        for index, run in enumerate(crash3.runs[:20]):
            assert crash3.run_index_for(run.config, run.pattern) == index

    def test_unknown_scenario_raises(self, crash3):
        with pytest.raises(EvaluationError):
            crash3.run_index_for(
                InitialConfiguration((0, 1, 1)),
                FailurePattern({0: OmissionBehavior({1: [1]})}),
            )

    def test_same_state_points_share_view(self, crash3):
        for view in list(crash3.occurring_views())[:50]:
            points = crash3.same_state_points(view)
            owner = crash3.table.processor_of(view)
            time = crash3.table.time_of(view)
            for run_index, point_time in points:
                assert point_time == time
                assert crash3.runs[run_index].view(owner, time) == view

    def test_points_count(self, crash3):
        assert crash3.num_points() == len(crash3.runs) * 4

    def test_config_subset(self):
        system = build_system(
            ExhaustiveCrashAdversary(3, 1, 2),
            configs=[InitialConfiguration((1, 1, 1))],
        )
        assert all(run.config.all_equal(1) for run in system.runs)

    def test_config_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            build_system(
                ExhaustiveCrashAdversary(3, 1, 2),
                configs=[InitialConfiguration((1, 1))],
            )


class TestBuilderHelpers:
    def test_default_horizon(self):
        assert default_horizon(1) == 3
        assert default_horizon(2) == 4

    def test_cache_shares_instances(self):
        clear_system_cache()
        a = crash_system(3, 1, 2)
        b = crash_system(3, 1, 2)
        assert a is b
        clear_system_cache()
        c = crash_system(3, 1, 2)
        assert c is not a

    def test_system_for_dispatch(self):
        crash = system_for(FailureMode.CRASH, 3, 1, 2)
        omission = system_for(FailureMode.OMISSION, 3, 1, 2)
        assert crash.mode is FailureMode.CRASH
        assert omission.mode is FailureMode.OMISSION

    def test_restricted_system(self):
        pattern = FailurePattern({0: OmissionBehavior({1: [1]})})
        system = restricted_system(FailureMode.OMISSION, 3, 1, 2, [pattern])
        assert len(system.runs) == 8 * 2  # failure-free + explicit pattern


class TestTruthAssignment:
    def _system(self):
        return crash_system(3, 1, 2)

    def test_constant(self):
        system = self._system()
        assert TruthAssignment.constant(system, True).is_valid()
        assert not TruthAssignment.constant(system, False).is_valid()

    def test_from_predicate(self):
        system = self._system()
        odd_times = TruthAssignment.from_predicate(
            system, lambda _, time: time % 2 == 1
        )
        assert odd_times.at(0, 1)
        assert not odd_times.at(0, 2)

    def test_negate(self):
        system = self._system()
        assignment = TruthAssignment.from_predicate(
            system, lambda run, _: run == 0
        )
        negated = assignment.negate()
        assert negated.at(1, 0) and not negated.at(0, 0)

    def test_boolean_algebra(self):
        system = self._system()
        a = TruthAssignment.from_predicate(system, lambda _, time: time >= 1)
        b = TruthAssignment.from_predicate(system, lambda _, time: time <= 1)
        assert a.conjoin(b).at(0, 1)
        assert not a.conjoin(b).at(0, 0)
        assert a.disjoin(b).is_valid()
        assert a.implies(a).is_valid()

    def test_count_true(self):
        system = self._system()
        only_time0 = TruthAssignment.from_predicate(
            system, lambda _, time: time == 0
        )
        assert only_time0.count_true() == len(system.runs)

    def test_equality(self):
        system = self._system()
        a = TruthAssignment.constant(system, True)
        b = TruthAssignment.constant(system, True)
        assert a == b
        assert a != b.negate()


class TestCaches:
    def test_cached_evaluation_memoizes(self):
        system = crash_system(3, 1, 2, use_cache=False)
        calls = []

        def compute():
            calls.append(1)
            return TruthAssignment.constant(system, True)

        system.cached_evaluation("key", compute)
        system.cached_evaluation("key", compute)
        assert len(calls) == 1

    def test_clear_caches(self):
        system = crash_system(3, 1, 2, use_cache=False)
        calls = []

        def compute():
            calls.append(1)
            return TruthAssignment.constant(system, True)

        system.cached_evaluation("key", compute)
        system.clear_caches()
        system.cached_evaluation("key", compute)
        assert len(calls) == 2
