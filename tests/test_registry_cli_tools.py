"""Tests for the protocol registry and the CLI compare/diagram tools."""

import pytest

from repro.cli import main, parse_crash_spec, parse_omit_specs
from repro.errors import ConfigurationError, ReproError
from repro.protocols.registry import (
    CONCRETE_PROTOCOLS,
    KNOWLEDGE_PROTOCOLS,
    is_knowledge_level,
    outcome_for,
    protocol_names,
)


class TestRegistry:
    def test_names_cover_both_layers(self):
        names = protocol_names()
        assert "P0opt" in names and "F_LAMBDA2" in names
        assert len(names) == len(CONCRETE_PROTOCOLS) + len(
            KNOWLEDGE_PROTOCOLS
        )

    def test_layer_classification(self):
        assert not is_knowledge_level("P0")
        assert is_knowledge_level("F_STAR")
        with pytest.raises(ConfigurationError):
            is_knowledge_level("NoSuchProtocol")

    def test_outcome_for_concrete(self, crash3):
        outcome = outcome_for("P0opt", crash3)
        assert outcome.name == "P0opt"
        assert len(outcome) == len(crash3.runs)

    def test_outcome_for_knowledge(self, crash3):
        outcome = outcome_for("F_LAMBDA2", crash3)
        assert outcome.name == "F_LAMBDA2"
        assert len(outcome) == len(crash3.runs)

    def test_outcomes_comparable_across_layers(self, crash3):
        from repro.core.domination import equivalent_decisions

        concrete = outcome_for("P0opt", crash3)
        knowledge = outcome_for("F_LAMBDA2", crash3)
        assert equivalent_decisions(knowledge, concrete)[0]  # Thm 6.2 again

    def test_concrete_factories_fresh_instances(self):
        assert CONCRETE_PROTOCOLS["P0"]() is not CONCRETE_PROTOCOLS["P0"]()


class TestPatternMiniLanguage:
    def test_crash_spec_silent(self):
        processor, behavior = parse_crash_spec("0:2")
        assert processor == 0
        assert behavior.crash_round == 2
        assert behavior.receivers == frozenset()

    def test_crash_spec_with_receivers(self):
        processor, behavior = parse_crash_spec("1:3:0,2")
        assert processor == 1
        assert behavior.receivers == frozenset((0, 2))

    def test_crash_spec_rejects_malformed(self):
        with pytest.raises(ReproError):
            parse_crash_spec("1")
        with pytest.raises(ReproError):
            parse_crash_spec("1:2:3:4")

    def test_omit_specs_merge_per_processor(self):
        behaviors = parse_omit_specs(["0:1:1,2", "0:2:1"])
        behavior = behaviors[0]
        assert behavior.omitted(1) == frozenset((1, 2))
        assert behavior.omitted(2) == frozenset((1,))

    def test_omit_specs_rejects_malformed(self):
        with pytest.raises(ReproError):
            parse_omit_specs(["0:1"])


class TestCliTools:
    def test_protocols_command(self, capsys):
        assert main(["protocols"]) == 0
        output = capsys.readouterr().out
        assert "P0opt" in output and "F_STAR" in output

    def test_compare_command(self, capsys):
        assert main(
            ["compare", "P0opt", "P0", "--mode", "crash", "-n", "3", "-t", "1"]
        ) == 0
        output = capsys.readouterr().out
        assert "strictly dominates" in output
        assert "mean t" in output

    def test_diagram_concrete(self, capsys):
        assert main(
            ["diagram", "P0opt", "--config", "011", "--crash", "0:1:1"]
        ) == 0
        output = capsys.readouterr().out
        assert "p0*" in output and "D0" in output

    def test_diagram_knowledge_level(self, capsys):
        assert main(
            ["diagram", "F_LAMBDA2", "--config", "011", "--crash", "0:1"]
        ) == 0
        output = capsys.readouterr().out
        assert "F_LAMBDA2" in output and "D" in output

    def test_diagram_omission(self, capsys):
        assert main(
            [
                "diagram", "ChainEBA", "--mode", "omission",
                "--config", "011", "--omit", "0:1:2",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "omit" in output

    def test_diagram_config_length_checked(self):
        with pytest.raises(ReproError):
            main(["diagram", "P0opt", "--config", "01", "-n", "3"])

    def test_stats_json_round_trips(self, capsys, monkeypatch, tmp_path):
        import json

        from repro import obs

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        obs.count("system_cache_hits")  # ensure a non-empty payload
        assert main(["stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "instrumentation", "system_cache", "disk_entries", "kernel",
            "kernel_selections", "tracer",
        }
        instrumentation = payload["instrumentation"]
        assert set(instrumentation) == {
            "counters", "timers", "histograms", "gauges"
        }
        assert instrumentation["counters"]["system_cache_hits"] >= 1
        assert isinstance(payload["disk_entries"], list)
        assert payload["kernel"] in ("bitset", "chunked", "reference")
        assert isinstance(payload["kernel_selections"], list)
        tracer = payload["tracer"]
        assert tracer["capacity"] >= 1
        assert "dropped" in tracer and "watermark" in tracer
