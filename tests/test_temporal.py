"""Tests for the temporal operators □, ◇ and the paper's ⊡."""

from repro.knowledge.formulas import (
    Always,
    AtAllTimes,
    Eventually,
    Exists,
    Implies,
    Not,
    Predicate,
)
from repro.model.system import TruthAssignment


def _after_time(cutoff):
    """A point-level fact true strictly after *cutoff*."""

    def compute(system):
        return TruthAssignment.from_predicate(
            system, lambda _, time: time > cutoff
        )

    return Predicate(("after", cutoff), compute)


def _at_time(moment):
    def compute(system):
        return TruthAssignment.from_predicate(
            system, lambda _, time: time == moment
        )

    return Predicate(("at", moment), compute)


class TestAlways:
    def test_always_of_run_level_fact_is_fact(self, crash3):
        phi = Exists(0)
        assert (
            Always(phi).evaluate(crash3) == phi.evaluate(crash3)
        )

    def test_always_future_semantics(self, crash3):
        truth = Always(_after_time(1)).evaluate(crash3)
        # □(time > 1) holds exactly from time 2 on.
        assert not truth.at(0, 1)
        assert truth.at(0, 2)
        assert truth.at(0, 3)

    def test_always_implies_now(self, crash3):
        phi = _after_time(0)
        assert Implies(Always(phi), phi).is_valid(crash3)


class TestEventually:
    def test_eventually_of_future_fact(self, crash3):
        truth = Eventually(_at_time(2)).evaluate(crash3)
        assert truth.at(0, 0)
        assert truth.at(0, 2)
        assert not truth.at(0, 3)

    def test_now_implies_eventually(self, crash3):
        phi = _at_time(1)
        assert Implies(phi, Eventually(phi)).is_valid(crash3)

    def test_duality_with_always(self, crash3):
        """◇φ == ¬□¬φ."""
        phi = _at_time(2)
        left = Eventually(phi).evaluate(crash3)
        right = Not(Always(Not(phi))).evaluate(crash3)
        assert left == right


class TestAtAllTimes:
    def test_box_dot_includes_past(self, crash3):
        """⊡φ at a late time still requires φ at time 0 — unlike □."""
        phi = _after_time(0)  # false at time 0 only
        always = Always(phi).evaluate(crash3)
        at_all = AtAllTimes(phi).evaluate(crash3)
        assert always.at(0, 1)
        assert not at_all.at(0, 1)

    def test_box_dot_is_run_level(self, crash3):
        truth = AtAllTimes(_at_time(1)).evaluate(crash3)
        for row in truth.values:
            assert len(set(row)) == 1

    def test_box_dot_implies_always(self, crash3):
        phi = _after_time(1)
        assert Implies(AtAllTimes(phi), Always(phi)).is_valid(crash3)

    def test_box_dot_of_constant_true(self, crash3):
        from repro.knowledge.formulas import TRUE

        assert AtAllTimes(TRUE).is_valid(crash3)
