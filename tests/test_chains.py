"""Tests for 0-chains and ``∃0*`` (Section 6.2 semantics)."""

from repro.knowledge.chains import (
    believes_faulty,
    eventually_exists_zero_star,
    exists_zero_star,
)
from repro.model.config import InitialConfiguration
from repro.model.failures import FailurePattern, OmissionBehavior


def _index(system, values, pattern=FailurePattern(())):
    return system.run_index_for(InitialConfiguration(values), pattern)


class TestExistsZeroStar:
    def test_nonfaulty_zero_is_a_chain_at_time_zero(self, omission3):
        """A nonfaulty processor with initial value 0 is a complete
        1-member chain (proof-consistent timing, see module docstring)."""
        truth = exists_zero_star().evaluate(omission3)
        index = _index(omission3, (0, 1, 1))
        assert truth.at(index, 0)

    def test_no_chain_in_all_ones_run(self, omission3):
        truth = exists_zero_star().evaluate(omission3)
        index = _index(omission3, (1, 1, 1))
        for time in range(omission3.horizon + 1):
            assert not truth.at(index, time)

    def test_monotone_in_time(self, omission3):
        truth = exists_zero_star().evaluate(omission3)
        for row in truth.values:
            for earlier, later in zip(row, row[1:]):
                assert later or not earlier

    def test_faulty_silent_zero_never_forms_chain(self, omission3):
        """A faulty value-0 processor that never delivers cannot seed a
        chain: no nonfaulty endpoint ever receives it."""
        silent = OmissionBehavior({r: [1, 2] for r in (1, 2, 3)})
        index = _index(
            omission3, (0, 1, 1), FailurePattern({0: silent})
        )
        truth = exists_zero_star().evaluate(omission3)
        for time in range(omission3.horizon + 1):
            assert not truth.at(index, time)

    def test_faulty_zero_delivered_forms_two_member_chain(self, omission3):
        """If the faulty 0-holder delivers its round-1 message to a
        nonfaulty processor, the 2-member chain completes at time 1."""
        partial = OmissionBehavior({r: [2] for r in (1, 2, 3)})
        index = _index(
            omission3, (0, 1, 1), FailurePattern({0: partial})
        )
        truth = exists_zero_star().evaluate(omission3)
        assert not truth.at(index, 0)
        assert truth.at(index, 1)

    def test_chain_blocked_by_known_faulty_sender(self, omission3):
        """A receiver that already believes the sender faulty does not
        extend the chain: deliver-only-at-round-2 to a processor that saw
        the sender silent in round 1."""
        late = OmissionBehavior({1: [1, 2], 2: [2], 3: [1, 2]})
        # processor 0 (value 0) omits everything except round 2 to proc 1;
        # by time 1 processor 1 has detected 0's silence... but detection
        # requires knowing 0 *must* have sent — B_1^N(0 ∉ N) — which the
        # knowledge layer decides.  At minimum the chain cannot complete
        # before the delivery round.
        index = _index(omission3, (0, 1, 1), FailurePattern({0: late}))
        truth = exists_zero_star().evaluate(omission3)
        assert not truth.at(index, 0)
        assert not truth.at(index, 1)

    def test_believes_faulty_detects_silence(self, omission3):
        """Missing an expected message proves the sender faulty in the
        omission mode."""
        silent = OmissionBehavior({r: [1, 2] for r in (1, 2, 3)})
        index = _index(omission3, (1, 1, 1), FailurePattern({0: silent}))
        truth = believes_faulty(1, 0).evaluate(omission3)
        assert not truth.at(index, 0)
        assert truth.at(index, 1)

    def test_believes_faulty_never_about_self_when_nonfaulty(self, omission3):
        truth = believes_faulty(1, 1).evaluate(omission3)
        for run_index, run in enumerate(omission3.runs):
            if run.is_nonfaulty(1):
                for time in range(omission3.horizon + 1):
                    assert not truth.at(run_index, time)


class TestEventuallyExistsZeroStar:
    def test_run_level(self, omission3):
        truth = eventually_exists_zero_star().evaluate(omission3)
        for row in truth.values:
            assert len(set(row)) == 1

    def test_matches_horizon_value(self, omission3):
        now = exists_zero_star().evaluate(omission3)
        ever = eventually_exists_zero_star().evaluate(omission3)
        for run_index in range(len(omission3.runs)):
            assert ever.at(run_index, 0) == now.at(
                run_index, omission3.horizon
            )

    def test_implied_by_current(self, omission3):
        now = exists_zero_star().evaluate(omission3)
        ever = eventually_exists_zero_star().evaluate(omission3)
        for run_index in range(len(omission3.runs)):
            for time in range(omission3.horizon + 1):
                if now.at(run_index, time):
                    assert ever.at(run_index, time)
