"""Tests for the two-step optimal construction (Prop 5.1 / Thm 5.2)."""

from repro.core.construction import (
    construction_sequence,
    double_prime_step,
    prime_step,
    two_step_optimization,
)
from repro.core.domination import compare, equivalent_decisions
from repro.core.specs import check_eba, check_nontrivial_agreement
from repro.protocols.f_lambda import (
    f_lambda_1_explicit_pair,
    f_lambda_pair,
    f_lambda_sequence,
)
from repro.protocols.fip import fip


class TestPrimeStep:
    def test_prime_of_empty_pair_is_believes_zero(self, crash3):
        """With O = ∅, C□_{N∧O}∃0 is vacuous, so Z¹ = B_i^N ∃0 and the
        one-rule reduces to B_i^N false — never firing for nonfaulty
        processors (Section 6.1's hand derivation)."""
        first = prime_step(crash3, f_lambda_pair())
        explicit = f_lambda_1_explicit_pair(crash3)
        eq, diffs = equivalent_decisions(
            fip(first).outcome(crash3), fip(explicit).outcome(crash3)
        )
        assert eq, diffs

    def test_prime_step_dominates(self, crash3):
        base = f_lambda_pair()
        first = prime_step(crash3, base)
        report = compare(
            fip(first).outcome(crash3), fip(base).outcome(crash3)
        )
        assert report.dominates

    def test_prime_step_nontrivial(self, crash3):
        first = prime_step(crash3, f_lambda_pair())
        protocol = fip(first)
        protocol.assert_no_nonfaulty_conflicts(crash3)
        assert check_nontrivial_agreement(protocol.outcome(crash3)).ok


class TestDoublePrimeStep:
    def test_double_prime_dominates(self, crash3):
        first = prime_step(crash3, f_lambda_pair())
        second = double_prime_step(crash3, first)
        report = compare(
            fip(second).outcome(crash3), fip(first).outcome(crash3)
        )
        assert report.strict  # F^{Λ,2} finally decides 1 somewhere

    def test_double_prime_nontrivial(self, crash3):
        first = prime_step(crash3, f_lambda_pair())
        second = double_prime_step(crash3, first)
        assert check_nontrivial_agreement(fip(second).outcome(crash3)).ok


class TestTwoStepOptimization:
    def test_matches_f_lambda_sequence(self, crash3):
        first, second = two_step_optimization(crash3, f_lambda_pair())
        _, seq_first, seq_second = f_lambda_sequence(crash3)
        assert equivalent_decisions(
            fip(first).outcome(crash3), fip(seq_first).outcome(crash3)
        )[0]
        assert equivalent_decisions(
            fip(second).outcome(crash3), fip(seq_second).outcome(crash3)
        )[0]

    def test_result_is_eba_in_crash_mode(self, crash3):
        _, second = two_step_optimization(crash3, f_lambda_pair())
        assert check_eba(fip(second).outcome(crash3)).ok

    def test_fixed_point_after_two_steps(self, crash3):
        """Theorem 5.2: further steps change no nonfaulty decision."""
        sequence = construction_sequence(crash3, f_lambda_pair(), steps=4)
        outcomes = [fip(pair).outcome(crash3) for pair in sequence]
        assert equivalent_decisions(outcomes[3], outcomes[2])[0]
        assert equivalent_decisions(outcomes[4], outcomes[2])[0]

    def test_monotone_domination_chain(self, omission3):
        from repro.protocols.chain_fip import chain_pair

        sequence = construction_sequence(
            omission3, chain_pair(omission3), steps=3
        )
        outcomes = [fip(pair).outcome(omission3) for pair in sequence]
        for earlier, later in zip(outcomes, outcomes[1:]):
            assert compare(later, earlier).dominates

    def test_construction_preserves_eba_omission(self, omission3):
        from repro.protocols.chain_fip import chain_pair

        _, second = two_step_optimization(omission3, chain_pair(omission3))
        assert check_eba(fip(second).outcome(omission3)).ok
