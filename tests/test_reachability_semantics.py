"""Deep cross-checks of the S-□-reachability semantics (Prop 3.2 /
Corollary 3.3) against hand-computed expectations — the part of the
knowledge layer everything in Section 5 stands on."""

from repro.knowledge.formulas import (
    And,
    Believes,
    ContinualCommon,
    EveryoneBox,
    Exists,
    Formula,
)
from repro.knowledge.nonrigid import NONFAULTY, NonrigidSet
from repro.knowledge.semantics import (
    eval_everyone_box,
    run_reachability_components,
)
from repro.model.config import InitialConfiguration
from repro.model.failures import FailurePattern


class TestIteratedEveryoneBox:
    def test_cbox_equals_infinite_conjunction_truncation(self, crash3):
        """``C□_S φ`` implies every finite stage ``(E□_S)^k φ``, and on a
        finite system the stages stabilize to exactly ``C□``: computing
        stages until fixpoint must reproduce the operator."""
        phi: Formula = Exists(1)
        cbox = ContinualCommon(NONFAULTY, phi).evaluate(crash3)
        stage = phi.evaluate(crash3)
        seen = []
        for _ in range(len(crash3.runs) + 2):
            nxt = eval_everyone_box(
                crash3, NONFAULTY, phi.evaluate(crash3).conjoin(stage)
            )
            if nxt == stage:
                break
            stage = nxt
            seen.append(stage)
        # the stabilized stage is the greatest fixed point = C□
        assert stage == cbox

    def test_stages_are_monotone_decreasing(self, crash3):
        phi = Exists(0)
        previous = phi.evaluate(crash3)
        for depth in range(3):
            current = eval_everyone_box(
                crash3, NONFAULTY, phi.evaluate(crash3).conjoin(previous)
            )
            for run_index in range(len(crash3.runs)):
                for time in range(crash3.horizon + 1):
                    if current.at(run_index, time):
                        # E□(φ ∧ X) ⇒ ... each stage only removes points
                        # relative to the conjunction it was built from.
                        assert previous.at(
                            run_index, time
                        ) or not previous.at(run_index, time)
            previous = current


class TestComponentsAgainstHandAnalysis:
    def test_failure_free_unanimous_runs_share_component(self, crash3):
        """Under N, the all-zeros and all-ones failure-free runs are
        mutually reachable (walk processor 0's time-0 state through the
        mixed configurations)."""
        components = run_reachability_components(crash3, NONFAULTY)
        zeros = crash3.run_index_for(
            InitialConfiguration((0, 0, 0)), FailurePattern(())
        )
        ones = crash3.run_index_for(
            InitialConfiguration((1, 1, 1)), FailurePattern(())
        )
        assert components[zeros] == components[ones]

    def test_reachability_blind_to_times(self, crash3):
        """Components are per-run: the same component answers for every
        time (Lemma 3.4(g) made concrete)."""
        truth = ContinualCommon(NONFAULTY, Exists(0)).evaluate(crash3)
        components = run_reachability_components(crash3, NONFAULTY)
        by_component = {}
        for run_index in range(len(crash3.runs)):
            value = truth.at(run_index, 0)
            key = components[run_index]
            assert by_component.setdefault(key, value) == value

    def test_decision_set_components_fragment(self, crash3):
        """Under N∧Z^{Λ,1} the run graph fragments: the all-ones
        failure-free run must NOT reach any ∃0 run (that separation IS
        Theorem 6.1's decide-1 condition)."""
        from repro.knowledge.nonrigid import nonfaulty_and_zeros
        from repro.protocols.f_lambda import f_lambda_sequence

        _, first, _ = f_lambda_sequence(crash3)
        nonrigid = nonfaulty_and_zeros(first)
        components = run_reachability_components(crash3, nonrigid)
        ones = crash3.run_index_for(
            InitialConfiguration((1, 1, 1)), FailurePattern(())
        )
        for run_index, run in enumerate(crash3.runs):
            if run.exists(0) and components[run_index] != -1:
                assert components[run_index] != components[ones]

    def test_belief_of_cbox_is_state_determined(self, crash3):
        """The decision rules are B_i^N(C□ ...) — regression: their truth
        must be a function of the local state (the FIP well-formedness
        requirement)."""
        from repro.knowledge.nonrigid import nonfaulty_and_zeros
        from repro.protocols.f_lambda import f_lambda_sequence

        _, first, _ = f_lambda_sequence(crash3)
        formula = Believes(
            0,
            And(
                (
                    Exists(1),
                    ContinualCommon(nonfaulty_and_zeros(first), Exists(1)),
                )
            ),
        )
        truth = formula.evaluate(crash3)
        by_state = {}
        for run_index, run in enumerate(crash3.runs):
            for time in range(crash3.horizon + 1):
                view = run.view(0, time)
                value = truth.at(run_index, time)
                assert by_state.setdefault(view, value) == value
