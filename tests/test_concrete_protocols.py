"""Behavioural tests for the concrete protocols P0/P1, P0opt, FloodSBA and
ChainEBA on hand-picked scenarios."""

import pytest

from repro.errors import UnsupportedModeError
from repro.model.config import InitialConfiguration
from repro.model.failures import (
    CrashBehavior,
    FailureMode,
    FailurePattern,
    OmissionBehavior,
)
from repro.protocols.chain_eba import chain_eba
from repro.protocols.flood_sba import assert_crash_pattern, flood_sba
from repro.protocols.p0 import p0, p1
from repro.protocols.p0opt import p0opt
from repro.sim.engine import execute

EMPTY = FailurePattern(())


def _config(*values):
    return InitialConfiguration(values)


class TestP0:
    def test_zero_holders_decide_at_time_zero(self):
        trace = execute(p0(), _config(0, 1, 1), EMPTY, 3, 1)
        assert trace.decisions[0] == (0, 0)

    def test_others_decide_zero_after_relay(self):
        trace = execute(p0(), _config(0, 1, 1), EMPTY, 3, 1)
        assert trace.decisions[1] == (0, 1)
        assert trace.decisions[2] == (0, 1)

    def test_all_ones_default_at_t_plus_1(self):
        trace = execute(p0(), _config(1, 1, 1), EMPTY, 3, 1)
        assert trace.decisions == [(1, 2), (1, 2), (1, 2)]

    def test_relay_happens_once_then_halt(self):
        trace = execute(p0(), _config(0, 1, 1), EMPTY, 3, 1)
        # round 1: processor 0 relays (2 msgs); round 2: processors 1 and 2
        # relay (4 msgs); round 3: everyone halted.
        assert trace.sent_counts == [2, 4, 0]

    def test_crashed_relay_reaches_subset(self):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset((1,)))})
        trace = execute(p0(), _config(0, 1, 1), pattern, 3, 1)
        assert trace.decisions[1] == (0, 1)
        assert trace.decisions[2] == (0, 2)  # via processor 1's relay

    def test_p1_symmetric(self):
        trace = execute(p1(), _config(0, 1, 1), EMPTY, 3, 1)
        assert trace.decisions[1] == (1, 0)
        assert trace.decisions[2] == (1, 0)
        assert trace.decisions[0] == (1, 1)


class TestP0Opt:
    def test_failure_free_all_ones_decides_at_one(self):
        trace = execute(p0opt(), _config(1, 1, 1), EMPTY, 3, 1)
        assert trace.decisions == [(1, 1), (1, 1), (1, 1)]

    def test_zero_decisions_match_p0_speed(self):
        trace = execute(p0opt(), _config(0, 1, 1), EMPTY, 3, 1)
        assert trace.decisions[0] == (0, 0)
        assert trace.decisions[1] == (0, 1)

    def test_condition_b_stable_heard_set(self):
        """Processor 0 crashes silently in round 1; the survivors hear the
        same (reduced) set in rounds 1 and 2 and decide 1 at time 2 without
        knowing all initial values."""
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        trace = execute(p0opt(), _config(1, 1, 1), pattern, 3, 1)
        assert trace.decisions[1] == (1, 2)
        assert trace.decisions[2] == (1, 2)

    def test_hidden_zero_blocks_condition_b(self):
        """If the crashed processor held a 0 that reached someone, the 0
        propagates and everyone decides 0."""
        pattern = FailurePattern({0: CrashBehavior(1, frozenset((1,)))})
        trace = execute(p0opt(), _config(0, 1, 1), pattern, 3, 1)
        assert trace.decisions[1] == (0, 1)
        assert trace.decisions[2] == (0, 2)

    def test_halts_after_configured_rounds(self):
        trace = execute(p0opt(), _config(1, 1, 1), EMPTY, 3, 1)
        # decide at time 1, relay in round 2, silent in round 3
        assert trace.sent_counts[2] == 0

    def test_never_halt_variant_keeps_sending(self):
        trace = execute(p0opt(halt_after=None), _config(1, 1, 1), EMPTY, 3, 1)
        assert all(count == 6 for count in trace.sent_counts)


class TestFloodSBA:
    def test_simultaneous_decision_at_t_plus_1(self):
        trace = execute(flood_sba(), _config(0, 1, 1), EMPTY, 3, 1)
        assert trace.decisions == [(0, 2), (0, 2), (0, 2)]

    def test_unanimous_one(self):
        trace = execute(flood_sba(), _config(1, 1, 1), EMPTY, 3, 1)
        assert trace.decisions == [(1, 2), (1, 2), (1, 2)]

    def test_crash_does_not_break_agreement(self):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset((1,)))})
        trace = execute(flood_sba(), _config(0, 1, 1), pattern, 3, 1)
        survivor_decisions = {trace.decisions[1], trace.decisions[2]}
        assert len(survivor_decisions) == 1
        assert trace.decisions[1] == (0, 2)

    def test_guard_rejects_omission_patterns(self):
        pattern = FailurePattern({0: OmissionBehavior({1: [1]})})
        with pytest.raises(UnsupportedModeError):
            assert_crash_pattern(pattern)
        assert_crash_pattern(EMPTY)  # failure-free passes
        assert_crash_pattern(
            FailurePattern({0: CrashBehavior(1, frozenset())})
        )


class TestChainEBA:
    def test_zero_holder_decides_at_zero(self):
        trace = execute(chain_eba(), _config(0, 1, 1), EMPTY, 3, 1)
        assert trace.decisions[0] == (0, 0)

    def test_receivers_accept_chain_at_round_one(self):
        trace = execute(chain_eba(), _config(0, 1, 1), EMPTY, 3, 1)
        assert trace.decisions[1] == (0, 1)
        assert trace.decisions[2] == (0, 1)

    def test_all_ones_failure_free_decides_at_one(self):
        trace = execute(chain_eba(), _config(1, 1, 1), EMPTY, 3, 1)
        assert trace.decisions == [(1, 1), (1, 1), (1, 1)]

    def test_silent_zero_carrier_everyone_decides_one(self):
        """Faulty value-0 processor that never delivers: f = 1, survivors
        decide 1 by f + 1 = 2 (no chain ever completes)."""
        silent = OmissionBehavior({r: [1, 2] for r in (1, 2, 3)})
        trace = execute(
            chain_eba(), _config(0, 1, 1), FailurePattern({0: silent}), 3, 1
        )
        assert trace.decisions[1] == (1, 2)
        assert trace.decisions[2] == (1, 2)

    def test_partial_delivery_spreads_chain(self):
        """The 0 delivered to one processor in round 1 reaches the other as
        a 2-member chain in round 2."""
        partial = OmissionBehavior({r: [2] for r in (1, 2, 3)})
        trace = execute(
            chain_eba(), _config(0, 1, 1), FailurePattern({0: partial}), 3, 1
        )
        assert trace.decisions[1] == (0, 1)
        assert trace.decisions[2] == (0, 2)

    def test_never_halts(self):
        trace = execute(chain_eba(), _config(1, 1, 1), EMPTY, 3, 1)
        assert all(count == 6 for count in trace.sent_counts)

    def test_mode_constant_exposed(self):
        assert FailureMode.OMISSION  # ChainEBA targets the omission mode
