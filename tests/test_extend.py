"""Tests for incremental horizon extension and the streaming monitor.

The differential contract under test: ``extend_system`` (and
``SystemProvider.extend`` above it) must produce a system that is
**indistinguishable** from a fresh ``build_system`` at the target horizon —
same run order, same interned view ids, same verdicts under every kernel,
and byte-identical serialized artifacts — while touching only the new
round's worth of state.
"""

import gzip
import os

import pytest

from repro.errors import ConfigurationError
from repro.io.system_codec import dump_system, dump_system_pickle
from repro.model import kernels
from repro.model.adversary import exhaustive_adversary
from repro.model.chunked import ChunkedIndex
from repro.model.config import InitialConfiguration
from repro.model.failures import (
    NO_FAILURES,
    CrashBehavior,
    FailureMode,
    FailurePattern,
    OmissionBehavior,
    ReceiveOmissionBehavior,
    truncate_pattern,
)
from repro.model.provider import SystemProvider
from repro.model.system import build_system, extend_system


def build(mode, n, t, horizon):
    return build_system(exhaustive_adversary(mode, n, t, horizon))


def extend(system, horizon):
    adversary = exhaustive_adversary(
        system.mode, system.n, system.t, horizon
    )
    return extend_system(system, adversary)


def assert_systems_identical(actual, expected):
    """Full structural identity, including interned view-id assignment."""
    assert actual.n == expected.n
    assert actual.t == expected.t
    assert actual.horizon == expected.horizon
    assert actual.mode is expected.mode
    assert len(actual.runs) == len(expected.runs)
    assert actual.table.export_entries() == expected.table.export_entries()
    for mine, theirs in zip(actual.runs, expected.runs):
        assert mine.config == theirs.config
        assert mine.pattern == theirs.pattern
        assert mine.views == theirs.views
        assert mine.nonfaulty == theirs.nonfaulty
        assert mine.deliveries == theirs.deliveries
    assert actual._scenario_index == expected._scenario_index
    assert actual._state_index == expected._state_index


class TestTruncatePattern:
    def test_failure_free_is_fixed_point(self):
        assert truncate_pattern(NO_FAILURES, 1, 3) is NO_FAILURES

    def test_future_crash_disappears(self):
        pattern = FailurePattern({0: CrashBehavior(3, frozenset())})
        assert truncate_pattern(pattern, 1, 3) is NO_FAILURES
        assert truncate_pattern(pattern, 2, 3) is NO_FAILURES

    def test_visible_crash_survives_verbatim(self):
        pattern = FailurePattern({0: CrashBehavior(2, frozenset([1]))})
        truncated = truncate_pattern(pattern, 2, 3)
        assert truncated == pattern

    def test_omissions_filtered_to_horizon(self):
        pattern = FailurePattern(
            {0: OmissionBehavior([(1, {1}), (3, {2})])}
        )
        truncated = truncate_pattern(pattern, 2, 3)
        assert truncated == FailurePattern({0: OmissionBehavior([(1, {1})])})

    def test_receive_omissions_filtered_to_horizon(self):
        pattern = FailurePattern(
            {1: ReceiveOmissionBehavior([(2, {0}), (3, {2})])}
        )
        truncated = truncate_pattern(pattern, 2, 3)
        assert truncated == FailurePattern(
            {1: ReceiveOmissionBehavior([(2, {0})])}
        )

    def test_truncations_of_canonical_patterns_are_canonical(self):
        # Every horizon-h truncation of an enumerated horizon-(h+1)
        # pattern must itself be an enumerated horizon-h pattern.
        for mode in (
            FailureMode.CRASH,
            FailureMode.OMISSION,
            FailureMode.RECEIVE_OMISSION,
        ):
            shallow = {
                pattern
                for pattern in exhaustive_adversary(mode, 3, 1, 2).patterns()
            }
            for pattern in exhaustive_adversary(mode, 3, 1, 3).patterns():
                assert truncate_pattern(pattern, 2, 3) in shallow


class TestExtendSystemParity:
    @pytest.mark.parametrize(
        "mode",
        [
            FailureMode.CRASH,
            FailureMode.OMISSION,
            FailureMode.RECEIVE_OMISSION,
        ],
    )
    def test_single_step_identical_to_fresh(self, mode):
        extended = extend(build(mode, 3, 1, 1), 2)
        assert_systems_identical(extended, build(mode, 3, 1, 2))

    def test_multi_step_crash_identical_to_fresh(self, crash3):
        system = build(FailureMode.CRASH, 3, 1, 1)
        for horizon in (2, 3):
            system = extend(system, horizon)
        assert_systems_identical(system, crash3)

    def test_multi_step_omission_identical_to_fresh(self, omission3):
        system = build(FailureMode.OMISSION, 3, 1, 1)
        for horizon in (2, 3):
            system = extend(system, horizon)
        assert_systems_identical(system, omission3)

    def test_multi_fault_cell_identical_to_fresh(self):
        extended = extend(build(FailureMode.CRASH, 3, 2, 2), 3)
        assert_systems_identical(extended, build(FailureMode.CRASH, 3, 2, 3))

    def test_base_system_left_untouched(self):
        base = build(FailureMode.CRASH, 3, 1, 2)
        base_runs = list(base.runs)
        base_views = len(base.table)
        extended = extend(base, 3)
        assert extended is not base
        assert base.horizon == 2
        assert base.runs == base_runs
        assert len(base.table) == base_views

    def test_wrong_horizon_rejected(self):
        base = build(FailureMode.CRASH, 3, 1, 1)
        with pytest.raises(ConfigurationError):
            extend(base, 3)
        with pytest.raises(ConfigurationError):
            extend(base, 1)

    def test_mode_mismatch_rejected(self):
        base = build(FailureMode.CRASH, 3, 1, 1)
        adversary = exhaustive_adversary(FailureMode.OMISSION, 3, 1, 2)
        with pytest.raises(ConfigurationError):
            extend_system(base, adversary)

    def test_parameter_mismatch_rejected(self):
        base = build(FailureMode.CRASH, 3, 1, 1)
        adversary = exhaustive_adversary(FailureMode.CRASH, 4, 1, 2)
        with pytest.raises(ConfigurationError):
            extend_system(base, adversary)


class TestVerdictParity:
    @pytest.mark.parametrize("kernel", ["reference", "bitset", "chunked"])
    def test_formulas_agree_with_fresh_build(self, kernel):
        from repro.knowledge.formulas import (
            ContinualCommon,
            Everyone,
            Knows,
            exists,
        )
        from repro.knowledge.nonrigid import NONFAULTY

        extended = extend(build(FailureMode.CRASH, 3, 1, 2), 3)
        fresh = build(FailureMode.CRASH, 3, 1, 3)
        phi = exists(1)
        with kernels.use_kernel(kernel):
            for formula in (
                Knows(0, phi),
                Everyone(NONFAULTY, phi),
                ContinualCommon(NONFAULTY, phi),
            ):
                assert formula.evaluate(extended) == formula.evaluate(fresh)

    def test_evaluation_caches_are_isolated(self):
        from repro.knowledge.formulas import Knows, exists

        base = build(FailureMode.CRASH, 3, 1, 2)
        Knows(0, exists(1)).evaluate(base)
        assert base._formula_cache
        cached_before = dict(base._formula_cache)
        extended = extend(base, 3)
        # The new horizon starts with cold caches; the base keeps its own.
        assert extended._formula_cache == {}
        assert base._formula_cache == cached_before
        Knows(0, exists(1)).evaluate(extended)
        assert base._formula_cache == cached_before


class TestByteParity:
    def test_json_payload_byte_identical(self, tmp_path):
        extended = extend(build(FailureMode.CRASH, 3, 1, 2), 3)
        fresh = build(FailureMode.CRASH, 3, 1, 3)
        a, b = str(tmp_path / "a.json.gz"), str(tmp_path / "b.json.gz")
        dump_system(extended, a)
        dump_system(fresh, b)
        # gzip headers embed an mtime; the payloads must match bytewise.
        with gzip.open(a, "rb") as fa, gzip.open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_pickle_sidecar_byte_identical(self, tmp_path):
        extended = extend(build(FailureMode.CRASH, 3, 1, 2), 3)
        fresh = build(FailureMode.CRASH, 3, 1, 3)
        a, b = str(tmp_path / "a.pickle"), str(tmp_path / "b.pickle")
        dump_system_pickle(extended, a)
        dump_system_pickle(fresh, b)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()


class TestProviderExtend:
    def test_extend_from_cached_base_identical_to_fresh(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 2)
        extended = provider.extend(FailureMode.CRASH, 3, 1, 3)
        fresh = SystemProvider(disk_cache=False).get(
            FailureMode.CRASH, 3, 1, 3
        )
        assert_systems_identical(extended, fresh)

    def test_target_served_from_memory(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 2)
        first = provider.extend(FailureMode.CRASH, 3, 1, 3)
        hits = provider.cache_info()["hits"]
        assert provider.extend(FailureMode.CRASH, 3, 1, 3) is first
        assert provider.cache_info()["hits"] == hits + 1

    def test_target_written_to_disk(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 2)
        provider.extend(FailureMode.CRASH, 3, 1, 3)
        assert provider.has_current_cell(FailureMode.CRASH, 3, 1, 3)

    def test_intermediate_horizons_remembered(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 1)
        provider.extend(FailureMode.CRASH, 3, 1, 3)
        keys = provider.cache_info()["keys"]
        assert ("crash", 3, 1, 2) in keys
        assert ("crash", 3, 1, 3) in keys
        # only the target cell goes to disk; intermediates stay in memory
        assert provider.has_current_cell(FailureMode.CRASH, 3, 1, 3)
        assert not provider.has_current_cell(FailureMode.CRASH, 3, 1, 2)

    def test_extend_from_disk_base(self, tmp_path):
        SystemProvider(cache_dir=str(tmp_path)).get(
            FailureMode.CRASH, 3, 1, 2
        )
        cold = SystemProvider(cache_dir=str(tmp_path))
        extended = cold.extend(FailureMode.CRASH, 3, 1, 3)
        assert cold.cache_info()["disk_hits"] == 1
        fresh = SystemProvider(disk_cache=False).get(
            FailureMode.CRASH, 3, 1, 3
        )
        assert_systems_identical(extended, fresh)

    def test_no_base_falls_back_to_get(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        system = provider.extend(FailureMode.CRASH, 3, 1, 2)
        assert system.horizon == 2
        fresh = SystemProvider(disk_cache=False).get(
            FailureMode.CRASH, 3, 1, 2
        )
        assert_systems_identical(system, fresh)


class TestChunkedExtendPoints:
    def _built_index(self, system):
        index = ChunkedIndex(system)
        index._ensure_groups()
        return index

    def test_preseeded_groups_identical_to_fresh(self):
        base = build(FailureMode.CRASH, 3, 1, 2)
        base._chunked_index = self._built_index(base)
        extended = extend(base, 3)
        seeded = extended._chunked_index
        assert seeded is not None
        assert seeded._groups_built
        fresh = self._built_index(build(FailureMode.CRASH, 3, 1, 3))
        assert seeded.group_views == fresh.group_views
        for mine, theirs in zip(seeded._starts, fresh._starts):
            assert list(mine) == list(theirs)

    def test_laziness_preserved_when_base_groups_unbuilt(self):
        base = build(FailureMode.CRASH, 3, 1, 2)
        base._chunked_index = ChunkedIndex(base)
        extended = extend(base, 3)
        assert extended._chunked_index is not None
        assert not extended._chunked_index._groups_built

    def test_no_index_carried_when_base_has_none(self):
        base = build(FailureMode.CRASH, 3, 1, 2)
        assert extend(base, 3)._chunked_index is None

    def test_fresh_limbs_cover_exactly_the_new_round(self):
        base = build(FailureMode.CRASH, 3, 1, 2)
        base._chunked_index = ChunkedIndex(base)
        extended = extend(base, 3)
        index = extended._chunked_index
        width = extended.horizon + 1
        expected = sorted(
            {
                (run * width + extended.horizon) >> 6
                for run in range(len(extended.runs))
            }
        )
        assert index.fresh_limbs == expected

    def test_horizon_mismatch_rejected(self):
        base = build(FailureMode.CRASH, 3, 1, 1)
        index = ChunkedIndex(base)
        with pytest.raises(ConfigurationError):
            index.extend_points(build(FailureMode.CRASH, 3, 1, 3))


class TestStreamingMonitor:
    def _monitor(self, config_bits, pattern, tmp_path, **kwargs):
        from repro.sim.monitor import StreamingMonitor

        provider = SystemProvider(cache_dir=str(tmp_path / "cache"))
        return StreamingMonitor(
            FailureMode.CRASH,
            3,
            1,
            InitialConfiguration(config_bits),
            pattern,
            provider=provider,
            **kwargs,
        )

    def test_known_verdicts_all_nonfaulty_know(self, tmp_path):
        monitor = self._monitor(
            [0, 1, 1],
            FailurePattern({0: CrashBehavior(1, frozenset())}),
            tmp_path,
        )
        for record in monitor.run(2):
            assert record["verdicts"]["knows"] == [True, True, True]
            assert record["verdicts"]["everyone"] is True
            assert record["verdicts"]["continual_common"] is False

    def test_absent_value_never_known(self, tmp_path):
        monitor = self._monitor([0, 0, 0], NO_FAILURES, tmp_path)
        record = monitor.advance()
        assert record["verdicts"]["knows"] == [False, False, False]
        assert record["verdicts"]["everyone"] is False
        assert record["verdicts"]["continual_common"] is False

    def test_rounds_advance_the_horizon(self, tmp_path):
        monitor = self._monitor([0, 1, 1], NO_FAILURES, tmp_path)
        records = monitor.run(3)
        assert [record["round"] for record in records] == [1, 2, 3]
        assert monitor.round == 3
        assert len(monitor.history) == 3

    def test_journal_events_emitted_and_valid(self, tmp_path):
        from repro.obs.journal import (
            TelemetryJournal,
            read_journal,
            validate_journal,
        )

        path = str(tmp_path / "monitor.jsonl")
        journal = TelemetryJournal(path, batch="test", experiment="monitor")
        monitor = self._monitor(
            [0, 1, 1], NO_FAILURES, tmp_path, journal=journal
        )
        monitor.run(2)
        journal.close()
        assert validate_journal(path) == []
        events = [record["event"] for record in read_journal(path)]
        assert events.count("monitor_round") == 2

    def test_config_size_mismatch_rejected(self, tmp_path):
        from repro.sim.monitor import StreamingMonitor

        with pytest.raises(ConfigurationError):
            StreamingMonitor(
                FailureMode.CRASH,
                3,
                1,
                InitialConfiguration([0, 1]),
                NO_FAILURES,
            )

    def test_wrong_mode_behavior_rejected(self, tmp_path):
        from repro.sim.monitor import StreamingMonitor

        with pytest.raises(ConfigurationError):
            StreamingMonitor(
                FailureMode.CRASH,
                3,
                1,
                InitialConfiguration([0, 1, 1]),
                FailurePattern({0: OmissionBehavior([(1, {1})])}),
            )


class TestCanonicalizePattern:
    def test_crash_delivering_to_all_becomes_next_round_clean_crash(self):
        from repro.sim.monitor import canonicalize_pattern

        pattern = FailurePattern({0: CrashBehavior(1, frozenset([1, 2]))})
        canonical = canonicalize_pattern(pattern, 3)
        assert canonical == FailurePattern(
            {0: CrashBehavior(2, frozenset())}
        )

    def test_self_delivery_stripped(self):
        from repro.sim.monitor import canonicalize_pattern

        pattern = FailurePattern({0: CrashBehavior(1, frozenset([0, 1]))})
        canonical = canonicalize_pattern(pattern, 3)
        assert canonical == FailurePattern(
            {0: CrashBehavior(1, frozenset([1]))}
        )

    def test_self_omissions_stripped(self):
        from repro.sim.monitor import canonicalize_pattern

        pattern = FailurePattern({0: OmissionBehavior([(1, {0, 1})])})
        canonical = canonicalize_pattern(pattern, 3)
        assert canonical == FailurePattern({0: OmissionBehavior([(1, {1})])})
