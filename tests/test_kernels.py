"""Differential tests for the three evaluation kernels.

The bitset kernel packs every :class:`TruthAssignment` into one integer and
is the default; the chunked kernel packs it into a fixed-width array of
64-bit limbs (the layout huge systems are upgraded to); the list-of-lists
reference kernel is the executable specification.  These tests pin each
kernel in turn and assert all three produce identical valuations — over the
boolean/temporal algebra, over randomized formula trees on both failure
modes, over every formula in the E4/E5/E21 explain catalogs, and over all
21 experiments end-to-end at reduced sizes.  They also pin the selection machinery: the
auto-upgrade at ``BITSET_POINT_LIMIT``, override provenance in error
messages, the ``kernel_selected_*`` counters, and cache isolation when
kernels switch mid-process.
"""

import random
import re

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.knowledge import (
    NONFAULTY,
    AllStarted,
    Always,
    And,
    Believes,
    Common,
    ContinualCommon,
    Everyone,
    EventualCommon,
    Eventually,
    Exists,
    Implies,
    InitialValueIs,
    IsNonfaulty,
    Knows,
    Not,
    Or,
)
from repro.knowledge.explain import EXPLAIN_CATALOG, catalog_system
from repro.model import kernels
from repro.model.chunked import (
    ChunkedAssignment,
    backend_name,
    force_python_backend,
)
from repro.model.system import BitsetAssignment, TruthAssignment

PACKED_TYPES = {
    kernels.BITSET: BitsetAssignment,
    kernels.CHUNKED: ChunkedAssignment,
}


def _rows(system, rng):
    width = system.horizon + 1
    return [
        [rng.random() < 0.5 for _ in range(width)]
        for _ in range(len(system.runs))
    ]


class TestKernelSelection:
    def test_default_is_bitset(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        assert kernels.active_kernel() == kernels.BITSET

    @pytest.mark.parametrize("name", kernels.KERNELS)
    def test_env_selects_each_kernel(self, monkeypatch, name):
        monkeypatch.setenv(kernels.KERNEL_ENV, name)
        assert kernels.active_kernel() == name

    @pytest.mark.parametrize("raw", [" BITSET ", "Bitset", "bitset\t"])
    def test_env_is_normalized(self, monkeypatch, raw):
        monkeypatch.setenv(kernels.KERNEL_ENV, raw)
        assert kernels.active_kernel() == kernels.BITSET

    @pytest.mark.parametrize("raw", ["", "   "])
    def test_blank_env_means_default(self, monkeypatch, raw):
        monkeypatch.setenv(kernels.KERNEL_ENV, raw)
        assert kernels.active_kernel() == kernels.DEFAULT_KERNEL

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "numpy")
        with pytest.raises(ConfigurationError) as excinfo:
            kernels.active_kernel()
        message = str(excinfo.value)
        assert kernels.KERNEL_ENV in message
        assert "numpy" in message

    def test_use_kernel_overrides_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "reference")
        with kernels.use_kernel("bitset"):
            assert kernels.active_kernel() == kernels.BITSET
        assert kernels.active_kernel() == kernels.REFERENCE

    def test_use_kernel_nests(self):
        with kernels.use_kernel("reference"):
            with kernels.use_kernel("chunked"):
                assert kernels.active_kernel() == kernels.CHUNKED
            assert kernels.active_kernel() == kernels.REFERENCE

    def test_use_kernel_rejects_unknown_before_entering(self, monkeypatch):
        """A bad name fails on entry and leaves no override behind."""
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        context = kernels.use_kernel("simd")
        with pytest.raises(ConfigurationError):
            context.__enter__()
        assert kernels.active_kernel() == kernels.DEFAULT_KERNEL

    def test_error_carries_override_provenance(self, monkeypatch):
        """The rejection message shows the whole selection stack."""
        monkeypatch.setenv(kernels.KERNEL_ENV, "reference")
        with kernels.use_kernel("bitset"):
            with kernels.use_kernel("chunked"):
                with pytest.raises(ConfigurationError) as excinfo:
                    with kernels.use_kernel("gpu"):
                        pass  # pragma: no cover
        message = str(excinfo.value)
        assert "gpu" in message
        assert "use_kernel('bitset')" in message
        assert "use_kernel('chunked')" in message
        assert f"{kernels.KERNEL_ENV}='reference'" in message
        assert f"default {kernels.DEFAULT_KERNEL!r}" in message

    def test_provenance_without_overrides(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        provenance = kernels.selection_provenance()
        assert f"default {kernels.DEFAULT_KERNEL!r}" in provenance
        assert f"{kernels.KERNEL_ENV} unset" in provenance
        assert "use_kernel" not in provenance

    def test_factories_build_the_selected_representation(self, crash3):
        with kernels.use_kernel("bitset"):
            assert isinstance(
                TruthAssignment.constant(crash3, True), BitsetAssignment
            )
        with kernels.use_kernel("chunked"):
            assert isinstance(
                TruthAssignment.constant(crash3, True), ChunkedAssignment
            )
        with kernels.use_kernel("reference"):
            built = TruthAssignment.constant(crash3, True)
            assert type(built) is TruthAssignment


class TestKernelUpgrade:
    """Above BITSET_POINT_LIMIT the bitset kernel upgrades to chunked.

    Single-integer mask ops cost O(mask length) per operation, so on huge
    systems (the 385k-run Proposition 6.3 cell) the bitset layout loses
    its constant factors; ``System.effective_kernel`` upgrades such
    systems to the limb-array kernel, which keeps packed semantics.  The
    old silent fallback to the reference layout is gone.
    """

    def test_oversized_system_upgrades_to_chunked(self, crash3, monkeypatch):
        monkeypatch.setattr(kernels, "BITSET_POINT_LIMIT", 0)
        monkeypatch.setattr(crash3, "_noted_kernels", set())
        crash3.clear_caches()
        with kernels.use_kernel("bitset"):
            assert crash3.effective_kernel() == kernels.CHUNKED
            built = TruthAssignment.constant(crash3, True)
            assert isinstance(built, ChunkedAssignment)
            evaluated = Knows(0, Exists(1)).evaluate(crash3)
            assert isinstance(evaluated, ChunkedAssignment)
        crash3.clear_caches()

    def test_upgraded_verdicts_match_bitset(self, crash3, monkeypatch):
        formula = Believes(1, Common(NONFAULTY, Exists(1)), NONFAULTY)
        with kernels.use_kernel("bitset"):
            crash3.clear_caches()
            packed = formula.evaluate(crash3)
            assert isinstance(packed, BitsetAssignment)
            monkeypatch.setattr(kernels, "BITSET_POINT_LIMIT", 0)
            monkeypatch.setattr(crash3, "_noted_kernels", set())
            crash3.clear_caches()
            upgraded = formula.evaluate(crash3)
            assert isinstance(upgraded, ChunkedAssignment)
        assert upgraded.to_rows() == packed.to_rows()
        crash3.clear_caches()

    def test_small_systems_stay_packed(self, crash3):
        with kernels.use_kernel("bitset"):
            assert crash3.effective_kernel() == kernels.BITSET

    def test_limit_boundary_is_exclusive(self, crash3, monkeypatch):
        """Exactly at the limit stays bitset; one point over upgrades."""
        monkeypatch.setattr(crash3, "_noted_kernels", set())
        with kernels.use_kernel("bitset"):
            monkeypatch.setattr(
                kernels, "BITSET_POINT_LIMIT", crash3.num_points()
            )
            assert crash3.effective_kernel() == kernels.BITSET
            monkeypatch.setattr(
                kernels, "BITSET_POINT_LIMIT", crash3.num_points() - 1
            )
            assert crash3.effective_kernel() == kernels.CHUNKED
        crash3.clear_caches()

    @pytest.mark.parametrize("explicit", ["chunked", "reference"])
    def test_explicit_selection_honoured_at_any_size(
        self, crash3, monkeypatch, explicit
    ):
        monkeypatch.setattr(kernels, "BITSET_POINT_LIMIT", 0)
        monkeypatch.setattr(crash3, "_noted_kernels", set())
        with kernels.use_kernel(explicit):
            assert crash3.effective_kernel() == explicit

    def test_upgrade_counted_and_logged(self, crash3, monkeypatch):
        monkeypatch.setattr(kernels, "BITSET_POINT_LIMIT", 0)
        monkeypatch.setattr(crash3, "_noted_kernels", set())
        before = obs.snapshot()
        with kernels.use_kernel("bitset"):
            crash3.effective_kernel()
            crash3.effective_kernel()  # noted once per system, not twice
        delta = obs.delta_since(before)["counters"]
        assert delta.get("kernel_selected_chunked") == 1
        entries = [
            entry
            for entry in kernels.kernel_selections()
            if entry["system"] == crash3.describe() and entry["upgraded"]
        ]
        assert entries
        assert entries[-1]["requested"] == kernels.BITSET
        assert entries[-1]["selected"] == kernels.CHUNKED
        assert entries[-1]["points"] == crash3.num_points()


class TestCacheIsolation:
    """Evaluation caches are keyed by the effective kernel, so switching
    kernels mid-process via nested ``use_kernel`` never serves a value in
    the wrong representation."""

    def test_nested_switches_keep_representations_apart(self, crash3):
        formula = Believes(0, Eventually(Exists(1)), NONFAULTY)
        crash3.clear_caches()
        with kernels.use_kernel("bitset"):
            packed = formula.evaluate(crash3)
            assert isinstance(packed, BitsetAssignment)
            with kernels.use_kernel("chunked"):
                chunked = formula.evaluate(crash3)
                assert isinstance(chunked, ChunkedAssignment)
                with kernels.use_kernel("reference"):
                    reference = formula.evaluate(crash3)
                    assert type(reference) is TruthAssignment
            # Back under bitset the cached value is still packed.
            again = formula.evaluate(crash3)
            assert isinstance(again, BitsetAssignment)
        assert packed.to_rows() == chunked.to_rows() == reference.to_rows()
        crash3.clear_caches()

    def test_upgrade_does_not_reuse_bitset_cache(self, crash3, monkeypatch):
        formula = Knows(1, AllStarted(1))
        crash3.clear_caches()
        with kernels.use_kernel("bitset"):
            packed = formula.evaluate(crash3)
            monkeypatch.setattr(kernels, "BITSET_POINT_LIMIT", 0)
            monkeypatch.setattr(crash3, "_noted_kernels", set())
            upgraded = formula.evaluate(crash3)
        assert isinstance(packed, BitsetAssignment)
        assert isinstance(upgraded, ChunkedAssignment)
        assert packed.to_rows() == upgraded.to_rows()
        crash3.clear_caches()


class TestPackedAlgebra:
    """The packed operations agree with plain row-wise boolean algebra."""

    @pytest.mark.parametrize("kernel", ["bitset", "chunked"])
    @pytest.mark.parametrize("seed", range(5))
    def test_binary_and_unary_ops_match(self, crash3, kernel, seed):
        rng = random.Random(seed)
        rows_a = _rows(crash3, rng)
        rows_b = _rows(crash3, rng)
        with kernels.use_kernel("reference"):
            ref_a = TruthAssignment.from_rows(crash3, rows_a)
            ref_b = TruthAssignment.from_rows(crash3, rows_b)
        with kernels.use_kernel(kernel):
            packed_a = TruthAssignment.from_rows(crash3, rows_a)
            packed_b = TruthAssignment.from_rows(crash3, rows_b)
        assert isinstance(packed_a, PACKED_TYPES[kernel])
        assert (
            packed_a.conjoin(packed_b).to_rows()
            == ref_a.conjoin(ref_b).to_rows()
        )
        assert (
            packed_a.disjoin(packed_b).to_rows()
            == ref_a.disjoin(ref_b).to_rows()
        )
        assert (
            packed_a.implies(packed_b).to_rows()
            == ref_a.implies(ref_b).to_rows()
        )
        assert packed_a.negate().to_rows() == ref_a.negate().to_rows()
        assert packed_a.count_true() == ref_a.count_true()
        assert packed_a.is_valid() == ref_a.is_valid()

    @pytest.mark.parametrize("kernel", ["bitset", "chunked"])
    @pytest.mark.parametrize("seed", range(3))
    def test_point_access_and_equality(self, crash3, kernel, seed):
        rng = random.Random(100 + seed)
        rows = _rows(crash3, rng)
        with kernels.use_kernel("reference"):
            reference = TruthAssignment.from_rows(crash3, rows)
        with kernels.use_kernel(kernel):
            packed = TruthAssignment.from_rows(crash3, rows)
        for run_index in range(0, len(crash3.runs), 17):
            for time in range(crash3.horizon + 1):
                assert packed.at(run_index, time) == reference.at(
                    run_index, time
                )
        # Equality crosses representations, both ways.
        assert packed == reference
        assert reference == packed
        assert packed.to_rows() == rows

    def test_mixed_representation_operands(self, crash3):
        rng = random.Random(7)
        rows_a = _rows(crash3, rng)
        rows_b = _rows(crash3, rng)
        with kernels.use_kernel("reference"):
            reference = TruthAssignment.from_rows(crash3, rows_a)
        with kernels.use_kernel("bitset"):
            bitset = TruthAssignment.from_rows(crash3, rows_b)
            expected = TruthAssignment.from_rows(crash3, rows_a)
        with kernels.use_kernel("chunked"):
            chunked = TruthAssignment.from_rows(crash3, rows_b)
        assert bitset.conjoin(reference).to_rows() == bitset.conjoin(
            expected
        ).to_rows()
        # Chunked accepts reference and bitset operands alike.
        assert (
            chunked.conjoin(reference).to_rows()
            == bitset.conjoin(expected).to_rows()
        )
        assert chunked.disjoin(bitset).to_rows() == bitset.to_rows()
        assert chunked == bitset


class TestChunkedBackends:
    """The numpy and pure-Python limb backends are interchangeable."""

    def test_python_backend_matches_active(self, crash3):
        rng = random.Random(11)
        rows_a = _rows(crash3, rng)
        rows_b = _rows(crash3, rng)
        with kernels.use_kernel("chunked"):
            active_a = TruthAssignment.from_rows(crash3, rows_a)
            with force_python_backend():
                assert backend_name() == "python"
                py_a = TruthAssignment.from_rows(crash3, rows_a)
                py_b = TruthAssignment.from_rows(crash3, rows_b)
                assert isinstance(py_a.limbs, list)
                assert (
                    py_a.conjoin(py_b).to_rows()
                    == active_a.conjoin(py_b).to_rows()
                )
                assert py_a.negate().to_rows() == active_a.negate().to_rows()
                assert py_a.count_true() == active_a.count_true()
                assert py_a == active_a

    def test_python_backend_full_evaluation(self):
        """A fixpoint formula end-to-end on a freshly built python-backed
        system matches the reference kernel."""
        from repro.model import ExhaustiveCrashAdversary, build_system

        formula = ContinualCommon(NONFAULTY, Exists(1), force_fixpoint=True)
        with force_python_backend():
            system = build_system(ExhaustiveCrashAdversary(3, 1, 2))
            with kernels.use_kernel("chunked"):
                chunked = formula.evaluate(system)
                assert isinstance(chunked, ChunkedAssignment)
            with kernels.use_kernel("reference"):
                reference = formula.evaluate(system)
        assert chunked.to_rows() == reference.to_rows()


def _random_formula(rng, n, depth=2):
    """A random knowledge/temporal formula tree over small atoms."""
    atoms = [
        lambda: Exists(rng.choice((0, 1))),
        lambda: InitialValueIs(rng.randrange(n), rng.choice((0, 1))),
        lambda: IsNonfaulty(rng.randrange(n)),
        lambda: AllStarted(rng.choice((0, 1))),
    ]
    if depth == 0:
        return rng.choice(atoms)()
    sub = _random_formula(rng, n, depth - 1)
    combinators = [
        lambda: Not(sub),
        lambda: And([sub, _random_formula(rng, n, depth - 1)]),
        lambda: Or([sub, _random_formula(rng, n, depth - 1)]),
        lambda: Implies(sub, _random_formula(rng, n, depth - 1)),
        lambda: Knows(rng.randrange(n), sub),
        lambda: Believes(rng.randrange(n), sub, NONFAULTY),
        lambda: Everyone(NONFAULTY, sub),
        lambda: Always(sub),
        lambda: Eventually(sub),
        lambda: Common(NONFAULTY, sub),
        lambda: ContinualCommon(NONFAULTY, sub, force_fixpoint=True),
        lambda: EventualCommon(NONFAULTY, sub),
    ]
    return rng.choice(combinators)()


def _differential(system, formula):
    with kernels.use_kernel("reference"):
        reference = formula.evaluate(system)
    with kernels.use_kernel("bitset"):
        bitset = formula.evaluate(system)
    with kernels.use_kernel("chunked"):
        chunked = formula.evaluate(system)
    assert isinstance(bitset, BitsetAssignment)
    assert isinstance(chunked, ChunkedAssignment)
    assert type(reference) is TruthAssignment
    assert bitset.to_rows() == reference.to_rows()
    assert chunked.to_rows() == reference.to_rows()


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_crash_mode(self, crash3, seed):
        rng = random.Random(seed)
        _differential(crash3, _random_formula(rng, crash3.n))

    @pytest.mark.parametrize("seed", range(12))
    def test_omission_mode(self, omission3, seed):
        rng = random.Random(1000 + seed)
        _differential(omission3, _random_formula(rng, omission3.n))


class TestPlannerDifferential:
    """The fused :class:`EvalPlan` vs formula-at-a-time evaluation.

    Randomized formula portfolios, all three kernels: routing a portfolio
    through the planner (shared subterms, batched sweeps, lockstep
    fixpoints on the matrix backend) must leave every formula with
    exactly the rows the solo ``evaluate`` path produces.
    """

    @pytest.mark.parametrize("kernel", ["reference", "bitset", "chunked"])
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_portfolio_crash(self, crash3, kernel, seed):
        self._check(crash3, kernel, random.Random(7000 + seed))

    @pytest.mark.parametrize("kernel", ["reference", "bitset", "chunked"])
    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_portfolio_omission(self, omission3, kernel, seed):
        self._check(omission3, kernel, random.Random(8000 + seed))

    @staticmethod
    def _check(system, kernel, rng):
        from repro.knowledge.planner import evaluate_formulas

        formulas = [_random_formula(rng, system.n) for _ in range(4)]
        with kernels.use_kernel(kernel):
            system.clear_caches()
            solo = [formula.evaluate(system) for formula in formulas]
            system.clear_caches()
            fused = evaluate_formulas(system, formulas)
        for formula, lone, planned in zip(formulas, solo, fused):
            assert planned.to_rows() == lone.to_rows(), repr(formula)


class TestBlockComponentSeeding:
    """``planner.seed_block_components``: limb-block Corollary 3.3 labels.

    The seeded labelling must be partition-identical to the monolithic
    same-state scan (label *values* may differ — both sides pick
    arbitrary representatives — so the comparison canonicalizes to the
    induced partition, with the ``-1`` no-occurrence sentinel matched
    run-for-run), only canonical provider cells are eligible, and a
    present cache entry makes the hook a no-op.
    """

    @staticmethod
    def _partition(labels):
        groups = {}
        unlabelled = set()
        for run, label in enumerate(labels):
            if label == -1:
                unlabelled.add(run)
            else:
                groups.setdefault(label, set()).add(run)
        return set(map(frozenset, groups.values())), unlabelled

    @pytest.mark.parametrize("builder", ["crash", "omission"])
    def test_nonfaulty_partition_identical_to_monolithic(self, builder):
        from repro.knowledge.nonrigid import NONFAULTY
        from repro.knowledge.planner import seed_block_components
        from repro.knowledge.semantics import _compute_components
        from repro.model.builder import crash_system, omission_system

        system = (crash_system if builder == "crash" else omission_system)(
            3, 1, 3
        )
        system.clear_caches()
        assert seed_block_components(system, NONFAULTY)
        seeded = system._components_cache[NONFAULTY.cache_key()]
        monolithic = _compute_components(system, NONFAULTY)
        assert self._partition(seeded) == self._partition(monolithic)

    def test_nonfaulty_and_deciding_partition_identical(self):
        from repro.core.construction import two_step_optimization
        from repro.core.decision_sets import empty_pair
        from repro.knowledge.nonrigid import nonfaulty_and_zeros
        from repro.knowledge.planner import seed_block_components
        from repro.knowledge.semantics import _compute_components
        from repro.model.builder import crash_system

        system = crash_system(3, 1, 3)
        pair = two_step_optimization(system, empty_pair())[0]
        nonrigid = nonfaulty_and_zeros(pair)
        system._components_cache.pop(nonrigid.cache_key(), None)
        assert seed_block_components(system, nonrigid)
        seeded = system._components_cache[nonrigid.cache_key()]
        monolithic = _compute_components(system, nonrigid)
        assert self._partition(seeded) == self._partition(monolithic)

    def test_restricted_system_is_ineligible(self):
        from repro.knowledge.nonrigid import NONFAULTY
        from repro.knowledge.planner import seed_block_components
        from repro.model.adversary import ExplicitAdversary
        from repro.model.failures import (
            FailureMode,
            FailurePattern,
            OmissionBehavior,
        )
        from repro.model.system import build_system

        # Same mode/n/t/horizon stamp as a canonical cell, but a subset
        # of its runs: seeding it from the provider's arrays would be
        # wrong, so the peek-identity gate must reject it.
        pattern = FailurePattern({0: OmissionBehavior({1: [1]})})
        system = build_system(
            ExplicitAdversary(3, 1, 2, [pattern], mode=FailureMode.OMISSION)
        )
        assert not seed_block_components(system, NONFAULTY)
        assert NONFAULTY.cache_key() not in system._components_cache

    def test_present_cache_entry_makes_hook_a_noop(self):
        from repro.knowledge.nonrigid import NONFAULTY
        from repro.knowledge.planner import seed_block_components
        from repro.model.builder import crash_system

        system = crash_system(3, 1, 3)
        system.clear_caches()
        assert seed_block_components(system, NONFAULTY)
        assert not seed_block_components(system, NONFAULTY)

    def test_continual_common_agrees_with_unseeded_evaluation(self):
        from repro.knowledge.formulas import ContinualCommon, Exists
        from repro.knowledge.nonrigid import NONFAULTY
        from repro.knowledge.planner import seed_block_components
        from repro.model.builder import omission_system

        system = omission_system(3, 1, 3)
        formula = ContinualCommon(NONFAULTY, Exists(1))
        system.clear_caches()
        unseeded = formula.evaluate(system).to_rows()
        system.clear_caches()
        assert seed_block_components(system, NONFAULTY)
        assert formula.evaluate(system).to_rows() == unseeded


class TestNativeBackendParity:
    """``REPRO_CHUNKED_BACKEND=native``: identical rows, silent fallback."""

    @staticmethod
    def _formulas():
        from repro.knowledge.formulas import (
            Common,
            ContinualCommon,
            EventualCommon,
            Exists,
        )
        from repro.knowledge.nonrigid import NONFAULTY

        continual = ContinualCommon(NONFAULTY, Exists(1))
        continual.force_fixpoint = True
        return [
            Common(NONFAULTY, Exists(1)),
            EventualCommon(NONFAULTY, Exists(0)),
            continual,
        ]

    def test_fixpoints_match_numpy_backend(self, omission3, monkeypatch):
        from repro.model import native

        if not native.available():
            pytest.skip("native backend unavailable (no C compiler)")
        with kernels.use_kernel("chunked"):
            monkeypatch.delenv("REPRO_CHUNKED_BACKEND", raising=False)
            omission3.clear_caches()
            baseline = [
                formula.evaluate(omission3).to_rows()
                for formula in self._formulas()
            ]
            monkeypatch.setenv("REPRO_CHUNKED_BACKEND", "native")
            omission3.clear_caches()
            native_rows = [
                formula.evaluate(omission3).to_rows()
                for formula in self._formulas()
            ]
        omission3.clear_caches()
        assert native_rows == baseline

    def test_request_degrades_silently_without_library(
        self, crash3, monkeypatch
    ):
        from repro.model import native

        monkeypatch.delenv("REPRO_CHUNKED_BACKEND", raising=False)
        with kernels.use_kernel("chunked"):
            crash3.clear_caches()
            baseline = [
                formula.evaluate(crash3).to_rows()
                for formula in self._formulas()
            ]
            # Simulate "no compiler": the memoized load failed.
            monkeypatch.setattr(native, "_attempted", True)
            monkeypatch.setattr(native, "_loaded", None)
            monkeypatch.setenv("REPRO_CHUNKED_BACKEND", "native")
            crash3.clear_caches()
            degraded = [
                formula.evaluate(crash3).to_rows()
                for formula in self._formulas()
            ]
        crash3.clear_caches()
        assert degraded == baseline


class TestShardedDifferential:
    """Limb-block-sharded batches vs the monolithic path (E9/E14/E20).

    The deep parity drills (per-kernel E9, fault injection, resume) live
    in ``tests/test_exec.py``; this is the kernel-suite view of the same
    guarantee at the reduced experiment sizes used above.
    """

    NONPARITY_KEYS = {"instrumentation", "trace", "batch", "kernel"}

    @pytest.fixture(autouse=True)
    def _fresh_worker_context(self):
        from repro.exec.shard import clear_worker_context

        yield
        clear_worker_context()

    @pytest.mark.parametrize("experiment_id", ["E9", "E14", "E20"])
    def test_sharded_matches_monolithic(
        self, experiment_id, tmp_path, monkeypatch
    ):
        from repro.exec import plan_for, run_batch
        from repro.experiments.registry import run_experiment

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        params = dict(_reduced_params(experiment_id))
        if experiment_id == "E20":
            params["seed"] = 5
        mono = run_experiment(experiment_id, **params)
        sharded = run_batch(
            plan_for(experiment_id, **params),
            workers=2,
            checkpoint_root=str(tmp_path / "exec"),
        )
        assert sharded.ok == mono.ok
        assert sharded.notes == mono.notes
        if experiment_id == "E14":
            # E14's table embeds measured wall times; compare structure.
            assert re.sub(r"\d+\.\d+", "#", sharded.table) == re.sub(
                r"\d+\.\d+", "#", mono.table
            )
            return
        assert sharded.table == mono.table
        for key in mono.data.keys() | sharded.data.keys():
            if key in self.NONPARITY_KEYS:
                continue
            assert sharded.data[key] == mono.data[key], key


class TestExplainCatalogDifferential:
    """Every formula the explain CLI exposes, identical under all kernels."""

    @pytest.mark.parametrize(
        "experiment_id,key",
        [
            (experiment_id, key)
            for experiment_id, entries in sorted(EXPLAIN_CATALOG.items())
            for key in sorted(entries)
        ],
    )
    def test_catalog_formula_matches(self, experiment_id, key):
        entry = EXPLAIN_CATALOG[experiment_id][key]
        system = catalog_system(entry)
        with kernels.use_kernel("reference"):
            reference = entry.build(system).evaluate(system)
        with kernels.use_kernel("bitset"):
            bitset = entry.build(system).evaluate(system)
        with kernels.use_kernel("chunked"):
            chunked = entry.build(system).evaluate(system)
        assert bitset.to_rows() == reference.to_rows()
        assert chunked.to_rows() == reference.to_rows()


def _reduced_params(experiment_id):
    """Small-size parameters for every experiment (mirrors the light runs
    in ``test_cli_and_experiments.py``)."""
    if experiment_id == "E9":
        return {"n": 3, "t": 1, "horizon": 2}
    if experiment_id == "E14":
        from repro.model.failures import FailureMode

        return {
            "cells": (
                (FailureMode.CRASH, 3, 1, 3),
                (FailureMode.OMISSION, 3, 1, 3),
            )
        }
    if experiment_id == "E17":
        return {"n": 3, "t": 1, "domain_sizes": (2, 3)}
    if experiment_id == "E19":
        return {"samples_n7": 20}
    if experiment_id == "E20":
        return {"cells": ((4, 1), (4, 2)), "samples": 120}
    return {"n": 3, "t": 1}


class TestAllExperimentsDifferential:
    """Every experiment end-to-end under each kernel (tier-1 smoke).

    Byte-identical verdict tables and data across bitset, chunked and
    reference, at the reduced sizes the light experiment tests use.
    """

    #: data keys that legitimately differ between kernels.
    NONPARITY_KEYS = {"instrumentation", "trace", "batch", "kernel"}

    @pytest.mark.parametrize(
        "experiment_id", [f"E{number}" for number in range(1, 22)]
    )
    def test_verdicts_identical_under_all_kernels(self, experiment_id):
        from repro.experiments.registry import run_experiment

        params = _reduced_params(experiment_id)
        payloads = {}
        for kernel in kernels.KERNELS:
            with kernels.use_kernel(kernel):
                result = run_experiment(experiment_id, **params)
            # Proposition 6.3 needs t > 1, so E9's claim legitimately does
            # not reproduce at this reduced size — the kernels must still
            # agree on the (negative) verdict.
            if experiment_id != "E9":
                assert result.ok, result.render()
            table = result.table
            if experiment_id == "E14":
                # E14's table embeds measured wall times; mask the floats
                # so only the structural columns (modes, runs, views) and
                # the verdict are compared.
                table = re.sub(r"\d+\.\d+", "#", table)
            payloads[kernel] = {
                "ok": result.ok,
                "table": table,
                "data": {
                    key: value
                    for key, value in result.data.items()
                    if key not in self.NONPARITY_KEYS
                },
            }
        assert payloads[kernels.BITSET] == payloads[kernels.CHUNKED]
        assert payloads[kernels.CHUNKED] == payloads[kernels.REFERENCE]
