"""Differential tests for the bitset evaluation kernel.

The bitset kernel packs every :class:`TruthAssignment` into one integer and
is the default; the list-of-lists reference kernel is the executable
specification.  These tests pin each kernel in turn and assert the two
produce identical valuations — over the boolean/temporal algebra, over
randomized formula trees on both failure modes, and over every formula in
the E4/E5/E21 explain catalogs.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.knowledge import (
    NONFAULTY,
    AllStarted,
    Always,
    And,
    Believes,
    Common,
    ContinualCommon,
    Everyone,
    EventualCommon,
    Eventually,
    Exists,
    Implies,
    InitialValueIs,
    IsNonfaulty,
    Knows,
    Not,
    Or,
)
from repro.knowledge.explain import EXPLAIN_CATALOG, catalog_system
from repro.model import kernels
from repro.model.system import BitsetAssignment, TruthAssignment


def _rows(system, rng):
    width = system.horizon + 1
    return [
        [rng.random() < 0.5 for _ in range(width)]
        for _ in range(len(system.runs))
    ]


class TestKernelSelection:
    def test_default_is_bitset(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        assert kernels.active_kernel() == kernels.BITSET

    def test_env_selects_reference(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "reference")
        assert kernels.active_kernel() == kernels.REFERENCE

    @pytest.mark.parametrize("raw", [" BITSET ", "Bitset", "bitset\t"])
    def test_env_is_normalized(self, monkeypatch, raw):
        monkeypatch.setenv(kernels.KERNEL_ENV, raw)
        assert kernels.active_kernel() == kernels.BITSET

    @pytest.mark.parametrize("raw", ["", "   "])
    def test_blank_env_means_default(self, monkeypatch, raw):
        monkeypatch.setenv(kernels.KERNEL_ENV, raw)
        assert kernels.active_kernel() == kernels.DEFAULT_KERNEL

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "numpy")
        with pytest.raises(ConfigurationError) as excinfo:
            kernels.active_kernel()
        message = str(excinfo.value)
        assert kernels.KERNEL_ENV in message
        assert "numpy" in message

    def test_use_kernel_overrides_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "reference")
        with kernels.use_kernel("bitset"):
            assert kernels.active_kernel() == kernels.BITSET
        assert kernels.active_kernel() == kernels.REFERENCE

    def test_use_kernel_nests(self):
        with kernels.use_kernel("reference"):
            with kernels.use_kernel("bitset"):
                assert kernels.active_kernel() == kernels.BITSET
            assert kernels.active_kernel() == kernels.REFERENCE

    def test_use_kernel_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            with kernels.use_kernel("simd"):
                pass  # pragma: no cover

    def test_factories_build_the_selected_representation(self, crash3):
        with kernels.use_kernel("bitset"):
            assert isinstance(
                TruthAssignment.constant(crash3, True), BitsetAssignment
            )
        with kernels.use_kernel("reference"):
            built = TruthAssignment.constant(crash3, True)
            assert type(built) is TruthAssignment


class TestLargeSystemFallback:
    """Above BITSET_POINT_LIMIT the bitset kernel falls back to reference.

    Packed-integer ops cost O(mask length) per operation, so on huge
    systems (the 385k-run Proposition 6.3 cell) the bitset layout loses to
    the linear list layout; the factories detect this per system.
    """

    def test_oversized_system_uses_reference_layout(self, crash3, monkeypatch):
        monkeypatch.setattr(kernels, "BITSET_POINT_LIMIT", 0)
        crash3.clear_caches()
        with kernels.use_kernel("bitset"):
            assert not crash3.bitset_active()
            built = TruthAssignment.constant(crash3, True)
            assert type(built) is TruthAssignment
            evaluated = Knows(0, Exists(1)).evaluate(crash3)
            assert not isinstance(evaluated, BitsetAssignment)
        crash3.clear_caches()

    def test_fallback_verdicts_match_bitset(self, crash3, monkeypatch):
        formula = Believes(1, Common(NONFAULTY, Exists(1)), NONFAULTY)
        with kernels.use_kernel("bitset"):
            crash3.clear_caches()
            packed = formula.evaluate(crash3)
            assert isinstance(packed, BitsetAssignment)
            monkeypatch.setattr(kernels, "BITSET_POINT_LIMIT", 0)
            crash3.clear_caches()
            fallback = formula.evaluate(crash3)
            assert not isinstance(fallback, BitsetAssignment)
        assert fallback.to_rows() == packed.to_rows()
        crash3.clear_caches()

    def test_small_systems_stay_packed(self, crash3):
        with kernels.use_kernel("bitset"):
            assert crash3.bitset_active()


class TestBitsetAlgebra:
    """The packed operations agree with plain row-wise boolean algebra."""

    @pytest.mark.parametrize("seed", range(5))
    def test_binary_and_unary_ops_match(self, crash3, seed):
        rng = random.Random(seed)
        rows_a = _rows(crash3, rng)
        rows_b = _rows(crash3, rng)
        with kernels.use_kernel("reference"):
            ref_a = TruthAssignment.from_rows(crash3, rows_a)
            ref_b = TruthAssignment.from_rows(crash3, rows_b)
        with kernels.use_kernel("bitset"):
            bit_a = TruthAssignment.from_rows(crash3, rows_a)
            bit_b = TruthAssignment.from_rows(crash3, rows_b)
        assert bit_a.conjoin(bit_b).to_rows() == ref_a.conjoin(ref_b).to_rows()
        assert bit_a.disjoin(bit_b).to_rows() == ref_a.disjoin(ref_b).to_rows()
        assert bit_a.implies(bit_b).to_rows() == ref_a.implies(ref_b).to_rows()
        assert bit_a.negate().to_rows() == ref_a.negate().to_rows()
        assert bit_a.count_true() == ref_a.count_true()
        assert bit_a.is_valid() == ref_a.is_valid()

    @pytest.mark.parametrize("seed", range(3))
    def test_point_access_and_equality(self, crash3, seed):
        rng = random.Random(100 + seed)
        rows = _rows(crash3, rng)
        with kernels.use_kernel("reference"):
            reference = TruthAssignment.from_rows(crash3, rows)
        with kernels.use_kernel("bitset"):
            bitset = TruthAssignment.from_rows(crash3, rows)
        for run_index in range(0, len(crash3.runs), 17):
            for time in range(crash3.horizon + 1):
                assert bitset.at(run_index, time) == reference.at(
                    run_index, time
                )
        # Equality crosses representations, both ways.
        assert bitset == reference
        assert reference == bitset
        assert bitset.to_rows() == rows

    def test_mixed_representation_operands(self, crash3):
        rng = random.Random(7)
        rows_a = _rows(crash3, rng)
        rows_b = _rows(crash3, rng)
        with kernels.use_kernel("reference"):
            reference = TruthAssignment.from_rows(crash3, rows_a)
        with kernels.use_kernel("bitset"):
            bitset = TruthAssignment.from_rows(crash3, rows_b)
            expected = TruthAssignment.from_rows(crash3, rows_a)
        assert bitset.conjoin(reference).to_rows() == bitset.conjoin(
            expected
        ).to_rows()


def _random_formula(rng, n, depth=2):
    """A random knowledge/temporal formula tree over small atoms."""
    atoms = [
        lambda: Exists(rng.choice((0, 1))),
        lambda: InitialValueIs(rng.randrange(n), rng.choice((0, 1))),
        lambda: IsNonfaulty(rng.randrange(n)),
        lambda: AllStarted(rng.choice((0, 1))),
    ]
    if depth == 0:
        return rng.choice(atoms)()
    sub = _random_formula(rng, n, depth - 1)
    combinators = [
        lambda: Not(sub),
        lambda: And([sub, _random_formula(rng, n, depth - 1)]),
        lambda: Or([sub, _random_formula(rng, n, depth - 1)]),
        lambda: Implies(sub, _random_formula(rng, n, depth - 1)),
        lambda: Knows(rng.randrange(n), sub),
        lambda: Believes(rng.randrange(n), sub, NONFAULTY),
        lambda: Everyone(NONFAULTY, sub),
        lambda: Always(sub),
        lambda: Eventually(sub),
        lambda: Common(NONFAULTY, sub),
        lambda: ContinualCommon(NONFAULTY, sub, force_fixpoint=True),
        lambda: EventualCommon(NONFAULTY, sub),
    ]
    return rng.choice(combinators)()


def _differential(system, formula):
    with kernels.use_kernel("reference"):
        reference = formula.evaluate(system)
    with kernels.use_kernel("bitset"):
        bitset = formula.evaluate(system)
    assert isinstance(bitset, BitsetAssignment)
    assert not isinstance(reference, BitsetAssignment)
    assert bitset.to_rows() == reference.to_rows()


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_crash_mode(self, crash3, seed):
        rng = random.Random(seed)
        _differential(crash3, _random_formula(rng, crash3.n))

    @pytest.mark.parametrize("seed", range(12))
    def test_omission_mode(self, omission3, seed):
        rng = random.Random(1000 + seed)
        _differential(omission3, _random_formula(rng, omission3.n))


class TestExplainCatalogDifferential:
    """Every formula the explain CLI exposes, identical under both kernels."""

    @pytest.mark.parametrize(
        "experiment_id,key",
        [
            (experiment_id, key)
            for experiment_id, entries in sorted(EXPLAIN_CATALOG.items())
            for key in sorted(entries)
        ],
    )
    def test_catalog_formula_matches(self, experiment_id, key):
        entry = EXPLAIN_CATALOG[experiment_id][key]
        system = catalog_system(entry)
        with kernels.use_kernel("reference"):
            reference = entry.build(system).evaluate(system)
        with kernels.use_kernel("bitset"):
            bitset = entry.build(system).evaluate(system)
        assert bitset.to_rows() == reference.to_rows()
