"""Tests for repro.serve: protocol, queue, budgets, engine, live daemon.

The live-daemon tests spawn ``repro-eba serve`` as a subprocess on a unix
socket under ``tmp_path`` and speak the real wire protocol through
:class:`repro.serve.client.ServeClient` — including the served-vs-in-process
verdict-parity suite (E4/E5/E21 across all three kernels), queue-full
backpressure, budget rejection, a client killed mid-query, and the
SIGTERM graceful drain.
"""

from __future__ import annotations

import json
import os
import signal
import socket as socket_module
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ReproError
from repro.model.failures import FailureMode
from repro.serve.client import ServeClient, ServeError, daemon_available
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    build_formula,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    validate_request,
)
from repro.serve.queue import (
    BudgetExceeded,
    QueryBudget,
    RequestQueue,
)
from repro.serve.session import QueryEngine, verdict_digest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")

#: The parity suite: every explain-catalog formula for these experiments,
#: served and in-process, across every kernel.
PARITY_EXPERIMENTS = ("E4", "E5", "E21")
KERNELS = ("bitset", "chunked", "reference")


# ---------------------------------------------------------------------------
# protocol


class TestProtocol:
    def test_frame_round_trip(self):
        frame = ok_response(7, {"x": 1}, done=True)
        assert decode_frame(encode_frame(frame)) == frame

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"not json at all\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"[1, 2, 3]\n")

    def test_valid_request_has_no_problems(self):
        assert (
            validate_request(
                {
                    "id": 1,
                    "op": "eval",
                    "params": {"formula": {"kind": "true"}},
                }
            )
            == []
        )

    def test_missing_id_and_unknown_op(self):
        problems = validate_request({"op": "frobnicate"})
        assert any("'id'" in p for p in problems)
        assert any("unknown op" in p for p in problems)

    def test_missing_required_param(self):
        problems = validate_request(
            {"id": 1, "op": "extend", "params": {"mode": "crash"}}
        )
        assert any("missing required param 'n'" in p for p in problems)

    def test_unknown_param_rejected(self):
        problems = validate_request(
            {"id": 1, "op": "stats", "params": {"bogus": 1}}
        )
        assert problems == ["stats: unknown param 'bogus'"]

    def test_wrong_param_type_rejected(self):
        problems = validate_request(
            {
                "id": 1,
                "op": "monitor",
                "params": {
                    "mode": "crash",
                    "n": 3,
                    "t": 1,
                    "config": 11,  # must be a string
                    "rounds": 2,
                },
            }
        )
        assert any("'config' has type int" in p for p in problems)

    def test_unknown_frame_field_rejected(self):
        problems = validate_request(
            {"id": 1, "op": "stats", "params": {}, "surprise": True}
        )
        assert problems == ["unknown frame field 'surprise'"]

    def test_error_response_shape(self):
        frame = error_response(3, "queue_full", "full", max_depth=4)
        assert frame["ok"] is False
        assert frame["error"]["code"] == "queue_full"
        assert frame["error"]["max_depth"] == 4


class TestFormulaAst:
    def test_builds_nested_knowledge_formula(self, crash3):
        formula = build_formula(
            {
                "kind": "knows",
                "processor": 0,
                "of": {"kind": "exists", "value": 1},
            }
        )
        from repro.knowledge.formulas import Knows, exists

        reference = Knows(0, exists(1))
        assert (
            formula.evaluate(crash3).to_rows()
            == reference.evaluate(crash3).to_rows()
        )

    def test_group_operators_use_nonfaulty(self, crash3):
        formula = build_formula(
            {"kind": "everyone", "of": {"kind": "exists", "value": 1}}
        )
        from repro.knowledge.formulas import Everyone, exists
        from repro.knowledge.nonrigid import NONFAULTY

        reference = Everyone(NONFAULTY, exists(1))
        assert (
            formula.evaluate(crash3).to_rows()
            == reference.evaluate(crash3).to_rows()
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown formula kind"):
            build_formula({"kind": "telepathy"})

    def test_missing_key_rejected(self):
        with pytest.raises(ProtocolError, match="needs 'value'"):
            build_formula({"kind": "exists"})

    def test_extra_key_rejected(self):
        with pytest.raises(ProtocolError, match="unknown keys"):
            build_formula({"kind": "true", "huh": 1})

    def test_empty_operand_list_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty list"):
            build_formula({"kind": "and", "operands": []})


# ---------------------------------------------------------------------------
# queue and budgets


class TestRequestQueue:
    def test_fifo_with_queue_wait(self):
        queue = RequestQueue(max_depth=4)
        assert queue.try_push("a")
        assert queue.try_push("b")
        waited, item = queue.pop(timeout=1)
        assert item == "a" and waited >= 0
        _, item = queue.pop(timeout=1)
        assert item == "b"

    def test_rejects_at_bound(self):
        queue = RequestQueue(max_depth=1)
        assert queue.try_push("a")
        assert not queue.try_push("b")
        assert queue.snapshot()["rejected"] == 1

    def test_close_rejects_but_drains_admitted(self):
        queue = RequestQueue(max_depth=4)
        queue.try_push("a")
        queue.close()
        assert not queue.try_push("b")
        assert queue.pop(timeout=1)[1] == "a"
        assert queue.pop(timeout=0.05) is None

    def test_pop_times_out_empty(self):
        queue = RequestQueue(max_depth=4)
        assert queue.pop(timeout=0.05) is None

    def test_close_wakes_blocked_consumer(self):
        queue = RequestQueue(max_depth=4)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(queue.pop(timeout=30))
        )
        thread.start()
        time.sleep(0.1)
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [None]


class TestQueryBudget:
    def test_check_points_over_budget(self):
        budget = QueryBudget(max_points=100, timeout=1.0)
        with pytest.raises(BudgetExceeded) as info:
            budget.check_points(101, "test system")
        assert info.value.limit == "max_points"

    def test_resolves_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_POINTS", "1234")
        monkeypatch.setenv("REPRO_SERVE_TIMEOUT", "5.5")
        budget = QueryBudget.resolve()
        assert budget.max_points == 1234
        assert budget.timeout == 5.5

    def test_bad_environment_rejected(self, monkeypatch):
        from repro.errors import ConfigurationError

        monkeypatch.setenv("REPRO_SERVE_MAX_POINTS", "zero")
        with pytest.raises(ConfigurationError):
            QueryBudget.resolve()


# ---------------------------------------------------------------------------
# the engine, in-process


class TestQueryEngineInProcess:
    def test_eval_formula_ast(self, crash3):
        engine = QueryEngine(fork_policy="never")
        result = engine.execute(
            "eval",
            {
                "formula": {"kind": "exists", "value": 1},
                "horizon": 3,
                "point": [0, 0],
            },
        )
        assert result["system"]["runs"] == len(crash3.runs)
        assert result["placement"] == "inline"
        assert isinstance(result["holds"], bool)
        assert len(result["digest"]) == 64

    def test_eval_catalog_reference(self):
        engine = QueryEngine(fork_policy="never")
        result = engine.execute(
            "eval",
            {"catalog": {"experiment": "E4", "formula": "everyone-exists1"}},
        )
        assert result["formula"] == "E4/everyone-exists1"
        assert result["kernel"] in KERNELS

    def test_unknown_catalog_entry_raises_key_error(self):
        engine = QueryEngine(fork_policy="never")
        with pytest.raises(KeyError):
            engine.execute(
                "eval",
                {"catalog": {"experiment": "E4", "formula": "nope"}},
            )

    def test_point_outside_system_raises_key_error(self):
        engine = QueryEngine(fork_policy="never")
        with pytest.raises(KeyError):
            engine.execute(
                "eval",
                {
                    "formula": {"kind": "true"},
                    "horizon": 2,
                    "point": [999999, 0],
                },
            )

    def test_point_budget_enforced(self):
        engine = QueryEngine(
            budget=QueryBudget(max_points=10, timeout=30.0),
            fork_policy="never",
        )
        with pytest.raises(BudgetExceeded):
            engine.execute("eval", {"formula": {"kind": "true"}, "horizon": 2})

    def test_explain_round_trip(self):
        engine = QueryEngine(fork_policy="never")
        result = engine.execute(
            "explain",
            {"catalog": {"experiment": "E4", "formula": "common-exists1"}},
        )
        assert result["check_ok"] is True
        assert result["problems"] == []
        assert "rendered" in result

    def test_extend_grows_resident_cell(self):
        engine = QueryEngine(fork_policy="never")
        result = engine.execute(
            "extend", {"mode": "crash", "n": 3, "t": 1, "horizon": 3}
        )
        assert result["system"]["horizon"] == 3

    def test_monitor_streams_per_round(self):
        engine = QueryEngine(fork_policy="never")
        events = []
        result = engine.execute(
            "monitor",
            {
                "mode": "crash",
                "n": 3,
                "t": 1,
                "config": "011",
                "rounds": 2,
                "crash": ["0:1"],
            },
            emit=events.append,
        )
        assert [event["round"] for event in events] == [1, 2]
        assert result["rounds"] == 2
        assert set(result["verdicts"]) == {
            "knows",
            "everyone",
            "continual_common",
        }

    def test_forked_query_matches_inline_and_pool_closes(self, crash3):
        inline = QueryEngine(fork_policy="never")
        forked = QueryEngine(fork_policy="always")
        params = {
            "catalog": {"experiment": "E4", "formula": "everyone-exists1"}
        }
        try:
            a = inline.execute("eval", dict(params))
            b = forked.execute("eval", dict(params))
            assert a["digest"] == b["digest"]
            assert a["count_true"] == b["count_true"]
            assert b["placement"] == "fork"
        finally:
            inline.close()
            forked.close()
        assert forked._pool is None

    def test_fork_timeout_is_budget_exceeded(self):
        engine = QueryEngine(
            budget=QueryBudget(max_points=4_000_000, timeout=0.4),
            fork_policy="always",
        )
        try:
            with pytest.raises(BudgetExceeded) as info:
                # Large enough that enumeration cannot finish in 0.4s.
                engine.execute(
                    "eval",
                    {
                        "formula": {"kind": "true"},
                        "mode": "omission",
                        "n": 3,
                        "t": 2,
                        "horizon": 4,
                    },
                )
            assert info.value.limit == "timeout"
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# satellite: provider thread-safety regression


class TestProviderConcurrency:
    def test_concurrent_get_extend_and_arrays(self, tmp_path, crash3):
        from repro.model.provider import SystemProvider

        provider = SystemProvider(
            max_memory_entries=4,
            max_arrays_entries=2,
            cache_dir=str(tmp_path),
        )
        errors = []
        barrier = threading.Barrier(8)

        def hammer(index):
            try:
                barrier.wait(timeout=30)
                for _ in range(5):
                    system = provider.get(FailureMode.CRASH, 3, 1, 2)
                    assert system.horizon == 2
                    grown = provider.extend(FailureMode.CRASH, 3, 1, 3)
                    assert grown.horizon == 3
                    arrays = provider.get_arrays(FailureMode.CRASH, 3, 1, 2)
                    assert arrays is not None
                    assert provider.has_memory_cell(
                        FailureMode.CRASH, 3, 1, 2
                    ) in (True, False)
                    provider.cache_info()
            except Exception as error:  # noqa: BLE001 — collected below
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        info = provider.cache_info()
        assert info["size"] <= 4
        assert info["arrays_size"] <= 2

    def test_clear_reports_arrays_lru(self, tmp_path):
        from repro.model.provider import SystemProvider

        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 1)
        provider.get_arrays(FailureMode.CRASH, 3, 1, 1)
        stats = provider.clear()
        assert stats["evicted"] >= 1
        assert stats["arrays_evicted"] == 1
        assert provider.cache_info()["arrays_size"] == 0

    def test_has_memory_cell_does_not_touch_counters(self, tmp_path):
        from repro.model.provider import SystemProvider

        provider = SystemProvider(cache_dir=str(tmp_path))
        assert not provider.has_memory_cell(FailureMode.CRASH, 3, 1, 1)
        provider.get(FailureMode.CRASH, 3, 1, 1)
        before = provider.cache_info()["hits"]
        assert provider.has_memory_cell(FailureMode.CRASH, 3, 1, 1)
        assert provider.cache_info()["hits"] == before


# ---------------------------------------------------------------------------
# the live daemon


def _spawn_daemon(socket_path, *extra, journal=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--socket",
        socket_path,
        *extra,
    ]
    if journal:
        argv += ["--journal", journal]
    process = subprocess.Popen(
        argv,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"daemon died at startup:\n{process.stdout.read()}"
            )
        if daemon_available(socket_path, timeout=0.5):
            return process
        time.sleep(0.2)
    process.kill()
    raise RuntimeError("daemon did not come up within 60s")


def _stop_daemon(process, socket_path):
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    returncode = process.wait(timeout=30)
    assert returncode == 0, process.stdout.read()
    assert not os.path.exists(socket_path)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """A generously budgeted daemon plus its journal path."""
    tmp = tmp_path_factory.mktemp("serve")
    socket_path = str(tmp / "serve.sock")
    journal_path = str(tmp / "serve_journal.jsonl")
    process = _spawn_daemon(socket_path, journal=journal_path)
    try:
        yield {"socket": socket_path, "journal": journal_path}
    finally:
        _stop_daemon(process, socket_path)


@pytest.fixture(scope="module")
def strict_daemon(tmp_path_factory):
    """Failure-path daemon: one worker, queue bound 1, debug ops on."""
    tmp = tmp_path_factory.mktemp("serve_strict")
    socket_path = str(tmp / "strict.sock")
    process = _spawn_daemon(
        socket_path,
        "--debug",
        "--workers",
        "1",
        "--max-queue",
        "1",
        "--max-points",
        "400",
    )
    try:
        yield {"socket": socket_path}
    finally:
        _stop_daemon(process, socket_path)


def _parity_cases():
    from repro.knowledge.explain import EXPLAIN_CATALOG

    for experiment in PARITY_EXPERIMENTS:
        for formula_key in EXPLAIN_CATALOG[experiment]:
            yield experiment, formula_key


class TestDaemonRoundTrips:
    def test_healthz_and_stats(self, daemon):
        with ServeClient(daemon["socket"]) as client:
            health = client.healthz()
            assert health["ok"] is True
            assert "repro_serve_connections_total" in health["prometheus"]
            stats = client.stats()
            assert stats["protocol"] == PROTOCOL_VERSION
            assert stats["queue"]["max_depth"] >= 1
            assert "cache" in stats

    def test_eval_explain_extend(self, daemon):
        with ServeClient(daemon["socket"]) as client:
            result = client.request(
                "eval",
                catalog={"experiment": "E4", "formula": "everyone-exists1"},
                point=[0, 1],
            )
            assert result["system"] == {
                "mode": "crash",
                "n": 3,
                "t": 1,
                "horizon": 3,
                "runs": 224,
                "points": 896,
            }
            assert result["holds"] is False
            explained = client.request(
                "explain",
                catalog={"experiment": "E4", "formula": "common-exists1"},
            )
            assert explained["check_ok"] is True
            extended = client.request(
                "extend", mode="crash", n=3, t=1, horizon=3
            )
            assert extended["system"]["horizon"] == 3

    def test_monitor_streams_rounds(self, daemon):
        with ServeClient(daemon["socket"]) as client:
            frames = list(
                client.stream(
                    "monitor",
                    mode="crash",
                    n=3,
                    t=1,
                    config="011",
                    rounds=3,
                    crash=["0:1"],
                )
            )
        events, terminal = frames[:-1], frames[-1]
        assert [event["round"] for event in events] == [1, 2, 3]
        for event in events:
            assert set(event["verdicts"]) == {
                "knows",
                "everyone",
                "continual_common",
            }
        assert terminal["rounds"] == 3

    def test_malformed_frames_rejected_connection_survives(self, daemon):
        raw = socket_module.socket(socket_module.AF_UNIX)
        raw.settimeout(10)
        raw.connect(daemon["socket"])
        reader = raw.makefile("rb")
        try:
            raw.sendall(b"this is not json\n")
            frame = json.loads(reader.readline())
            assert frame["ok"] is False
            assert frame["error"]["code"] == "bad_frame"
            raw.sendall(b'{"id": 1, "op": "frobnicate"}\n')
            frame = json.loads(reader.readline())
            assert frame["error"]["code"] == "bad_request"
            assert "unknown op" in frame["error"]["message"]
            # The connection is still serviceable after both rejections.
            raw.sendall(b'{"id": 2, "op": "healthz", "params": {}}\n')
            frame = json.loads(reader.readline())
            assert frame["ok"] is True
        finally:
            reader.close()
            raw.close()

    def test_unknown_catalog_is_not_found(self, daemon):
        with ServeClient(daemon["socket"]) as client:
            with pytest.raises(ServeError) as info:
                client.request(
                    "eval",
                    catalog={"experiment": "E4", "formula": "no-such"},
                )
            assert info.value.code == "not_found"

    def test_journal_is_schema_valid(self, daemon):
        from repro.obs.journal import validate_journal

        with ServeClient(daemon["socket"]) as client:
            client.healthz()
        assert validate_journal(daemon["journal"]) == []
        events = [
            json.loads(line)
            for line in open(daemon["journal"], encoding="utf-8")
        ]
        assert any(e["event"] == "serve_request" for e in events)

    def test_served_verdicts_match_in_process_all_kernels(self, daemon):
        """Acceptance: byte-identical digests, E4/E5/E21 x all kernels."""
        engine = QueryEngine(fork_policy="never")
        with ServeClient(daemon["socket"]) as client:
            for experiment, formula_key in _parity_cases():
                for kernel in KERNELS:
                    params = {
                        "catalog": {
                            "experiment": experiment,
                            "formula": formula_key,
                        },
                        "kernel": kernel,
                    }
                    served = client.request("eval", **params)
                    local = engine.execute("eval", dict(params))
                    assert served["digest"] == local["digest"], (
                        experiment,
                        formula_key,
                        kernel,
                    )
                    assert served["count_true"] == local["count_true"]
                    assert served["valid"] == local["valid"]

    def test_32_concurrent_queries(self, daemon):
        """Acceptance: the daemon sustains 32 concurrent queries."""
        digests = []
        errors = []
        lock = threading.Lock()

        def one_query():
            try:
                with ServeClient(daemon["socket"]) as client:
                    result = client.request(
                        "eval",
                        catalog={
                            "experiment": "E4",
                            "formula": "everyone-exists1",
                        },
                    )
                with lock:
                    digests.append(result["digest"])
            except Exception as error:  # noqa: BLE001 — collected below
                with lock:
                    errors.append(error)

        threads = [threading.Thread(target=one_query) for _ in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        assert len(digests) == 32
        assert len(set(digests)) == 1


class TestDaemonFailureModes:
    def test_queue_full_backpressure(self, strict_daemon):
        """workers=1 + max-queue=1: the third in-flight request bounces."""
        clients = [
            ServeClient(strict_daemon["socket"], timeout=30)
            for _ in range(3)
        ]
        try:
            first = clients[0]._send("debug_sleep", {"seconds": 2.0})
            time.sleep(0.8)  # worker picks it up; queue is empty again
            second = clients[1]._send("debug_sleep", {"seconds": 0.1})
            time.sleep(0.2)  # admitted; queue now at its bound of 1
            third = clients[2]._send("debug_sleep", {"seconds": 0.1})
            rejected = clients[2]._read_frame(third)
            assert rejected["ok"] is False
            assert rejected["error"]["code"] == "queue_full"
            assert rejected["error"]["max_depth"] == 1
            # The two admitted requests still complete.
            assert clients[0]._read_frame(first)["ok"] is True
            assert clients[1]._read_frame(second)["ok"] is True
        finally:
            for client in clients:
                client.close()

    def test_budget_exceeded_over_the_wire(self, strict_daemon):
        with ServeClient(strict_daemon["socket"]) as client:
            with pytest.raises(ServeError) as info:
                # 896 points > the daemon's 400-point budget.
                client.request(
                    "eval",
                    catalog={
                        "experiment": "E4",
                        "formula": "everyone-exists1",
                    },
                )
            assert info.value.code == "budget_exceeded"
            assert info.value.error.get("limit") == "max_points"

    def test_debug_sleep_needs_debug_flag(self, daemon):
        with ServeClient(daemon["socket"]) as client:
            with pytest.raises(ServeError) as info:
                client.request("debug_sleep", seconds=0.01)
            assert info.value.code == "bad_request"

    def test_client_killed_mid_query_daemon_survives(self, strict_daemon):
        raw = socket_module.socket(socket_module.AF_UNIX)
        raw.connect(strict_daemon["socket"])
        raw.sendall(
            encode_frame(
                {
                    "id": 1,
                    "op": "debug_sleep",
                    "params": {"seconds": 1.0},
                }
            )
        )
        raw.close()  # gone before the response can be written
        time.sleep(1.5)
        assert daemon_available(strict_daemon["socket"])
        with ServeClient(strict_daemon["socket"]) as client:
            assert client.healthz()["ok"] is True


class TestGracefulShutdown:
    def test_sigterm_drains_in_flight_work(self, tmp_path):
        socket_path = str(tmp_path / "drain.sock")
        process = _spawn_daemon(
            socket_path, "--debug", "--workers", "1"
        )
        client = ServeClient(socket_path, timeout=30)
        try:
            request_id = client._send("debug_sleep", {"seconds": 2.0})
            time.sleep(0.5)  # in the worker's hands
            process.send_signal(signal.SIGTERM)
            time.sleep(0.3)
            # New work on the existing connection is refused while the
            # in-flight request drains...
            late = client._send("debug_sleep", {"seconds": 0.1})
            frame = client._read_frame(late)
            assert frame["error"]["code"] == "shutting_down"
            # ...but the admitted request completes before exit.
            frame = client._read_frame(request_id)
            assert frame["ok"] is True
            assert frame["result"]["slept"] == 2.0
        finally:
            client.close()
        assert process.wait(timeout=30) == 0
        assert not os.path.exists(socket_path)

    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        socket_path = str(tmp_path / "stale.sock")
        dead = socket_module.socket(socket_module.AF_UNIX)
        dead.bind(socket_path)
        dead.close()  # leaves the file behind, nobody listening
        assert os.path.exists(socket_path)
        process = _spawn_daemon(socket_path)
        try:
            assert daemon_available(socket_path)
        finally:
            _stop_daemon(process, socket_path)


class TestQueryCliFallback:
    def test_query_local_eval_matches_daemonless(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "query",
                "eval",
                "--local",
                "--catalog",
                "E4/everyone-exists1",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["formula"] == "E4/everyone-exists1"
        assert payload["placement"] == "inline"
