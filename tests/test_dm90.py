"""Tests for the DM90-style waste-based optimum SBA protocol."""

import pytest

from repro.core.domination import compare, equivalent_decisions
from repro.core.specs import check_sba
from repro.model.config import InitialConfiguration
from repro.model.failures import CrashBehavior, FailurePattern
from repro.protocols.dm90 import dm90_waste, waste_from_deliveries
from repro.protocols.fip import fip
from repro.protocols.flood_sba import flood_sba
from repro.protocols.sba_ck import sba_common_knowledge_pair
from repro.sim.engine import execute, run_over_scenarios

EMPTY = FailurePattern(())


class TestWasteComputation:
    def test_no_failures_no_waste(self):
        deliveries = {(0, 1): frozenset((1, 2)), (1, 1): frozenset((0, 2))}
        assert waste_from_deliveries(deliveries, 3, 2) == 0

    def test_one_exposed_failure_round_one_no_waste(self):
        # one processor exposed in round 1: D(1) = 1, waste = 0
        deliveries = {(0, 1): frozenset((1,))}  # processor 2 silent
        assert waste_from_deliveries(deliveries, 3, 1) == 0

    def test_two_exposed_failures_round_one(self):
        deliveries = {(0, 1): frozenset()}  # both others silent
        assert waste_from_deliveries(deliveries, 3, 1) == 1

    def test_late_exposure_does_not_add_waste(self):
        # one failure exposed only at round 2: D(1)=0, D(2)=1 -> waste 0
        deliveries = {
            (0, 1): frozenset((1, 2)),
            (0, 2): frozenset((1,)),
        }
        assert waste_from_deliveries(deliveries, 3, 2) == 0


class TestBehaviour:
    def test_failure_free_decides_at_t_plus_1(self):
        trace = execute(
            dm90_waste(), InitialConfiguration((0, 1, 1)), EMPTY, 3, 1
        )
        assert trace.decisions == [(0, 2), (0, 2), (0, 2)]

    def test_double_silent_crash_decides_early(self):
        """Two silent round-1 crashes at t=2 expose waste 1: survivors
        decide at t + 1 - 1 = 2."""
        pattern = FailurePattern(
            {
                0: CrashBehavior(1, frozenset()),
                1: CrashBehavior(1, frozenset()),
            }
        )
        trace = execute(
            dm90_waste(), InitialConfiguration((1, 1, 1, 1)), pattern, 4, 2
        )
        assert trace.decisions[2] == (1, 2)
        assert trace.decisions[3] == (1, 2)

    def test_hidden_zero_decides_zero(self):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset((1,)))})
        trace = execute(
            dm90_waste(), InitialConfiguration((0, 1, 1)), pattern, 3, 1
        )
        survivors = {trace.decisions[1], trace.decisions[2]}
        assert survivors == {(0, 2)}

    def test_halts_after_decision(self):
        trace = execute(
            dm90_waste(), InitialConfiguration((1, 1)), EMPTY, 3, 1
        )
        assert trace.sent_counts[-1] == 0


class TestAgainstOracle:
    def test_matches_common_knowledge_oracle_n3(self, crash3):
        oracle = fip(sba_common_knowledge_pair(crash3)).outcome(crash3)
        concrete = run_over_scenarios(
            dm90_waste(), crash3.scenarios(), crash3.horizon, crash3.t
        )
        assert check_sba(concrete).ok
        equal, diffs = equivalent_decisions(concrete, oracle)
        assert equal, diffs

    def test_matches_common_knowledge_oracle_n4(self, crash4):
        oracle = fip(sba_common_knowledge_pair(crash4)).outcome(crash4)
        concrete = run_over_scenarios(
            dm90_waste(), crash4.scenarios(), crash4.horizon, crash4.t
        )
        equal, diffs = equivalent_decisions(concrete, oracle)
        assert equal, diffs

    def test_dominates_flood_sba(self, crash3):
        dm90 = run_over_scenarios(
            dm90_waste(), crash3.scenarios(), crash3.horizon, crash3.t
        )
        flood = run_over_scenarios(
            flood_sba(), crash3.scenarios(), crash3.horizon, crash3.t
        )
        assert compare(dm90, flood).dominates

    def test_sba_on_sampled_t2(self):
        from repro.model.failures import FailureMode
        from repro.workloads.scenarios import random_scenarios

        scenarios = random_scenarios(
            FailureMode.CRASH, 5, 2, 4, count=150, seed=3
        )
        outcome = run_over_scenarios(dm90_waste(), scenarios, 4, 2)
        assert check_sba(outcome).ok

    def test_strictly_dominates_flood_at_t2(self):
        from repro.model.failures import FailureMode
        from repro.workloads.scenarios import random_scenarios

        scenarios = random_scenarios(
            FailureMode.CRASH, 5, 2, 4, count=200, seed=11
        )
        dm90 = run_over_scenarios(dm90_waste(), scenarios, 4, 2)
        flood = run_over_scenarios(flood_sba(), scenarios, 4, 2)
        assert compare(dm90, flood).strict
