"""Tests for continual common knowledge ``C□_S`` — the paper's new
operator (Section 3.3) and the core of the whole reproduction."""

import pytest

from repro.knowledge.axioms import (
    check_continual_common_k45,
    check_continual_implies_common,
    check_everyone_unfolds,
    check_fixed_point,
    check_induction_rule,
    check_run_invariance,
    check_s5,
)
from repro.knowledge.formulas import (
    AllStarted,
    AtAllTimes,
    Believes,
    Common,
    ContinualCommon,
    Exists,
    EveryoneBox,
    Implies,
    Not,
)
from repro.knowledge.nonrigid import (
    NONFAULTY,
    ConstantSet,
    nonfaulty_and_zeros,
)
from repro.knowledge.semantics import run_reachability_components
from repro.model.config import InitialConfiguration
from repro.model.failures import FailurePattern


class TestDefinitionAndFastPath:
    @pytest.mark.parametrize("value", [0, 1])
    def test_component_algorithm_matches_fixpoint(self, crash3, value):
        fast = ContinualCommon(NONFAULTY, Exists(value)).evaluate(crash3)
        slow = ContinualCommon(
            NONFAULTY, Exists(value), force_fixpoint=True
        ).evaluate(crash3)
        assert fast == slow

    def test_component_algorithm_matches_fixpoint_omission(self, omission3):
        fast = ContinualCommon(NONFAULTY, Exists(1)).evaluate(omission3)
        slow = ContinualCommon(
            NONFAULTY, Exists(1), force_fixpoint=True
        ).evaluate(omission3)
        assert fast == slow

    def test_component_matches_on_nonrigid_decision_set(self, crash3):
        """Cross-check on the time-dependent set N∧Z used by the
        construction."""
        from repro.protocols.f_lambda import f_lambda_sequence

        _, first, _ = f_lambda_sequence(crash3)
        nonrigid = nonfaulty_and_zeros(first)
        fast = ContinualCommon(nonrigid, Exists(1)).evaluate(crash3)
        slow = ContinualCommon(
            nonrigid, Exists(1), force_fixpoint=True
        ).evaluate(crash3)
        assert fast == slow

    def test_empty_set_vacuously_continual(self, crash3):
        empty = ConstantSet(frozenset())
        from repro.knowledge.formulas import FALSE

        assert ContinualCommon(empty, FALSE).is_valid(crash3)

    def test_vacuous_runs_get_sentinel_component(self, crash3):
        """Runs without any S occurrence are flagged -1 (no reachable
        points)."""
        empty = ConstantSet(frozenset())
        components = run_reachability_components(crash3, empty)
        assert all(component == -1 for component in components)

    def test_nonfaulty_components_merge_everything(self, crash3):
        """Under N, time-0 leaf states connect every run into few
        components, so C□_N ∃1 is false everywhere (the all-0 run is
        reachable)."""
        truth = ContinualCommon(NONFAULTY, Exists(1)).evaluate(crash3)
        assert not any(
            truth.at(run_index, 0) for run_index in range(len(crash3.runs))
        )


class TestLemma34:
    def test_k45_axioms(self, crash3):
        phis = [Exists(0), Exists(1), Not(Exists(0)), AllStarted(1)]
        psis = [Exists(1), Not(Exists(1))]
        assert (
            check_continual_common_k45(crash3, NONFAULTY, phis, psis) == []
        )

    def test_fixed_point_axiom(self, crash3):
        for phi in (Exists(0), Exists(1)):
            assert check_fixed_point(crash3, NONFAULTY, phi) == []

    def test_induction_rule(self, crash3):
        assert (
            check_induction_rule(
                crash3, NONFAULTY, Believes(0, Exists(0)), Exists(0)
            )
            == []
        )

    def test_run_invariance(self, crash3):
        for phi in (Exists(0), AllStarted(1)):
            assert check_run_invariance(crash3, NONFAULTY, phi) == []

    def test_unfolds_to_iterated_everyone_box(self, crash3):
        assert check_everyone_unfolds(crash3, NONFAULTY, Exists(0)) == []

    def test_s5_for_knowledge_as_context(self, crash3):
        """Proposition 3.1, exercised through the axiom helper."""
        phis = [Exists(0), Not(Exists(1))]
        psis = [Exists(1)]
        for processor in range(3):
            assert check_s5(crash3, processor, phis, psis) == []


class TestStrictlyStrongerThanCommon:
    def test_continual_implies_common(self, crash3):
        for phi in (Exists(0), Exists(1)):
            assert (
                check_continual_implies_common(crash3, NONFAULTY, phi) == []
            )

    def test_converse_fails_witness(self, crash3):
        """There is a point with C_N ∃1 but not C□_N ∃1 — continual common
        knowledge is *strictly* stronger (Section 3.3)."""
        common = Common(NONFAULTY, Exists(1)).evaluate(crash3)
        continual = ContinualCommon(NONFAULTY, Exists(1)).evaluate(crash3)
        witness = any(
            common.at(run_index, time) and not continual.at(run_index, time)
            for run_index in range(len(crash3.runs))
            for time in range(crash3.horizon + 1)
        )
        assert witness

    def test_continual_constant_over_time(self, crash3):
        """C□ truth never varies within a run (Lemma 3.4(g))."""
        truth = ContinualCommon(NONFAULTY, Exists(0)).evaluate(crash3)
        for row in truth.values:
            assert len(set(row)) == 1


class TestEveryoneBox:
    def test_everyone_box_is_run_level(self, crash3):
        truth = EveryoneBox(NONFAULTY, Exists(0)).evaluate(crash3)
        for row in truth.values:
            assert len(set(row)) == 1

    def test_continual_implies_everyone_box(self, crash3):
        phi = Exists(0)
        assert Implies(
            ContinualCommon(NONFAULTY, phi), EveryoneBox(NONFAULTY, phi)
        ).is_valid(crash3)

    def test_everyone_box_equals_box_everyone(self, crash3):
        from repro.knowledge.formulas import Everyone

        phi = Exists(1)
        direct = EveryoneBox(NONFAULTY, phi).evaluate(crash3)
        composed = AtAllTimes(Everyone(NONFAULTY, phi)).evaluate(crash3)
        assert direct == composed


class TestConcreteContinualTruths:
    def test_all_silent_zero_run_keeps_cbox_among_deciders(self, crash3):
        """C□_{N∧Z} ∃1 must fail in runs whose component reaches the
        all-zeros run — concretely: whenever some nonfaulty processor has
        initial value 0, because its time-0 state links to the all-0 run."""
        from repro.protocols.f_lambda import f_lambda_sequence

        _, first, _ = f_lambda_sequence(crash3)
        nonrigid = nonfaulty_and_zeros(first)
        truth = ContinualCommon(nonrigid, Exists(1)).evaluate(crash3)
        for run_index, run in enumerate(crash3.runs):
            nonfaulty_zero = any(
                run.config.value_of(processor) == 0
                for processor in run.nonfaulty
            )
            if nonfaulty_zero:
                assert not truth.at(run_index, 0)

    def test_all_ones_failure_free_has_cbox(self, crash3):
        """In the all-1 failure-free crash run, C□_{N∧Z^{Λ,1}} ∃1 holds —
        the component contains only runs where any 0-learning is
        impossible for nonfaulty processors."""
        from repro.protocols.f_lambda import f_lambda_sequence

        _, first, _ = f_lambda_sequence(crash3)
        nonrigid = nonfaulty_and_zeros(first)
        truth = ContinualCommon(nonrigid, Exists(1)).evaluate(crash3)
        index = crash3.run_index_for(
            InitialConfiguration((1, 1, 1)), FailurePattern(())
        )
        assert truth.at(index, 0)
