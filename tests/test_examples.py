"""Smoke tests: every example script runs to completion and prints the
landmarks its docstring promises."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script -> substrings its output must contain.
LANDMARKS = {
    "quickstart.py": ["PASS", "nonfaulty processor", "P0opt on the simulator"],
    "optimal_construction.py": [
        "strictly dominates",
        "fixed point after two steps: True",
        "OPTIMAL",
    ],
    "omission_chains.py": [
        "exhaustive omission system",
        "bound f+1",
        "whisper attack",
        "OPTIMAL",
    ],
    "eba_vs_sba.py": ["P0opt", "FloodSBA", "random crash scenarios"],
    "knowledge_debugging.py": [
        "space-time diagram",
        "who believes",
        "indistinguishable from",
    ],
}


def _run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.parametrize("name", sorted(LANDMARKS))
def test_example_runs_and_prints_landmarks(name):
    output = _run_example(name)
    for landmark in LANDMARKS[name]:
        assert landmark in output, (name, landmark)


def test_all_examples_covered():
    """Every example script in the directory has a smoke test."""
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(LANDMARKS)
