"""Edge-case tests for :mod:`repro.sim.trace` — the execution Trace record.

Covers the observability corners the integration tests skip over:
undecided processors, message accounting under crashes, the zero-round
degenerate trace, and the decision-only ``RunOutcome`` projection.
"""

import pytest

from repro.errors import ConfigurationError
from repro.model.config import InitialConfiguration
from repro.model.failures import CrashBehavior, FailurePattern
from repro.protocols.p0 import p0
from repro.sim.engine import execute
from repro.sim.trace import Trace


def _crash_pattern(processor, crash_round, receivers=()):
    return FailurePattern(
        {processor: CrashBehavior(crash_round, frozenset(receivers))}
    )


class TestMessageAccounting:
    def test_failure_free_run_delivers_everything(self):
        trace = execute(
            p0(), InitialConfiguration([0, 1, 1]), FailurePattern({}), 2, 1
        )
        assert trace.sent_counts == trace.delivered_counts
        assert trace.total_sent() == trace.total_delivered() > 0
        assert len(trace.sent_counts) == trace.horizon == 2

    def test_crash_drops_messages(self):
        config = InitialConfiguration([0, 1, 1])
        clean = execute(p0(), config, FailurePattern({}), 2, 1)
        crashed = execute(
            p0(), config, _crash_pattern(2, crash_round=2), 2, 1
        )
        # Processor 2's round-2 messages are dropped: fewer delivered than
        # the failure-free run, and strictly fewer than sent that round.
        assert crashed.total_delivered() < clean.total_delivered()
        assert crashed.delivered_counts[1] < crashed.sent_counts[1]

    def test_partial_crash_round_delivers_to_named_receivers(self):
        config = InitialConfiguration([0, 1, 1])
        partial = execute(
            p0(), config, _crash_pattern(2, 2, receivers={0}), 2, 1
        )
        silent = execute(p0(), config, _crash_pattern(2, 2), 2, 1)
        assert partial.delivered_counts[1] == silent.delivered_counts[1] + 1


class TestStatesAndDecisions:
    def test_states_cover_every_time(self):
        trace = execute(
            p0(), InitialConfiguration([1, 1, 1]), FailurePattern({}), 3, 1
        )
        assert len(trace.states) == trace.horizon + 1
        for time in range(trace.horizon + 1):
            for processor in range(trace.n):
                assert (
                    trace.state_of(processor, time)
                    == trace.states[time][processor]
                )

    def test_decisions_record_first_decision_time(self):
        trace = execute(
            p0(), InitialConfiguration([0, 0, 0]), FailurePattern({}), 2, 1
        )
        assert len(trace.decisions) == trace.n
        for decision in trace.decisions:
            if decision is not None:
                value, time = decision
                assert value in (0, 1)
                assert 0 <= time <= trace.horizon

    def test_undecided_processors_stay_none(self):
        # A horizon-1 p0 run can leave processors undecided; an empty
        # hand-built trace certainly does.
        trace = Trace(
            protocol_name="stub",
            config=InitialConfiguration([0, 1]),
            pattern=FailurePattern({}),
            horizon=1,
            decisions=[None, (1, 0)],
        )
        outcome = trace.to_outcome()
        assert outcome.decisions == (None, (1, 0))

    def test_zero_horizon_trace_is_constructible_but_not_executable(self):
        # `execute` requires at least one round ...
        with pytest.raises(ConfigurationError):
            execute(
                p0(), InitialConfiguration([0, 1]), FailurePattern({}), 0, 1
            )
        # ... but the dataclass itself models the time-0-only record.
        trace = Trace(
            protocol_name="stub",
            config=InitialConfiguration([0, 1]),
            pattern=FailurePattern({}),
            horizon=0,
            states=[("a", "b")],
        )
        assert trace.total_sent() == trace.total_delivered() == 0
        assert trace.state_of(1, 0) == "b"


class TestOutcomeProjection:
    def test_to_outcome_round_trips_scenario_identity(self):
        config = InitialConfiguration([0, 1, 1])
        pattern = _crash_pattern(1, 2)
        trace = execute(p0(), config, pattern, 2, 1)
        outcome = trace.to_outcome()
        assert outcome.config == config
        assert outcome.pattern == pattern
        assert outcome.horizon == trace.horizon
        assert outcome.decisions == tuple(trace.decisions)

    def test_n_property_matches_config(self):
        trace = Trace(
            protocol_name="stub",
            config=InitialConfiguration([0, 1, 1, 0]),
            pattern=FailurePattern({}),
            horizon=1,
        )
        assert trace.n == 4
