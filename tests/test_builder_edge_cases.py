"""Edge-case tests for the system builders and miscellaneous plumbing not
covered by the mainline suites."""

import pytest

from repro.errors import ConfigurationError
from repro.knowledge.formulas import Exists, Or, Predicate
from repro.model.builder import (
    crash_system,
    omission_system,
    restricted_system,
)
from repro.model.config import InitialConfiguration
from repro.model.failures import FailureMode, FailurePattern, OmissionBehavior
from repro.model.system import System, TruthAssignment


class TestBuilderOptions:
    def test_explicit_configs_subset(self):
        system = crash_system(
            3,
            1,
            2,
            configs=[InitialConfiguration((1, 1, 1))],
            use_cache=False,
        )
        assert len({run.config for run in system.runs}) == 1

    def test_uncached_builds_are_fresh(self):
        a = crash_system(3, 1, 2, use_cache=False)
        b = crash_system(3, 1, 2, use_cache=False)
        assert a is not b
        assert len(a.runs) == len(b.runs)

    def test_restricted_system_without_failure_free(self):
        pattern = FailurePattern({0: OmissionBehavior({1: [1]})})
        system = restricted_system(
            FailureMode.OMISSION,
            3,
            1,
            2,
            [pattern],
            include_failure_free=False,
        )
        assert all(run.pattern == pattern for run in system.runs)

    def test_empty_system_rejected(self):
        with pytest.raises(ConfigurationError):
            System(3, 1, 2, [], None, None)

    def test_mode_recorded(self):
        assert crash_system(3, 1, 2, use_cache=False).mode is FailureMode.CRASH
        assert (
            omission_system(3, 1, 2, use_cache=False).mode
            is FailureMode.OMISSION
        )


class TestFormulaOddities:
    def test_or_semantics(self, crash3):
        either = Or((Exists(0), Exists(1))).evaluate(crash3)
        assert either.is_valid()  # every run has some value

    def test_empty_conjunction_is_true(self, crash3):
        from repro.knowledge.formulas import And

        assert And(()).is_valid(crash3)

    def test_empty_disjunction_is_false(self, crash3):
        from repro.knowledge.formulas import Or as OrFormula

        truth = OrFormula(()).evaluate(crash3)
        assert not truth.at(0, 0)

    def test_predicate_cache_key_isolated(self, crash3):
        a = Predicate(("demo", 1), lambda s: TruthAssignment.constant(s, True))
        b = Predicate(("demo", 2), lambda s: TruthAssignment.constant(s, False))
        assert a.evaluate(crash3) != b.evaluate(crash3)

    def test_formula_sugar_combinators(self, crash3):
        phi = Exists(0)
        assert phi.negate().and_(phi).evaluate(crash3).count_true() == 0
        assert phi.implies(phi).is_valid(crash3)

    def test_holds_at_point_accessor(self, crash3):
        phi = Exists(0)
        truth = phi.evaluate(crash3)
        for run_index in (0, len(crash3.runs) - 1):
            assert phi.holds_at(crash3, run_index, 0) == truth.at(run_index, 0)
