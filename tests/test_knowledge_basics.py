"""Tests for the basic knowledge operators K_i, B_i^S, E_S over exhaustive
systems: semantic sanity, not just axiom suites."""

import pytest

from repro.knowledge.formulas import (
    FALSE,
    TRUE,
    AllStarted,
    And,
    Believes,
    Everyone,
    Exists,
    Iff,
    Implies,
    InitialValueIs,
    IsNonfaulty,
    Knows,
    Not,
    Or,
    SetEmpty,
)
from repro.knowledge.nonrigid import EVERYONE, NONFAULTY, ConstantSet
from repro.model.failures import FailurePattern


def _failure_free_index(system, values):
    from repro.model.config import InitialConfiguration

    return system.run_index_for(
        InitialConfiguration(values), FailurePattern(())
    )


class TestPropositionalLayer:
    def test_constants(self, crash3):
        assert TRUE.is_valid(crash3)
        assert not FALSE.evaluate(crash3).at(0, 0)

    def test_exists_matches_config(self, crash3):
        truth = Exists(0).evaluate(crash3)
        for run_index, run in enumerate(crash3.runs):
            assert truth.at(run_index, 0) == run.config.exists(0)

    def test_all_started(self, crash3):
        truth = AllStarted(1).evaluate(crash3)
        for run_index, run in enumerate(crash3.runs):
            assert truth.at(run_index, 2) == run.config.all_equal(1)

    def test_initial_value_is(self, crash3):
        truth = InitialValueIs(0, 0).evaluate(crash3)
        for run_index, run in enumerate(crash3.runs):
            assert truth.at(run_index, 1) == (run.config.value_of(0) == 0)

    def test_connectives(self, crash3):
        phi = Exists(0)
        assert Or((phi, Not(phi))).is_valid(crash3)
        assert not And((phi, Not(phi))).evaluate(crash3).at(0, 0)
        assert Implies(phi, phi).is_valid(crash3)
        assert Iff(phi, Not(Not(phi))).is_valid(crash3)

    def test_is_nonfaulty_atom(self, crash3):
        truth = IsNonfaulty(0).evaluate(crash3)
        for run_index, run in enumerate(crash3.runs):
            assert truth.at(run_index, 3) == run.is_nonfaulty(0)


class TestKnows:
    def test_no_knowledge_of_others_at_time_zero(self, crash3):
        """At time 0 a processor knows only its own value: it cannot know
        ∃0 unless it holds 0 itself."""
        knows = Knows(0, Exists(0)).evaluate(crash3)
        for run_index, run in enumerate(crash3.runs):
            expected = run.config.value_of(0) == 0
            assert knows.at(run_index, 0) == expected

    def test_failure_free_knowledge_after_one_round(self, crash3):
        index = _failure_free_index(crash3, (1, 0, 1))
        assert Knows(0, Exists(0)).evaluate(crash3).at(index, 1)
        assert Knows(2, Exists(0)).evaluate(crash3).at(index, 1)

    def test_knowledge_axiom_semantics(self, crash3):
        """K_i φ ⇒ φ: spot-verified pointwise for a non-trivial formula."""
        phi = AllStarted(1)
        knows = Knows(1, phi).evaluate(crash3)
        truth = phi.evaluate(crash3)
        for run_index in range(len(crash3.runs)):
            for time in range(4):
                if knows.at(run_index, time):
                    assert truth.at(run_index, time)

    def test_knowledge_is_state_determined(self, crash3):
        knows = Knows(0, Exists(0)).evaluate(crash3)
        by_state = {}
        for run_index, run in enumerate(crash3.runs):
            for time in range(4):
                view = run.view(0, time)
                value = knows.at(run_index, time)
                assert by_state.setdefault(view, value) == value

    def test_cannot_know_all_ones_before_hearing_everyone(self, crash3):
        """Knowing that ALL initial values are 1 requires evidence about
        every processor, impossible at time 0 with n >= 2."""
        knows = Knows(0, AllStarted(1)).evaluate(crash3)
        for run_index in range(len(crash3.runs)):
            assert not knows.at(run_index, 0)


class TestBelieves:
    def test_belief_weaker_than_knowledge(self, crash3):
        """K_i φ ⇒ B_i^N φ everywhere."""
        phi = Exists(0)
        assert Implies(
            Knows(0, phi), Believes(0, phi, NONFAULTY)
        ).is_valid(crash3)

    def test_belief_true_when_knows_faulty(self, omission3):
        """B_i^N false holds exactly where i knows it is faulty."""
        believes_false = Believes(0, FALSE, NONFAULTY).evaluate(omission3)
        knows_faulty = Knows(0, Not(IsNonfaulty(0))).evaluate(omission3)
        assert believes_false == knows_faulty

    def test_nonfaulty_belief_implies_truth(self, crash3):
        """For i ∈ N, B_i^N φ ⇒ φ (belief of a set member is knowledge)."""
        phi = Exists(1)
        assert Implies(
            And((IsNonfaulty(1), Believes(1, phi, NONFAULTY))), phi
        ).is_valid(crash3)

    def test_belief_relative_to_constant_set_is_knowledge_guard(self, crash3):
        """With the rigid all-processor set, B_i^S φ == K_i φ."""
        phi = Exists(0)
        assert (
            Believes(2, phi, EVERYONE).evaluate(crash3)
            == Knows(2, phi).evaluate(crash3)
        )

    def test_belief_with_empty_constant_set_trivial(self, crash3):
        empty = ConstantSet(frozenset())
        assert Believes(0, FALSE, empty).is_valid(crash3)


class TestEveryone:
    def test_everyone_in_empty_set_vacuous(self, crash3):
        empty = ConstantSet(frozenset())
        assert Everyone(empty, FALSE).is_valid(crash3)

    def test_everyone_conjunction_semantics(self, crash3):
        phi = Exists(1)
        everyone = Everyone(NONFAULTY, phi).evaluate(crash3)
        beliefs = [
            Believes(processor, phi, NONFAULTY).evaluate(crash3)
            for processor in range(3)
        ]
        members = NONFAULTY.members_matrix(crash3)
        for run_index in range(len(crash3.runs)):
            for time in range(4):
                expected = all(
                    beliefs[processor].at(run_index, time)
                    for processor in members[run_index][time]
                )
                assert everyone.at(run_index, time) == expected


class TestSetEmpty:
    def test_nonfaulty_never_empty_with_t1(self, crash3):
        assert Not(SetEmpty(NONFAULTY)).is_valid(crash3)

    def test_constant_empty(self, crash3):
        assert SetEmpty(ConstantSet(frozenset())).is_valid(crash3)


class TestCacheKeys:
    def test_distinct_formulas_distinct_keys(self):
        assert Exists(0).cache_key() != Exists(1).cache_key()
        assert (
            Knows(0, Exists(0)).cache_key() != Knows(1, Exists(0)).cache_key()
        )
        assert (
            Believes(0, Exists(0)).cache_key()
            != Knows(0, Exists(0)).cache_key()
        )

    def test_structural_equality_of_keys(self):
        assert (
            And((Exists(0), Exists(1))).cache_key()
            == And((Exists(0), Exists(1))).cache_key()
        )

    def test_run_level_flags(self):
        assert Exists(0).is_run_level()
        assert And((Exists(0), Exists(1))).is_run_level()
        assert not Knows(0, Exists(0)).is_run_level()
        assert not Believes(0, Exists(0)).is_run_level()
