"""Property-based tests (hypothesis) for the model substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.config import InitialConfiguration
from repro.model.failures import (
    CrashBehavior,
    FailurePattern,
    OmissionBehavior,
)
from repro.model.runs import build_run
from repro.model.views import ViewTable

N = 3
HORIZON = 3


def configs(n=N):
    return st.tuples(
        *[st.integers(min_value=0, max_value=1) for _ in range(n)]
    ).map(InitialConfiguration)


def crash_behaviors(n=N, horizon=HORIZON):
    return st.builds(
        CrashBehavior,
        st.integers(min_value=1, max_value=horizon),
        st.sets(
            st.integers(min_value=0, max_value=n - 1), max_size=n - 1
        ).map(frozenset),
    )


def omission_behaviors(n=N, horizon=HORIZON):
    round_omissions = st.dictionaries(
        st.integers(min_value=1, max_value=horizon),
        st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n - 1),
        max_size=horizon,
    )
    return st.builds(OmissionBehavior, round_omissions)


def patterns(behavior_strategy, n=N, t=1):
    return st.dictionaries(
        st.integers(min_value=0, max_value=n - 1),
        behavior_strategy,
        max_size=t,
    ).map(FailurePattern)


@given(config=configs(), pattern=patterns(crash_behaviors()))
@settings(max_examples=60, deadline=None)
def test_run_construction_deterministic(config, pattern):
    """Building the same scenario twice yields identical view matrices —
    a protocol, configuration and failure pattern uniquely determine the
    run (paper, Section 2.3)."""
    table = ViewTable()
    a = build_run(config, pattern, HORIZON, table)
    b = build_run(config, pattern, HORIZON, table)
    assert a.views == b.views
    assert a.deliveries == b.deliveries


@given(config=configs(), pattern=patterns(omission_behaviors()))
@settings(max_examples=60, deadline=None)
def test_views_have_perfect_recall(config, pattern):
    """Every non-initial view's `previous` pointer chains back to time 0
    through the processor's own history."""
    table = ViewTable()
    run = build_run(config, pattern, HORIZON, table)
    for processor in range(config.n):
        for time in range(HORIZON + 1):
            chain = table.history(run.view(processor, time))
            assert len(chain) == time + 1
            assert chain == [
                run.view(processor, earlier) for earlier in range(time + 1)
            ]


@given(config=configs(), pattern=patterns(crash_behaviors()))
@settings(max_examples=60, deadline=None)
def test_deliveries_consistent_with_pattern(config, pattern):
    """The recorded sender sets agree with the pattern's delivered()."""
    table = ViewTable()
    run = build_run(config, pattern, HORIZON, table)
    for round_number in range(1, HORIZON + 1):
        for receiver in range(config.n):
            senders = run.senders_to(receiver, round_number)
            for sender in range(config.n):
                if sender == receiver:
                    continue
                assert (sender in senders) == pattern.delivered(
                    sender, receiver, round_number
                )


@given(config=configs(), pattern=patterns(omission_behaviors()))
@settings(max_examples=60, deadline=None)
def test_known_values_subset_of_config(config, pattern):
    """No processor ever 'knows' a value that nobody holds."""
    table = ViewTable()
    run = build_run(config, pattern, HORIZON, table)
    present = {value for value in config.values}
    for processor in range(config.n):
        final = table.known_values(run.view(processor, HORIZON))
        assert final <= present
        assert config.value_of(processor) in final


@given(config=configs())
@settings(max_examples=30, deadline=None)
def test_failure_free_full_knowledge_after_one_round(config):
    """With no failures everyone knows every initial value at time 1."""
    table = ViewTable()
    run = build_run(config, FailurePattern(()), 1, table)
    for processor in range(config.n):
        known = table.known_initial_values(run.view(processor, 1))
        assert known == {p: config.value_of(p) for p in range(config.n)}


@given(
    config=configs(),
    pattern_a=patterns(omission_behaviors()),
    pattern_b=patterns(omission_behaviors()),
)
@settings(max_examples=40, deadline=None)
def test_view_equality_implies_equal_observations(
    config, pattern_a, pattern_b
):
    """Interning soundness: equal view ids across different runs imply the
    processor heard from the same senders in every round."""
    table = ViewTable()
    run_a = build_run(config, pattern_a, HORIZON, table)
    run_b = build_run(config, pattern_b, HORIZON, table)
    for processor in range(config.n):
        if run_a.view(processor, HORIZON) == run_b.view(processor, HORIZON):
            for round_number in range(1, HORIZON + 1):
                assert run_a.senders_to(
                    processor, round_number
                ) == run_b.senders_to(processor, round_number)
