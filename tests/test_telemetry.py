"""Tests for the telemetry layer: the resource sampler
(:mod:`repro.obs.resource`), the event journal schema
(:mod:`repro.obs.journal`), and the Prometheus text exposition
(:mod:`repro.obs.metrics`)."""

import json
import math
import time

import pytest

from repro import obs
from repro.obs.journal import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    TelemetryJournal,
    fold_journal,
    read_journal,
    validate_event,
    validate_journal,
    worker_latency_quantiles,
)
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    bucket_index,
    prometheus_text,
    quantile_from_values,
    summarize,
)
from repro.obs.resource import ResourceSampler, read_sample


class TestBuckets:
    def test_bounds_are_strictly_increasing(self):
        assert all(
            a < b for a, b in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:])
        )

    def test_bucket_index_respects_bounds(self):
        for value in (1e-9, 0.001, 1.0, 7.5, 1e6):
            index = bucket_index(value)
            if index < len(BUCKET_BOUNDS):
                assert value <= BUCKET_BOUNDS[index]
            if index > 0:
                assert value > BUCKET_BOUNDS[index - 1]

    def test_overflow_bucket(self):
        assert bucket_index(float(2 ** 40)) == len(BUCKET_BOUNDS)

    def test_quantile_from_values_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert quantile_from_values(values, 0.0) == 1.0
        assert quantile_from_values(values, 1.0) == 4.0
        assert quantile_from_values(values, 0.5) == pytest.approx(2.5)
        assert quantile_from_values([], 0.5) == 0.0


class TestResourceSampler:
    def test_read_sample_shape(self):
        sample = read_sample()
        assert sample["rss_bytes"] > 0
        assert sample["cpu_seconds"] >= 0.0
        assert "ts" in sample and "perf" in sample
        json.dumps(sample)  # heartbeat/journal-shippable as-is

    def test_sampler_collects_and_sets_gauges(self):
        inst = obs.Instrumentation()
        seen = []
        sampler = ResourceSampler(
            interval=0.01, sink=inst, on_sample=seen.append
        )
        with sampler:
            deadline = time.time() + 5.0
            while not sampler.samples and time.time() < deadline:
                time.sleep(0.01)
        assert sampler.samples, "no sample within 5s"
        assert seen
        gauges = inst.snapshot()["gauges"]
        assert gauges["rss_bytes"] > 0
        assert gauges["cpu_seconds"] >= 0.0

    def test_on_sample_errors_do_not_kill_sampler(self):
        def boom(sample):
            raise RuntimeError("sink failed")

        sampler = ResourceSampler(interval=0.01, on_sample=boom)
        with sampler:
            deadline = time.time() + 5.0
            while len(sampler.samples) < 2 and time.time() < deadline:
                time.sleep(0.01)
        assert len(sampler.samples) >= 2


class TestJournalSchema:
    def _valid(self, **overrides):
        record = {
            "v": SCHEMA_VERSION,
            "seq": 0,
            "ts": 1.5,
            "event": "shard_done",
            "shard": "s/1",
            "worker": 42,
            "attempt": 0,
            "seconds": 0.25,
            "bytes": 10,
        }
        record.update(overrides)
        return record

    def test_valid_event_has_no_problems(self):
        assert validate_event(self._valid()) == []

    def test_extra_fields_are_allowed(self):
        assert validate_event(self._valid(custom="fine")) == []

    def test_wrong_version_rejected(self):
        problems = validate_event(self._valid(v=SCHEMA_VERSION + 1))
        assert any("schema version" in p for p in problems)

    def test_unknown_event_rejected(self):
        problems = validate_event(self._valid(event="nope"))
        assert any("unknown event" in p for p in problems)

    def test_missing_required_field_rejected(self):
        record = self._valid()
        del record["worker"]
        problems = validate_event(record)
        assert any("missing required field 'worker'" in p for p in problems)

    def test_wrong_field_type_rejected(self):
        problems = validate_event(self._valid(shard=7))
        assert any("field 'shard'" in p for p in problems)

    def test_every_event_type_round_trips(self, tmp_path):
        """An emitted instance of every registered event type validates."""
        fillers = {str: "x", dict: {}, bool: True}
        path = str(tmp_path / "telemetry.jsonl")
        with TelemetryJournal(path, batch="b", experiment="EX") as journal:
            for event, spec in EVENT_TYPES.items():
                if event == "journal_open":
                    continue  # emitted by the constructor
                fields = {
                    name: fillers.get(types[0], 1)
                    for name, types in spec.items()
                }
                assert journal.emit(event, **fields) is not None
        assert validate_journal(path) == []
        events = [r["event"] for r in read_journal(path)]
        assert set(events) == set(EVENT_TYPES)


class TestJournalWriter:
    def test_sequence_is_monotonic_and_validated(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        journal = TelemetryJournal(path, batch="b", experiment="EX")
        seqs = [
            journal.emit("shard_resumed", shard=f"s/{i}") for i in range(5)
        ]
        journal.close()
        assert seqs == [1, 2, 3, 4, 5]  # seq 0 is journal_open
        assert validate_journal(path) == []

    def test_open_truncates_previous_run(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        with TelemetryJournal(path, batch="run1") as journal:
            journal.emit("shard_resumed", shard="s/0")
        with TelemetryJournal(path, batch="run2"):
            pass
        records = list(read_journal(path))
        assert len(records) == 1
        assert records[0]["batch"] == "run2"

    def test_emit_after_close_is_a_noop(self, tmp_path):
        journal = TelemetryJournal(str(tmp_path / "t.jsonl"), batch="b")
        journal.close()
        assert journal.emit("shard_resumed", shard="s/0") is None

    def test_unserializable_payload_disables_journal(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        journal = TelemetryJournal(path, batch="b")
        assert journal.emit("health", snapshot={"bad": object()}) is None
        # disabled, not crashed: later emits are silently dropped
        assert journal.emit("shard_resumed", shard="s/0") is None
        assert validate_journal(path) == []  # journal_open alone is valid

    def test_validate_flags_malformed_and_inverted_lines(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryJournal(path, batch="b") as journal:
            journal.emit("shard_resumed", shard="s/0")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(
                json.dumps(
                    {"v": SCHEMA_VERSION, "seq": 0, "ts": 1.0,
                     "event": "shard_resumed", "shard": "s/1"}
                )
                + "\n"
            )
        problems = validate_journal(path)
        assert any("not valid JSON" in p for p in problems)
        assert any("monotonically" in p for p in problems)

    def test_empty_journal_is_a_problem(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        assert validate_journal(path) == ["journal holds no events"]


class TestFoldJournal:
    def test_fold_reconstructs_metrics_and_workers(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryJournal(path, batch="b", experiment="EX") as journal:
            journal.emit(
                "shard_started", shard="s/0", worker=7, attempt=0
            )
            journal.emit(
                "resource_sample", scope="worker", worker=7,
                rss_bytes=1000, cpu_seconds=0.5,
            )
            journal.emit(
                "shard_done", shard="s/0", worker=7, attempt=0,
                seconds=0.2, bytes=5,
            )
            journal.emit(
                "counter_delta", scope="supervisor",
                delta={"counters": {"exec_shards_completed": 1}},
            )
            journal.emit("batch_done", seconds=1.0, shards=1, ok=True)
        folded = fold_journal(read_journal(path))
        assert folded["meta"]["experiment"] == "EX"
        assert folded["metrics"]["counters"]["exec_shards_completed"] == 1
        worker = folded["workers"][7]
        assert worker["shards_done"] == 1
        assert worker["inflight"] is None
        assert worker["last_sample"]["rss_bytes"] == 1000
        quantiles = worker_latency_quantiles(worker)
        assert quantiles["p50"] == pytest.approx(0.2)
        assert quantiles["p95"] == pytest.approx(0.2)
        assert folded["done"]["ok"] is True

    def test_fold_tracks_inflight_shards(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryJournal(path, batch="b") as journal:
            journal.emit(
                "shard_started", shard="s/9", worker=3, attempt=2
            )
        folded = fold_journal(read_journal(path))
        inflight = folded["workers"][3]["inflight"]
        assert inflight["shard"] == "s/9"
        assert inflight["attempt"] == 2


class TestPrometheusText:
    def _summary(self):
        inst = obs.Instrumentation()
        inst.count("exec_shards_completed", 3)
        inst.gauge("rss_bytes", 12345)
        with inst.stage("build_system"):
            pass
        for value in (0.1, 0.2, 3.0):
            inst.observe("exec_shard_seconds", value)
        return inst.snapshot()

    def test_counters_gauges_and_stage_totals(self):
        text = prometheus_text(self._summary())
        assert "# TYPE repro_exec_shards_completed_total counter" in text
        assert "repro_exec_shards_completed_total 3" in text
        assert "repro_rss_bytes 12345" in text
        assert 'repro_stage_seconds_total{stage="build_system"}' in text

    def test_histogram_exposition_is_cumulative_and_monotonic(self):
        text = prometheus_text(self._summary())
        counts = []
        for line in text.splitlines():
            if line.startswith("repro_exec_shard_seconds_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts, "no bucket lines emitted"
        assert counts == sorted(counts)  # cumulative => monotonic
        assert counts[-1] == 3  # the +Inf bucket equals the count
        assert "repro_exec_shard_seconds_count 3" in text
        assert 'le="+Inf"' in text

    def test_every_line_parses(self):
        """Every non-comment line is `name{labels} value` with a finite
        float value — the shape Prometheus' text parser requires."""
        for line in prometheus_text(self._summary()).splitlines():
            if not line or line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name[0].isalpha()
            assert math.isfinite(float(value))

    def test_empty_summary_emits_comment_only(self):
        text = prometheus_text(
            {"counters": {}, "timers": {}, "histograms": {}, "gauges": {}}
        )
        assert text.startswith("#")

    def test_metric_names_sanitized(self):
        inst = obs.Instrumentation()
        inst.count("weird-name.with:chars", 1)
        text = prometheus_text(inst.snapshot())
        assert "repro_weird_name_with_chars_total 1" in text


class TestHistogramSummaries:
    def test_summarize_handles_overflow_bucket(self):
        inst = obs.Instrumentation()
        inst.observe("huge", float(2 ** 40))
        digest = summarize(inst.snapshot()["histograms"]["huge"])
        assert digest["count"] == 1
        assert digest["p50"] >= BUCKET_BOUNDS[-1]
