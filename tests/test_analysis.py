"""Tests for the analysis subpackage: diagrams, introspection, knowledge
reports and reachability-component inspection."""

import pytest

from repro.analysis.components import component_summaries, witness_path
from repro.analysis.diagram import (
    render_decision_timeline,
    render_outcome_diagram,
    render_run_diagram,
)
from repro.analysis.introspection import (
    discovered_failure_counts,
    failure_evidence,
    visible_deliveries,
    waste,
)
from repro.analysis.knowledge_report import (
    belief_matrix,
    knowledge_table,
    who_learns_value,
)
from repro.core.outcomes import RunOutcome
from repro.knowledge.formulas import Exists
from repro.knowledge.nonrigid import NONFAULTY
from repro.model.config import InitialConfiguration
from repro.model.failures import (
    CrashBehavior,
    FailurePattern,
    OmissionBehavior,
)
from repro.model.runs import build_run
from repro.model.views import ViewTable


class TestDiagram:
    def test_basic_markers(self):
        config = InitialConfiguration((0, 1, 1))
        pattern = FailurePattern({0: CrashBehavior(1, frozenset((1,)))})
        diagram = render_run_diagram(
            config, pattern, 2, [(0, 0), (0, 1), (0, 2)]
        )
        assert "p0*" in diagram  # faulty marker
        assert "[0]" in diagram and "[1]" in diagram
        assert "D0" in diagram
        assert "x0" in diagram  # dropped message from p0
        assert "crash@r1" in diagram

    def test_failure_free_has_no_drop_markers(self):
        config = InitialConfiguration((1, 1))
        diagram = render_run_diagram(config, FailurePattern(()), 2)
        assert "x" not in diagram.splitlines()[1]

    def test_outcome_diagram(self):
        run = RunOutcome(
            config=InitialConfiguration((0, 1)),
            pattern=FailurePattern(()),
            decisions=((0, 0), (0, 1)),
            horizon=2,
        )
        diagram = render_outcome_diagram(run)
        assert "D0" in diagram

    def test_decision_timeline(self):
        config = InitialConfiguration((0, 1))
        pattern = FailurePattern(())
        a = RunOutcome(config, pattern, ((0, 0), (0, 1)), 2)
        b = RunOutcome(config, pattern, ((0, 1), None), 2)
        timeline = render_decision_timeline([a, b], ["fast", "slow"])
        assert "0@t0" in timeline
        assert "never" in timeline

    def test_timeline_rejects_mismatched_runs(self):
        a = RunOutcome(
            InitialConfiguration((0, 1)), FailurePattern(()), ((0, 0), (0, 0)), 2
        )
        b = RunOutcome(
            InitialConfiguration((1, 1)), FailurePattern(()), ((1, 0), (1, 0)), 2
        )
        with pytest.raises(ValueError):
            render_decision_timeline([a, b], ["a", "b"])


class TestIntrospection:
    def _run(self, pattern=FailurePattern(()), values=(0, 1, 1), horizon=2):
        table = ViewTable()
        run = build_run(InitialConfiguration(values), pattern, horizon, table)
        return table, run

    def test_visible_deliveries_failure_free(self):
        table, run = self._run()
        deliveries = visible_deliveries(table, run.view(0, 2))
        # own receipts for both rounds plus everyone's round-1 receipts
        assert deliveries[(0, 1)] == frozenset((1, 2))
        assert deliveries[(0, 2)] == frozenset((1, 2))
        assert deliveries[(1, 1)] == frozenset((0, 2))

    def test_visible_deliveries_bounded_by_information_flow(self):
        table, run = self._run()
        deliveries = visible_deliveries(table, run.view(0, 1))
        # at time 1 processor 0 cannot yet see others' round-1 receipts
        assert (1, 1) not in deliveries
        assert deliveries == {(0, 1): frozenset((1, 2))}

    def test_failure_evidence_from_direct_miss(self):
        pattern = FailurePattern({2: CrashBehavior(1, frozenset())})
        table, run = self._run(pattern)
        evidence = failure_evidence(table, run.view(0, 1), 3)
        assert evidence == {2: 1}

    def test_failure_evidence_via_relay(self):
        # processor 0 omits only to 1 in round 1: processor 2 sees nothing
        # directly but learns about it from 1's relayed state at time 2.
        pattern = FailurePattern({0: OmissionBehavior({1: [1]})})
        table, run = self._run(pattern)
        assert failure_evidence(table, run.view(2, 1), 3) == {}
        assert failure_evidence(table, run.view(2, 2), 3) == {0: 1}

    def test_discovered_counts_and_waste(self):
        pattern = FailurePattern(
            {
                0: CrashBehavior(1, frozenset()),
                1: CrashBehavior(1, frozenset()),
            }
        )
        table = ViewTable()
        run = build_run(InitialConfiguration((1, 1, 1, 1)), pattern, 2, table)
        view = run.view(2, 1)
        counts = discovered_failure_counts(table, view, 4)
        assert counts[1] == 2  # both silent crashes exposed in round 1
        assert waste(table, view, 4) == 1

    def test_waste_zero_failure_free(self):
        table, run = self._run()
        assert waste(table, run.view(1, 2), 3) == 0

    def test_hidden_crash_has_zero_waste(self):
        # crash that delivers to everyone it can in round 1 but is silent
        # in round 2: exposed only at round 2 -> D(2)=1 -> waste 0.
        pattern = FailurePattern({0: CrashBehavior(2, frozenset())})
        table, run = self._run(pattern)
        assert waste(table, run.view(1, 2), 3) == 0


class TestKnowledgeReport:
    def test_knowledge_table_renders(self, crash3):
        text = knowledge_table(
            crash3, 0, [("∃0", Exists(0)), ("∃1", Exists(1))]
        )
        assert "time" in text and "∃0" in text
        assert text.count("\n") >= crash3.horizon + 2

    def test_belief_matrix_marks_faulty(self, crash3):
        # find a run with a faulty processor
        for run_index, run in enumerate(crash3.runs):
            if run.pattern.num_faulty() == 1:
                break
        text = belief_matrix(crash3, run_index, Exists(0), "∃0")
        assert "(faulty)" in text

    def test_who_learns_value_failure_free(self, crash3):
        index = crash3.run_index_for(
            InitialConfiguration((0, 1, 1)), FailurePattern(())
        )
        learners = who_learns_value(crash3, index, 0)
        assert learners[0] == 0  # holder believes at time 0
        assert learners[1] == 1 and learners[2] == 1

    def test_who_learns_value_absent_when_never(self, crash3):
        index = crash3.run_index_for(
            InitialConfiguration((1, 1, 1)), FailurePattern(())
        )
        assert who_learns_value(crash3, index, 0) == {}


class TestComponents:
    def test_summaries_cover_all_occurring_runs(self, crash3):
        summaries = component_summaries(
            crash3, NONFAULTY, {"∃1": Exists(1)}
        )
        covered = sum(len(summary.run_indices) for summary in summaries)
        assert covered == len(crash3.runs)  # N is never empty with t=1

    def test_uniform_fact_matches_continual_ck(self, crash3):
        from repro.knowledge.formulas import ContinualCommon

        truth = ContinualCommon(NONFAULTY, Exists(1)).evaluate(crash3)
        for summary in component_summaries(
            crash3, NONFAULTY, {"∃1": Exists(1)}
        ):
            for run_index in summary.run_indices:
                assert truth.at(run_index, 0) == summary.fact_uniform["∃1"]

    def test_witness_path_exists_within_component(self, crash3):
        summaries = component_summaries(crash3, NONFAULTY)
        big = summaries[0]
        source, target = big.run_indices[0], big.run_indices[-1]
        path = witness_path(crash3, NONFAULTY, source, target)
        assert path is not None
        # every link is a genuine shared-state occurrence
        for link in path:
            run_a = crash3.runs[link.run_a]
            run_b = crash3.runs[link.run_b]
            assert run_a.view(link.processor, link.time_a) == run_b.view(
                link.processor, link.time_b
            )
            assert link.describe(crash3)

    def test_witness_path_trivial_for_same_run(self, crash3):
        assert witness_path(crash3, NONFAULTY, 0, 0) == []

    def test_witness_path_none_across_components(self, crash3):
        from repro.protocols.f_lambda import f_lambda_sequence
        from repro.knowledge.nonrigid import nonfaulty_and_zeros

        _, first, _ = f_lambda_sequence(crash3)
        nonrigid = nonfaulty_and_zeros(first)
        summaries = component_summaries(crash3, nonrigid)
        if len(summaries) >= 2:
            source = summaries[0].run_indices[0]
            target = summaries[1].run_indices[0]
            assert witness_path(crash3, nonrigid, source, target) is None
