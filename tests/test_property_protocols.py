"""Property-based tests for the concrete protocols on random scenarios at
sizes beyond exhaustive knowledge evaluation (n = 5, 6): the
specification-level guarantees must hold on every sampled run."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.specs import check_eba, check_sba
from repro.model.failures import FailureMode
from repro.protocols.chain_eba import chain_eba
from repro.protocols.flood_sba import flood_sba
from repro.protocols.p0 import p0, p1
from repro.protocols.p0opt import p0opt
from repro.sim.engine import run_over_scenarios
from repro.workloads.scenarios import random_scenarios


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_p0_eba_on_random_crash_scenarios(seed):
    scenarios = random_scenarios(
        FailureMode.CRASH, 5, 2, 4, count=40, seed=seed
    )
    outcome = run_over_scenarios(p0(), scenarios, 4, 2)
    assert check_eba(outcome).ok


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_p0opt_eba_on_random_crash_scenarios(seed):
    scenarios = random_scenarios(
        FailureMode.CRASH, 5, 2, 4, count=40, seed=seed
    )
    outcome = run_over_scenarios(p0opt(), scenarios, 4, 2)
    assert check_eba(outcome).ok


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_p0opt_dominates_p0_on_random_crash_scenarios(seed):
    from repro.core.domination import compare

    scenarios = random_scenarios(
        FailureMode.CRASH, 6, 2, 4, count=30, seed=seed
    )
    opt = run_over_scenarios(p0opt(), scenarios, 4, 2)
    base = run_over_scenarios(p0(), scenarios, 4, 2)
    assert compare(opt, base).dominates


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_flood_sba_on_random_crash_scenarios(seed):
    scenarios = random_scenarios(
        FailureMode.CRASH, 5, 2, 4, count=40, seed=seed
    )
    outcome = run_over_scenarios(flood_sba(), scenarios, 4, 2)
    assert check_sba(outcome).ok


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_chain_eba_on_random_omission_scenarios(seed):
    scenarios = random_scenarios(
        FailureMode.OMISSION, 5, 2, 4, count=40, seed=seed
    )
    outcome = run_over_scenarios(chain_eba(), scenarios, 4, 2)
    assert check_eba(outcome).ok


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_chain_eba_f_plus_1_on_random_omission_scenarios(seed):
    scenarios = random_scenarios(
        FailureMode.OMISSION, 5, 2, 4, count=40, seed=seed
    )
    outcome = run_over_scenarios(chain_eba(), scenarios, 4, 2)
    for run in outcome:
        latest = run.max_nonfaulty_decision_time()
        assert latest is not None
        assert latest <= run.pattern.num_faulty() + 1


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_p0_p1_symmetry_on_mirrored_scenarios(seed):
    """P1 on a configuration equals P0 on the bit-flipped configuration
    (with values swapped) — the 0/1 symmetry the paper leans on."""
    from repro.model.config import InitialConfiguration

    scenarios = random_scenarios(
        FailureMode.CRASH, 4, 1, 3, count=25, seed=seed
    )
    flipped = [
        (InitialConfiguration([1 - v for v in config.values]), pattern)
        for config, pattern in scenarios
    ]
    p1_out = run_over_scenarios(p1(), scenarios, 3, 1)
    p0_out = run_over_scenarios(p0(), flipped, 3, 1)
    for (config, pattern), (flipped_config, _) in zip(scenarios, flipped):
        run_p1 = p1_out.get((config, pattern))
        run_p0 = p0_out.get((flipped_config, pattern))
        for processor in range(4):
            record_p1 = run_p1.decisions[processor]
            record_p0 = run_p0.decisions[processor]
            if record_p1 is None:
                assert record_p0 is None
            else:
                value, time = record_p1
                assert record_p0 == (1 - value, time)
