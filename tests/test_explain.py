"""Tests for :mod:`repro.knowledge.explain` — explanation soundness.

The acceptance bar: for every catalog formula of E4/E5/E21, the explanation
must be *machine-checkable* — re-evaluating the formula (and its operand at
the witness point) reproduces the recorded verdict, every
indistinguishability step is a genuinely shared view, and component
evidence really covers the point's reachability component.
"""

import json

import pytest

from repro.errors import EvaluationError
from repro.knowledge.explain import (
    EXPLAIN_CATALOG,
    catalog_system,
    default_point,
    explain,
    fixpoint_eliminations,
    render_explanation,
    render_witness_table,
)
from repro.knowledge.formulas import (
    And,
    Believes,
    Common,
    ContinualCommon,
    EventualCommon,
    Everyone,
    Exists,
    Knows,
    Not,
)
from repro.knowledge.nonrigid import NONFAULTY


def _points_with_verdict(system, formula, verdict, limit=3):
    truth = formula.evaluate(system)
    found = []
    for run_index in range(len(system.runs)):
        for time in range(system.horizon + 1):
            if truth.at(run_index, time) == verdict:
                found.append((run_index, time))
                if len(found) == limit:
                    return found
    return found


_CATALOG_CASES = [
    (experiment_id, key)
    for experiment_id, entries in sorted(EXPLAIN_CATALOG.items())
    for key in sorted(entries)
]


class TestCatalogMachineCheck:
    """Every E4/E5/E21 catalog formula: explanations verify at failing
    AND succeeding points."""

    @pytest.mark.parametrize("experiment_id,key", _CATALOG_CASES)
    def test_explanations_are_sound(self, experiment_id, key):
        entry = EXPLAIN_CATALOG[experiment_id][key]
        system = catalog_system(entry)
        formula = entry.build(system)
        points = _points_with_verdict(system, formula, False, limit=2)
        points += _points_with_verdict(system, formula, True, limit=2)
        assert points, "formula has no points at all"
        for point in points:
            explanation = explain(system, formula, point)
            problems = explanation.check(system)
            assert not problems, (
                f"{experiment_id}/{key} at {point}: {problems}"
            )

    @pytest.mark.parametrize("experiment_id,key", _CATALOG_CASES)
    def test_failure_witness_reproduces_verdict(self, experiment_id, key):
        """Re-evaluating the operand at the witness reproduces the
        failure for every catalog formula that fails somewhere."""
        entry = EXPLAIN_CATALOG[experiment_id][key]
        system = catalog_system(entry)
        formula = entry.build(system)
        failing = _points_with_verdict(system, formula, False, limit=1)
        if not failing:
            pytest.skip("formula valid everywhere on this system")
        explanation = explain(system, formula, failing[0])
        assert not explanation.verdict
        assert explanation.witness is not None
        operand = getattr(formula, "operand", None)
        assert operand is not None
        assert not operand.holds_at(system, *explanation.witness)

    @pytest.mark.parametrize("experiment_id,key", _CATALOG_CASES)
    def test_to_dict_is_json_serializable(self, experiment_id, key):
        entry = EXPLAIN_CATALOG[experiment_id][key]
        system = catalog_system(entry)
        formula = entry.build(system)
        explanation = explain(
            system, formula, default_point(system, formula)
        )
        json.dumps(explanation.to_dict())


class TestChainSoundness:
    def test_knows_failure_chain_shares_the_view(self, crash3):
        formula = Knows(0, Exists(1))
        point = _points_with_verdict(crash3, formula, False, limit=1)[0]
        explanation = explain(crash3, formula, point)
        (step,) = explanation.chain
        assert step.processor == 0
        view_at_point = crash3.runs[point[0]].view(0, point[1])
        view_at_witness = crash3.runs[step.to_point[0]].view(
            0, step.to_point[1]
        )
        assert view_at_point == view_at_witness == step.view

    def test_fixpoint_chain_levels_strictly_decrease(self, crash3):
        formula = Common(NONFAULTY, Exists(1))
        point = _points_with_verdict(crash3, formula, False, limit=1)[0]
        explanation = explain(crash3, formula, point)
        _, eliminated, _ = fixpoint_eliminations(
            crash3, NONFAULTY, formula.operand, "common"
        )
        levels = [
            eliminated[step.from_point[0]][step.from_point[1]]
            for step in explanation.chain
        ]
        assert all(
            earlier > later
            for earlier, later in zip(levels, levels[1:])
        )

    def test_eliminations_agree_with_semantics(self, crash3):
        for variant, formula in (
            ("common", Common(NONFAULTY, Exists(1))),
            ("continual",
             ContinualCommon(NONFAULTY, Exists(1), force_fixpoint=True)),
            ("eventual", EventualCommon(NONFAULTY, Exists(1))),
        ):
            final, eliminated, iterations = fixpoint_eliminations(
                crash3, NONFAULTY, formula.operand, variant
            )
            assert final == formula.evaluate(crash3)
            assert iterations >= 1
            for run_index in range(len(crash3.runs)):
                for time in range(crash3.horizon + 1):
                    level = eliminated[run_index][time]
                    surviving = final.at(run_index, time)
                    assert (level is None) == surviving
                    if level is not None:
                        assert 1 <= level <= iterations

    def test_unknown_variant_rejected(self, crash3):
        with pytest.raises(EvaluationError):
            fixpoint_eliminations(crash3, NONFAULTY, Exists(1), "bogus")

    def test_component_evidence_covers_reachable_runs(self, crash3):
        from repro.knowledge.semantics import run_reachability_components

        formula = ContinualCommon(NONFAULTY, Exists(1))
        truth = formula.evaluate(crash3)
        components = run_reachability_components(crash3, NONFAULTY)
        for verdict in (True, False):
            for point in _points_with_verdict(
                crash3, formula, verdict, limit=1
            ):
                explanation = explain(crash3, formula, point)
                if components[point[0]] == -1:
                    assert explanation.component_runs is None
                    continue
                assert explanation.component_runs is not None
                assert point[0] in explanation.component_runs
                assert set(explanation.component_runs) == {
                    run_index
                    for run_index, rep in enumerate(components)
                    if rep == components[point[0]]
                }
        assert truth is not None  # keep the evaluation alive for clarity

    def test_tampered_witness_detected(self, crash3):
        formula = Knows(0, Exists(1))
        point = _points_with_verdict(crash3, formula, False, limit=1)[0]
        explanation = explain(crash3, formula, point)
        # Redirect the witness to a point where the operand holds.
        good = _points_with_verdict(crash3, Exists(1), True, limit=1)[0]
        explanation.witness = good
        explanation.chain[-1].to_point = good
        problems = explanation.check(crash3)
        assert problems, "tampered explanation passed the machine check"

    def test_tampered_chain_view_detected(self, crash3):
        formula = Common(NONFAULTY, Exists(1))
        point = _points_with_verdict(crash3, formula, False, limit=1)[0]
        explanation = explain(crash3, formula, point)
        explanation.chain[0].view = explanation.chain[0].view + 1
        assert explanation.check(crash3)


class TestOperatorCoverage:
    def test_believes_vacuous_success_noted(self, crash3):
        # B_0^N of anything is vacuous only if 0 is nowhere nonfaulty at
        # same-state points; over crash3 processor 0 is nonfaulty in the
        # failure-free run, so use a success point instead.
        formula = Believes(0, Exists(1))
        point = _points_with_verdict(crash3, formula, True, limit=1)[0]
        explanation = explain(crash3, formula, point)
        assert explanation.verdict
        assert not explanation.chain
        assert not explanation.check(crash3)

    def test_everyone_failure_names_a_member(self, crash3):
        formula = Everyone(NONFAULTY, Exists(1))
        point = _points_with_verdict(crash3, formula, False, limit=1)[0]
        explanation = explain(crash3, formula, point)
        (step,) = explanation.chain
        members = NONFAULTY.members_matrix(crash3)
        assert step.processor in members[point[0]][point[1]]
        assert not explanation.check(crash3)

    def test_generic_fallback_for_connectives(self, crash3):
        formula = And((Exists(1), Not(Exists(0))))
        explanation = explain(crash3, formula, (0, 0))
        assert explanation.kind == "generic"
        assert not explanation.check(crash3)

    def test_out_of_range_point_rejected(self, crash3):
        with pytest.raises(EvaluationError):
            explain(crash3, Exists(1), (len(crash3.runs), 0))


class TestRendering:
    def test_render_explanation_mentions_witness(self, crash3):
        formula = Common(NONFAULTY, Exists(1))
        point = _points_with_verdict(crash3, formula, False, limit=1)[0]
        explanation = explain(crash3, formula, point)
        text = render_explanation(explanation)
        assert "FAILS" in text
        assert "counterexample point" in text
        assert render_witness_table(explanation) in text

    def test_explain_cli_lists_and_checks(self, capsys):
        from repro.cli import main

        assert main(["explain", "E4"]) == 0
        listing = capsys.readouterr().out
        assert "common-exists1" in listing
        assert main(["explain", "E04", "common-exists1"]) == 0
        output = capsys.readouterr().out
        assert "machine check: OK" in output

    def test_explain_cli_unknown_formula(self, capsys):
        from repro.cli import main

        assert main(["explain", "E4", "nope"]) == 2

    def test_explain_cli_explicit_point(self, capsys):
        from repro.cli import main

        assert main(
            ["explain", "E4", "everyone-exists1", "--point", "0:0"]
        ) == 0
        assert "machine check: OK" in capsys.readouterr().out


class TestExperimentWitnessPayloads:
    def test_e4_strictness_witness_payload(self):
        from repro.experiments.e04_continual_ck import run

        result = run()
        assert result.ok
        witness = result.data.get("witness")
        assert witness is not None
        assert witness["verdict"] is False
        assert "strictness witness" in result.table
        json.dumps(witness)

    def test_e21_weaker_witness_payload(self):
        from repro.experiments.e21_eventual_ck import run

        result = run()
        assert result.ok
        witness = result.data.get("witness")
        assert witness is not None
        assert witness["eliminated_at"] >= 1
        assert "strictly-weaker witness" in result.table

    def test_e5_decision_certificate_payload(self):
        from repro.experiments.e05_knowledge_conditions import run

        result = run()
        assert result.ok
        certificate = result.data.get("certificate")
        assert certificate is not None
        assert certificate["verdict"] is True
        assert "decision certificate" in result.table
