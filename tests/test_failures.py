"""Unit tests for faulty behaviours and failure patterns."""

import pytest

from repro.errors import ConfigurationError
from repro.model.failures import (
    NO_FAILURES,
    CrashBehavior,
    FailureMode,
    FailurePattern,
    OmissionBehavior,
    behavior_mode,
    make_pattern,
)


class TestCrashBehavior:
    def test_sends_before_crash_round(self):
        behavior = CrashBehavior(2, frozenset())
        assert behavior.sends_to(1, 1)

    def test_crash_round_subset_delivery(self):
        behavior = CrashBehavior(2, frozenset((1,)))
        assert behavior.sends_to(1, 2)
        assert not behavior.sends_to(2, 2)

    def test_silent_after_crash(self):
        behavior = CrashBehavior(1, frozenset((1, 2)))
        assert not behavior.sends_to(1, 2)
        assert not behavior.sends_to(2, 5)

    def test_rejects_round_zero(self):
        with pytest.raises(ConfigurationError):
            CrashBehavior(0, frozenset())

    def test_visibility_within_horizon(self):
        # Crash at round 4 is invisible when the horizon is 3.
        assert not CrashBehavior(4, frozenset()).is_visible_within(3, 3, 0)
        assert CrashBehavior(3, frozenset()).is_visible_within(3, 3, 0)

    def test_full_delivery_at_horizon_invisible(self):
        # Crashing at the horizon while delivering to everyone deviates
        # only after the horizon.
        behavior = CrashBehavior(3, frozenset((1, 2)))
        assert not behavior.is_visible_within(3, 3, 0)


class TestOmissionBehavior:
    def test_omits_listed_round(self):
        behavior = OmissionBehavior({2: [1]})
        assert behavior.sends_to(1, 1)
        assert not behavior.sends_to(1, 2)
        assert behavior.sends_to(2, 2)

    def test_unlisted_rounds_send(self):
        behavior = OmissionBehavior({1: [2]})
        assert behavior.sends_to(2, 3)

    def test_empty_sets_dropped_from_canonical_form(self):
        behavior = OmissionBehavior({1: [], 2: [1]})
        assert behavior.omissions == ((2, frozenset((1,))),)

    def test_equal_behaviours_hash_equal(self):
        a = OmissionBehavior({1: [2, 1]})
        b = OmissionBehavior({1: [1, 2]})
        assert a == b
        assert hash(a) == hash(b)

    def test_rejects_round_zero(self):
        with pytest.raises(ConfigurationError):
            OmissionBehavior({0: [1]})

    def test_rejects_duplicate_round(self):
        with pytest.raises(ConfigurationError):
            OmissionBehavior([(1, [2]), (1, [3])])

    def test_visibility(self):
        assert OmissionBehavior({2: [1]}).is_visible_within(3, 3, 0)
        assert not OmissionBehavior({4: [1]}).is_visible_within(3, 3, 0)


class TestFailurePattern:
    def test_empty_pattern_is_failure_free(self):
        assert NO_FAILURES.faulty == frozenset()
        assert NO_FAILURES.num_faulty() == 0
        assert NO_FAILURES.mode() is None

    def test_nonfaulty_complement(self):
        pattern = FailurePattern({1: CrashBehavior(1, frozenset())})
        assert pattern.nonfaulty(3) == frozenset((0, 2))

    def test_delivered_nonfaulty_always(self):
        pattern = FailurePattern({1: CrashBehavior(1, frozenset())})
        assert pattern.delivered(0, 2, 5)

    def test_delivered_respects_behaviour(self):
        pattern = FailurePattern({1: CrashBehavior(2, frozenset((0,)))})
        assert pattern.delivered(1, 0, 2)
        assert not pattern.delivered(1, 2, 2)
        assert not pattern.delivered(1, 0, 3)

    def test_self_delivery_vacuous(self):
        pattern = FailurePattern({0: OmissionBehavior({1: [0, 1]})})
        assert pattern.delivered(0, 0, 1)

    def test_rejects_duplicate_processor(self):
        with pytest.raises(ConfigurationError):
            FailurePattern(
                [(0, CrashBehavior(1, frozenset())),
                 (0, CrashBehavior(2, frozenset()))]
            )

    def test_validate_fault_bound(self):
        pattern = FailurePattern(
            {0: CrashBehavior(1, frozenset()), 1: CrashBehavior(1, frozenset())}
        )
        with pytest.raises(ConfigurationError):
            pattern.validate(3, 1)
        assert pattern.validate(3, 2) is pattern

    def test_validate_processor_range(self):
        pattern = FailurePattern({5: CrashBehavior(1, frozenset())})
        with pytest.raises(ConfigurationError):
            pattern.validate(3, 2)

    def test_mode_detection(self):
        crash = FailurePattern({0: CrashBehavior(1, frozenset())})
        omission = FailurePattern({0: OmissionBehavior({1: [1]})})
        assert crash.mode() is FailureMode.CRASH
        assert omission.mode() is FailureMode.OMISSION

    def test_hashable(self):
        a = FailurePattern({0: CrashBehavior(1, frozenset())})
        b = FailurePattern({0: CrashBehavior(1, frozenset())})
        assert a == b and hash(a) == hash(b)


class TestMakePattern:
    def test_mode_enforcement(self):
        with pytest.raises(ConfigurationError):
            make_pattern(
                {0: CrashBehavior(1, frozenset())},
                n=3,
                t=1,
                mode=FailureMode.OMISSION,
            )

    def test_accepts_matching_mode(self):
        pattern = make_pattern(
            {0: OmissionBehavior({1: [1]})},
            n=3,
            t=1,
            mode=FailureMode.OMISSION,
        )
        assert pattern.num_faulty() == 1

    def test_behavior_mode_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            behavior_mode("not a behaviour")
