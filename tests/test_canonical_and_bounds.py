"""Tests for cross-mode encodings and the [DS82] lower-bound checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lower_bounds import (
    check_ds82_bounds,
    max_gap_behind_races,
    worst_case_decision_time,
)
from repro.errors import ConfigurationError
from repro.model.adversary import ExhaustiveCrashAdversary
from repro.model.canonical import (
    crash_as_omission,
    embed_crash_patterns,
    pattern_as_omission,
)
from repro.model.config import InitialConfiguration
from repro.model.failures import (
    CrashBehavior,
    FailurePattern,
    OmissionBehavior,
    ReceiveOmissionBehavior,
)
from repro.model.runs import build_run
from repro.model.views import ViewTable


class TestCrashAsOmission:
    def test_silent_crash_encoding(self):
        encoded = crash_as_omission(CrashBehavior(2, frozenset()), 3, 3, 0)
        assert encoded.omitted(1) == frozenset()
        assert encoded.omitted(2) == frozenset((1, 2))
        assert encoded.omitted(3) == frozenset((1, 2))

    def test_partial_crash_round_encoding(self):
        encoded = crash_as_omission(
            CrashBehavior(1, frozenset((1,))), 3, 2, 0
        )
        assert encoded.omitted(1) == frozenset((2,))
        assert encoded.omitted(2) == frozenset((1, 2))

    def test_crash_beyond_horizon_is_vacuous(self):
        encoded = crash_as_omission(CrashBehavior(4, frozenset()), 3, 3, 0)
        assert encoded.omissions == ()

    def test_pattern_encoding_rejects_other_modes(self):
        pattern = FailurePattern({0: ReceiveOmissionBehavior({1: [1]})})
        with pytest.raises(ConfigurationError):
            pattern_as_omission(pattern, 3, 3)

    def test_pattern_encoding_passes_omissions_through(self):
        behavior = OmissionBehavior({1: [2]})
        pattern = FailurePattern({0: behavior})
        encoded = pattern_as_omission(pattern, 3, 3)
        assert encoded.behavior_of(0) == behavior

    def test_embed_deduplicates(self):
        patterns = [
            FailurePattern({0: CrashBehavior(1, frozenset())}),
            FailurePattern({0: CrashBehavior(1, frozenset())}),
        ]
        assert len(embed_crash_patterns(patterns, 3, 3)) == 1

    def test_exhaustive_family_embeds_injectively(self):
        patterns = list(ExhaustiveCrashAdversary(3, 1, 3).patterns())
        embedded = embed_crash_patterns(patterns, 3, 3)
        assert len(embedded) == len(patterns)


@given(
    values=st.tuples(*[st.integers(min_value=0, max_value=1)] * 3),
    crash_round=st.integers(min_value=1, max_value=3),
    receivers=st.sets(st.integers(min_value=0, max_value=2), max_size=2),
    faulty=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=60, deadline=None)
def test_property_encoding_preserves_runs(
    values, crash_round, receivers, faulty
):
    """A crash pattern and its omission encoding produce identical runs:
    same views, same deliveries, same nonfaulty set."""
    config = InitialConfiguration(values)
    crash_pattern = FailurePattern(
        {faulty: CrashBehavior(crash_round, frozenset(receivers))}
    )
    omission_pattern = pattern_as_omission(crash_pattern, 3, 3)
    table = ViewTable()
    crash_run = build_run(config, crash_pattern, 3, table)
    omission_run = build_run(config, omission_pattern, 3, table)
    assert crash_run.views == omission_run.views
    assert crash_run.deliveries == omission_run.deliveries
    assert crash_run.nonfaulty == omission_run.nonfaulty


class TestLowerBounds:
    @pytest.fixture(scope="class")
    def race_outcomes(self, crash3):
        from repro.protocols.p0 import p0, p1
        from repro.sim.engine import run_over_scenarios

        scenarios = crash3.scenarios()
        return (
            run_over_scenarios(p0(), scenarios, crash3.horizon, crash3.t),
            run_over_scenarios(p1(), scenarios, crash3.horizon, crash3.t),
        )

    def test_worst_case_report(self, race_outcomes):
        race_zero, _ = race_outcomes
        report = worst_case_decision_time(race_zero)
        assert report.worst_time == 2  # t + 1
        assert report.witness is not None
        assert report.undecided == 0
        assert report.meets_t_plus_1(1)

    def test_race_gap_between_the_races(self, race_outcomes):
        """P0 lags min(P0, P1) by exactly t + 1 somewhere: the all-ones
        runs where P1 decides at time 0 and P0 waits until t + 1."""
        race_zero, race_one = race_outcomes
        report = max_gap_behind_races(race_zero, race_zero, race_one)
        assert report.max_gap == 2  # t + 1

    def test_every_zoo_protocol_consistent_with_ds82(
        self, crash3, race_outcomes
    ):
        from repro.protocols.fip import fip
        from repro.protocols.f_lambda import f_lambda_2_pair
        from repro.protocols.p0opt import p0opt
        from repro.sim.engine import run_over_scenarios

        race_zero, race_one = race_outcomes
        zoo = [
            run_over_scenarios(
                p0opt(), crash3.scenarios(), crash3.horizon, crash3.t
            ),
            fip(f_lambda_2_pair(crash3)).outcome(crash3),
        ]
        for outcome in zoo:
            assert (
                check_ds82_bounds(outcome, race_zero, race_one, crash3.t)
                == []
            )

    def test_bound_checker_flags_impossible_protocol(self, race_outcomes):
        """A fabricated 'everyone decides at time 0' outcome violates both
        bounds — sanity that the checker can fail."""
        from repro.core.outcomes import ProtocolOutcome, RunOutcome

        race_zero, race_one = race_outcomes
        fake = ProtocolOutcome("Oracle")
        for key in race_zero.scenario_keys():
            run = race_zero.get(key)
            fake.add(
                RunOutcome(
                    config=run.config,
                    pattern=run.pattern,
                    decisions=tuple((0, 0) for _ in range(run.n)),
                    horizon=run.horizon,
                )
            )
        problems = check_ds82_bounds(fake, race_zero, race_one, 1)
        assert len(problems) == 2
