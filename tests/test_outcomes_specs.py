"""Tests for protocol outcomes and the specification checkers."""

import pytest

from repro.core.outcomes import ProtocolOutcome, RunOutcome
from repro.core.specs import (
    check_agreement,
    check_decision,
    check_eba,
    check_nontrivial_agreement,
    check_sba,
    check_simultaneity,
    check_validity,
    check_weak_agreement,
    check_weak_validity,
)
from repro.errors import ConfigurationError, SpecificationError
from repro.model.config import InitialConfiguration
from repro.model.failures import CrashBehavior, FailurePattern


def _run(values, decisions, pattern=FailurePattern(()), horizon=3):
    return RunOutcome(
        config=InitialConfiguration(values),
        pattern=pattern,
        decisions=tuple(decisions),
        horizon=horizon,
    )


class TestRunOutcome:
    def test_accessors(self):
        run = _run((0, 1), [(0, 1), None])
        assert run.decision_value(0) == 0
        assert run.decision_time(0) == 1
        assert run.decision_value(1) is None
        assert run.n == 2

    def test_nonfaulty_excludes_pattern(self):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        run = _run((0, 1, 1), [None, (1, 2), (1, 2)], pattern)
        assert run.nonfaulty == frozenset((1, 2))
        assert run.all_nonfaulty_decided()

    def test_max_nonfaulty_decision_time(self):
        run = _run((0, 1), [(0, 1), (0, 3)])
        assert run.max_nonfaulty_decision_time() == 3

    def test_max_time_none_when_undecided(self):
        run = _run((0, 1), [(0, 1), None])
        assert run.max_nonfaulty_decision_time() is None


class TestProtocolOutcome:
    def test_duplicate_scenario_rejected(self):
        outcome = ProtocolOutcome("P")
        run = _run((0, 1), [(0, 0), (0, 1)])
        outcome.add(run)
        with pytest.raises(ConfigurationError):
            outcome.add(run)

    def test_decision_times_nonfaulty_only(self):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        outcome = ProtocolOutcome("P")
        outcome.add(_run((0, 1), [(0, 0), (0, 2)], pattern))
        assert outcome.decision_times() == [2]

    def test_undecided_count(self):
        outcome = ProtocolOutcome("P")
        outcome.add(_run((0, 1), [None, (0, 2)]))
        assert outcome.undecided_count() == 1

    def test_get_missing_raises(self):
        outcome = ProtocolOutcome("P")
        with pytest.raises(ConfigurationError):
            outcome.get((InitialConfiguration((0, 1)), FailurePattern(())))


class TestSpecCheckers:
    def test_decision_violation(self):
        outcome = ProtocolOutcome("P")
        outcome.add(_run((0, 1), [None, (0, 1)]))
        assert check_decision(outcome)

    def test_decision_ok_when_faulty_undecided(self):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        outcome = ProtocolOutcome("P")
        outcome.add(_run((0, 1), [None, (0, 1)], pattern))
        assert not check_decision(outcome)

    def test_weak_agreement_violation(self):
        outcome = ProtocolOutcome("P")
        outcome.add(_run((0, 1), [(0, 1), (1, 1)]))
        assert check_weak_agreement(outcome)

    def test_weak_agreement_ignores_faulty(self):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        outcome = ProtocolOutcome("P")
        outcome.add(_run((0, 1), [(0, 1), (1, 1)], pattern))
        assert not check_weak_agreement(outcome)

    def test_weak_validity_violation(self):
        outcome = ProtocolOutcome("P")
        outcome.add(_run((1, 1), [(0, 1), (0, 1)]))
        assert check_weak_validity(outcome)

    def test_weak_validity_allows_undecided(self):
        outcome = ProtocolOutcome("P")
        outcome.add(_run((1, 1), [None, None]))
        assert not check_weak_validity(outcome)

    def test_validity_requires_decision_under_unanimity(self):
        outcome = ProtocolOutcome("P")
        outcome.add(_run((1, 1), [None, (1, 1)]))
        assert check_validity(outcome)

    def test_validity_ignores_mixed_inputs(self):
        outcome = ProtocolOutcome("P")
        outcome.add(_run((0, 1), [None, None]))
        assert not check_validity(outcome)

    def test_simultaneity_violation(self):
        outcome = ProtocolOutcome("P")
        outcome.add(_run((0, 1), [(0, 1), (0, 2)]))
        assert check_simultaneity(outcome)

    def test_agreement_combines(self):
        outcome = ProtocolOutcome("P")
        outcome.add(_run((0, 1), [None, (0, 1)]))
        assert check_agreement(outcome)


class TestSpecReports:
    def _good_outcome(self):
        outcome = ProtocolOutcome("good")
        outcome.add(_run((0, 0), [(0, 1), (0, 1)]))
        outcome.add(_run((1, 1), [(1, 1), (1, 1)]))
        outcome.add(_run((0, 1), [(0, 1), (0, 1)]))
        return outcome

    def test_eba_report_pass(self):
        report = check_eba(self._good_outcome())
        assert report.ok
        assert report.runs_checked == 3
        report.raise_on_failure()  # must not raise

    def test_eba_report_fail_raises(self):
        outcome = ProtocolOutcome("bad")
        outcome.add(_run((1, 1), [(0, 1), (1, 1)]))
        report = check_eba(outcome)
        assert not report.ok
        with pytest.raises(SpecificationError):
            report.raise_on_failure()

    def test_sba_adds_simultaneity(self):
        outcome = ProtocolOutcome("eba-only")
        outcome.add(_run((0, 1), [(0, 1), (0, 2)]))
        assert check_eba(outcome).ok
        assert not check_sba(outcome).ok

    def test_nontrivial_agreement_allows_undecided(self):
        outcome = ProtocolOutcome("lazy")
        outcome.add(_run((1, 1), [None, None]))
        assert check_nontrivial_agreement(outcome).ok
        assert not check_eba(outcome).ok
