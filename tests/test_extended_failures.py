"""Tests for the [PT86] extension failure modes: receive omissions and
general omissions."""

import pytest

from repro.errors import ConfigurationError
from repro.model.adversary import (
    ExhaustiveReceiveOmissionAdversary,
    SampledGeneralOmissionAdversary,
    exhaustive_adversary,
)
from repro.model.config import InitialConfiguration
from repro.model.failures import (
    FailureMode,
    FailurePattern,
    GeneralOmissionBehavior,
    OmissionBehavior,
    ReceiveOmissionBehavior,
    behavior_mode,
)
from repro.model.runs import build_run
from repro.model.views import ViewTable


class TestReceiveOmissionBehavior:
    def test_never_drops_outgoing(self):
        behavior = ReceiveOmissionBehavior({1: [2]})
        assert behavior.sends_to(2, 1)

    def test_drops_listed_incoming(self):
        behavior = ReceiveOmissionBehavior({1: [2]})
        assert not behavior.receives_from(2, 1)
        assert behavior.receives_from(0, 1)
        assert behavior.receives_from(2, 2)

    def test_canonical_form(self):
        a = ReceiveOmissionBehavior({1: [2, 0], 2: []})
        b = ReceiveOmissionBehavior({1: [0, 2]})
        assert a == b and hash(a) == hash(b)

    def test_mode_classification(self):
        assert (
            behavior_mode(ReceiveOmissionBehavior({1: [0]}))
            is FailureMode.RECEIVE_OMISSION
        )

    def test_visibility(self):
        assert ReceiveOmissionBehavior({2: [1]}).is_visible_within(3, 3, 0)
        assert not ReceiveOmissionBehavior({4: [1]}).is_visible_within(3, 3, 0)

    def test_rejects_round_zero(self):
        with pytest.raises(ConfigurationError):
            ReceiveOmissionBehavior({0: [1]})


class TestGeneralOmissionBehavior:
    def test_both_directions(self):
        behavior = GeneralOmissionBehavior({1: [2]}, {2: [0]})
        assert not behavior.sends_to(2, 1)
        assert behavior.sends_to(0, 1)
        assert not behavior.receives_from(0, 2)
        assert behavior.receives_from(2, 2)

    def test_mode_classification(self):
        assert (
            behavior_mode(GeneralOmissionBehavior({1: [0]}, {}))
            is FailureMode.GENERAL_OMISSION
        )

    def test_visibility_from_either_direction(self):
        assert GeneralOmissionBehavior({}, {1: [2]}).is_visible_within(
            2, 3, 0
        )
        assert GeneralOmissionBehavior({2: [1]}, {}).is_visible_within(
            2, 3, 0
        )
        assert not GeneralOmissionBehavior({}, {}).is_visible_within(2, 3, 0)

    def test_duplicate_round_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneralOmissionBehavior([(1, [2]), (1, [0])], {})


class TestDeliveredWithReceiverFiltering:
    def test_receive_fault_blocks_incoming(self):
        pattern = FailurePattern({1: ReceiveOmissionBehavior({1: [0]})})
        assert not pattern.delivered(0, 1, 1)
        assert pattern.delivered(0, 1, 2)
        assert pattern.delivered(2, 1, 1)

    def test_receive_fault_does_not_block_outgoing(self):
        pattern = FailurePattern({1: ReceiveOmissionBehavior({1: [0]})})
        assert pattern.delivered(1, 0, 1)

    def test_both_sides_consulted(self):
        pattern = FailurePattern(
            {
                0: OmissionBehavior({1: [2]}),
                1: ReceiveOmissionBehavior({1: [0]}),
            }
        )
        assert not pattern.delivered(0, 2, 1)  # sender-side drop
        assert not pattern.delivered(0, 1, 1)  # receiver-side drop
        assert pattern.delivered(2, 1, 1)

    def test_run_respects_receive_omissions(self):
        table = ViewTable()
        pattern = FailurePattern({1: ReceiveOmissionBehavior({1: [0]})})
        run = build_run(InitialConfiguration((0, 1, 1)), pattern, 2, table)
        assert 0 not in run.senders_to(1, 1)
        assert 0 in run.senders_to(2, 1)
        # the 0 still reaches processor 1 via processor 2's round-2 relay
        assert table.known_values(run.view(1, 2)) == frozenset((0, 1))


class TestExtendedAdversaries:
    def test_receive_exhaustive_count(self):
        adversary = ExhaustiveReceiveOmissionAdversary(3, 1, 2)
        per_processor = 2 ** (2 * 2) - 1
        assert adversary.count_patterns() == 1 + 3 * per_processor

    def test_receive_mode(self):
        assert (
            ExhaustiveReceiveOmissionAdversary(3, 1, 2).mode
            is FailureMode.RECEIVE_OMISSION
        )

    def test_factory_covers_receive(self):
        adversary = exhaustive_adversary(FailureMode.RECEIVE_OMISSION, 3, 1, 2)
        assert isinstance(adversary, ExhaustiveReceiveOmissionAdversary)

    def test_factory_rejects_general(self):
        with pytest.raises(ConfigurationError):
            exhaustive_adversary(FailureMode.GENERAL_OMISSION, 3, 1, 2)

    def test_sampled_general_deterministic(self):
        kwargs = dict(samples=15, seed=3)
        a = list(SampledGeneralOmissionAdversary(4, 2, 3, **kwargs).patterns())
        b = list(SampledGeneralOmissionAdversary(4, 2, 3, **kwargs).patterns())
        assert a == b

    def test_sampled_general_patterns_valid(self):
        for pattern in SampledGeneralOmissionAdversary(
            4, 2, 3, samples=20, seed=5
        ).patterns():
            pattern.validate(4, 2)
            for processor, behavior in pattern.behaviors:
                assert behavior.is_visible_within(3, 4, processor)

    def test_sampled_general_includes_failure_free(self):
        patterns = list(
            SampledGeneralOmissionAdversary(4, 2, 3, samples=5).patterns()
        )
        assert patterns[0] == FailurePattern(())


class TestGuaranteesAcrossModes:
    """The E15 headline facts, pinned as regression tests."""

    def test_everything_survives_receive_omissions(self):
        from repro.core.specs import check_eba
        from repro.model.system import build_system
        from repro.protocols.chain_eba import chain_eba
        from repro.protocols.p0 import p0
        from repro.protocols.p0opt import p0opt
        from repro.sim.engine import run_over_scenarios

        system = build_system(ExhaustiveReceiveOmissionAdversary(3, 1, 3))
        scenarios = system.scenarios()
        for protocol in (p0(), p0opt(), chain_eba()):
            outcome = run_over_scenarios(protocol, scenarios, 3, 1)
            assert check_eba(outcome).ok, protocol.name

    def test_general_omissions_break_chain_agreement(self):
        from repro.core.specs import check_weak_agreement, check_weak_validity
        from repro.model.config import all_configurations
        from repro.protocols.chain_eba import chain_eba
        from repro.sim.engine import run_over_scenarios

        patterns = list(
            SampledGeneralOmissionAdversary(4, 2, 4, samples=320, seed=7).patterns()
        )[:81]
        scenarios = [
            (config, pattern)
            for config in all_configurations(4)
            for pattern in patterns
        ]
        outcome = run_over_scenarios(chain_eba(), scenarios, 4, 2)
        assert check_weak_agreement(outcome)  # agreement DOES break
        assert not check_weak_validity(outcome)  # validity never does
