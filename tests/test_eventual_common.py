"""Tests for eventual common knowledge ``C◇`` and the ``F₀`` protocol
(paper, Section 3.2)."""

import pytest

from repro.core.domination import compare
from repro.core.specs import check_eba, check_nontrivial_agreement
from repro.knowledge.formulas import (
    Believes,
    Common,
    ContinualCommon,
    EventualCommon,
    Eventually,
    Exists,
    Implies,
    Not,
)
from repro.knowledge.nonrigid import NONFAULTY, ConstantSet
from repro.protocols.f_star import f_star_pair
from repro.protocols.f_zero import f_zero_pair
from repro.protocols.fip import fip


class TestEventualCommonOperator:
    def test_eventually_common_implies_eventual_common(self, crash3):
        """◇ C_S φ ⇒ C◇_S φ — the paper's stated validity."""
        for value in (0, 1):
            phi = Exists(value)
            assert Implies(
                Eventually(Common(NONFAULTY, phi)),
                EventualCommon(NONFAULTY, phi),
            ).is_valid(crash3)

    def test_common_implies_eventual_common(self, crash3):
        phi = Exists(1)
        assert Implies(
            Common(NONFAULTY, phi), EventualCommon(NONFAULTY, phi)
        ).is_valid(crash3)

    def test_continual_implies_eventual_common(self, omission3):
        phi = Exists(1)
        assert Implies(
            ContinualCommon(NONFAULTY, phi), EventualCommon(NONFAULTY, phi)
        ).is_valid(omission3)

    def test_strictly_weaker_than_common(self, crash3):
        """Some point has C◇∃1 without C∃1 (e.g. time 0 of a failure-free
        run: common knowledge will arrive but has not yet)."""
        common = Common(NONFAULTY, Exists(1)).evaluate(crash3)
        eventual = EventualCommon(NONFAULTY, Exists(1)).evaluate(crash3)
        assert any(
            eventual.at(run_index, time) and not common.at(run_index, time)
            for run_index in range(len(crash3.runs))
            for time in range(crash3.horizon + 1)
        )

    def test_never_true_when_fact_is_false(self, crash3):
        """C◇∃0 must fail throughout runs with no 0 (C◇ still implies the
        fact held... eventually everyone KNOWS it, and knowledge is
        factive)."""
        truth = EventualCommon(NONFAULTY, Exists(0)).evaluate(crash3)
        for run_index, run in enumerate(crash3.runs):
            if not run.config.exists(0):
                for time in range(crash3.horizon + 1):
                    assert not truth.at(run_index, time)

    def test_empty_set_vacuous(self, crash3):
        from repro.knowledge.formulas import FALSE

        empty = ConstantSet(frozenset())
        assert EventualCommon(empty, FALSE).is_valid(crash3)

    def test_consistency_failure_witness(self, omission3):
        """The §3.2 point: simultaneously, one nonfaulty processor believes
        C◇∃0 and another believes C◇∃1 (without believing C◇∃0)."""
        ec_zero = EventualCommon(NONFAULTY, Exists(0))
        ec_one = EventualCommon(NONFAULTY, Exists(1))
        b_zero = [
            Believes(processor, ec_zero).evaluate(omission3)
            for processor in range(3)
        ]
        b_one = [
            Believes(processor, ec_one).evaluate(omission3)
            for processor in range(3)
        ]
        found = False
        for run_index, run in enumerate(omission3.runs):
            for time in range(omission3.horizon + 1):
                zero_side = any(
                    b_zero[processor].at(run_index, time)
                    for processor in run.nonfaulty
                )
                one_side = any(
                    b_one[processor].at(run_index, time)
                    and not b_zero[processor].at(run_index, time)
                    for processor in run.nonfaulty
                )
                if zero_side and one_side:
                    found = True
        assert found


class TestFZero:
    def test_nontrivial_agreement_both_modes(self, crash3, omission3):
        for system in (crash3, omission3):
            protocol = fip(f_zero_pair(system))
            protocol.assert_no_nonfaulty_conflicts(system)
            assert check_nontrivial_agreement(protocol.outcome(system)).ok

    def test_f_zero_is_even_eba_at_small_sizes(self, crash3):
        assert check_eba(fip(f_zero_pair(crash3)).outcome(crash3)).ok

    def test_f_star_strictly_dominates_f_zero_omission(self, omission3):
        """The measurable core of Section 3.2: continual-common-knowledge
        protocols decide strictly earlier than the eventual-common-
        knowledge one."""
        f_zero_out = fip(f_zero_pair(omission3)).outcome(omission3)
        f_star_out = fip(f_star_pair(omission3)).outcome(omission3)
        report = compare(f_star_out, f_zero_out)
        assert report.strict

    def test_zero_decisions_not_slower_than_one_decisions_rule(self, crash3):
        """F₀'s asymmetry: a processor holding the lone 0 decides 0 at
        time 0 (it knows C◇∃0 immediately — its own knowledge will
        spread), but 1-decisions wait for the □¬C◇∃0 certainty."""
        from repro.model.config import InitialConfiguration
        from repro.model.failures import FailurePattern

        outcome = fip(f_zero_pair(crash3)).outcome(crash3)
        run = outcome.get(
            (InitialConfiguration((0, 1, 1)), FailurePattern(()))
        )
        assert run.decisions[0] == (0, 0)
