"""Tests for common knowledge ``C_S``: fixed-point semantics and the
DM90-style facts that the SBA baseline relies on."""

from repro.knowledge.formulas import (
    And,
    Believes,
    Common,
    Everyone,
    Exists,
    Implies,
    Knows,
    Not,
)
from repro.knowledge.nonrigid import NONFAULTY, ConstantSet
from repro.model.config import InitialConfiguration
from repro.model.failures import FailurePattern


def _run_index(system, values, pattern=FailurePattern(())):
    return system.run_index_for(InitialConfiguration(values), pattern)


class TestCommonKnowledgeSemantics:
    def test_common_implies_everyone(self, crash3):
        phi = Exists(1)
        assert Implies(
            Common(NONFAULTY, phi), Everyone(NONFAULTY, phi)
        ).is_valid(crash3)

    def test_common_implies_iterated_everyone(self, crash3):
        phi = Exists(1)
        nested = Everyone(NONFAULTY, Everyone(NONFAULTY, phi))
        assert Implies(Common(NONFAULTY, phi), nested).is_valid(crash3)

    def test_fixed_point_property(self, crash3):
        """C_S φ ⇒ E_S(φ ∧ C_S φ)."""
        phi = Exists(0)
        c_phi = Common(NONFAULTY, phi)
        assert Implies(
            c_phi, Everyone(NONFAULTY, And((phi, c_phi)))
        ).is_valid(crash3)

    def test_never_common_at_time_zero(self, crash3):
        """No initial value can be common knowledge at time 0: a processor
        holding 1 considers a run possible in which no 0 exists."""
        truth = Common(NONFAULTY, Exists(0)).evaluate(crash3)
        for run_index in range(len(crash3.runs)):
            assert not truth.at(run_index, 0)

    def test_common_by_t_plus_1_failure_free(self, crash3):
        """DM90: with no failures, the initial values become common
        knowledge among N by time t + 1."""
        truth = Common(NONFAULTY, Exists(0)).evaluate(crash3)
        index = _run_index(crash3, (0, 1, 1))
        assert truth.at(index, 2)  # t + 1 = 2

    def test_common_knowledge_is_group_shared(self, crash3):
        """When C_N φ holds, every nonfaulty processor believes it — the
        property that makes simultaneous decisions possible."""
        c_phi = Common(NONFAULTY, Exists(1))
        truth = c_phi.evaluate(crash3)
        for processor in range(3):
            belief = Believes(processor, c_phi, NONFAULTY).evaluate(crash3)
            for run_index, run in enumerate(crash3.runs):
                if not run.is_nonfaulty(processor):
                    continue
                for time in range(crash3.horizon + 1):
                    if truth.at(run_index, time):
                        assert belief.at(run_index, time)

    def test_negative_introspection_k45(self, crash3):
        """¬C_S φ ⇒ C_S ¬C_S φ (C_S is K45, paper Section 3.3 remark)."""
        phi = Exists(0)
        c_phi = Common(NONFAULTY, phi)
        assert Implies(
            Not(c_phi), Common(NONFAULTY, Not(c_phi))
        ).is_valid(crash3)

    def test_rigid_singleton_group_reduces_to_knowledge(self, crash3):
        singleton = ConstantSet(frozenset((0,)))
        phi = Exists(1)
        assert (
            Common(singleton, phi).evaluate(crash3)
            == Knows(0, phi).evaluate(crash3)
        )

    def test_common_in_omission_mode(self, omission3):
        """Common knowledge still arises in omission systems (failure-free
        runs reach it by t + 1)."""
        truth = Common(NONFAULTY, Exists(1)).evaluate(omission3)
        index = _run_index(omission3, (1, 1, 1))
        assert truth.at(index, 2)
