"""Integration tests: the paper's crash-mode results end to end.

These are the test-suite versions of experiments E1, E2, E8 and E12, run
over exhaustive crash systems at ``n = 3`` and (for the concrete-protocol
claims) ``n = 4``.
"""

import pytest

from repro.core.domination import compare, equivalent_decisions
from repro.core.specs import check_eba, check_sba
from repro.model.failures import FailureMode
from repro.protocols.f_lambda import f_lambda_2_pair, zcr_ocr_pair
from repro.protocols.fip import fip
from repro.protocols.flood_sba import flood_sba
from repro.protocols.p0 import p0, p1
from repro.protocols.p0opt import p0opt
from repro.protocols.sba_ck import sba_common_knowledge_pair
from repro.sim.engine import run_over_scenarios
from repro.workloads.scenarios import exhaustive_scenarios


@pytest.fixture(scope="module")
def crash4_scenarios():
    return exhaustive_scenarios(FailureMode.CRASH, 4, 1, 3)


class TestProposition21:
    """No optimum EBA protocol."""

    def test_p0_and_p1_are_eba(self, crash4_scenarios):
        for protocol in (p0(), p1()):
            outcome = run_over_scenarios(protocol, crash4_scenarios, 3, 1)
            assert check_eba(outcome).ok

    def test_neither_dominates_the_other(self, crash4_scenarios):
        p0_out = run_over_scenarios(p0(), crash4_scenarios, 3, 1)
        p1_out = run_over_scenarios(p1(), crash4_scenarios, 3, 1)
        assert not compare(p0_out, p1_out).dominates
        assert not compare(p1_out, p0_out).dominates

    def test_favored_value_decided_at_time_zero(self, crash4_scenarios):
        p0_out = run_over_scenarios(p0(), crash4_scenarios, 3, 1)
        for run in p0_out:
            for processor in run.nonfaulty:
                if run.config.value_of(processor) == 0:
                    assert run.decisions[processor] == (0, 0)


class TestSection22:
    """P0opt strictly dominates P0 and is EBA."""

    def test_p0opt_is_eba(self, crash4_scenarios):
        outcome = run_over_scenarios(p0opt(), crash4_scenarios, 3, 1)
        assert check_eba(outcome).ok

    def test_strict_domination(self, crash4_scenarios):
        opt = run_over_scenarios(p0opt(), crash4_scenarios, 3, 1)
        base = run_over_scenarios(p0(), crash4_scenarios, 3, 1)
        report = compare(opt, base)
        assert report.strict

    def test_zero_decisions_never_later_than_p0(self, crash4_scenarios):
        """P0opt keeps P0's decide-0 rule: 0-decisions at identical times."""
        opt = run_over_scenarios(p0opt(), crash4_scenarios, 3, 1)
        base = run_over_scenarios(p0(), crash4_scenarios, 3, 1)
        for key in base.scenario_keys():
            run_base = base.get(key)
            run_opt = opt.get(key)
            for processor in run_base.nonfaulty:
                record = run_base.decisions[processor]
                if record is not None and record[0] == 0:
                    assert run_opt.decisions[processor] == record


class TestTheorems61And62:
    def test_f_lambda_2_is_eba_crash(self, crash3):
        protocol = fip(f_lambda_2_pair(crash3))
        protocol.assert_no_nonfaulty_conflicts(crash3)
        assert check_eba(protocol.outcome(crash3)).ok

    def test_theorem_6_1_zcr_ocr_collapse(self, crash3):
        fl2_out = fip(f_lambda_2_pair(crash3)).outcome(crash3)
        zcr_out = fip(zcr_ocr_pair(crash3)).outcome(crash3)
        equal, diffs = equivalent_decisions(fl2_out, zcr_out)
        assert equal, diffs

    def test_theorem_6_2_p0opt_equivalence_n3(self, crash3):
        fl2_out = fip(f_lambda_2_pair(crash3)).outcome(crash3)
        popt_out = run_over_scenarios(
            p0opt(), crash3.scenarios(), crash3.horizon, crash3.t
        )
        equal, diffs = equivalent_decisions(fl2_out, popt_out)
        assert equal, diffs

    def test_theorem_6_2_p0opt_equivalence_n4(self, crash4):
        fl2_out = fip(f_lambda_2_pair(crash4)).outcome(crash4)
        popt_out = run_over_scenarios(
            p0opt(), crash4.scenarios(), crash4.horizon, crash4.t
        )
        equal, diffs = equivalent_decisions(fl2_out, popt_out)
        assert equal, diffs


class TestEbaVsSba:
    def test_flood_sba_is_sba(self, crash3):
        outcome = run_over_scenarios(
            flood_sba(), crash3.scenarios(), crash3.horizon, crash3.t
        )
        assert check_sba(outcome).ok

    def test_common_knowledge_sba_is_sba(self, crash3):
        protocol = fip(sba_common_knowledge_pair(crash3))
        protocol.assert_no_nonfaulty_conflicts(crash3)
        assert check_sba(protocol.outcome(crash3)).ok

    def test_optimal_eba_strictly_dominates_optimum_sba(self, crash3):
        eba_out = run_over_scenarios(
            p0opt(), crash3.scenarios(), crash3.horizon, crash3.t
        )
        sba_out = fip(sba_common_knowledge_pair(crash3)).outcome(crash3)
        assert compare(eba_out, sba_out).strict

    def test_ck_sba_dominates_flood_sba(self, crash3):
        """The common-knowledge rule is the optimum simultaneous protocol:
        it never decides later than the t+1 flood."""
        ck_out = fip(sba_common_knowledge_pair(crash3)).outcome(crash3)
        flood_out = run_over_scenarios(
            flood_sba(), crash3.scenarios(), crash3.horizon, crash3.t
        )
        assert compare(ck_out, flood_out).dominates
