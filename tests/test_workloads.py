"""Tests for workload generation."""

import pytest

from repro.errors import ConfigurationError
from repro.model.failures import FailureMode, FailurePattern
from repro.workloads.scenarios import (
    exhaustive_scenarios,
    proposition_6_3_family,
    random_scenarios,
    worst_case_crash_chain,
)


class TestExhaustiveScenarios:
    def test_cross_product_size(self):
        scenarios = exhaustive_scenarios(FailureMode.CRASH, 3, 1, 2)
        # 8 configs x (1 + 3 * 2 * 3) patterns
        assert len(scenarios) == 8 * (1 + 3 * 2 * 3)

    def test_all_unique(self):
        scenarios = exhaustive_scenarios(FailureMode.CRASH, 3, 1, 2)
        assert len(set(scenarios)) == len(scenarios)

    def test_matches_system_scenarios(self, crash3):
        scenarios = exhaustive_scenarios(FailureMode.CRASH, 3, 1, 3)
        assert scenarios == crash3.scenarios()


class TestRandomScenarios:
    def test_deterministic_given_seed(self):
        a = random_scenarios(FailureMode.CRASH, 5, 2, 3, count=30, seed=4)
        b = random_scenarios(FailureMode.CRASH, 5, 2, 3, count=30, seed=4)
        assert a == b

    def test_count_respected(self):
        scenarios = random_scenarios(
            FailureMode.CRASH, 5, 2, 3, count=40, seed=0
        )
        assert len(scenarios) == 40
        assert len(set(scenarios)) == 40

    def test_patterns_within_bound(self):
        for _, pattern in random_scenarios(
            FailureMode.OMISSION, 4, 2, 3, count=25, seed=1
        ):
            pattern.validate(4, 2)

    def test_crash_patterns_canonical(self):
        for _, pattern in random_scenarios(
            FailureMode.CRASH, 4, 2, 3, count=25, seed=2
        ):
            for processor, behavior in pattern.behaviors:
                others = {p for p in range(4) if p != processor}
                assert behavior.receivers != others


class TestProposition63Family:
    def test_target_in_family(self):
        family, target = proposition_6_3_family(n=4, horizon=3)
        assert target in family

    def test_target_structure(self):
        family, target = proposition_6_3_family(n=4, horizon=3)
        config, pattern = target
        assert config.all_equal(1)
        assert pattern.faulty == frozenset((0,))
        behavior = pattern.behavior_of(0)
        for round_number in range(1, 4):
            assert behavior.omitted(round_number) == frozenset((1, 2, 3))

    def test_family_unique(self):
        family, _ = proposition_6_3_family(n=4, horizon=3)
        assert len(set(family)) == len(family)

    def test_rejects_small_n(self):
        with pytest.raises(ConfigurationError):
            proposition_6_3_family(n=3)


class TestWorstCaseCrashChain:
    def test_structure(self):
        config, pattern = worst_case_crash_chain(4, 2)
        assert config.value_of(0) == 0
        assert config.count(0) == 1
        assert pattern.faulty == frozenset((0, 1))
        assert pattern.behavior_of(0).crash_round == 1
        assert pattern.behavior_of(0).receivers == frozenset((1,))
        assert pattern.behavior_of(1).crash_round == 2
        assert pattern.behavior_of(1).receivers == frozenset((2,))

    def test_requires_survivor(self):
        with pytest.raises(ConfigurationError):
            worst_case_crash_chain(3, 2)

    def test_hidden_value_delays_p0(self):
        """The whispered 0 must stay invisible to the last processor until
        round t: executing P0 confirms the forced late decision."""
        from repro.protocols.p0 import p0
        from repro.sim.engine import execute

        config, pattern = worst_case_crash_chain(4, 2)
        trace = execute(p0(), config, pattern, 4, 2)
        # processor 2 learns at round 2, relays round 3; processor 3 decides
        # at time 3 = t + 1.
        assert trace.decisions[3] == (0, 3)
