"""Tests for full-information protocols ``FIP(Z, O)`` over systems."""

import pytest

from repro.core.decision_sets import DecisionPair, empty_pair
from repro.errors import EvaluationError, ProtocolViolationError
from repro.knowledge.formulas import (
    FALSE,
    Believes,
    Exists,
    Predicate,
)
from repro.model.system import TruthAssignment
from repro.protocols.fip import fip, pair_from_formulas


class TestDecisions:
    def test_empty_pair_never_decides(self, crash3):
        outcome = fip(empty_pair()).outcome(crash3)
        for run in outcome:
            assert all(record is None for record in run.decisions)

    def test_believes_zero_pair_decides_on_learning(self, crash3):
        pair = pair_from_formulas(
            crash3,
            lambda i: Believes(i, Exists(0)),
            lambda i: FALSE,
            "Z-only",
        )
        outcome = fip(pair).outcome(crash3)
        for run in outcome:
            for processor in range(3):
                record = run.decisions[processor]
                if run.config.value_of(processor) == 0:
                    assert record == (0, 0)
                elif record is not None:
                    value, time = record
                    assert value == 0 and time >= 1

    def test_decision_is_first_entry_time(self, crash3):
        """Once a closed set is entered, the recorded decision time is the
        first entry point, not any later one."""
        pair = pair_from_formulas(
            crash3,
            lambda i: Believes(i, Exists(0)),
            lambda i: FALSE,
            "Z-only-2",
        )
        protocol = fip(pair)
        for run_index, run in enumerate(crash3.runs[:40]):
            record = protocol.decision_for(crash3, run_index, 0)
            if record is None:
                continue
            _, time = record
            if time > 0:
                assert not pair.decides_zero(run.view(0, time - 1))
            assert pair.decides_zero(run.view(0, time))


class TestConflicts:
    def test_conflicting_pair_detected_for_nonfaulty(self, crash3):
        """A pair whose two sets fire simultaneously for nonfaulty
        processors violates Proposition 4.1(a) and is rejected."""

        def everywhere(processor):
            return Predicate(
                ("always-true", processor),
                lambda system: TruthAssignment.constant(system, True),
            )

        pair = pair_from_formulas(
            crash3, everywhere, everywhere, "conflicted"
        )
        protocol = fip(pair)
        assert protocol.conflicts(crash3)
        with pytest.raises(ProtocolViolationError):
            protocol.assert_no_nonfaulty_conflicts(crash3)

    def test_paper_pairs_conflict_free_for_nonfaulty(self, crash3):
        from repro.protocols.f_lambda import f_lambda_2_pair

        fip(f_lambda_2_pair(crash3)).assert_no_nonfaulty_conflicts(crash3)

    def test_conflict_tiebreak_prefers_zero(self, crash3):
        def everywhere(processor):
            return Predicate(
                ("always-true-2", processor),
                lambda system: TruthAssignment.constant(system, True),
            )

        pair = pair_from_formulas(crash3, everywhere, everywhere, "tie")
        record = fip(pair).decision_for(crash3, 0, 0)
        assert record == (0, 0)


class TestStickyPair:
    def test_sticky_subset_of_raw(self, crash3):
        """Recorded decisions only happen at raw-set states, so the sticky
        sets are contained in the (recall-closed) raw sets."""
        from repro.protocols.f_lambda import f_lambda_2_pair

        pair = f_lambda_2_pair(crash3)
        sticky = fip(pair).sticky_pair(crash3)
        assert sticky.zeros <= pair.zeros
        assert sticky.ones <= pair.ones

    def test_sticky_matches_raw_on_nonfaulty_states(self, crash3):
        """For states that occur with a *nonfaulty* owner, the effective
        decides-or-has-decided sets coincide with the raw sets — the
        paper's formulas are effectively monotone and conflict-free there.
        (Faulty owners that know they are faulty satisfy both rules; the
        tie-break makes sticky differ from raw only on those states.)"""
        from repro.protocols.f_lambda import f_lambda_2_pair

        pair = f_lambda_2_pair(crash3)
        sticky = fip(pair).sticky_pair(crash3)
        nonfaulty_states = set()
        for run in crash3.runs:
            for processor in run.nonfaulty:
                for time in range(crash3.horizon + 1):
                    nonfaulty_states.add(run.view(processor, time))
        assert (pair.zeros & nonfaulty_states) == (
            sticky.zeros & nonfaulty_states
        )
        assert (pair.ones & nonfaulty_states) == (
            sticky.ones & nonfaulty_states
        )


class TestPairFromFormulas:
    def test_rejects_non_state_determined(self, crash3):
        """A formula whose truth depends on the run beyond the local state
        is not a legal decision rule."""

        def run_parity(processor):
            return Predicate(
                ("run-parity", processor),
                lambda system: TruthAssignment.from_predicate(
                    system, lambda run_index, _: run_index % 2 == 0
                ),
            )

        with pytest.raises(EvaluationError):
            pair_from_formulas(crash3, run_parity, lambda i: FALSE, "bad")

    def test_belief_formulas_accepted(self, crash3):
        pair = pair_from_formulas(
            crash3,
            lambda i: Believes(i, Exists(0)),
            lambda i: Believes(i, FALSE),
            "ok",
        )
        assert pair.name == "ok"

    def test_closure_applied(self, crash3):
        """States reached after a trigger state stay in the set even if
        the raw formula would flicker off (engineered via a time-window
        predicate)."""

        def window(processor):
            def compute(system):
                believes = Believes(processor, Exists(0)).evaluate(system)
                return TruthAssignment.from_predicate(
                    system,
                    lambda run_index, time: time == 1
                    and believes.at(run_index, time),
                )

            return Predicate(("window", processor), compute)

        pair = pair_from_formulas(crash3, window, lambda i: FALSE, "win")
        # A state at time 2 whose predecessor triggered at time 1 is in.
        for run_index, run in enumerate(crash3.runs):
            if pair.decides_zero(run.view(0, 1)):
                assert pair.decides_zero(run.view(0, 2))
                break
        else:  # pragma: no cover - would mean the trigger never fired
            pytest.fail("window trigger never fired")
