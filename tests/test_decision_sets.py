"""Tests for decision sets, recall closure and decision pairs."""

from repro.core.decision_sets import (
    DecisionPair,
    close_under_recall,
    empty_pair,
    pair_from_predicates,
)
from repro.model.views import ViewTable


def _line_of_states(table, length):
    """A single processor's chain of states over `length` rounds."""
    states = [table.leaf(0, 1)]
    for _ in range(length):
        states.append(table.extend(states[-1], {}))
    return states


class TestCloseUnderRecall:
    def test_trigger_propagates_forward(self):
        table = ViewTable()
        states = _line_of_states(table, 3)
        closed = close_under_recall([states[1]], states, table)
        assert closed == frozenset(states[1:])

    def test_no_trigger_no_closure(self):
        table = ViewTable()
        states = _line_of_states(table, 2)
        assert close_under_recall([], states, table) == frozenset()

    def test_closure_respects_branching(self):
        """Only descendants of the trigger state join the closure."""
        table = ViewTable()
        a0 = table.leaf(0, 1)
        b0 = table.leaf(1, 0)
        heard = table.extend(a0, {1: b0})
        alone = table.extend(a0, {})
        states = [a0, b0, heard, alone]
        closed = close_under_recall([heard], states, table)
        assert heard in closed
        assert alone not in closed
        assert a0 not in closed

    def test_closure_bounded_by_universe(self):
        table = ViewTable()
        states = _line_of_states(table, 3)
        closed = close_under_recall([states[0]], states[:2], table)
        assert closed == frozenset(states[:2])

    def test_idempotent(self):
        table = ViewTable()
        states = _line_of_states(table, 3)
        once = close_under_recall([states[1]], states, table)
        twice = close_under_recall(once, states, table)
        assert once == twice


class TestDecisionPair:
    def test_empty_pair(self):
        pair = empty_pair()
        assert not pair.zeros and not pair.ones
        assert pair.name == "F^Λ"

    def test_tokens_unique(self):
        a = DecisionPair(frozenset(), frozenset())
        b = DecisionPair(frozenset(), frozenset())
        assert a.token != b.token

    def test_renamed_keeps_token(self):
        pair = DecisionPair(frozenset((1,)), frozenset())
        renamed = pair.renamed("other")
        assert renamed.token == pair.token
        assert renamed.name == "other"
        assert renamed.zeros == pair.zeros

    def test_same_sets_as(self):
        a = DecisionPair(frozenset((1,)), frozenset((2,)))
        b = DecisionPair(frozenset((1,)), frozenset((2,)))
        c = DecisionPair(frozenset((1,)), frozenset((3,)))
        assert a.same_sets_as(b)
        assert not a.same_sets_as(c)

    def test_membership_queries(self):
        pair = DecisionPair(frozenset((1,)), frozenset((2,)))
        assert pair.decides_zero(1) and not pair.decides_zero(2)
        assert pair.decides_one(2) and not pair.decides_one(1)

    def test_overlap(self):
        pair = DecisionPair(frozenset((1, 2)), frozenset((2, 3)))
        assert pair.overlap() == frozenset((2,))

    def test_cache_key_distinct(self):
        a = DecisionPair(frozenset(), frozenset())
        b = DecisionPair(frozenset(), frozenset())
        assert a.cache_key() != b.cache_key()


class TestPairFromPredicates:
    def test_builds_closed_sets(self):
        table = ViewTable()
        states = _line_of_states(table, 3)
        trigger = states[1]
        pair = pair_from_predicates(
            states,
            table,
            zero_trigger=lambda view: view == trigger,
            one_trigger=lambda view: False,
            name="test",
        )
        assert pair.zeros == frozenset(states[1:])
        assert pair.ones == frozenset()
        assert pair.name == "test"
