"""Tests for the domination analysis (corresponding-run comparisons)."""

import pytest

from repro.core.domination import (
    compare,
    dominates,
    equivalent_decisions,
    strictly_dominates,
)
from repro.core.outcomes import ProtocolOutcome, RunOutcome
from repro.errors import ConfigurationError
from repro.model.config import InitialConfiguration
from repro.model.failures import CrashBehavior, FailurePattern


def _outcome(name, rows):
    """rows: list of (values, pattern, decisions)."""
    outcome = ProtocolOutcome(name)
    for values, pattern, decisions in rows:
        outcome.add(
            RunOutcome(
                config=InitialConfiguration(values),
                pattern=pattern,
                decisions=tuple(decisions),
                horizon=3,
            )
        )
    return outcome


EMPTY = FailurePattern(())


class TestCompare:
    def test_identical_outcomes_dominate_not_strictly(self):
        rows = [((0, 1), EMPTY, [(0, 1), (0, 1)])]
        a = _outcome("A", rows)
        b = _outcome("B", rows)
        report = compare(a, b)
        assert report.dominates and not report.strict

    def test_earlier_decision_strict(self):
        a = _outcome("A", [((0, 1), EMPTY, [(0, 0), (0, 1)])])
        b = _outcome("B", [((0, 1), EMPTY, [(0, 1), (0, 1)])])
        report = compare(a, b)
        assert report.strict
        assert len(report.improvements) == 1
        assert report.improvements[0].processor == 0

    def test_deciding_where_other_never_counts_as_sooner(self):
        a = _outcome("A", [((0, 1), EMPTY, [(0, 1), (0, 1)])])
        b = _outcome("B", [((0, 1), EMPTY, [(0, 1), None])])
        assert strictly_dominates(a, b)

    def test_later_decision_breaks_domination(self):
        a = _outcome("A", [((0, 1), EMPTY, [(0, 2), (0, 1)])])
        b = _outcome("B", [((0, 1), EMPTY, [(0, 1), (0, 1)])])
        report = compare(a, b)
        assert not report.dominates
        assert report.counterexamples

    def test_never_deciding_breaks_domination(self):
        a = _outcome("A", [((0, 1), EMPTY, [None, (0, 1)])])
        b = _outcome("B", [((0, 1), EMPTY, [(0, 3), (0, 1)])])
        assert not dominates(a, b)

    def test_faulty_processors_ignored(self):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        a = _outcome("A", [((0, 1), pattern, [None, (0, 1)])])
        b = _outcome("B", [((0, 1), pattern, [(0, 0), (0, 1)])])
        assert dominates(a, b)

    def test_incomparable_pair(self):
        """A earlier on one processor, B earlier on another — classic
        P0-vs-P1 shape."""
        a = _outcome("A", [((0, 1), EMPTY, [(0, 0), (1, 2)])])
        b = _outcome("B", [((0, 1), EMPTY, [(0, 2), (1, 0)])])
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_mismatched_scenario_spaces_rejected(self):
        a = _outcome("A", [((0, 1), EMPTY, [(0, 0), (0, 0)])])
        b = _outcome(
            "B",
            [
                ((0, 1), EMPTY, [(0, 0), (0, 0)]),
                ((1, 1), EMPTY, [(1, 0), (1, 0)]),
            ],
        )
        with pytest.raises(ConfigurationError):
            compare(a, b)

    def test_witness_description_readable(self):
        a = _outcome("A", [((0, 1), EMPTY, [(0, 0), (0, 1)])])
        b = _outcome("B", [((0, 1), EMPTY, [(0, 1), (0, 1)])])
        report = compare(a, b)
        text = report.improvements[0].describe("A", "B")
        assert "processor 0" in text and "t=0" in text


class TestEquivalentDecisions:
    def test_identical(self):
        rows = [((0, 1), EMPTY, [(0, 1), (0, 1)])]
        equal, diffs = equivalent_decisions(
            _outcome("A", rows), _outcome("B", rows)
        )
        assert equal and not diffs

    def test_value_difference_detected(self):
        a = _outcome("A", [((0, 1), EMPTY, [(0, 1), (0, 1)])])
        b = _outcome("B", [((0, 1), EMPTY, [(1, 1), (0, 1)])])
        equal, diffs = equivalent_decisions(a, b)
        assert not equal and diffs

    def test_time_difference_detected(self):
        a = _outcome("A", [((0, 1), EMPTY, [(0, 1), (0, 1)])])
        b = _outcome("B", [((0, 1), EMPTY, [(0, 2), (0, 1)])])
        equal, _ = equivalent_decisions(a, b)
        assert not equal

    def test_faulty_difference_ignored_by_default(self):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        a = _outcome("A", [((0, 1), pattern, [(0, 1), (0, 1)])])
        b = _outcome("B", [((0, 1), pattern, [(1, 2), (0, 1)])])
        assert equivalent_decisions(a, b)[0]
        assert not equivalent_decisions(a, b, nonfaulty_only=False)[0]
