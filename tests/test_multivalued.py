"""Tests for the multivalued-agreement extension."""

import pytest

from repro.core.domination import compare
from repro.core.specs import check_eba, check_validity, check_weak_agreement
from repro.errors import ConfigurationError
from repro.model.adversary import ExhaustiveCrashAdversary
from repro.model.failures import CrashBehavior, FailurePattern
from repro.multivalued.config import (
    MultiConfiguration,
    all_multi_configurations,
)
from repro.multivalued.protocols import multi_opt, multi_race
from repro.sim.engine import execute, run_over_scenarios

EMPTY = FailurePattern(())


def _scenarios(n, t, horizon, domain_size):
    patterns = list(ExhaustiveCrashAdversary(n, t, horizon).patterns())
    return [
        (config, pattern)
        for config in all_multi_configurations(n, domain_size)
        for pattern in patterns
    ]


class TestMultiConfiguration:
    def test_basic_interface(self):
        config = MultiConfiguration((0, 2, 1), 3)
        assert config.n == 3
        assert config.value_of(1) == 2
        assert config.exists(2) and not config.exists(3 - 1 + 1)
        assert config.minimum() == 0

    def test_all_equal(self):
        assert MultiConfiguration((2, 2), 3).all_equal(2)
        assert not MultiConfiguration((2, 1), 3).all_equal(2)

    def test_rejects_out_of_domain(self):
        with pytest.raises(ConfigurationError):
            MultiConfiguration((0, 3), 3)
        with pytest.raises(ConfigurationError):
            MultiConfiguration((0, -1), 3)

    def test_rejects_tiny_domain(self):
        with pytest.raises(ConfigurationError):
            MultiConfiguration((0, 0), 1)

    def test_enumeration_count(self):
        assert len(list(all_multi_configurations(3, 3))) == 27

    def test_hashable_scenario_key(self):
        a = MultiConfiguration((0, 1), 3)
        b = MultiConfiguration((0, 1), 3)
        assert a == b and hash(a) == hash(b)
        assert a != MultiConfiguration((0, 1), 4)


class TestMultiRace:
    def test_minimum_value_holder_decides_at_zero(self):
        trace = execute(
            multi_race(3), MultiConfiguration((0, 2, 1), 3), EMPTY, 3, 1
        )
        assert trace.decisions[0] == (0, 0)

    def test_no_zero_defaults_to_min_at_t_plus_1(self):
        trace = execute(
            multi_race(3), MultiConfiguration((2, 1, 2), 3), EMPTY, 3, 1
        )
        assert trace.decisions == [(1, 2), (1, 2), (1, 2)]

    def test_eba_over_exhaustive_domain3(self):
        outcome = run_over_scenarios(
            multi_race(3), _scenarios(3, 1, 3, 3), 3, 1
        )
        assert check_eba(outcome).ok

    def test_unanimous_validity_domain4(self):
        outcome = run_over_scenarios(
            multi_race(4), _scenarios(3, 1, 3, 4), 3, 1
        )
        assert not check_validity(outcome)


class TestMultiOpt:
    def test_all_values_seen_decides_early(self):
        trace = execute(
            multi_opt(3), MultiConfiguration((2, 1, 2), 3), EMPTY, 3, 1
        )
        # failure-free: everyone knows all values at time 1 -> decide min.
        assert trace.decisions == [(1, 1), (1, 1), (1, 1)]

    def test_stable_heard_set_decides_without_all_values(self):
        # processor 0 crashes silently in round 1 holding the only 1;
        # survivors hear {each other} twice and decide min(seen)=2 at t=2.
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        trace = execute(
            multi_opt(3), MultiConfiguration((1, 2, 2), 3), pattern, 3, 1
        )
        assert trace.decisions[1] == (2, 2)
        assert trace.decisions[2] == (2, 2)

    def test_eba_over_exhaustive_domain3(self):
        outcome = run_over_scenarios(
            multi_opt(3), _scenarios(3, 1, 3, 3), 3, 1
        )
        assert check_eba(outcome).ok

    def test_eba_over_exhaustive_domain4(self):
        outcome = run_over_scenarios(
            multi_opt(4), _scenarios(3, 1, 3, 4), 3, 1
        )
        assert check_eba(outcome).ok

    def test_strictly_dominates_race(self):
        scenarios = _scenarios(3, 1, 3, 3)
        optimized = run_over_scenarios(multi_opt(3), scenarios, 3, 1)
        race = run_over_scenarios(multi_race(3), scenarios, 3, 1)
        assert compare(optimized, race).strict

    def test_agreement_under_partial_crash_delivery(self):
        # the crashed minimum-holder whispers its value to one survivor:
        # the value must still win everywhere (relayed before deciding).
        pattern = FailurePattern({0: CrashBehavior(1, frozenset((1,)))})
        trace = execute(
            multi_opt(3), MultiConfiguration((1, 2, 2), 3), pattern, 3, 1
        )
        assert trace.decisions[1][0] == 1
        assert trace.decisions[2][0] == 1


class TestBinaryCollapse:
    def test_race_equals_p0_at_domain_two(self):
        from repro.protocols.p0 import p0
        from repro.model.config import InitialConfiguration

        scenarios = _scenarios(3, 1, 3, 2)
        multi = run_over_scenarios(multi_race(2), scenarios, 3, 1)
        binary = run_over_scenarios(
            p0(),
            [(InitialConfiguration(c.values), p) for c, p in scenarios],
            3,
            1,
        )
        binary_map = {
            (run.config.values, run.pattern): run for run in binary
        }
        for run in multi:
            twin = binary_map[(run.config.values, run.pattern)]
            for processor in run.nonfaulty:
                assert run.decisions[processor] == twin.decisions[processor]

    def test_opt_equals_p0opt_at_domain_two(self):
        from repro.protocols.p0opt import p0opt
        from repro.model.config import InitialConfiguration

        scenarios = _scenarios(3, 1, 3, 2)
        multi = run_over_scenarios(multi_opt(2), scenarios, 3, 1)
        binary = run_over_scenarios(
            p0opt(),
            [(InitialConfiguration(c.values), p) for c, p in scenarios],
            3,
            1,
        )
        binary_map = {
            (run.config.values, run.pattern): run for run in binary
        }
        for run in multi:
            twin = binary_map[(run.config.values, run.pattern)]
            for processor in run.nonfaulty:
                assert run.decisions[processor] == twin.decisions[processor]


class TestRandomizedSweeps:
    def test_larger_network_random_crash(self):
        """n=5, t=2, |V|=3, sampled crash scenarios: both protocols EBA."""
        import random

        from repro.workloads.scenarios import _random_crash_pattern

        rng = random.Random(9)
        scenarios = []
        seen = set()
        while len(scenarios) < 150:
            config = MultiConfiguration(
                tuple(rng.randint(0, 2) for _ in range(5)), 3
            )
            pattern = _random_crash_pattern(rng, 5, 2, 4)
            if (config, pattern) in seen:
                continue
            seen.add((config, pattern))
            scenarios.append((config, pattern))
        for protocol in (multi_race(3), multi_opt(3)):
            outcome = run_over_scenarios(protocol, scenarios, 4, 2)
            assert check_eba(outcome).ok, protocol.name
            assert not check_weak_agreement(outcome)
