"""Unit tests for initial configurations."""

import pytest

from repro.errors import ConfigurationError
from repro.model.config import (
    InitialConfiguration,
    all_configurations,
    one_dissenter,
    uniform_configuration,
)


class TestInitialConfiguration:
    def test_values_preserved(self):
        config = InitialConfiguration((0, 1, 1))
        assert config.values == (0, 1, 1)
        assert config.n == 3

    def test_value_of(self):
        config = InitialConfiguration((0, 1))
        assert config.value_of(0) == 0
        assert config.value_of(1) == 1

    def test_exists(self):
        config = InitialConfiguration((1, 1, 0))
        assert config.exists(0)
        assert config.exists(1)
        assert not InitialConfiguration((1, 1)).exists(0)

    def test_all_equal(self):
        assert InitialConfiguration((1, 1, 1)).all_equal(1)
        assert not InitialConfiguration((1, 0, 1)).all_equal(1)

    def test_count(self):
        assert InitialConfiguration((0, 1, 0, 0)).count(0) == 3

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            InitialConfiguration((0, 2))

    def test_rejects_single_processor(self):
        with pytest.raises(ConfigurationError):
            InitialConfiguration((0,))

    def test_hashable_and_equal(self):
        assert InitialConfiguration((0, 1)) == InitialConfiguration((0, 1))
        assert hash(InitialConfiguration((0, 1))) == hash(
            InitialConfiguration((0, 1))
        )

    def test_str_is_bit_vector(self):
        assert str(InitialConfiguration((1, 0, 1))) == "101"


class TestEnumeration:
    def test_count_is_power_of_two(self):
        assert len(list(all_configurations(3))) == 8
        assert len(list(all_configurations(4))) == 16

    def test_all_distinct(self):
        configs = list(all_configurations(3))
        assert len(set(configs)) == len(configs)

    def test_deterministic_order(self):
        assert list(all_configurations(2)) == list(all_configurations(2))

    def test_rejects_small_n(self):
        with pytest.raises(ConfigurationError):
            list(all_configurations(1))


class TestConstructors:
    def test_uniform(self):
        assert uniform_configuration(3, 1).values == (1, 1, 1)

    def test_one_dissenter(self):
        config = one_dissenter(4, 2, 0)
        assert config.values == (1, 1, 0, 1)

    def test_one_dissenter_value_one(self):
        config = one_dissenter(3, 0, 1)
        assert config.values == (1, 0, 0)
