"""Tests for the instrumentation layer (repro.obs) and its integration
points: System.cached_evaluation, the fixpoint evaluators, experiment
results, and the CLI stats surface."""

from repro import obs
from repro.experiments.framework import ExperimentResult, attach_instrumentation
from repro.knowledge.nonrigid import NONFAULTY
from repro.knowledge.semantics import eval_common
from repro.model.system import TruthAssignment


class TestInstrumentation:
    def test_counters_accumulate(self):
        inst = obs.Instrumentation()
        inst.count("widgets")
        inst.count("widgets", 4)
        assert inst.counters["widgets"] == 5

    def test_stage_times_accumulate(self):
        inst = obs.Instrumentation()
        with inst.stage("work"):
            pass
        with inst.stage("work"):
            pass
        assert inst.timers["work"] >= 0.0
        assert set(inst.timers) == {"work"}

    def test_nested_same_stage_not_double_counted(self):
        inst = obs.Instrumentation()
        with inst.stage("outer"):
            with inst.stage("outer"):
                pass
        # A single cumulative entry, not the sum of both frames.
        assert len(inst.timers) == 1
        # The inner no-op frame must not have closed the outer one early.
        assert "outer" not in inst._active

    def test_disabled_records_nothing(self):
        inst = obs.Instrumentation()
        inst.enabled = False
        inst.count("widgets")
        with inst.stage("work"):
            pass
        assert inst.counters == {}
        assert inst.timers == {}

    def test_delta_since_drops_zero_entries(self):
        inst = obs.Instrumentation()
        inst.count("before_only")
        before = inst.snapshot()
        inst.count("after", 3)
        delta = inst.delta_since(before)
        assert delta["counters"] == {"after": 3}

    def test_format_summary_empty(self):
        assert "no instrumentation" in obs.format_summary(
            {"counters": {}, "timers": {}}
        )

    def test_format_summary_lists_timers_then_counters(self):
        text = obs.format_summary(
            {"counters": {"hits": 2}, "timers": {"build": 1.5}}
        )
        lines = text.splitlines()
        assert "build" in lines[0]
        assert "hits" in lines[1]


class TestHistograms:
    def test_observe_accumulates_buckets(self):
        inst = obs.Instrumentation()
        inst.observe("latency", 0.5)
        inst.observe("latency", 0.5)
        inst.observe("latency", 2.0)
        snap = inst.snapshot()["histograms"]["latency"]
        assert snap["count"] == 3
        assert abs(snap["sum"] - 3.0) < 1e-9
        assert sum(snap["buckets"].values()) == 3

    def test_delta_since_only_new_observations(self):
        inst = obs.Instrumentation()
        inst.observe("latency", 1.0)
        before = inst.snapshot()
        inst.observe("latency", 1.0)
        inst.observe("other", 4.0)
        delta = inst.delta_since(before)
        assert delta["histograms"]["latency"]["count"] == 1
        assert delta["histograms"]["other"]["count"] == 1

    def test_merge_delta_folds_histograms(self):
        """The worker->supervisor folding protocol: merging per-worker
        deltas gives the same histogram as observing locally."""
        local = obs.Instrumentation()
        for value in (0.1, 0.2, 0.4, 8.0):
            local.observe("latency", value)

        supervisor = obs.Instrumentation()
        worker_a, worker_b = obs.Instrumentation(), obs.Instrumentation()
        worker_a.observe("latency", 0.1)
        worker_a.observe("latency", 0.2)
        worker_b.observe("latency", 0.4)
        worker_b.observe("latency", 8.0)
        supervisor.merge_delta(worker_a.snapshot())
        supervisor.merge_delta(worker_b.snapshot())

        merged = supervisor.snapshot()["histograms"]["latency"]
        direct = local.snapshot()["histograms"]["latency"]
        assert merged == direct

    def test_quantile_summary(self):
        from repro.obs.metrics import summarize

        inst = obs.Instrumentation()
        for value in range(1, 101):
            inst.observe("spread", float(value))
        digest = summarize(inst.snapshot()["histograms"]["spread"])
        assert digest["count"] == 100
        assert abs(digest["mean"] - 50.5) < 1e-9
        # bucket quantiles are approximate; log buckets bound the error
        assert 30 <= digest["p50"] <= 70
        assert digest["p90"] <= digest["p99"]

    def test_disabled_records_nothing(self):
        inst = obs.Instrumentation()
        inst.enabled = False
        inst.observe("latency", 1.0)
        inst.gauge("rss", 42)
        snap = inst.snapshot()
        assert snap.get("histograms", {}) == {}
        assert snap.get("gauges", {}) == {}

    def test_stage_feeds_same_named_histogram(self):
        inst = obs.Instrumentation()
        with inst.stage("build"):
            pass
        snap = inst.snapshot()
        assert snap["histograms"]["build"]["count"] == 1
        assert "build" in snap["timers"]

    def test_format_summary_includes_histogram_digest(self):
        inst = obs.Instrumentation()
        inst.observe("latency", 0.5)
        text = obs.format_summary(inst.snapshot())
        assert "latency" in text
        assert "p99" in text


class TestGauges:
    def test_gauge_last_write_wins(self):
        inst = obs.Instrumentation()
        inst.gauge("rss_bytes", 100)
        inst.gauge("rss_bytes", 250)
        assert inst.snapshot()["gauges"]["rss_bytes"] == 250

    def test_delta_since_reports_changed_gauges_only(self):
        inst = obs.Instrumentation()
        inst.gauge("stable", 7)
        inst.gauge("moving", 1)
        before = inst.snapshot()
        inst.gauge("moving", 2)
        delta = inst.delta_since(before)
        assert delta.get("gauges") == {"moving": 2}

    def test_merge_delta_overwrites_gauges(self):
        inst = obs.Instrumentation()
        inst.gauge("rss_bytes", 100)
        inst.merge_delta({"gauges": {"rss_bytes": 999}})
        assert inst.snapshot()["gauges"]["rss_bytes"] == 999


class TestThreadSafety:
    def test_concurrent_counts_sum_exactly(self):
        import threading

        inst = obs.Instrumentation()
        rounds = 2000

        def hammer():
            for _ in range(rounds):
                inst.count("hits")
                inst.observe("values", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert inst.counters["hits"] == 4 * rounds
        assert inst.snapshot()["histograms"]["values"]["count"] == 4 * rounds

    def test_stage_reentrancy_is_per_thread(self):
        """Two threads timing the same stage concurrently must each get
        a frame (the reentrancy guard is thread-local, not global)."""
        import threading

        inst = obs.Instrumentation()
        barrier = threading.Barrier(2)

        def timed():
            with inst.stage("work"):
                barrier.wait(timeout=5)

        threads = [threading.Thread(target=timed) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert inst.snapshot()["histograms"]["work"]["count"] == 2


class TestEvaluationCounters:
    def test_formula_cache_hit_miss_counted(self, crash3):
        crash3.clear_caches()
        key = ("obs-test", 0)
        compute = lambda: TruthAssignment.constant(crash3, True)

        before = obs.snapshot()
        crash3.cached_evaluation(key, compute)
        mid = obs.delta_since(before)
        assert mid["counters"]["formula_cache_misses"] == 1

        before = obs.snapshot()
        crash3.cached_evaluation(key, compute)
        after = obs.delta_since(before)
        assert after["counters"]["formula_cache_hits"] == 1
        assert "formula_cache_misses" not in after["counters"]
        crash3.clear_caches()

    def test_fixpoint_iterations_counted(self, crash3):
        before = obs.snapshot()
        eval_common(crash3, NONFAULTY, TruthAssignment.constant(crash3, True))
        delta = obs.delta_since(before)
        assert delta["counters"]["fixpoint_iterations"] >= 1

    def test_build_counts_runs_and_views(self):
        from repro.model.adversary import ExhaustiveCrashAdversary
        from repro.model.system import build_system

        before = obs.snapshot()
        system = build_system(ExhaustiveCrashAdversary(3, 1, 2))
        delta = obs.delta_since(before)
        assert delta["counters"]["runs_built"] == len(system.runs)
        assert delta["counters"]["views_interned"] == len(system.table)
        assert "build_system" in delta["timers"]


class TestMergeDelta:
    def test_merge_folds_counters_and_timers(self):
        inst = obs.Instrumentation()
        inst.count("runs_built", 2)
        inst.merge_delta(
            {"counters": {"runs_built": 3, "chunks": 1},
             "timers": {"build_chunk": 0.5}}
        )
        inst.merge_delta({"timers": {"build_chunk": 0.25}})
        assert inst.counters == {"runs_built": 5, "chunks": 1}
        assert inst.timers["build_chunk"] == 0.75

    def test_merge_disabled_is_noop(self):
        inst = obs.Instrumentation()
        inst.enabled = False
        inst.merge_delta({"counters": {"runs_built": 3}})
        assert inst.counters == {}

    def test_parallel_build_counts_match_serial(self):
        """Worker deltas folded into the parent: parallel and serial
        builds report identical run/view counters."""
        from repro.model.adversary import ExhaustiveCrashAdversary
        from repro.model.system import build_system

        before = obs.snapshot()
        serial = build_system(ExhaustiveCrashAdversary(3, 1, 2))
        serial_delta = obs.delta_since(before)

        before = obs.snapshot()
        parallel = build_system(
            ExhaustiveCrashAdversary(3, 1, 2), workers=2
        )
        parallel_delta = obs.delta_since(before)

        assert len(parallel.runs) == len(serial.runs)
        for delta in (serial_delta, parallel_delta):
            assert delta["counters"]["runs_built"] == len(serial.runs)
            assert delta["counters"]["views_interned"] == len(serial.table)


class TestExperimentIntegration:
    @staticmethod
    def _result():
        return ExperimentResult(
            experiment_id="E99",
            title="dummy",
            paper_claim="n/a",
            ok=True,
            table="x",
        )

    def test_attach_instrumentation_stamps_delta(self):
        before = obs.snapshot()
        obs.count("system_cache_hits", 2)
        result = attach_instrumentation(self._result(), before)
        assert result.data["instrumentation"]["counters"][
            "system_cache_hits"
        ] == 2

    def test_render_includes_instrumentation_block(self):
        result = self._result()
        result.data["instrumentation"] = {
            "counters": {"system_cache_hits": 2},
            "timers": {"build_system": 0.25},
        }
        rendered = result.render()
        assert "instrumentation:" in rendered
        assert "system_cache_hits" in rendered
        assert "build_system" in rendered

    def test_render_omits_empty_instrumentation(self):
        result = self._result()
        result.data["instrumentation"] = {"counters": {}, "timers": {}}
        assert "instrumentation:" not in result.render()

    def test_run_experiment_attaches_instrumentation(self, monkeypatch):
        from repro.experiments import registry

        def dummy_runner():
            obs.count("system_cache_hits")
            return self._result()

        monkeypatch.setitem(registry.EXPERIMENTS, "E99", dummy_runner)
        result = registry.run_experiment("E99")
        instrumentation = result.data["instrumentation"]
        assert instrumentation["counters"]["system_cache_hits"] == 1


class TestCliStats:
    def test_stats_command(self, capsys, monkeypatch, tmp_path):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "instrumentation (this process):" in out
        assert "system cache:" in out
        assert "disk cache inventory" in out


class TestGraftOffset:
    """Regression: parallel-build span grafting when the parent span was
    dropped (tracer ring overflow / disabled tracer hands out the null
    span).  The offset must come from the tracer clock, never default to
    0.0 — a zero offset grafts every worker span at the epoch, corrupting
    the timeline."""

    def test_null_parent_uses_tracer_clock(self):
        import time

        from repro import trace
        from repro.model.system import _graft_offset
        from repro.trace import _NULL_SPAN

        before = time.perf_counter() - trace.TRACER.epoch
        offset = _graft_offset(_NULL_SPAN)
        after = time.perf_counter() - trace.TRACER.epoch
        # Pre-fix this returned 0.0; the process has been alive longer.
        assert before <= offset <= after
        assert offset > 0.0

    def test_real_parent_span_keeps_its_start(self):
        from repro import trace
        from repro.model.system import _graft_offset

        with trace.span("parent") as parent:
            assert _graft_offset(parent) == parent.start
