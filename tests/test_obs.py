"""Tests for the instrumentation layer (repro.obs) and its integration
points: System.cached_evaluation, the fixpoint evaluators, experiment
results, and the CLI stats surface."""

from repro import obs
from repro.experiments.framework import ExperimentResult, attach_instrumentation
from repro.knowledge.nonrigid import NONFAULTY
from repro.knowledge.semantics import eval_common
from repro.model.system import TruthAssignment


class TestInstrumentation:
    def test_counters_accumulate(self):
        inst = obs.Instrumentation()
        inst.count("widgets")
        inst.count("widgets", 4)
        assert inst.counters["widgets"] == 5

    def test_stage_times_accumulate(self):
        inst = obs.Instrumentation()
        with inst.stage("work"):
            pass
        with inst.stage("work"):
            pass
        assert inst.timers["work"] >= 0.0
        assert set(inst.timers) == {"work"}

    def test_nested_same_stage_not_double_counted(self):
        inst = obs.Instrumentation()
        with inst.stage("outer"):
            with inst.stage("outer"):
                pass
        # A single cumulative entry, not the sum of both frames.
        assert len(inst.timers) == 1
        # The inner no-op frame must not have closed the outer one early.
        assert "outer" not in inst._active

    def test_disabled_records_nothing(self):
        inst = obs.Instrumentation()
        inst.enabled = False
        inst.count("widgets")
        with inst.stage("work"):
            pass
        assert inst.counters == {}
        assert inst.timers == {}

    def test_delta_since_drops_zero_entries(self):
        inst = obs.Instrumentation()
        inst.count("before_only")
        before = inst.snapshot()
        inst.count("after", 3)
        delta = inst.delta_since(before)
        assert delta["counters"] == {"after": 3}

    def test_format_summary_empty(self):
        assert "no instrumentation" in obs.format_summary(
            {"counters": {}, "timers": {}}
        )

    def test_format_summary_lists_timers_then_counters(self):
        text = obs.format_summary(
            {"counters": {"hits": 2}, "timers": {"build": 1.5}}
        )
        lines = text.splitlines()
        assert "build" in lines[0]
        assert "hits" in lines[1]


class TestEvaluationCounters:
    def test_formula_cache_hit_miss_counted(self, crash3):
        crash3.clear_caches()
        key = ("obs-test", 0)
        compute = lambda: TruthAssignment.constant(crash3, True)

        before = obs.snapshot()
        crash3.cached_evaluation(key, compute)
        mid = obs.delta_since(before)
        assert mid["counters"]["formula_cache_misses"] == 1

        before = obs.snapshot()
        crash3.cached_evaluation(key, compute)
        after = obs.delta_since(before)
        assert after["counters"]["formula_cache_hits"] == 1
        assert "formula_cache_misses" not in after["counters"]
        crash3.clear_caches()

    def test_fixpoint_iterations_counted(self, crash3):
        before = obs.snapshot()
        eval_common(crash3, NONFAULTY, TruthAssignment.constant(crash3, True))
        delta = obs.delta_since(before)
        assert delta["counters"]["fixpoint_iterations"] >= 1

    def test_build_counts_runs_and_views(self):
        from repro.model.adversary import ExhaustiveCrashAdversary
        from repro.model.system import build_system

        before = obs.snapshot()
        system = build_system(ExhaustiveCrashAdversary(3, 1, 2))
        delta = obs.delta_since(before)
        assert delta["counters"]["runs_built"] == len(system.runs)
        assert delta["counters"]["views_interned"] == len(system.table)
        assert "build_system" in delta["timers"]


class TestMergeDelta:
    def test_merge_folds_counters_and_timers(self):
        inst = obs.Instrumentation()
        inst.count("runs_built", 2)
        inst.merge_delta(
            {"counters": {"runs_built": 3, "chunks": 1},
             "timers": {"build_chunk": 0.5}}
        )
        inst.merge_delta({"timers": {"build_chunk": 0.25}})
        assert inst.counters == {"runs_built": 5, "chunks": 1}
        assert inst.timers["build_chunk"] == 0.75

    def test_merge_disabled_is_noop(self):
        inst = obs.Instrumentation()
        inst.enabled = False
        inst.merge_delta({"counters": {"runs_built": 3}})
        assert inst.counters == {}

    def test_parallel_build_counts_match_serial(self):
        """Worker deltas folded into the parent: parallel and serial
        builds report identical run/view counters."""
        from repro.model.adversary import ExhaustiveCrashAdversary
        from repro.model.system import build_system

        before = obs.snapshot()
        serial = build_system(ExhaustiveCrashAdversary(3, 1, 2))
        serial_delta = obs.delta_since(before)

        before = obs.snapshot()
        parallel = build_system(
            ExhaustiveCrashAdversary(3, 1, 2), workers=2
        )
        parallel_delta = obs.delta_since(before)

        assert len(parallel.runs) == len(serial.runs)
        for delta in (serial_delta, parallel_delta):
            assert delta["counters"]["runs_built"] == len(serial.runs)
            assert delta["counters"]["views_interned"] == len(serial.table)


class TestExperimentIntegration:
    @staticmethod
    def _result():
        return ExperimentResult(
            experiment_id="E99",
            title="dummy",
            paper_claim="n/a",
            ok=True,
            table="x",
        )

    def test_attach_instrumentation_stamps_delta(self):
        before = obs.snapshot()
        obs.count("system_cache_hits", 2)
        result = attach_instrumentation(self._result(), before)
        assert result.data["instrumentation"]["counters"][
            "system_cache_hits"
        ] == 2

    def test_render_includes_instrumentation_block(self):
        result = self._result()
        result.data["instrumentation"] = {
            "counters": {"system_cache_hits": 2},
            "timers": {"build_system": 0.25},
        }
        rendered = result.render()
        assert "instrumentation:" in rendered
        assert "system_cache_hits" in rendered
        assert "build_system" in rendered

    def test_render_omits_empty_instrumentation(self):
        result = self._result()
        result.data["instrumentation"] = {"counters": {}, "timers": {}}
        assert "instrumentation:" not in result.render()

    def test_run_experiment_attaches_instrumentation(self, monkeypatch):
        from repro.experiments import registry

        def dummy_runner():
            obs.count("system_cache_hits")
            return self._result()

        monkeypatch.setitem(registry.EXPERIMENTS, "E99", dummy_runner)
        result = registry.run_experiment("E99")
        instrumentation = result.data["instrumentation"]
        assert instrumentation["counters"]["system_cache_hits"] == 1


class TestCliStats:
    def test_stats_command(self, capsys, monkeypatch, tmp_path):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "instrumentation (this process):" in out
        assert "system cache:" in out
        assert "disk cache inventory" in out
