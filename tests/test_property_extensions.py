"""Property-based sweeps over the extension protocols: DM90 waste SBA and
the multivalued pair, on randomized scenario spaces beyond the exhaustive
test sizes."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domination import compare
from repro.core.specs import check_eba, check_sba, check_uniform_agreement
from repro.model.failures import FailureMode
from repro.multivalued.config import MultiConfiguration
from repro.multivalued.protocols import multi_opt, multi_race
from repro.protocols.dm90 import dm90_waste
from repro.protocols.flood_sba import flood_sba
from repro.sim.engine import run_over_scenarios
from repro.workloads.scenarios import _random_crash_pattern, random_scenarios


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_dm90_sba_random_n6_t2(seed):
    """DM90Waste stays a correct SBA protocol on random n=6, t=2 crash
    scenarios — simultaneity is the fragile property, so it gets the
    property-test treatment."""
    scenarios = random_scenarios(
        FailureMode.CRASH, 6, 2, 4, count=60, seed=seed
    )
    outcome = run_over_scenarios(dm90_waste(), scenarios, 4, 2)
    assert check_sba(outcome).ok


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_dm90_never_later_than_flood(seed):
    scenarios = random_scenarios(
        FailureMode.CRASH, 5, 2, 4, count=60, seed=seed
    )
    dm90 = run_over_scenarios(dm90_waste(), scenarios, 4, 2)
    flood = run_over_scenarios(flood_sba(), scenarios, 4, 2)
    assert compare(dm90, flood).dominates


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_dm90_uniform_agreement(seed):
    """Simultaneous late decisions are uniform (the E18 claim), including
    on random larger scenario spaces."""
    scenarios = random_scenarios(
        FailureMode.CRASH, 5, 2, 4, count=50, seed=seed
    )
    outcome = run_over_scenarios(dm90_waste(), scenarios, 4, 2)
    assert not check_uniform_agreement(outcome)


def _multi_scenarios(rng, n, t, horizon, domain, count):
    scenarios = []
    seen = set()
    while len(scenarios) < count:
        config = MultiConfiguration(
            tuple(rng.randint(0, domain - 1) for _ in range(n)), domain
        )
        pattern = _random_crash_pattern(rng, n, t, horizon)
        if (config, pattern) in seen:
            continue
        seen.add((config, pattern))
        scenarios.append((config, pattern))
    return scenarios


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    domain=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=10, deadline=None)
def test_multivalued_eba_random(seed, domain):
    rng = random.Random(seed)
    scenarios = _multi_scenarios(rng, 5, 2, 4, domain, 50)
    for protocol in (multi_race(domain), multi_opt(domain)):
        outcome = run_over_scenarios(protocol, scenarios, 4, 2)
        assert check_eba(outcome).ok, protocol.name


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_multivalued_opt_dominates_race_random(seed):
    rng = random.Random(seed)
    scenarios = _multi_scenarios(rng, 4, 1, 3, 3, 40)
    optimized = run_over_scenarios(multi_opt(3), scenarios, 3, 1)
    race = run_over_scenarios(multi_race(3), scenarios, 3, 1)
    assert compare(optimized, race).dominates
