"""Byte-parity of the arrays-first builder against the object graph.

The fastbuild contract (see ``repro.model.fastbuild``) is that every
array it emits is **byte-identical** — same dtype, same shape, same
buffer — to ``SystemArrays.from_system`` on the ``build_system`` object
graph of the same cell, including the dense first-appearance view-id
order.  These tests pin that contract per failure mode, plus the
provider integration: a cold ``get_arrays`` takes the fast path (no
``Run`` objects anywhere), and ``REPRO_ARRAYS_FASTBUILD=0`` routes back
through the object graph with identical output.
"""

from __future__ import annotations

import pytest

from repro.model.adversary import (
    ExhaustiveCrashAdversary,
    ExhaustiveOmissionAdversary,
    ExhaustiveReceiveOmissionAdversary,
)
from repro.model.failures import FailureMode
from repro.model.fastbuild import build_arrays, supports, try_build_arrays
from repro.model.partition import SystemArrays
from repro.model.provider import SystemProvider
from repro.model.system import build_system

#: Every array field of a ``SystemArrays`` (meta fields checked apart).
_ARRAY_FIELDS = (
    "views",
    "owner",
    "vtime",
    "prev",
    "init",
    "nonfaulty",
    "deliveries",
    "occurs",
)

_CELLS = [
    (FailureMode.CRASH, ExhaustiveCrashAdversary, 3, 1, 2),
    (FailureMode.CRASH, ExhaustiveCrashAdversary, 4, 2, 2),
    (FailureMode.OMISSION, ExhaustiveOmissionAdversary, 3, 1, 2),
    (
        FailureMode.RECEIVE_OMISSION,
        ExhaustiveReceiveOmissionAdversary,
        3,
        1,
        2,
    ),
]


def _require_fastbuild(mode, n, t, horizon):
    if not supports(mode, n, t, horizon):
        pytest.skip("arrays-first builder unavailable (no numpy backend)")


def assert_arrays_byte_identical(fast, reference):
    assert (fast.mode, fast.n, fast.t, fast.horizon) == (
        reference.mode,
        reference.n,
        reference.t,
        reference.horizon,
    )
    assert fast.num_views == reference.num_views
    for name in _ARRAY_FIELDS:
        built = getattr(fast, name)
        projected = getattr(reference, name)
        assert built.dtype == projected.dtype, name
        assert built.shape == projected.shape, name
        assert built.tobytes() == projected.tobytes(), name


class TestByteParity:
    @pytest.mark.parametrize(
        "mode,adversary_cls,n,t,horizon",
        _CELLS,
        ids=[f"{m.value}-n{n}t{t}h{h}" for m, _, n, t, h in _CELLS],
    )
    def test_identical_to_object_graph_projection(
        self, mode, adversary_cls, n, t, horizon
    ):
        _require_fastbuild(mode, n, t, horizon)
        fast = build_arrays(mode, n, t, horizon)
        reference = SystemArrays.from_system(
            build_system(adversary_cls(n, t, horizon))
        )
        assert_arrays_byte_identical(fast, reference)

    def test_save_load_round_trip(self, tmp_path):
        _require_fastbuild(FailureMode.CRASH, 3, 1, 2)
        fast = build_arrays(FailureMode.CRASH, 3, 1, 2)
        path = str(tmp_path / "cell.npz")
        fast.save(path)
        assert_arrays_byte_identical(SystemArrays.load(path), fast)


class TestProviderIntegration:
    def test_cold_get_arrays_takes_fast_path(self, tmp_path):
        _require_fastbuild(FailureMode.CRASH, 3, 1, 2)
        from repro import obs

        provider = SystemProvider(cache_dir=str(tmp_path))
        before = obs.snapshot()["counters"].get("system_fast_builds", 0)
        arrays = provider.get_arrays(FailureMode.CRASH, 3, 1, 2)
        after = obs.snapshot()["counters"].get("system_fast_builds", 0)
        assert after == before + 1
        # The object graph was never materialized on the way.
        assert not provider.has_memory_cell(FailureMode.CRASH, 3, 1, 2)
        reference = SystemArrays.from_system(
            build_system(ExhaustiveCrashAdversary(3, 1, 2))
        )
        assert_arrays_byte_identical(arrays, reference)

    def test_env_gate_disables_fast_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAYS_FASTBUILD", "0")
        assert not supports(FailureMode.CRASH, 3, 1, 2)
        assert try_build_arrays(FailureMode.CRASH, 3, 1, 2) is None

    def test_unsupported_cells_return_none(self):
        assert try_build_arrays(FailureMode.CRASH, 1, 0, 2) is None
        assert try_build_arrays(FailureMode.CRASH, 3, 1, 0) is None
