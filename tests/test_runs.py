"""Unit tests for full-information run construction."""

import pytest

from repro.errors import ConfigurationError
from repro.model.config import InitialConfiguration
from repro.model.failures import (
    CrashBehavior,
    FailurePattern,
    OmissionBehavior,
)
from repro.model.runs import build_run
from repro.model.views import ViewTable


@pytest.fixture
def table():
    return ViewTable()


def _config(*values):
    return InitialConfiguration(values)


class TestFailureFreeRun:
    def test_everyone_hears_everyone(self, table):
        run = build_run(_config(0, 1, 1), FailurePattern(()), 2, table)
        for round_number in (1, 2):
            for receiver in range(3):
                expected = frozenset(range(3)) - {receiver}
                assert run.senders_to(receiver, round_number) == expected

    def test_all_nonfaulty(self, table):
        run = build_run(_config(0, 1), FailurePattern(()), 1, table)
        assert run.nonfaulty == frozenset((0, 1))

    def test_views_exist_for_all_times(self, table):
        run = build_run(_config(0, 1), FailurePattern(()), 3, table)
        assert len(run.views) == 4

    def test_knowledge_spreads_in_one_round(self, table):
        run = build_run(_config(0, 1, 1), FailurePattern(()), 1, table)
        for processor in range(3):
            assert table.known_values(run.view(processor, 1)) == frozenset(
                (0, 1)
            )

    def test_exists_fact(self, table):
        run = build_run(_config(0, 1), FailurePattern(()), 1, table)
        assert run.exists(0) and run.exists(1)
        run_ones = build_run(_config(1, 1), FailurePattern(()), 1, table)
        assert not run_ones.exists(0)


class TestCrashRun:
    def test_crashed_processor_silent(self, table):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        run = build_run(_config(0, 1, 1), pattern, 2, table)
        assert 0 not in run.senders_to(1, 1)
        assert 0 not in run.senders_to(1, 2)

    def test_partial_crash_round_delivery(self, table):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset((1,)))})
        run = build_run(_config(0, 1, 1), pattern, 2, table)
        assert 0 in run.senders_to(1, 1)
        assert 0 not in run.senders_to(2, 1)

    def test_hidden_value_propagates_via_receiver(self, table):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset((1,)))})
        run = build_run(_config(0, 1, 1), pattern, 2, table)
        # processor 2 misses the 0 in round 1 but gets it from 1 in round 2
        assert table.known_values(run.view(2, 1)) == frozenset((1,))
        assert table.known_values(run.view(2, 2)) == frozenset((0, 1))

    def test_nonfaulty_set(self, table):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        run = build_run(_config(0, 1, 1), pattern, 1, table)
        assert run.nonfaulty == frozenset((1, 2))


class TestOmissionRun:
    def test_selective_omission(self, table):
        pattern = FailurePattern({0: OmissionBehavior({1: [1]})})
        run = build_run(_config(0, 1, 1), pattern, 2, table)
        assert 0 not in run.senders_to(1, 1)
        assert 0 in run.senders_to(2, 1)
        assert 0 in run.senders_to(1, 2)  # omission only in round 1

    def test_faulty_sender_keeps_receiving(self, table):
        """Sending-omission processors still receive everything."""
        pattern = FailurePattern(
            {0: OmissionBehavior({1: [1, 2], 2: [1, 2]})}
        )
        run = build_run(_config(0, 1, 1), pattern, 2, table)
        assert table.known_values(run.view(0, 1)) == frozenset((0, 1))


class TestDeterminismAndCorrespondence:
    def test_same_scenario_same_views(self, table):
        config = _config(0, 1, 1)
        pattern = FailurePattern({0: CrashBehavior(2, frozenset((1,)))})
        a = build_run(config, pattern, 3, table)
        b = build_run(config, pattern, 3, table)
        assert a.views == b.views

    def test_scenario_key(self, table):
        config = _config(0, 1)
        pattern = FailurePattern(())
        run = build_run(config, pattern, 1, table)
        assert run.scenario_key() == (config, pattern)

    def test_states_shared_across_indistinguishable_runs(self, table):
        """Processor 2's view at time 1 cannot depend on messages it never
        saw: a round-1 omission to processor 1 only is invisible to 2."""
        config = _config(0, 1, 1)
        clean = build_run(config, FailurePattern(()), 1, table)
        dirty = build_run(
            config,
            FailurePattern({0: OmissionBehavior({1: [1]})}),
            1,
            table,
        )
        assert clean.view(2, 1) == dirty.view(2, 1)
        assert clean.view(1, 1) != dirty.view(1, 1)

    def test_rejects_zero_horizon(self, table):
        with pytest.raises(ConfigurationError):
            build_run(_config(0, 1), FailurePattern(()), 0, table)
