"""Tests for :mod:`repro.bench.regression` and the ``bench-compare`` CLI."""

import json

import pytest

from repro.bench import (
    BenchSnapshot,
    append_history,
    compare_snapshots,
    load_history,
    load_snapshot,
    write_snapshot,
)
from repro.cli import main


def _snapshot(label, **timings):
    return BenchSnapshot(label=label, timings=timings, meta={"rounds": 3})


class TestCompareSnapshots:
    def test_identical_snapshots_pass(self):
        base = _snapshot("a", enumerate=0.5, fixpoint=0.2)
        report = compare_snapshots(base, _snapshot("b", enumerate=0.5,
                                                   fixpoint=0.2))
        assert report.ok
        assert not report.regressions
        assert {d.name for d in report.deltas} == {"enumerate", "fixpoint"}

    def test_synthetic_2x_slowdown_detected(self):
        base = _snapshot("a", enumerate=0.5)
        candidate = _snapshot("b", enumerate=1.0)
        report = compare_snapshots(base, candidate)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.name == "enumerate"
        assert delta.ratio == pytest.approx(2.0)

    def test_threshold_boundary_is_exclusive(self):
        base = _snapshot("a", bench=1.0)
        at_threshold = compare_snapshots(
            base, _snapshot("b", bench=1.25), threshold=0.25
        )
        assert at_threshold.ok
        over = compare_snapshots(
            base, _snapshot("b", bench=1.26), threshold=0.25
        )
        assert not over.ok

    def test_noise_floor_suppresses_tiny_benches(self):
        base = _snapshot("a", tiny=1e-5)
        candidate = _snapshot("b", tiny=9e-5)  # 9x but both below floor
        report = compare_snapshots(base, candidate)
        assert report.ok
        (delta,) = report.deltas
        assert "noise" in delta.note

    def test_added_and_removed_benches_are_not_regressions(self):
        base = _snapshot("a", old=0.5, shared=0.5)
        candidate = _snapshot("b", new=0.5, shared=0.5)
        report = compare_snapshots(base, candidate)
        assert report.ok
        notes = {d.name: d.note for d in report.deltas}
        assert "added" in notes["new"]
        assert "removed" in notes["old"]

    def test_improvement_noted(self):
        report = compare_snapshots(
            _snapshot("a", bench=1.0), _snapshot("b", bench=0.5)
        )
        assert report.ok
        (delta,) = report.deltas
        assert "improved" in delta.note

    def test_render_contains_verdict_and_table(self):
        report = compare_snapshots(
            _snapshot("base", bench=0.5), _snapshot("cand", bench=2.0)
        )
        text = report.render()
        assert "base" in text and "cand" in text
        assert "REGRESSED" in text
        ok_text = compare_snapshots(
            _snapshot("base", bench=0.5), _snapshot("cand", bench=0.5)
        ).render()
        assert "ok" in ok_text


class TestHistory:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(path, _snapshot("first", bench=0.5))
        append_history(path, _snapshot("second", bench=0.6))
        history = load_history(path)
        assert [s.label for s in history] == ["first", "second"]
        assert history[1].timings == {"bench": 0.6}
        assert history[0].meta == {"rounds": 3}

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []

    def test_corrupt_lines_skipped(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(path, _snapshot("good", bench=0.5))
        with open(path, "a") as handle:
            handle.write("not json\n")
            handle.write('[1, 2, 3]\n')
            handle.write('{"timings": "not-a-mapping"}\n')
        append_history(path, _snapshot("later", bench=0.4))
        assert [s.label for s in load_history(path)] == ["good", "later"]

    def test_write_and_load_snapshot_file(self, tmp_path):
        path = str(tmp_path / "snap.json")
        write_snapshot(path, _snapshot("solo", bench=0.5))
        loaded = load_snapshot(path)
        assert loaded.label == "solo"
        assert loaded.timings == {"bench": 0.5}


class TestBenchCompareCli:
    def test_two_files_regression_exits_nonzero(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        cand = str(tmp_path / "cand.json")
        write_snapshot(base, _snapshot("base", bench=0.5))
        write_snapshot(cand, _snapshot("cand", bench=2.0))
        assert main(["bench-compare", base, cand]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_two_files_identical_exits_zero(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        cand = str(tmp_path / "cand.json")
        write_snapshot(base, _snapshot("base", bench=0.5))
        write_snapshot(cand, _snapshot("cand", bench=0.5))
        assert main(["bench-compare", base, cand]) == 0

    def test_history_mode_uses_last_two(self, tmp_path, capsys):
        path = str(tmp_path / "history.jsonl")
        append_history(path, _snapshot("old", bench=0.5))
        append_history(path, _snapshot("mid", bench=0.5))
        append_history(path, _snapshot("new", bench=2.0))
        assert main(["bench-compare", "--history", path]) == 1
        out = capsys.readouterr().out
        assert "baseline: mid" in out and "candidate: new" in out

    def test_history_mode_with_too_few_snapshots(self, tmp_path, capsys):
        path = str(tmp_path / "history.jsonl")
        append_history(path, _snapshot("only", bench=0.5))
        assert main(["bench-compare", "--history", path]) == 0
        assert main(
            ["bench-compare", "--history", str(tmp_path / "none.jsonl")]
        ) == 0

    def test_custom_threshold(self, tmp_path):
        base = str(tmp_path / "base.json")
        cand = str(tmp_path / "cand.json")
        write_snapshot(base, _snapshot("base", bench=1.0))
        write_snapshot(cand, _snapshot("cand", bench=1.4))
        assert main(["bench-compare", base, cand]) == 1
        assert main(
            ["bench-compare", base, cand, "--threshold", "0.5"]
        ) == 0


class TestRunnerScript:
    def test_take_snapshot_runs_all_micro_benches(self):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "bench_regression_runner",
            pathlib.Path(__file__).resolve().parents[1]
            / "benchmarks" / "regression.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        snapshot = module.take_snapshot("test", rounds=1)
        expected = set(module.MICRO_BENCHES)
        from repro.model import native

        if native.available():
            # The native-inner-loop bench rides along iff a C compiler
            # is present on this machine.
            expected.add("kernel_chunked_fixpoint_native")
        assert set(snapshot.timings) == expected
        assert all(value > 0 for value in snapshot.timings.values())
        # Per-entry effective kernels cover every timed entry: pinned
        # kernels for the kernel_* benches, the resolved ambient kernel
        # for system-evaluating benches, None where no kernel runs.
        entry_kernels = snapshot.meta["entry_kernels"]
        assert set(entry_kernels) == set(snapshot.timings)
        assert entry_kernels["kernel_reference_common_fixpoint"] == (
            "reference"
        )
        assert entry_kernels["enumerate_crash_system_n4"] is None
        json.dumps(snapshot.to_dict())
