"""Tests for the Theorem 5.3 optimality characterization."""

from repro.core.optimality import (
    check_optimality,
    proposition_4_3_conditions,
    theorem_5_3_conditions,
)
from repro.protocols.chain_fip import chain_pair
from repro.protocols.f_lambda import f_lambda_sequence
from repro.protocols.f_star import f_star_pair
from repro.protocols.fip import fip


class TestOptimalProtocolsPass:
    def test_f_lambda_2_crash_optimal(self, crash3):
        _, _, second = f_lambda_sequence(crash3)
        report = check_optimality(crash3, fip(second).sticky_pair(crash3))
        assert report.optimal
        assert report.necessary_ok
        assert not report.violations

    def test_f_star_omission_optimal(self, omission3):
        pair = f_star_pair(omission3)
        report = check_optimality(
            omission3, fip(pair).sticky_pair(omission3)
        )
        assert report.optimal


class TestNonOptimalProtocolsFail:
    def test_f_lambda_1_not_optimal(self, crash3):
        """F^{Λ,1} never decides 1 for nonfaulty processors — the converse
        of condition (b) must fail while the necessary directions hold."""
        _, first, _ = f_lambda_sequence(crash3)
        report = check_optimality(crash3, fip(first).sticky_pair(crash3))
        assert report.necessary_ok
        assert not report.optimal
        assert report.violations

    def test_never_deciding_protocol_not_optimal(self, crash3):
        from repro.core.decision_sets import empty_pair

        report = check_optimality(crash3, empty_pair())
        assert report.necessary_ok  # vacuously: no decisions at all
        assert not report.optimal


class TestConditionFactories:
    def test_necessary_conditions_valid_for_chain(self, omission3):
        pair = fip(chain_pair(omission3)).sticky_pair(omission3)
        cond_a, cond_b = proposition_4_3_conditions(pair)
        for processor in range(omission3.n):
            assert cond_a(processor).is_valid(omission3)
            assert cond_b(processor).is_valid(omission3)

    def test_theorem_conditions_stronger_than_necessary(self, crash3):
        """Wherever a Theorem 5.3 biconditional holds, the Prop 4.3
        implication holds too."""
        _, _, second = f_lambda_sequence(crash3)
        sticky = fip(second).sticky_pair(crash3)
        strong_a, _ = theorem_5_3_conditions(sticky)
        weak_a, _ = proposition_4_3_conditions(sticky)
        for processor in range(crash3.n):
            strong = strong_a(processor).evaluate(crash3)
            weak = weak_a(processor).evaluate(crash3)
            for run_index in range(len(crash3.runs)):
                for time in range(crash3.horizon + 1):
                    if not weak.at(run_index, time):
                        assert not strong.at(run_index, time)

    def test_report_rendering(self, crash3):
        _, _, second = f_lambda_sequence(crash3)
        report = check_optimality(crash3, fip(second).sticky_pair(crash3))
        assert "OPTIMAL" in str(report)
