"""Unit + property tests for the adversaries (pattern enumerators)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.model.adversary import (
    ExhaustiveCrashAdversary,
    ExhaustiveOmissionAdversary,
    ExplicitAdversary,
    SampledOmissionAdversary,
    SilentCrashAdversary,
    exhaustive_adversary,
)
from repro.model.failures import FailureMode, FailurePattern, OmissionBehavior


class TestExhaustiveCrash:
    def test_pattern_count_formula(self):
        # per-processor behaviours: horizon * (2^(n-1) - 1); patterns:
        # 1 + n * that  (for t = 1).
        adversary = ExhaustiveCrashAdversary(3, 1, 3)
        per_processor = 3 * (2 ** 2 - 1)
        assert adversary.count_patterns() == 1 + 3 * per_processor

    def test_first_pattern_failure_free(self):
        patterns = list(ExhaustiveCrashAdversary(3, 1, 2).patterns())
        assert patterns[0] == FailurePattern(())

    def test_all_patterns_within_bound(self):
        for pattern in ExhaustiveCrashAdversary(4, 2, 2).patterns():
            assert pattern.num_faulty() <= 2

    def test_no_duplicate_patterns(self):
        patterns = list(ExhaustiveCrashAdversary(3, 1, 3).patterns())
        assert len(set(patterns)) == len(patterns)

    def test_receivers_always_strict_subsets(self):
        for pattern in ExhaustiveCrashAdversary(3, 1, 2).patterns():
            for processor, behavior in pattern.behaviors:
                others = {p for p in range(3) if p != processor}
                assert behavior.receivers < others or not behavior.receivers

    def test_deterministic(self):
        adversary = ExhaustiveCrashAdversary(3, 1, 2)
        assert list(adversary.patterns()) == list(adversary.patterns())

    def test_t_two_includes_pairs(self):
        sizes = {
            pattern.num_faulty()
            for pattern in ExhaustiveCrashAdversary(3, 2, 1).patterns()
        }
        assert sizes == {0, 1, 2}


class TestExhaustiveOmission:
    def test_pattern_count_formula(self):
        # per-processor behaviours: 2^((n-1)*h) - 1.
        adversary = ExhaustiveOmissionAdversary(3, 1, 3)
        per_processor = 2 ** (2 * 3) - 1
        assert adversary.count_patterns() == 1 + 3 * per_processor

    def test_no_vacuous_behaviours(self):
        for pattern in ExhaustiveOmissionAdversary(3, 1, 2).patterns():
            for processor, behavior in pattern.behaviors:
                assert behavior.is_visible_within(2, 3, processor)

    def test_no_duplicates(self):
        patterns = list(ExhaustiveOmissionAdversary(3, 1, 2).patterns())
        assert len(set(patterns)) == len(patterns)


class TestSilentCrash:
    def test_one_behaviour_per_round(self):
        adversary = SilentCrashAdversary(5, 1, 4)
        behaviors = list(adversary.behaviors_for(0))
        assert len(behaviors) == 4
        assert all(not b.receivers for b in behaviors)


class TestSampledOmission:
    def test_deterministic_given_seed(self):
        kwargs = dict(samples=20, seed=7)
        a = list(SampledOmissionAdversary(4, 2, 3, **kwargs).patterns())
        b = list(SampledOmissionAdversary(4, 2, 3, **kwargs).patterns())
        assert a == b

    def test_distinct_seeds_differ(self):
        a = list(SampledOmissionAdversary(4, 2, 3, samples=20, seed=1).patterns())
        b = list(SampledOmissionAdversary(4, 2, 3, samples=20, seed=2).patterns())
        assert a != b

    def test_includes_failure_free(self):
        patterns = list(
            SampledOmissionAdversary(4, 1, 3, samples=5, seed=0).patterns()
        )
        assert patterns[0] == FailurePattern(())

    def test_sample_count_and_uniqueness(self):
        patterns = list(
            SampledOmissionAdversary(4, 2, 3, samples=30, seed=0).patterns()
        )
        assert len(set(patterns)) == len(patterns)
        assert len(patterns) <= 31

    def test_every_sampled_processor_deviates(self):
        for pattern in SampledOmissionAdversary(
            4, 2, 3, samples=25, seed=3
        ).patterns():
            for processor, behavior in pattern.behaviors:
                assert behavior.is_visible_within(3, 4, processor)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            SampledOmissionAdversary(3, 1, 2, omission_probability=1.5)


class TestExplicitAdversary:
    def test_prepends_failure_free(self):
        pattern = FailurePattern({0: OmissionBehavior({1: [1]})})
        adversary = ExplicitAdversary(
            3, 1, 2, [pattern], mode=FailureMode.OMISSION
        )
        patterns = list(adversary.patterns())
        assert patterns[0] == FailurePattern(())
        assert pattern in patterns

    def test_deduplicates(self):
        pattern = FailurePattern({0: OmissionBehavior({1: [1]})})
        adversary = ExplicitAdversary(
            3, 1, 2, [pattern, pattern], mode=FailureMode.OMISSION
        )
        assert len(list(adversary.patterns())) == 2

    def test_rejects_wrong_mode(self):
        from repro.model.failures import CrashBehavior

        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        with pytest.raises(ConfigurationError):
            ExplicitAdversary(3, 1, 2, [pattern], mode=FailureMode.OMISSION)


class TestFactoryAndValidation:
    def test_factory_dispatch(self):
        assert isinstance(
            exhaustive_adversary(FailureMode.CRASH, 3, 1, 2),
            ExhaustiveCrashAdversary,
        )
        assert isinstance(
            exhaustive_adversary(FailureMode.OMISSION, 3, 1, 2),
            ExhaustiveOmissionAdversary,
        )

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ExhaustiveCrashAdversary(1, 0, 2)
        with pytest.raises(ConfigurationError):
            ExhaustiveCrashAdversary(3, 3, 2)
        with pytest.raises(ConfigurationError):
            ExhaustiveCrashAdversary(3, 1, 0)


@given(
    n=st.integers(min_value=2, max_value=4),
    t=st.integers(min_value=0, max_value=2),
    horizon=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_property_crash_patterns_valid(n, t, horizon):
    """Every enumerated crash pattern validates against its parameters."""
    if t >= n:
        return
    for pattern in ExhaustiveCrashAdversary(n, t, horizon).patterns():
        pattern.validate(n, t)
        assert pattern.mode() in (None, FailureMode.CRASH)


@given(
    seed=st.integers(min_value=0, max_value=1000),
    samples=st.integers(min_value=1, max_value=15),
)
@settings(max_examples=20, deadline=None)
def test_property_sampled_patterns_valid(seed, samples):
    """Sampled omission patterns are valid and genuinely faulty."""
    adversary = SampledOmissionAdversary(4, 2, 3, samples=samples, seed=seed)
    for pattern in adversary.patterns():
        pattern.validate(4, 2)
