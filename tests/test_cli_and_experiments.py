"""Tests for the CLI and the experiment framework/registry.

Heavy experiments are exercised through the benchmark suite; here we run
the cheap ones at reduced parameters and test the harness plumbing.
"""

import pytest

from repro.cli import main
from repro.experiments.framework import ExperimentResult
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    run_experiment,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert experiment_ids() == [f"E{i}" for i in range(1, 22)]

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_runner_callables(self):
        assert all(callable(runner) for runner in EXPERIMENTS.values())


class TestLightExperiments:
    @pytest.mark.parametrize(
        "experiment_id",
        ["E2", "E3", "E4", "E5", "E6", "E7", "E8", "E10", "E11", "E12",
         "E13", "E15", "E16", "E18", "E21"],
    )
    def test_reproduces_at_small_size(self, experiment_id):
        result = run_experiment(experiment_id, n=3, t=1)
        assert isinstance(result, ExperimentResult)
        assert result.ok, result.render()
        assert result.table
        assert result.experiment_id == experiment_id

    def test_e1_at_n3(self):
        result = run_experiment("E1", n=3, t=1)
        assert result.ok, result.render()

    def test_e14_reduced_cells(self):
        from repro.model.failures import FailureMode

        result = run_experiment(
            "E14",
            cells=(
                (FailureMode.CRASH, 3, 1, 3),
                (FailureMode.OMISSION, 3, 1, 3),
            ),
        )
        assert result.ok

    def test_e17_reduced_domains(self):
        result = run_experiment("E17", n=3, t=1, domain_sizes=(2, 3))
        assert result.ok, result.render()

    def test_e19_byzantine(self):
        result = run_experiment("E19", samples_n7=20)
        assert result.ok, result.render()

    def test_e20_reduced_cells(self):
        result = run_experiment(
            "E20", cells=((4, 1), (4, 2)), samples=120
        )
        assert result.ok, result.render()


class TestFramework:
    def test_render_contains_status(self):
        result = ExperimentResult(
            experiment_id="EX",
            title="demo",
            paper_claim="claim",
            ok=True,
            table="a  b",
            notes=["one note"],
        )
        text = result.render()
        assert "REPRODUCED" in text
        assert "one note" in text

    def test_render_mismatch_status(self):
        result = ExperimentResult(
            experiment_id="EX",
            title="demo",
            paper_claim="claim",
            ok=False,
            table="t",
        )
        assert "MISMATCH" in result.render()


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E21" in output

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E3"]) == 0
        output = capsys.readouterr().out
        assert "REPRODUCED" in output

    def test_run_nothing_errors(self, capsys):
        assert main(["run"]) == 2

    def test_skip_filters(self, capsys):
        assert main(["run", "E3", "--skip", "E3"]) == 2
