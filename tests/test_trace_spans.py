"""Tests for :mod:`repro.trace` — span recording, export, and the
threading of spans through the builder, provider, fixpoints and registry."""

import json

import pytest

from repro import trace
from repro.trace import (
    Tracer,
    chrome_trace_events,
    export_spans,
    span_tree,
    write_chrome_trace,
    write_jsonl,
)


class TestTracerCore:
    def test_spans_nest_through_the_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration is not None
        assert outer.duration >= inner.duration

    def test_attributes_at_open_and_at_close(self):
        tracer = Tracer()
        with tracer.span("stage", n=3) as record:
            record.set("iterations", 7)
        (finished,) = tracer.collect()
        assert finished.attributes == {"n": 3, "iterations": 7}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        tracer.enabled = False
        with tracer.span("invisible") as record:
            record.set("key", "value")  # the null span absorbs this
        assert tracer.collect() == []
        assert tracer.watermark() == 0

    def test_ring_buffer_keeps_most_recent(self):
        tracer = Tracer(capacity=8)
        for index in range(20):
            with tracer.span(f"s{index}"):
                pass
        kept = tracer.collect()
        assert len(kept) <= 8
        assert kept[-1].name == "s19"

    def test_watermark_and_collect_window(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        mark = tracer.watermark()
        with tracer.span("after"):
            pass
        names = [s.name for s in tracer.collect(mark)]
        assert names == ["after"]

    def test_current_span_id_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span_id() is None
        with tracer.span("open") as record:
            assert tracer.current_span_id() == record.span_id
        assert tracer.current_span_id() is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_overflow_counts_dropped_spans(self):
        from repro import obs

        tracer = Tracer(capacity=4)
        before = obs.snapshot()
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert tracer.dropped == 6
        delta = obs.delta_since(before)
        assert delta["counters"]["trace_spans_dropped"] == 6

    def test_status_reports_buffer_state(self):
        tracer = Tracer(capacity=4)
        for index in range(6):
            with tracer.span(f"s{index}"):
                pass
        status = tracer.status()
        assert status["enabled"] is True
        assert status["capacity"] == 4
        assert status["buffered"] == 4
        assert status["dropped"] == 2
        assert status["watermark"] == tracer.watermark()

    def test_module_tracer_status(self):
        from repro.trace import tracer_status

        status = tracer_status()
        assert status["capacity"] >= 1
        assert set(status) == {
            "enabled", "capacity", "buffered", "open", "watermark", "dropped"
        }


class TestCounterTracks:
    def test_counter_events_from_resource_samples(self):
        from repro.trace import chrome_counter_events

        samples = [
            {"perf": 10.0, "rss_bytes": 2 << 20, "cpu_pct": 50.0},
            {"perf": 11.0, "rss_bytes": 4 << 20, "cpu_pct": 25.0},
            {"rss_bytes": 1},  # no perf timestamp: skipped
        ]
        events = chrome_counter_events(samples, epoch=10.0)
        assert len(events) == 2
        first, second = events
        assert first["ph"] == "C"
        assert first["ts"] == 0.0
        assert second["ts"] == pytest.approx(1e6)
        assert first["args"]["rss_mib"] == 2.0
        assert second["args"]["cpu_pct"] == 25.0

    def test_write_chrome_trace_grafts_extra_events(self, tmp_path):
        from repro.trace import chrome_counter_events

        tracer = Tracer()
        with tracer.span("work"):
            pass
        counters = chrome_counter_events(
            [{"perf": 0.0, "rss_bytes": 1 << 20, "cpu_pct": 1.0}],
            epoch=0.0,
        )
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(
            tracer.collect(), path, extra_events=counters
        )
        payload = json.loads(open(path).read())
        assert count == 2  # one span + one counter event
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert phases == {"X", "C"}


class TestGraft:
    def _worker_spans(self):
        worker = Tracer()
        with worker.span("chunk") as chunk:
            with worker.span("unit"):
                pass
        spans = export_spans(worker.collect())
        base = chunk.start
        for exported in spans:
            exported["start"] = float(exported["start"]) - base
        return spans

    def test_graft_reparents_and_remaps_ids(self):
        parent = Tracer()
        with parent.span("parallel_build") as build:
            adopted = parent.graft(
                self._worker_spans(),
                parent_id=build.span_id,
                offset=build.start,
            )
        assert adopted == 2
        by_name = {s.name: s for s in parent.collect()}
        chunk, unit = by_name["chunk"], by_name["unit"]
        assert chunk.parent_id == by_name["parallel_build"].span_id
        assert unit.parent_id == chunk.span_id
        assert chunk.span_id != 0  # remapped into the parent's sequence

    def test_graft_applies_time_offset(self):
        parent = Tracer()
        spans = [
            {"span_id": 0, "parent_id": None, "name": "w",
             "start": 0.25, "duration": 0.1, "attributes": {}},
        ]
        parent.graft(spans, parent_id=None, offset=2.0)
        (adopted,) = parent.collect()
        assert adopted.start == pytest.approx(2.25)

    def test_graft_disabled_is_noop(self):
        parent = Tracer()
        parent.enabled = False
        assert parent.graft(self._worker_spans()) == 0
        assert parent.collect() == []


class TestExport:
    def _sample(self):
        tracer = Tracer()
        with tracer.span("root", mode="crash"):
            with tracer.span("child"):
                pass
        return tracer.collect()

    def test_span_tree_nests_children(self):
        (root,) = span_tree(self._sample())
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == ["child"]

    def test_span_tree_orphans_become_roots(self):
        spans = self._sample()
        children_only = [s for s in spans if s.parent_id is not None]
        roots = span_tree(children_only)
        assert [r["name"] for r in roots] == ["child"]

    def test_chrome_events_shape(self):
        events = chrome_trace_events(self._sample())
        assert [e["name"] for e in events] == ["root", "child"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
        assert events[0]["args"]["mode"] == "crash"

    def test_write_chrome_trace_loads_as_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(self._sample(), path)
        payload = json.loads(open(path).read())
        assert count == 2
        assert len(payload["traceEvents"]) == 2
        assert payload["displayTimeUnit"] == "ms"

    def test_write_jsonl_round_trips(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        count = write_jsonl(self._sample(), path)
        lines = [json.loads(line) for line in open(path)]
        assert count == len(lines) == 2
        assert {line["name"] for line in lines} == {"root", "child"}


class TestPipelineIntegration:
    def test_build_system_emits_span_hierarchy(self):
        from repro.model.adversary import ExhaustiveCrashAdversary
        from repro.model.system import build_system

        mark = trace.TRACER.watermark()
        build_system(ExhaustiveCrashAdversary(3, 1, 2))
        names = {s.name for s in trace.TRACER.collect(mark)}
        assert {"build_system", "enumerate_runs", "index_system"} <= names

    def test_parallel_build_grafts_worker_spans(self):
        from repro.model.adversary import ExhaustiveCrashAdversary
        from repro.model.system import build_system

        mark = trace.TRACER.watermark()
        build_system(ExhaustiveCrashAdversary(3, 1, 2), workers=2)
        spans = trace.TRACER.collect(mark)
        by_name = {}
        for record in spans:
            by_name.setdefault(record.name, []).append(record)
        assert "parallel_build" in by_name
        chunks = by_name.get("build_chunk", [])
        assert chunks, "worker spans were not grafted back"
        parallel_id = by_name["parallel_build"][0].span_id
        assert all(chunk.parent_id == parallel_id for chunk in chunks)

    def test_fixpoint_span_reports_iterations(self, crash3):
        from repro.knowledge.formulas import Common, Exists
        from repro.knowledge.nonrigid import NONFAULTY

        crash3.clear_caches()
        mark = trace.TRACER.watermark()
        Common(NONFAULTY, Exists(1)).evaluate(crash3)
        spans = [
            s for s in trace.TRACER.collect(mark)
            if s.name == "fixpoint.common"
        ]
        assert spans and spans[0].attributes["iterations"] >= 1

    def test_run_experiment_attaches_span_tree(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("E3")
        tree = result.data["trace"]
        assert isinstance(tree, list) and tree
        root = tree[-1]
        assert root["name"] == "experiment.E3"
        assert root["children"], "experiment span has no nested spans"
        json.dumps(tree)  # must be JSON-serializable as-is

    def test_simulator_spans_capture_message_totals(self):
        from repro.model.config import InitialConfiguration
        from repro.model.failures import FailurePattern
        from repro.protocols.p0 import p0
        from repro.sim.engine import execute

        mark = trace.TRACER.watermark()
        execute(
            p0(), InitialConfiguration([0, 1, 1]), FailurePattern({}), 2, 1
        )
        (record,) = [
            s for s in trace.TRACER.collect(mark) if s.name == "sim.execute"
        ]
        assert record.attributes["sent"] == record.attributes["delivered"]
        assert record.attributes["sent"] > 0


class TestTraceCli:
    def test_trace_run_writes_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "trace.json")
        assert main(["trace", "run", "E03", "--out", out]) == 0
        payload = json.loads(open(out).read())
        names = {e["name"] for e in payload["traceEvents"]}
        assert any(n == "experiment.E3" for n in names)

    def test_trace_run_jsonl_format(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "spans.jsonl")
        assert main(
            ["trace", "run", "E3", "--out", out, "--format", "jsonl"]
        ) == 0
        lines = [json.loads(line) for line in open(out)]
        assert any(line["name"] == "experiment.E3" for line in lines)


class TestExperimentIdNormalization:
    def test_normalize_variants(self):
        from repro.cli import normalize_experiment_id

        assert normalize_experiment_id("E04") == "E4"
        assert normalize_experiment_id("e21") == "E21"
        assert normalize_experiment_id("7") == "E7"
        assert normalize_experiment_id("E10") == "E10"
        assert normalize_experiment_id("bogus") == "bogus"
