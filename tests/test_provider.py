"""Tests for the SystemProvider pipeline: codec round-trips, the disk and
LRU cache layers, and the parallel enumeration path."""

import gzip
import os

import pytest

from repro.io.system_codec import dump_system, load_system, system_to_payload
from repro.model.adversary import (
    ExhaustiveCrashAdversary,
    ExhaustiveOmissionAdversary,
)
from repro.model.builder import (
    clear_system_cache,
    crash_system,
    system_cache_info,
)
from repro.model.failures import FailureMode
from repro.model.provider import SystemProvider
from repro.model.system import build_system


def assert_systems_identical(actual, expected):
    """Run-for-run identity: run order, scenario index, views, state index."""
    assert actual.n == expected.n
    assert actual.t == expected.t
    assert actual.horizon == expected.horizon
    assert actual.mode is expected.mode
    assert len(actual.runs) == len(expected.runs)
    assert actual.scenarios() == expected.scenarios()
    for mine, theirs in zip(actual.runs, expected.runs):
        assert mine.views == theirs.views
        assert mine.nonfaulty == theirs.nonfaulty
        assert mine.deliveries == theirs.deliveries
    assert actual._scenario_index == expected._scenario_index
    assert actual._state_index == expected._state_index


class TestSystemCodec:
    def test_crash_round_trip_equals_fresh_enumeration(self, tmp_path, crash4):
        path = str(tmp_path / "crash4.json.gz")
        dump_system(crash4, path)
        assert_systems_identical(load_system(path), crash4)

    def test_omission_round_trip_equals_fresh_enumeration(
        self, tmp_path, omission3
    ):
        path = str(tmp_path / "omission3.json.gz")
        dump_system(omission3, path)
        assert_systems_identical(load_system(path), omission3)

    def test_payload_is_versioned(self, crash3):
        from repro.io.system_codec import CODEC_VERSION

        payload = system_to_payload(crash3)
        assert payload["codec_version"] == CODEC_VERSION

    def test_wrong_codec_version_rejected(self, crash3):
        from repro.errors import ConfigurationError
        from repro.io.system_codec import system_from_payload

        payload = system_to_payload(crash3)
        payload["codec_version"] = -1
        with pytest.raises(ConfigurationError):
            system_from_payload(payload)


class TestDiskCacheLayer:
    def test_cross_provider_disk_hit(self, tmp_path):
        first = SystemProvider(cache_dir=str(tmp_path))
        built = first.get(FailureMode.CRASH, 3, 1, 2)
        assert first.cache_info()["disk_misses"] == 1

        second = SystemProvider(cache_dir=str(tmp_path))
        loaded = second.get(FailureMode.CRASH, 3, 1, 2)
        assert second.cache_info()["disk_hits"] == 1
        assert loaded is not built
        assert_systems_identical(loaded, built)

    def test_corrupted_cache_file_recovers(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 2)
        # a cell is two files now: the JSON payload + the pickle sidecar
        paths = [
            os.path.join(str(tmp_path), entry)
            for entry in os.listdir(str(tmp_path))
        ]
        assert len(paths) == 2

        # Not even gzip / not even pickle.
        for path in paths:
            with open(path, "wb") as handle:
                handle.write(b"this is not a cache file")
        fresh = SystemProvider(cache_dir=str(tmp_path))
        system = fresh.get(FailureMode.CRASH, 3, 1, 2)
        assert len(system.runs) > 0
        assert fresh.cache_info()["disk_hits"] == 0

        # The rebuild overwrote the corrupt files with valid ones.
        after = SystemProvider(cache_dir=str(tmp_path))
        after.get(FailureMode.CRASH, 3, 1, 2)
        assert after.cache_info()["disk_hits"] == 1

    def test_valid_gzip_invalid_payload_recovers(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 2)
        (path,) = [
            os.path.join(str(tmp_path), entry)
            for entry in os.listdir(str(tmp_path))
            if entry.endswith(".json.gz")
        ]
        (sidecar,) = [
            os.path.join(str(tmp_path), entry)
            for entry in os.listdir(str(tmp_path))
            if entry.endswith(".pickle")
        ]
        os.unlink(sidecar)
        with gzip.open(path, "wt") as handle:
            handle.write('{"codec_version": 999}')
        fresh = SystemProvider(cache_dir=str(tmp_path))
        system = fresh.get(FailureMode.CRASH, 3, 1, 2)
        assert len(system.runs) > 0
        assert fresh.cache_info()["disk_hits"] == 0

    def test_pickle_sidecar_serves_hits_without_json(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        built = provider.get(FailureMode.CRASH, 3, 1, 2)
        (path,) = [
            os.path.join(str(tmp_path), entry)
            for entry in os.listdir(str(tmp_path))
            if entry.endswith(".json.gz")
        ]
        os.unlink(path)
        fresh = SystemProvider(cache_dir=str(tmp_path))
        loaded = fresh.get(FailureMode.CRASH, 3, 1, 2)
        assert fresh.cache_info()["disk_hits"] == 1
        assert_systems_identical(loaded, built)
        # the JSON hit path backfills the sidecar; the sidecar hit path
        # backfills nothing, so the JSON file stays gone
        assert not os.path.exists(path)

    def test_corrupt_pickle_sidecar_falls_back_to_json(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        built = provider.get(FailureMode.CRASH, 3, 1, 2)
        (sidecar,) = [
            os.path.join(str(tmp_path), entry)
            for entry in os.listdir(str(tmp_path))
            if entry.endswith(".pickle")
        ]
        with open(sidecar, "wb") as handle:
            handle.write(b"not a pickle")
        fresh = SystemProvider(cache_dir=str(tmp_path))
        loaded = fresh.get(FailureMode.CRASH, 3, 1, 2)
        assert fresh.cache_info()["disk_hits"] == 1
        assert_systems_identical(loaded, built)

    def test_pickle_sidecar_can_be_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PICKLE_CACHE", "0")
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 2)
        entries = os.listdir(str(tmp_path))
        assert len(entries) == 1
        assert entries[0].endswith(".json.gz")

    def test_disk_can_be_disabled(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path), disk_cache=False)
        provider.get(FailureMode.CRASH, 3, 1, 2)
        assert os.listdir(str(tmp_path)) == []

    def test_disk_entries_inventory(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 2)
        entries = provider.disk_entries()
        # one JSON payload + one pickle sidecar per cached cell
        assert len(entries) == 2
        for entry in entries:
            assert entry["bytes"] > 0
            assert "crash_n3_t1_h2" in entry["file"]


class TestMemoryCacheLayer:
    def test_use_cache_false_builds_fresh(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        a = provider.get(FailureMode.CRASH, 3, 1, 2, use_cache=False)
        b = provider.get(FailureMode.CRASH, 3, 1, 2, use_cache=False)
        assert a is not b
        info = provider.cache_info()
        assert info["size"] == 0
        assert info["hits"] == 0 and info["misses"] == 0
        assert os.listdir(str(tmp_path)) == []

    def test_hits_and_misses_counted(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path), disk_cache=False)
        provider.get(FailureMode.CRASH, 3, 1, 2)
        provider.get(FailureMode.CRASH, 3, 1, 2)
        info = provider.cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1
        assert info["size"] == 1
        assert info["keys"] == [("crash", 3, 1, 2)]

    def test_lru_bound_and_eviction_stats(self):
        provider = SystemProvider(max_memory_entries=2, disk_cache=False)
        provider.get(FailureMode.CRASH, 2, 1, 1)
        provider.get(FailureMode.CRASH, 2, 1, 2)
        provider.get(FailureMode.CRASH, 3, 1, 1)
        info = provider.cache_info()
        assert info["size"] == 2
        assert info["evictions"] == 1
        # The oldest key was the one evicted.
        assert ("crash", 2, 1, 1) not in info["keys"]

        stats = provider.clear()
        assert stats["evicted"] == 2
        assert provider.cache_info()["size"] == 0

    def test_lru_order_refreshed_by_hits(self):
        provider = SystemProvider(max_memory_entries=2, disk_cache=False)
        provider.get(FailureMode.CRASH, 2, 1, 1)
        provider.get(FailureMode.CRASH, 2, 1, 2)
        provider.get(FailureMode.CRASH, 2, 1, 1)  # refresh
        provider.get(FailureMode.CRASH, 3, 1, 1)  # evicts (2, 1, 2)
        keys = provider.cache_info()["keys"]
        assert ("crash", 2, 1, 1) in keys
        assert ("crash", 2, 1, 2) not in keys


class TestBuilderCacheApi:
    def test_clear_system_cache_returns_eviction_stats(self):
        crash_system(3, 1, 2)
        stats = clear_system_cache()
        assert isinstance(stats, dict)
        assert stats["evicted"] >= 1
        assert "disk_files_removed" in stats

    def test_system_cache_info_exposes_hits_misses_size(self):
        clear_system_cache()
        before = system_cache_info()
        crash_system(3, 1, 2)
        crash_system(3, 1, 2)
        after = system_cache_info()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"] + 1
        assert after["size"] >= 1
        for key in ("max_size", "evictions", "disk_enabled", "cache_dir"):
            assert key in after


class TestParallelEnumeration:
    def test_parallel_crash_identical_to_serial(self):
        serial = build_system(ExhaustiveCrashAdversary(3, 1, 2))
        parallel = build_system(ExhaustiveCrashAdversary(3, 1, 2), workers=2)
        assert_systems_identical(parallel, serial)
        # Interned view ids are also identical, not just isomorphic.
        assert serial.table.export_entries() == parallel.table.export_entries()

    def test_parallel_omission_identical_to_serial(self):
        serial = build_system(ExhaustiveOmissionAdversary(3, 1, 2))
        parallel = build_system(
            ExhaustiveOmissionAdversary(3, 1, 2), workers=3
        )
        assert_systems_identical(parallel, serial)
        assert serial.table.export_entries() == parallel.table.export_entries()

    def test_worker_env_override(self, monkeypatch):
        from repro.model.system import _resolve_workers

        monkeypatch.setenv("REPRO_BUILD_WORKERS", "3")
        assert _resolve_workers(None, 1000) == 3
        monkeypatch.delenv("REPRO_BUILD_WORKERS")
        assert _resolve_workers(2, 10) == 2
        # Auto policy stays serial below the threshold.
        assert _resolve_workers(None, 10) == 1

    def test_invalid_worker_count_rejected(self):
        from repro.errors import ConfigurationError
        from repro.model.system import _resolve_workers

        with pytest.raises(ConfigurationError):
            _resolve_workers(0, 100)

    @pytest.mark.parametrize("value", ["auto", "4x", "two", "1.5", "[]"])
    def test_malformed_worker_env_raises_configuration_error(
        self, monkeypatch, value
    ):
        from repro.errors import ConfigurationError
        from repro.model.system import _resolve_workers

        monkeypatch.setenv("REPRO_BUILD_WORKERS", value)
        with pytest.raises(ConfigurationError) as excinfo:
            _resolve_workers(None, 1000)
        message = str(excinfo.value)
        assert "REPRO_BUILD_WORKERS" in message
        assert repr(value) in message

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_nonpositive_worker_env_raises_configuration_error(
        self, monkeypatch, value
    ):
        from repro.errors import ConfigurationError
        from repro.model.system import _resolve_workers

        monkeypatch.setenv("REPRO_BUILD_WORKERS", value)
        with pytest.raises(ConfigurationError) as excinfo:
            _resolve_workers(None, 1000)
        assert "REPRO_BUILD_WORKERS" in str(excinfo.value)

    def test_blank_worker_env_means_auto(self, monkeypatch):
        from repro.model.system import _resolve_workers

        monkeypatch.setenv("REPRO_BUILD_WORKERS", "   ")
        assert _resolve_workers(None, 10) == 1


class TestDiskCacheEnvNormalization:
    @pytest.mark.parametrize("value", ["False", "NO", " 0 ", "OFF", "no "])
    def test_falsy_values_disable_disk(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_DISK_CACHE", value)
        assert SystemProvider().disk_enabled is False

    @pytest.mark.parametrize("value", ["1", "true", " YES ", ""])
    def test_other_values_keep_disk_enabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_DISK_CACHE", value)
        assert SystemProvider().disk_enabled is True

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        assert SystemProvider(disk_cache=True).disk_enabled is True


class TestStaleCacheFilePruning:
    @staticmethod
    def _stale_sibling(tmp_path):
        """A plausible cache file of the same cell with an old version stamp."""
        name = "system_crash_n3_t1_h2_c0_v0.9.9.json.gz"
        path = os.path.join(str(tmp_path), name)
        with gzip.open(path, "wt") as handle:
            handle.write("{}")
        return name

    def test_store_prunes_stale_siblings(self, tmp_path):
        stale = self._stale_sibling(tmp_path)
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 2)
        names = os.listdir(str(tmp_path))
        assert stale not in names
        # the current cell's JSON payload + pickle sidecar remain
        assert len(names) == 2
        assert provider.cache_info()["disk_prunes"] == 1

    def test_prune_spares_other_cells(self, tmp_path):
        other = "system_crash_n3_t1_h3_c0_v0.9.9.json.gz"
        with gzip.open(os.path.join(str(tmp_path), other), "wt") as handle:
            handle.write("{}")
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 2)
        assert other in os.listdir(str(tmp_path))
        assert provider.cache_info()["disk_prunes"] == 0

    def test_disk_entries_flag_stale_files(self, tmp_path):
        stale = self._stale_sibling(tmp_path)
        provider = SystemProvider(cache_dir=str(tmp_path), disk_cache=False)
        entries = provider.disk_entries()
        assert [entry["file"] for entry in entries] == [stale]
        assert entries[0]["stale"] is True
        assert provider.cache_info()["disk_stale"] == 1

    def test_current_file_not_flagged_stale(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 2)
        entries = provider.disk_entries()
        assert len(entries) == 2
        assert all(entry["stale"] is False for entry in entries)


class TestArraysCacheLayer:
    def test_arrays_memo_separate_from_systems(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 2)
        provider.get_arrays(FailureMode.CRASH, 3, 1, 2)
        info = provider.cache_info()
        # Arrays must not leak into the system LRU's keys or size.
        assert info["size"] == 1
        assert info["keys"] == [("crash", 3, 1, 2)]
        assert info["arrays_size"] == 1

    def test_arrays_pressure_never_evicts_systems(self):
        provider = SystemProvider(max_memory_entries=2, disk_cache=False)
        provider.get(FailureMode.CRASH, 2, 1, 1)
        provider.get(FailureMode.CRASH, 2, 1, 2)
        provider.get_arrays(FailureMode.CRASH, 2, 1, 1)
        provider.get_arrays(FailureMode.CRASH, 2, 1, 2)
        info = provider.cache_info()
        assert info["evictions"] == 0
        hits = info["hits"]
        provider.get(FailureMode.CRASH, 2, 1, 1)
        provider.get(FailureMode.CRASH, 2, 1, 2)
        assert provider.cache_info()["hits"] == hits + 2

    def test_arrays_lru_bounded_separately(self):
        provider = SystemProvider(max_arrays_entries=1, disk_cache=False)
        provider.get_arrays(FailureMode.CRASH, 2, 1, 1)
        provider.get_arrays(FailureMode.CRASH, 2, 1, 2)
        info = provider.cache_info()
        assert info["arrays_size"] == 1
        assert info["arrays_evictions"] == 1
        assert info["evictions"] == 0

    def test_clear_reports_arrays_evictions(self):
        provider = SystemProvider(disk_cache=False)
        provider.get_arrays(FailureMode.CRASH, 2, 1, 1)
        stats = provider.clear()
        assert stats["arrays_evicted"] == 1
        assert provider.cache_info()["arrays_size"] == 0

    def test_arrays_store_prunes_stale_npz_siblings(self, tmp_path):
        provider = SystemProvider(cache_dir=str(tmp_path))
        provider.get(FailureMode.CRASH, 3, 1, 2)
        # A leftover sidecar with an outdated version stamp, created after
        # the store above (which prunes on its own): only the arrays-store
        # path can clean it up.
        stale = "system_crash_n3_t1_h2_a0_c0_v0.9.9.npz"
        with open(os.path.join(str(tmp_path), stale), "wb") as handle:
            handle.write(b"stale arrays")
        provider.get_arrays(FailureMode.CRASH, 3, 1, 2)
        names = os.listdir(str(tmp_path))
        assert stale not in names
        # JSON payload + pickle sidecar + current arrays sidecar remain.
        assert len(names) == 3


class TestTruncatedPickleRepair:
    def test_truncated_sidecar_deleted_and_rewritten(self, tmp_path):
        from repro.io.system_codec import load_system_pickle

        provider = SystemProvider(cache_dir=str(tmp_path))
        built = provider.get(FailureMode.CRASH, 3, 1, 2)
        (sidecar,) = [
            os.path.join(str(tmp_path), entry)
            for entry in os.listdir(str(tmp_path))
            if entry.endswith(".pickle")
        ]
        # A crashed process leaves a partial pickle behind.
        with open(sidecar, "rb") as handle:
            data = handle.read()
        with open(sidecar, "wb") as handle:
            handle.write(data[: len(data) // 2])

        fresh = SystemProvider(cache_dir=str(tmp_path))
        loaded = fresh.get(FailureMode.CRASH, 3, 1, 2)
        assert fresh.cache_info()["disk_hits"] == 1
        assert_systems_identical(loaded, built)
        # The corrupt sidecar was unlinked on the failed load, so the JSON
        # hit's backfill rewrote a loadable one (the old early-return kept
        # the truncated file forever).
        assert_systems_identical(load_system_pickle(sidecar), built)
