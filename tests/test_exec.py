"""Tests for the sharded, checkpointed, fault-tolerant execution engine.

Covers the engine mechanics (chunking, fault-spec parsing, env validation,
checkpoint integrity), the supervised pool's crash/hang/corruption recovery
via the deterministic ``REPRO_EXEC_FAULTS`` harness, SIGKILL-and-resume of a
whole batch, and the verdict-parity guarantee: E9/E14/E20 run through the
sharded path produce the same results as the monolithic path, under all
three evaluation kernels for E9.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.errors import ConfigurationError, ShardExecutionError
from repro.exec import (
    CheckpointStore,
    FAULTS_ENV,
    FaultAction,
    Shard,
    ShardPool,
    chunk_ranges,
    list_batches,
    parse_faults,
    plan_for,
    register_task,
    run_batch,
)
from repro.exec.checkpoint import CHECKPOINT_VERSION
from repro.exec.plan import BatchPlan, Stage
from repro.exec.pool import (
    BACKOFF_ENV,
    RETRIES_ENV,
    TIMEOUT_ENV,
    WORKERS_ENV,
    resolve_backoff,
    resolve_retries,
    resolve_timeout,
    resolve_workers,
)
from repro.exec.shard import clear_worker_context, params_digest
from repro.experiments.framework import ExperimentResult
from repro.model.kernels import use_kernel

#: data keys that legitimately differ between monolithic and sharded runs.
NONPARITY_KEYS = {"instrumentation", "trace", "batch", "kernel"}


@pytest.fixture(autouse=True)
def _isolated_exec_env(monkeypatch):
    """Keep fault specs and pool tuning from leaking between tests."""
    for name in (FAULTS_ENV, WORKERS_ENV, TIMEOUT_ENV, RETRIES_ENV, BACKOFF_ENV):
        monkeypatch.delenv(name, raising=False)
    yield
    clear_worker_context()


@register_task("test.echo")
def _echo_task(params):
    marker_dir = params.get("marker_dir")
    if marker_dir:
        name = f"shard{params['index']}_{os.getpid()}_{time.time_ns()}"
        with open(os.path.join(marker_dir, name), "w", encoding="utf-8"):
            pass
    time.sleep(params.get("sleep", 0.0))
    return {"value": params["index"] * 10}


def _toy_plan(count=3, sleeps=None, marker_dir=None):
    """A single-stage plan over ``test.echo`` shards ``work/0..count-1``."""
    sleeps = list(sleeps if sleeps is not None else [0.0] * count)

    def make(context):
        shards = []
        for index in range(count):
            params = {"index": index, "sleep": sleeps[index]}
            if marker_dir:
                params["marker_dir"] = marker_dir
            shards.append(
                Shard(
                    shard_id=f"work/{index}",
                    task="test.echo",
                    params=params,
                    stage="work",
                )
            )
        return shards

    def reduce(results, context):
        context["values"] = [
            results[f"work/{index}"]["value"] for index in range(count)
        ]

    def finalize(context):
        return ExperimentResult(
            experiment_id="EX",
            title="toy batch",
            paper_claim="(engine test)",
            ok=True,
            table="toy",
            data={"values": context["values"]},
        )

    return BatchPlan(
        experiment_id="EX",
        params={"count": count, "sleeps": sleeps},
        stages=[Stage("work", make, reduce)],
        finalize=finalize,
    )


def _counters(result):
    return result.data["instrumentation"]["counters"]


def assert_results_match(mono, sharded):
    """The sharded path's verdict-parity guarantee."""
    assert sharded.experiment_id == mono.experiment_id
    assert sharded.title == mono.title
    assert sharded.ok == mono.ok
    assert sharded.table == mono.table
    assert sharded.notes == mono.notes
    mono_data = {k: v for k, v in mono.data.items() if k not in NONPARITY_KEYS}
    sharded_data = {
        k: v for k, v in sharded.data.items() if k not in NONPARITY_KEYS
    }
    assert sharded_data == mono_data


class TestChunking:
    def test_chunk_ranges_cover_exactly(self):
        assert chunk_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert chunk_ranges(8, 4) == [(0, 4), (4, 8)]
        assert chunk_ranges(3, 100) == [(0, 3)]
        assert chunk_ranges(0, 5) == []

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            chunk_ranges(10, 0)


class TestFaultSpec:
    def test_parse_full_spec(self):
        plan = parse_faults("kill:work/0@1, hang:a/b ,corrupt:c")
        assert plan["work/0"] == FaultAction("kill", "work/0", 1)
        assert plan["a/b"] == FaultAction("hang", "a/b", 0)
        assert plan["c"] == FaultAction("corrupt", "c", 0)
        assert parse_faults("") == {}

    @pytest.mark.parametrize(
        "spec",
        ["explode:work/0", "kill", "kill:", "kill:s@x", "kill:s@-1", "kill:@2"],
    )
    def test_malformed_spec_names_variable(self, spec):
        with pytest.raises(ConfigurationError) as excinfo:
            parse_faults(spec)
        assert FAULTS_ENV in str(excinfo.value)


class TestEnvConfig:
    @pytest.mark.parametrize(
        "name, resolver, bad",
        [
            (WORKERS_ENV, resolve_workers, "zero"),
            (WORKERS_ENV, resolve_workers, "0"),
            (TIMEOUT_ENV, resolve_timeout, "soon"),
            (TIMEOUT_ENV, resolve_timeout, "0"),
            (RETRIES_ENV, resolve_retries, "-1"),
            (RETRIES_ENV, resolve_retries, "many"),
            (BACKOFF_ENV, resolve_backoff, "fast"),
        ],
    )
    def test_malformed_value_names_variable_and_value(
        self, monkeypatch, name, resolver, bad
    ):
        monkeypatch.setenv(name, bad)
        with pytest.raises(ConfigurationError) as excinfo:
            resolver()
        message = str(excinfo.value)
        assert name in message
        assert repr(bad) in message

    def test_blank_value_means_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "   ")
        assert resolve_workers() >= 1
        monkeypatch.setenv(RETRIES_ENV, "")
        assert resolve_retries() == 2

    def test_explicit_values_win(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers() == 7
        assert resolve_workers(2) == 2
        monkeypatch.setenv(TIMEOUT_ENV, "12.5")
        assert resolve_timeout() == 12.5


class TestCheckpointStore:
    def test_roundtrip_and_validation(self, tmp_path):
        store = CheckpointStore("batchA", root=str(tmp_path))
        digest = params_digest({"x": 1})
        store.store("s/1", digest, {"value": 7})
        assert store.load("s/1", digest) == {"value": 7}
        # wrong shard, drifted inputs: both are misses, not errors
        assert store.load("s/2", digest) is None
        assert store.load("s/1", params_digest({"x": 2})) is None
        assert store.completed_ids() == ["s__1"]

    def test_corrupt_checkpoint_degrades_to_miss(self, tmp_path):
        store = CheckpointStore("batchB", root=str(tmp_path))
        digest = params_digest({"x": 1})
        store.store("s/1", digest, {"value": 7})
        path = store.shard_path("s/1")
        blob = open(path, "r", encoding="utf-8").read()
        # truncated file
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(blob[: len(blob) // 2])
        assert store.load("s/1", digest) is None
        # syntactically valid but tampered payload: checksum rejects it
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(blob.replace('"value": 7', '"value": 8'))
        assert store.load("s/1", digest) is None

    def test_manifest_matching(self, tmp_path):
        store = CheckpointStore("batchC", root=str(tmp_path))
        meta = {"experiment": "E9", "kernel": "bitset", "params_digest": "abc"}
        assert not store.manifest_matches(meta)
        store.write_manifest(meta)
        assert store.manifest_matches(meta)
        assert not store.manifest_matches({**meta, "kernel": "reference"})
        assert not store.manifest_matches({**meta, "params_digest": "xyz"})

    def test_clear_and_list_batches(self, tmp_path):
        root = str(tmp_path)
        store = CheckpointStore("batchD", root=root)
        store.write_manifest({"experiment": "EX", "kernel": "bitset"})
        store.store("s/1", "d", {"v": 1})
        entries = list_batches(root)
        assert [e["batch"] for e in entries] == ["batchD"]
        assert entries[0]["experiment"] == "EX"
        assert entries[0]["shards"] == 1
        assert entries[0]["bytes"] > 0
        store.clear()
        assert store.completed_ids() == []
        assert store.load_manifest() is None

    def test_stale_version_records_degrade_to_miss(self, tmp_path):
        """A checkpoint written under an older spec version (the
        run-level-shard era) must be invalidated, never resumed: the
        payload checksum still validates after a version rewrite, so only
        the explicit version check can reject it."""
        store = CheckpointStore("batchE", root=str(tmp_path))
        digest = params_digest({"x": 1})
        store.store("s/1", digest, {"value": 7})
        path = store.shard_path("s/1")
        record = json.loads(open(path, "r", encoding="utf-8").read())
        record["checkpoint_version"] = CHECKPOINT_VERSION - 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        assert store.load("s/1", digest) is None

    def test_stale_version_manifest_never_matches(self, tmp_path):
        store = CheckpointStore("batchF", root=str(tmp_path))
        meta = {"experiment": "E9", "kernel": "bitset"}
        store.write_manifest(meta)
        manifest = store.load_manifest()
        manifest["checkpoint_version"] = CHECKPOINT_VERSION - 1
        with open(store.manifest_path(), "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        assert not store.manifest_matches(meta)

    def test_health_snapshot_roundtrip_and_status_fields(self, tmp_path):
        root = str(tmp_path)
        store = CheckpointStore("batchG", root=root)
        store.write_manifest(
            {"experiment": "E9", "kernel": "bitset", "partition": "limb"}
        )
        assert store.load_health() is None
        store.write_health(
            {
                "workers": 2,
                "inflight": [
                    {"shard": "s/1", "attempt": 1, "heartbeat_age": 0.25}
                ],
                "shard_retries": {"s/1": 2},
                "retry_causes": {"timeout": 2},
            }
        )
        entry = next(e for e in list_batches(root) if e["batch"] == "batchG")
        assert entry["partition"] == "limb"
        assert entry["retries"] == 2
        assert entry["retry_causes"] == {"timeout": 2}
        assert entry["inflight"] == 1
        assert entry["max_heartbeat_age"] == 0.25
        store.clear()
        assert store.load_health() is None


class TestShardPool:
    def test_runs_shards_to_completion(self, tmp_path):
        plan = _toy_plan(count=5)
        with ShardPool(2, backoff=0.01) as pool:
            results = pool.run(plan.stages[0].make_shards(plan.context))
        assert results["work/3"] == {"value": 30}
        assert len(results) == 5

    def test_workers_persist_across_runs(self):
        plan = _toy_plan(count=3)
        shards = plan.stages[0].make_shards(plan.context)
        with ShardPool(2, backoff=0.01) as pool:
            pool.run(shards)
            first_pids = set(pool._workers)
            pool.run(shards)
            assert set(pool._workers) == first_pids

    def test_empty_stage_is_a_noop(self):
        assert ShardPool(2).run([]) == {}

    def test_duplicate_shard_ids_rejected(self):
        shard = Shard(shard_id="dup", task="test.echo", params={"index": 0})
        with ShardPool(1) as pool:
            with pytest.raises(ShardExecutionError):
                pool.run([shard, shard])

    def test_task_exception_exhausts_retries(self, tmp_path):
        shard = Shard(shard_id="boom", task="no.such.task", params={})
        with ShardPool(1, retries=1, backoff=0.01) as pool:
            with pytest.raises(ShardExecutionError) as excinfo:
                pool.run([shard])
        assert "boom" in str(excinfo.value)


class TestFaultInjection:
    """The acceptance drills: a worker killed mid-shard and a hung shard
    hitting its timeout are both retried and the batch completes."""

    def test_worker_killed_mid_shard_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "kill:work/1@0")
        result = run_batch(
            _toy_plan(count=3),
            workers=2,
            backoff=0.01,
            checkpoint_root=str(tmp_path / "exec"),
        )
        assert result.data["values"] == [0, 10, 20]
        counters = _counters(result)
        assert counters.get("exec_worker_restarts", 0) >= 1
        assert counters.get("exec_shard_retries", 0) >= 1
        assert counters.get("exec_shard_retries_worker-death", 0) >= 1
        assert counters["exec_shards_completed"] == 3
        assert result.data["batch"]["retry_causes"].get("worker-death", 0) >= 1

    def test_hung_shard_hits_timeout_and_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "hang:work/0@0")
        result = run_batch(
            _toy_plan(count=2),
            workers=2,
            timeout=1.5,
            backoff=0.01,
            checkpoint_root=str(tmp_path / "exec"),
        )
        assert result.data["values"] == [0, 10]
        counters = _counters(result)
        assert counters.get("exec_shard_timeouts", 0) >= 1
        assert counters.get("exec_shard_retries", 0) >= 1
        assert (
            counters.get("exec_shard_retries_timeout", 0)
            + counters.get("exec_shard_retries_stale-heartbeat", 0)
        ) >= 1

    def test_corrupted_payload_fails_checksum_and_is_retried(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV, "corrupt:work/2@0")
        result = run_batch(
            _toy_plan(count=3),
            workers=2,
            backoff=0.01,
            checkpoint_root=str(tmp_path / "exec"),
        )
        assert result.data["values"] == [0, 10, 20]
        counters = _counters(result)
        assert counters.get("exec_shard_retries", 0) >= 1
        assert counters.get("exec_shard_retries_checksum", 0) >= 1

    def test_exhausted_retries_raise(self, tmp_path, monkeypatch):
        # attempt-pinned faults fire once, so exhaust by allowing no retries
        monkeypatch.setenv(FAULTS_ENV, "kill:work/0@0")
        with pytest.raises(ShardExecutionError):
            run_batch(
                _toy_plan(count=1),
                workers=1,
                retries=0,
                backoff=0.01,
                checkpoint_root=str(tmp_path / "exec"),
            )


class TestResume:
    def test_sigkilled_batch_resumes_from_durable_shards(self, tmp_path):
        """SIGKILL the whole batch mid-run; ``--resume`` re-executes only
        the shards that never reached a durable checkpoint."""
        marker_dir = str(tmp_path / "markers")
        os.makedirs(marker_dir)
        root = str(tmp_path / "exec")
        count = 4
        sleeps = [0.0, 0.4, 0.4, 0.4]

        def victim():
            os.setsid()  # own process group, so killpg reaps the workers too
            run_batch(
                _toy_plan(count=count, sleeps=sleeps, marker_dir=marker_dir),
                workers=1,
                checkpoint_root=root,
            )

        plan = _toy_plan(count=count, sleeps=sleeps, marker_dir=marker_dir)
        store = CheckpointStore(plan.batch_key(), root=root)
        ctx = multiprocessing.get_context("fork")
        process = ctx.Process(target=victim)
        process.start()
        deadline = time.time() + 30.0
        while not store.completed_ids():
            assert time.time() < deadline, "no checkpoint appeared in 30s"
            assert process.is_alive(), "batch finished before it was killed"
            time.sleep(0.01)
        os.killpg(process.pid, signal.SIGKILL)
        process.join(timeout=10.0)
        durable = len(store.completed_ids())
        assert 1 <= durable < count

        result = run_batch(plan, workers=1, resume=True, checkpoint_root=root)
        assert result.data["values"] == [0, 10, 20, 30]
        assert result.data["batch"]["resumed"] == durable
        counters = _counters(result)
        assert counters["exec_shards_resumed"] == durable
        assert counters["exec_shards_completed"] == count - durable
        # shard 0 was durable before the kill: it must not have re-executed
        markers = os.listdir(marker_dir)
        assert sum(1 for name in markers if name.startswith("shard0_")) == 1

    def test_resume_with_drifted_params_starts_fresh(self, tmp_path):
        root = str(tmp_path / "exec")
        run_batch(_toy_plan(count=2), workers=1, checkpoint_root=root)
        drifted = _toy_plan(count=2, sleeps=[0.01, 0.01])
        result = run_batch(drifted, workers=1, resume=True, checkpoint_root=root)
        assert result.data["batch"]["resumed"] == 0

    def test_resume_rejects_run_level_era_checkpoints(self, tmp_path):
        """Rewind a completed batch's checkpoints to spec version 1 (the
        run-level-shard era); ``--resume`` must re-execute everything
        rather than resume payloads sharded along a different axis."""
        root = str(tmp_path / "exec")
        plan = _toy_plan(count=3)
        run_batch(plan, workers=1, checkpoint_root=root)
        store = CheckpointStore(plan.batch_key(), root=root)
        for path in [store.manifest_path()] + [
            os.path.join(store.shard_dir, name + ".json")
            for name in store.completed_ids()
        ]:
            record = json.loads(open(path, "r", encoding="utf-8").read())
            record["checkpoint_version"] = 1
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
        result = run_batch(
            _toy_plan(count=3), workers=1, resume=True, checkpoint_root=root
        )
        assert result.data["batch"]["resumed"] == 0
        assert _counters(result)["exec_shards_completed"] == 3

    def test_resume_replays_everything_when_complete(self, tmp_path):
        root = str(tmp_path / "exec")
        plan = _toy_plan(count=3)
        first = run_batch(plan, workers=2, checkpoint_root=root)
        again = run_batch(
            _toy_plan(count=3), workers=2, resume=True, checkpoint_root=root
        )
        assert again.data["values"] == first.data["values"]
        assert again.data["batch"]["resumed"] == 3
        assert _counters(again).get("exec_shards_completed", 0) == 0


class TestVerdictParity:
    """Sharded and monolithic paths must agree byte-for-byte on verdicts."""

    @pytest.mark.parametrize("kernel", ["bitset", "chunked", "reference"])
    def test_e9_parity_all_kernels(self, kernel, tmp_path, monkeypatch):
        from repro.experiments.e09_omission_nontermination import run as e9_run

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        with use_kernel(kernel):
            mono = e9_run(3, 1, 2)
            sharded = run_batch(
                plan_for("E9", n=3, t=1, horizon=2),
                workers=2,
                shard_size=64,
                checkpoint_root=str(tmp_path / "exec"),
            )
        assert_results_match(mono, sharded)
        assert sharded.data["kernel"] == kernel

    @pytest.mark.parametrize("kernel", ["bitset", "chunked", "reference"])
    @pytest.mark.parametrize("experiment", ["E4", "E5", "E21"])
    def test_portfolio_parity_all_kernels(
        self, experiment, kernel, tmp_path, monkeypatch
    ):
        """E4/E5/E21 limb-block sharding is verdict-identical everywhere.

        The monolithic run goes first; the provider's memory LRU is then
        dropped so the sharded run evaluates on fresh ``System`` objects
        — its verdicts come from the caches the portfolio stages seeded,
        not from leftovers of the monolithic pass.
        """
        from repro.experiments.e04_continual_ck import run as e4_run
        from repro.experiments.e05_knowledge_conditions import run as e5_run
        from repro.experiments.e21_eventual_ck import run as e21_run
        from repro.model.provider import get_provider

        runners = {"E4": e4_run, "E5": e5_run, "E21": e21_run}
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        with use_kernel(kernel):
            mono = runners[experiment](3, 1, 2)
            get_provider().clear(disk=False)
            sharded = run_batch(
                plan_for(experiment, n=3, t=1, horizon=2),
                workers=2,
                shard_size=64,
                checkpoint_root=str(tmp_path / "exec"),
            )
        assert_results_match(mono, sharded)

    def test_e20_parity_exact(self, tmp_path):
        from repro.experiments.e20_scaling_gains import run as e20_run

        cells = ((3, 1), (4, 1))
        mono = e20_run(cells=cells, samples=40, seed=5)
        sharded = run_batch(
            plan_for("E20", cells=cells, samples=40, seed=5),
            workers=2,
            checkpoint_root=str(tmp_path / "exec"),
        )
        assert_results_match(mono, sharded)

    def test_e14_parity_modulo_timings(self, tmp_path):
        from repro.experiments.e14_scaling import run as e14_run
        from repro.model.failures import FailureMode

        cells = ((FailureMode.CRASH, 3, 1, 2),)
        mono = e14_run(cells=cells)
        sharded = run_batch(
            plan_for("E14", cells=cells),
            workers=2,
            checkpoint_root=str(tmp_path / "exec"),
        )
        assert sharded.ok == mono.ok
        assert sharded.notes == mono.notes

        def structural(table):
            scaling, _, messages = table.partition("\n\n")
            # columns 6-7 of the scaling table are wall-clock measurements
            rows = [line.split()[:6] for line in scaling.splitlines()]
            return rows, messages

        assert structural(sharded.table) == structural(mono.table)

    def test_unknown_experiment_lists_wired_plans(self):
        with pytest.raises(ConfigurationError) as excinfo:
            plan_for("E7")
        message = str(excinfo.value)
        assert "E7" in message
        for wired in ("E9", "E14", "E20"):
            assert wired in message


class TestTelemetryJournal:
    """Every batch run writes a schema-valid telemetry.jsonl next to its
    checkpoints, and folding it back reproduces the run's shape."""

    def test_run_emits_schema_valid_journal(self, tmp_path):
        from repro.obs.journal import (
            fold_journal,
            read_journal,
            validate_journal,
        )

        root = str(tmp_path / "exec")
        plan = _toy_plan(count=4)
        result = run_batch(plan, workers=2, checkpoint_root=root)
        journal_path = result.data["batch"]["journal"]
        store = CheckpointStore(plan.batch_key(), root=root)
        assert journal_path == store.journal_path()
        assert validate_journal(journal_path) == []

        folded = fold_journal(read_journal(journal_path))
        assert folded["meta"]["batch"] == plan.batch_key()
        assert folded["meta"]["experiment"] == "EX"
        assert folded["shards"]["done"] == 4
        assert folded["shards"]["started"] == 4
        assert folded["done"]["ok"] is True
        assert folded["done"]["shards"] == 4
        # the supervisor's counter delta folded back through merge_delta
        assert folded["metrics"]["counters"]["exec_shards_completed"] == 4
        hist = folded["metrics"]["histograms"]["exec_shard_seconds"]
        assert hist["count"] == 4
        # every shard_done carries worker provenance
        assert sum(w["shards_done"] for w in folded["workers"].values()) == 4

    def test_resumed_batch_journals_resumed_shards(self, tmp_path):
        from repro.obs.journal import fold_journal, read_journal

        root = str(tmp_path / "exec")
        run_batch(_toy_plan(count=3), workers=1, checkpoint_root=root)
        again = run_batch(
            _toy_plan(count=3), workers=1, resume=True, checkpoint_root=root
        )
        folded = fold_journal(read_journal(again.data["batch"]["journal"]))
        assert folded["shards"]["resumed"] == 3
        assert folded["shards"]["done"] == 0

    def test_retry_events_carry_cause(self, tmp_path, monkeypatch):
        from repro.obs.journal import fold_journal, read_journal

        monkeypatch.setenv(FAULTS_ENV, "kill:work/1@0")
        result = run_batch(
            _toy_plan(count=3),
            workers=2,
            backoff=0.01,
            checkpoint_root=str(tmp_path / "exec"),
        )
        folded = fold_journal(read_journal(result.data["batch"]["journal"]))
        assert folded["shards"]["retries_by_cause"].get("worker-death", 0) >= 1

    def test_clear_removes_journal(self, tmp_path):
        root = str(tmp_path / "exec")
        plan = _toy_plan(count=2)
        run_batch(plan, workers=1, checkpoint_root=root)
        store = CheckpointStore(plan.batch_key(), root=root)
        assert os.path.exists(store.journal_path())
        store.clear()
        assert not os.path.exists(store.journal_path())

    def test_list_batches_reports_journal(self, tmp_path):
        root = str(tmp_path / "exec")
        plan = _toy_plan(count=2)
        run_batch(plan, workers=1, checkpoint_root=root)
        entry = next(
            e for e in list_batches(root) if e["batch"] == plan.batch_key()
        )
        assert entry["journal"] is not None
        assert entry["journal_bytes"] > 0


class TestHistogramMergeParity:
    """The supervisor's merged histograms must be independent of how the
    work was sharded across processes: executing the E9 plan's shards
    in-process and through the pool yields identical deterministic
    histograms (bucket counts AND sums)."""

    #: histograms whose values are properties of the partition layout /
    #: evaluation structure, not wall-clock — these must merge exactly.
    DETERMINISTIC_HISTOGRAMS = (
        "partition_sweep_entries",
        "partition_component_runs",
    )

    def test_e9_pool_and_inprocess_histograms_identical(
        self, tmp_path, monkeypatch
    ):
        from repro import obs
        from repro.exec.shard import run_task

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

        plan = plan_for("E9", n=3, t=1, horizon=2)
        context = plan.context
        context["shard_size"] = 64
        before = obs.snapshot()
        for stage in plan.stages:
            if stage.prepare is not None:
                stage.prepare(context)
            shards = stage.make_shards(context)
            results = {
                shard.shard_id: run_task(shard.task, shard.params)
                for shard in shards
            }
            stage.reduce(results, context)
        inproc = obs.delta_since(before)
        clear_worker_context()

        before = obs.snapshot()
        run_batch(
            plan_for("E9", n=3, t=1, horizon=2),
            workers=2,
            shard_size=64,
            checkpoint_root=str(tmp_path / "exec"),
        )
        pooled = obs.delta_since(before)

        for key in self.DETERMINISTIC_HISTOGRAMS:
            mono_hist = inproc["histograms"][key]
            pool_hist = pooled["histograms"][key]
            assert pool_hist["count"] == mono_hist["count"], key
            assert pool_hist["buckets"] == mono_hist["buckets"], key
            assert abs(pool_hist["sum"] - mono_hist["sum"]) < 1e-9, key


class TestCli:
    def test_batch_run_and_status(self, tmp_path, monkeypatch, capsys):
        from repro import cli

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        status = cli.main(
            ["batch", "run", "E20", "--param", "samples=20",
             "--param", "seed=3", "--workers", "1"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "E20" in out
        assert "(batch E20_" in out

        assert cli.main(["batch", "status"]) == 0
        out = capsys.readouterr().out
        assert "E20" in out
        # the health columns from the heartbeat/retry snapshot
        assert "retries" in out
        assert "beat age" in out

    def test_batch_run_without_ids_is_usage_error(self, capsys):
        from repro import cli

        assert cli.main(["batch", "run"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_batch_top_once_renders_worker_rows(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro import cli

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert (
            cli.main(
                ["batch", "run", "E20", "--param", "samples=20",
                 "--param", "seed=3", "--workers", "2"]
            )
            == 0
        )
        capsys.readouterr()
        assert cli.main(["batch", "top", "--once"]) == 0
        out = capsys.readouterr().out
        assert "experiment E20" in out
        assert "state finished (ok" in out
        assert "worker" in out and "rss" in out and "p95" in out
        # at least one worker row with a latency quantile
        assert "ms" in out

    def test_batch_top_unknown_batch_is_usage_error(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro import cli

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli.main(["batch", "top", "NOPE", "--once"]) == 2
        assert "no checkpointed batch" in capsys.readouterr().err

    def test_metrics_journal_emits_prometheus_text(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro import cli

        root = str(tmp_path / "exec")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        result = run_batch(_toy_plan(count=3), workers=1, checkpoint_root=root)
        capsys.readouterr()
        journal = result.data["batch"]["journal"]
        assert cli.main(["metrics", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "repro_exec_shards_completed_total 3" in out
        assert "repro_exec_shard_seconds_bucket" in out
        assert 'le="+Inf"' in out

    def test_interrupt_exits_130_and_flushes(self, monkeypatch, capsys):
        from repro import cli

        def boom(argv=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch", boom)
        assert cli.main(["stats"]) == 130
        err = capsys.readouterr().err
        assert "interrupted (SIGINT)" in err

    def test_interrupt_writes_trace_file_when_asked(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro import cli, trace

        out_path = str(tmp_path / "interrupt_trace.jsonl")
        monkeypatch.setenv("REPRO_INTERRUPT_TRACE", out_path)

        def boom(argv=None):
            with trace.span("doomed.work"):
                pass
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch", boom)
        assert cli.main(["stats"]) == 130
        err = capsys.readouterr().err
        assert "interrupted (SIGINT)" in err
        assert os.path.exists(out_path)
