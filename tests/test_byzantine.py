"""Tests for the Byzantine EIG substrate."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.byzantine.eig import (
    DEFAULT_VALUE,
    ByzantineResult,
    EIGTree,
    EquivocateStrategy,
    HonestStrategy,
    RandomLiarStrategy,
    SilentStrategy,
    run_eig,
)
from repro.errors import ConfigurationError


class TestEIGTree:
    def test_leaf_resolution(self):
        tree = EIGTree(4, 1)
        tree.store((0, 1), 1)
        assert tree.resolve((0, 1)) == 1

    def test_missing_leaf_defaults(self):
        tree = EIGTree(4, 1)
        assert tree.resolve((0, 1)) == DEFAULT_VALUE

    def test_internal_majority(self):
        tree = EIGTree(4, 1)
        tree.store((0, 1), 1)
        tree.store((0, 2), 1)
        tree.store((0, 3), 0)
        assert tree.resolve((0,)) == 1

    def test_internal_tie_defaults(self):
        tree = EIGTree(3, 1)
        tree.store((0, 1), 1)
        tree.store((0, 2), 0)
        assert tree.resolve((0,)) == DEFAULT_VALUE

    def test_malformed_value_collapses_to_default(self):
        tree = EIGTree(3, 1)
        tree.store((0, 1), 7)
        assert tree.claims[(0, 1)] == DEFAULT_VALUE


class TestFailureFree:
    @pytest.mark.parametrize("values", list(itertools.product((0, 1), repeat=4)))
    def test_agreement_and_validity(self, values):
        result = run_eig(values, {}, t=1)
        assert result.agreement_holds()
        assert result.validity_holds()

    def test_majority_value_wins(self):
        result = run_eig((1, 1, 1, 0), {}, t=1)
        assert set(result.nonfaulty_decisions()) == {1}

    def test_honest_strategy_is_noop(self):
        for values in itertools.product((0, 1), repeat=4):
            honest = run_eig(values, {}, t=1)
            marked = run_eig(values, {0: HonestStrategy()}, t=1)
            # decisions of processors 1..3 must coincide (processor 0 is
            # "faulty" in the second run only nominally)
            assert honest.decisions[1:] == marked.decisions[1:]


class TestThreshold:
    def test_n4_t1_exhaustive_single_traitor(self):
        strategies = (
            [SilentStrategy(), EquivocateStrategy(0, 1),
             EquivocateStrategy(1, 0)]
            + [RandomLiarStrategy(seed) for seed in range(3)]
        )
        for values in itertools.product((0, 1), repeat=4):
            for faulty in range(4):
                for strategy in strategies:
                    result = run_eig(values, {faulty: strategy}, t=1)
                    assert result.agreement_holds(), (values, faulty,
                                                      strategy.name)
                    assert result.validity_holds(), (values, faulty,
                                                     strategy.name)

    def test_n3_t1_has_violations(self):
        """The three-generals impossibility, concretely on EIG."""
        strategies = (
            [SilentStrategy(), EquivocateStrategy(0, 1),
             EquivocateStrategy(1, 0)]
            + [RandomLiarStrategy(seed) for seed in range(5)]
        )
        violated = False
        for values in itertools.product((0, 1), repeat=3):
            for faulty in range(3):
                for strategy in strategies:
                    result = run_eig(values, {faulty: strategy}, t=1)
                    if not (
                        result.agreement_holds() and result.validity_holds()
                    ):
                        violated = True
        assert violated

    def test_n7_t2_two_traitors_sampled(self):
        import random

        rng = random.Random(1)
        for trial in range(30):
            values = tuple(rng.randint(0, 1) for _ in range(7))
            first, second = rng.sample(range(7), 2)
            result = run_eig(
                values,
                {
                    first: EquivocateStrategy(),
                    second: RandomLiarStrategy(trial),
                },
                t=2,
            )
            assert result.agreement_holds()
            assert result.validity_holds()

    def test_silence_subsumes_crash(self):
        for values in itertools.product((0, 1), repeat=4):
            result = run_eig(values, {2: SilentStrategy()}, t=1)
            assert result.agreement_holds() and result.validity_holds()


class TestValidation:
    def test_too_many_traitors_rejected(self):
        with pytest.raises(ConfigurationError):
            run_eig((0, 1, 1), {0: SilentStrategy(), 1: SilentStrategy()}, 1)

    def test_bad_processor_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_eig((0, 1, 1), {5: SilentStrategy()}, 1)

    def test_non_binary_values_rejected(self):
        with pytest.raises(ConfigurationError):
            run_eig((0, 2, 1), {}, 1)

    def test_result_accessors(self):
        result = run_eig((0, 1, 1, 1), {0: SilentStrategy()}, 1)
        assert result.n == 4
        assert result.faulty == frozenset((0,))
        assert result.strategy_names[0] == "silent"
        assert len(result.nonfaulty_decisions()) == 3


class TestDeterminism:
    def test_random_liar_is_seeded(self):
        values = (0, 1, 0, 1)
        a = run_eig(values, {1: RandomLiarStrategy(42)}, 1)
        b = run_eig(values, {1: RandomLiarStrategy(42)}, 1)
        assert a.decisions == b.decisions

    def test_distinct_seeds_produce_distinct_lies(self):
        """Decisions at n=4 are robust by design (that is the theorem), so
        seed variety must be visible in the forged payloads themselves."""
        honest = {(): 1}
        payloads = {
            tuple(
                sorted(
                    (dest, tuple(sorted(claims.items())))
                    for dest, claims in RandomLiarStrategy(seed)
                    .corrupt(1, 1, honest, [0, 2, 3])
                    .items()
                )
            )
            for seed in range(20)
        }
        assert len(payloads) > 1


@given(
    values=st.tuples(*[st.integers(min_value=0, max_value=1)] * 5),
    faulty=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=40, deadline=None)
def test_property_n5_t1_always_agrees(values, faulty, seed):
    """n = 5 > 3t = 3: agreement + validity under arbitrary seeded lying."""
    result = run_eig(values, {faulty: RandomLiarStrategy(seed)}, t=1)
    assert result.agreement_holds()
    assert result.validity_holds()
