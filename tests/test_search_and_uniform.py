"""Tests for the brute-force improvement search and uniform agreement."""

import pytest

from repro.core.decision_sets import empty_pair
from repro.core.search import (
    find_improvement,
    improvement_report,
    is_single_state_optimal,
)
from repro.core.specs import check_nontrivial_agreement, check_uniform_agreement
from repro.core.outcomes import ProtocolOutcome, RunOutcome
from repro.model.config import InitialConfiguration
from repro.model.failures import CrashBehavior, FailurePattern, OmissionBehavior
from repro.protocols.f_lambda import f_lambda_sequence
from repro.protocols.fip import fip


class TestImprovementSearch:
    def test_finds_speedup_of_never_deciding_protocol(self, crash3):
        improvement = find_improvement(crash3, empty_pair())
        assert improvement is not None
        assert "decides" in improvement.description
        # the improved protocol is still a nontrivial agreement protocol
        outcome = fip(improvement.pair).outcome(crash3)
        assert check_nontrivial_agreement(outcome).ok

    def test_finds_speedup_of_f_lambda_1(self, crash3):
        """F^{Λ,1} is non-optimal by Theorem 5.3; the definitional search
        agrees by exhibiting a concrete strictly-dominating protocol."""
        _, first, _ = f_lambda_sequence(crash3)
        improvement = find_improvement(
            crash3, fip(first).sticky_pair(crash3)
        )
        assert improvement is not None

    def test_no_speedup_of_f_lambda_2(self, crash3):
        """F^{Λ,2} is optimal by Theorem 5.3; no single-state speedup
        exists — the two optimality verdicts agree."""
        _, _, second = f_lambda_sequence(crash3)
        assert is_single_state_optimal(
            crash3, fip(second).sticky_pair(crash3)
        )

    def test_no_speedup_of_f_star_omission(self, omission3):
        from repro.protocols.f_star import f_star_pair

        pair = fip(f_star_pair(omission3)).sticky_pair(omission3)
        assert is_single_state_optimal(omission3, pair)

    def test_finds_speedup_of_chain_protocol_only_if_nonoptimal(
        self, omission3
    ):
        """At n=3, t=1 the chain protocol coincides with F* (E11), so the
        search must find nothing — consistency with Theorem 5.3."""
        from repro.protocols.chain_fip import chain_pair

        pair = fip(chain_pair(omission3)).sticky_pair(omission3)
        assert is_single_state_optimal(omission3, pair)

    def test_max_candidates_caps_work(self, crash3):
        assert (
            find_improvement(crash3, empty_pair(), max_candidates=0) is None
        )

    def test_improvement_report_shape(self, crash3):
        base, first, second = f_lambda_sequence(crash3)
        report = improvement_report(
            crash3,
            [
                fip(first).sticky_pair(crash3),
                fip(second).sticky_pair(crash3),
            ],
        )
        assert report[0][1] is not None  # F^{Λ,1} improvable
        assert report[1][1] is None  # F^{Λ,2} not


class TestUniformAgreement:
    def _outcome(self, decisions, pattern=FailurePattern(())):
        outcome = ProtocolOutcome("P")
        outcome.add(
            RunOutcome(
                config=InitialConfiguration((0, 1, 1)),
                pattern=pattern,
                decisions=tuple(decisions),
                horizon=3,
            )
        )
        return outcome

    def test_uniform_when_all_agree(self):
        outcome = self._outcome([(0, 0), (0, 1), (0, 1)])
        assert not check_uniform_agreement(outcome)

    def test_faulty_disagreement_detected(self):
        pattern = FailurePattern({0: OmissionBehavior({1: [1, 2]})})
        outcome = self._outcome([(0, 0), (1, 2), (1, 2)], pattern)
        assert check_uniform_agreement(outcome)

    def test_post_crash_ghost_decision_ignored(self):
        """A crash-faulty processor's decision at/after its crash round is
        not an action and must not count."""
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        outcome = self._outcome([(0, 2), (1, 2), (1, 2)], pattern)
        assert not check_uniform_agreement(outcome)

    def test_pre_crash_decision_counts(self):
        pattern = FailurePattern({0: CrashBehavior(1, frozenset())})
        outcome = self._outcome([(0, 0), (1, 2), (1, 2)], pattern)
        assert check_uniform_agreement(outcome)

    def test_omission_faulty_decisions_always_count(self):
        pattern = FailurePattern({0: OmissionBehavior({1: [1, 2]})})
        outcome = self._outcome([(0, 3), (1, 2), (1, 2)], pattern)
        assert check_uniform_agreement(outcome)


class TestActedDecisions:
    def test_filtering_matches_crash_round(self):
        pattern = FailurePattern({0: CrashBehavior(2, frozenset())})
        run = RunOutcome(
            config=InitialConfiguration((0, 1)),
            pattern=pattern,
            decisions=((0, 1), (1, 2)),
            horizon=3,
        )
        acted = run.acted_decisions()
        assert acted[0] == (0, 1)  # decided before crash round 2
        assert acted[1] == (1, 2)

    def test_ghost_filtered(self):
        pattern = FailurePattern({0: CrashBehavior(2, frozenset())})
        run = RunOutcome(
            config=InitialConfiguration((0, 1)),
            pattern=pattern,
            decisions=((0, 2), (1, 2)),
            horizon=3,
        )
        assert run.acted_decisions()[0] is None
