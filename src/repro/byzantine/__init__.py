"""Byzantine substrate: EIG agreement under arbitrary (lying) failures —
the execution-level companion to the paper's Section 7 conjecture."""

from .eig import (
    DEFAULT_VALUE,
    ByzantineResult,
    ByzantineStrategy,
    EIGTree,
    EquivocateStrategy,
    HonestStrategy,
    RandomLiarStrategy,
    SilentStrategy,
    run_eig,
)

__all__ = [
    "ByzantineResult",
    "ByzantineStrategy",
    "DEFAULT_VALUE",
    "EIGTree",
    "EquivocateStrategy",
    "HonestStrategy",
    "RandomLiarStrategy",
    "SilentStrategy",
    "run_eig",
]
