"""Byzantine failures and Exponential Information Gathering (EIG).

The paper handles crash and omission failures and *conjectures* (Sections
2.1 and 7) that its techniques extend to Byzantine failures, where faulty
processors may behave arbitrarily — in particular, **lie**.  This module
provides the classical Byzantine substrate so that conjecture has something
executable to stand next to:

* a Byzantine execution loop: faulty processors' outgoing messages pass
  through an adversarial *strategy* that may forge arbitrary payloads per
  destination (equivocation included);
* the EIG protocol ([PSL80]-style, ``t + 1`` rounds): each processor grows
  a tree of claims — the entry at path ``(p_1, ..., p_k)`` is "``p_k`` said
  that ``p_{k-1}`` said that … ``p_1``'s value was ``v``" — and resolves it
  bottom-up by strict majority with a default;
* adversary strategies: silence, seeded random lying, and two-faced
  equivocation.

Classical facts reproduced by experiment E19 and the tests: EIG achieves
Byzantine agreement whenever ``n > 3t`` (e.g. ``n = 4, t = 1``), and the
bound is sharp — with ``n = 3, t = 1`` an equivocating traitor defeats the
protocol, the concrete face of the three-generals impossibility.

The module is self-contained on purpose: Byzantine *knowledge* semantics
(local states as claim-histories rather than truthful views) is a different
Kripke construction from the truthful-view systems in :mod:`repro.model`,
and conflating them would silently break the paper's theorems.  Here we
stay at the execution level, where the paper's conjecture lives.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

ProcessorId = int
#: A claim path (p_1, ..., p_k): "p_k said that ... p_1's value was v".
Path = Tuple[ProcessorId, ...]
#: One round's payload: claimed values for every path of one tree level.
Claims = Dict[Path, int]

#: The value used when a strict majority does not exist.
DEFAULT_VALUE = 0


class ByzantineStrategy(ABC):
    """An adversarial sender: forges the outgoing claim maps arbitrarily."""

    name: str = "byzantine"

    @abstractmethod
    def corrupt(
        self,
        sender: ProcessorId,
        round_number: int,
        honest: Claims,
        destinations: Sequence[ProcessorId],
    ) -> Dict[ProcessorId, Optional[Claims]]:
        """Return per-destination payloads (``None`` = send nothing).

        *honest* is what the protocol would have sent; the strategy may
        return it, drop it, or fabricate anything with the same key shape.
        """


class HonestStrategy(ByzantineStrategy):
    """A 'Byzantine' processor that happens to behave (baseline/control)."""

    name = "honest"

    def corrupt(self, sender, round_number, honest, destinations):
        return {destination: honest for destination in destinations}


class SilentStrategy(ByzantineStrategy):
    """Send nothing, ever (Byzantine subsumes crash)."""

    name = "silent"

    def corrupt(self, sender, round_number, honest, destinations):
        return {destination: None for destination in destinations}


class RandomLiarStrategy(ByzantineStrategy):
    """Replace every claimed value with a seeded coin flip, independently
    per destination (inconsistent lying)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.name = f"random-liar[{seed}]"

    def corrupt(self, sender, round_number, honest, destinations):
        payloads: Dict[ProcessorId, Optional[Claims]] = {}
        for destination in destinations:
            rng = random.Random(
                f"{self.seed}:{sender}:{round_number}:{destination}"
            )
            payloads[destination] = {
                path: rng.randint(0, 1) for path in honest
            }
        return payloads


class EquivocateStrategy(ByzantineStrategy):
    """Two-faced lying: claim *value_low* to the lower half of the
    destinations and *value_high* to the rest — the classic split that
    defeats three generals."""

    def __init__(self, value_low: int = 0, value_high: int = 1) -> None:
        self.value_low = value_low
        self.value_high = value_high
        self.name = f"equivocate[{value_low}/{value_high}]"

    def corrupt(self, sender, round_number, honest, destinations):
        ordered = sorted(destinations)
        half = (len(ordered) + 1) // 2
        payloads: Dict[ProcessorId, Optional[Claims]] = {}
        for index, destination in enumerate(ordered):
            value = self.value_low if index < half else self.value_high
            payloads[destination] = {path: value for path in honest}
        return payloads


@dataclass
class ByzantineResult:
    """Outcome of one Byzantine EIG execution.

    Attributes:
        values: Initial values, indexed by processor.
        faulty: The Byzantine processors.
        strategy_names: Per faulty processor, the strategy used.
        decisions: Final decisions (the faulty processors' entries are the
            outputs their — honestly executed — resolution step produced;
            meaningless for the adversary but recorded for completeness).
    """

    values: Tuple[int, ...]
    faulty: FrozenSet[ProcessorId]
    strategy_names: Dict[ProcessorId, str]
    decisions: Tuple[int, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    def nonfaulty_decisions(self) -> List[int]:
        return [
            self.decisions[processor]
            for processor in range(self.n)
            if processor not in self.faulty
        ]

    def agreement_holds(self) -> bool:
        """All non-Byzantine processors decided the same value."""
        return len(set(self.nonfaulty_decisions())) <= 1

    def validity_holds(self) -> bool:
        """If the non-Byzantine processors were unanimous, they decided
        their common value."""
        nonfaulty_values = {
            self.values[processor]
            for processor in range(self.n)
            if processor not in self.faulty
        }
        if len(nonfaulty_values) != 1:
            return True
        (value,) = nonfaulty_values
        return all(
            decision == value for decision in self.nonfaulty_decisions()
        )


class EIGTree:
    """One processor's exponential-information-gathering tree."""

    def __init__(self, n: int, t: int) -> None:
        self.n = n
        self.t = t
        self.claims: Dict[Path, int] = {}

    def store(self, path: Path, value: int) -> None:
        if value not in (0, 1):
            value = DEFAULT_VALUE  # malformed claims collapse to default
        self.claims[path] = value

    def level(self, length: int) -> Claims:
        return {
            path: value
            for path, value in self.claims.items()
            if len(path) == length
        }

    def resolve(self, path: Path = ()) -> int:
        """Bottom-up strict-majority resolution (``newval`` in [Lynch])."""
        if len(path) == self.t + 1:
            return self.claims.get(path, DEFAULT_VALUE)
        children = [
            self.resolve(path + (child,))
            for child in range(self.n)
            if child not in path
        ]
        if not children:
            return self.claims.get(path, DEFAULT_VALUE)
        counts: Dict[int, int] = {}
        for value in children:
            counts[value] = counts.get(value, 0) + 1
        best = max(counts.values())
        winners = [
            value for value, count in counts.items() if count == best
        ]
        if len(winners) == 1 and best * 2 > len(children):
            return winners[0]
        return DEFAULT_VALUE


def run_eig(
    values: Sequence[int],
    strategies: Dict[ProcessorId, ByzantineStrategy],
    t: int,
) -> ByzantineResult:
    """Execute EIG for ``t + 1`` rounds under a Byzantine adversary.

    Args:
        values: Initial (binary) values.
        strategies: Byzantine processor -> lying strategy; at most *t*.
        t: The fault bound the protocol is configured for.
    """
    n = len(values)
    if n < 2:
        raise ConfigurationError("need n >= 2 processors")
    if len(strategies) > t:
        raise ConfigurationError(
            f"{len(strategies)} Byzantine processors exceeds t={t}"
        )
    for processor in strategies:
        if not 0 <= processor < n:
            raise ConfigurationError(
                f"Byzantine processor id {processor} outside range(0, {n})"
            )
    for value in values:
        if value not in (0, 1):
            raise ConfigurationError(f"initial values must be binary: {value}")

    trees = [EIGTree(n, t) for _ in range(n)]
    # Level-0 claim: each processor's own value, under the empty path.
    outgoing: List[Claims] = [{(): values[processor]} for processor in range(n)]

    for round_number in range(1, t + 2):
        inboxes: List[Dict[ProcessorId, Claims]] = [dict() for _ in range(n)]
        for sender in range(n):
            destinations = [p for p in range(n) if p != sender]
            honest = outgoing[sender]
            if sender in strategies:
                payloads = strategies[sender].corrupt(
                    sender, round_number, honest, destinations
                )
            else:
                payloads = {
                    destination: honest for destination in destinations
                }
            for destination in destinations:
                payload = payloads.get(destination)
                if payload is not None:
                    inboxes[destination][sender] = payload

        next_outgoing: List[Claims] = [dict() for _ in range(n)]
        for receiver in range(n):
            received_level: Claims = {}
            # Following [Lynch], every processor also "delivers to itself":
            # its own honest relay decorates the paths ending in its own
            # label.  (Even a Byzantine processor's tree gets its honest
            # self-view — only its *outgoing* messages lie.)
            deliveries = dict(inboxes[receiver])
            deliveries[receiver] = outgoing[receiver]
            for sender, payload in deliveries.items():
                for path, value in payload.items():
                    # A well-formed round-r payload carries level-(r-1)
                    # paths of distinct processors excluding the sender;
                    # anything else is adversarial noise and is dropped.
                    if len(path) != round_number - 1:
                        continue
                    if sender in path or len(set(path)) != len(path):
                        continue
                    received_level[path + (sender,)] = value
            for path, value in received_level.items():
                trees[receiver].store(path, value)
            next_outgoing[receiver] = trees[receiver].level(round_number)
        outgoing = next_outgoing

    decisions = tuple(tree.resolve(()) for tree in trees)
    return ByzantineResult(
        values=tuple(values),
        faulty=frozenset(strategies),
        strategy_names={
            processor: strategy.name
            for processor, strategy in strategies.items()
        },
        decisions=decisions,
    )
