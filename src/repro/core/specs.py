"""Specification checkers for agreement problems (paper, Section 2.1).

Checks a :class:`~repro.core.outcomes.ProtocolOutcome` against:

* **Decision** — every nonfaulty processor eventually (within the observed
  horizon) decides;
* **Agreement** — all nonfaulty processors decide on the same value;
* **Validity** — if all initial values are identical, nonfaulty processors
  decide that value;
* **Simultaneity** — all nonfaulty processors decide at the same round
  (turns EBA into SBA);
* the **weak** variants (weak agreement: nonfaulty processors never decide
  on *different* values; weak validity: deciders respect unanimous inputs)
  that define *nontrivial agreement protocols*.

Each checker returns a list of violation strings; the aggregate helpers
(:func:`check_eba`, :func:`check_sba`, :func:`check_nontrivial_agreement`)
bundle them into a :class:`SpecReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core.values import all_same
from ..errors import SpecificationError
from .outcomes import ProtocolOutcome, RunOutcome


def _describe(run: RunOutcome) -> str:
    return f"config={run.config} pattern={run.pattern}"


def check_decision(outcome: ProtocolOutcome) -> List[str]:
    """Decision: every nonfaulty processor decides within the horizon."""
    violations: List[str] = []
    for run in outcome:
        for processor in sorted(run.nonfaulty):
            if run.decisions[processor] is None:
                violations.append(
                    f"[decision] processor {processor} undecided by time "
                    f"{run.horizon} in {_describe(run)}"
                )
    return violations


def check_weak_agreement(outcome: ProtocolOutcome) -> List[str]:
    """Weak agreement: nonfaulty processors never decide differently."""
    violations: List[str] = []
    for run in outcome:
        values = {
            run.decision_value(processor)
            for processor in run.nonfaulty
            if run.decisions[processor] is not None
        }
        if len(values) > 1:
            violations.append(
                f"[weak-agreement] nonfaulty decisions {sorted(values)} "
                f"in {_describe(run)}"
            )
    return violations


def check_agreement(outcome: ProtocolOutcome) -> List[str]:
    """Agreement: all nonfaulty processors decide, on the same value."""
    return check_decision(outcome) + check_weak_agreement(outcome)


def check_weak_validity(outcome: ProtocolOutcome) -> List[str]:
    """Weak validity: under unanimous input, deciders decide that input."""
    violations: List[str] = []
    for run in outcome:
        unanimous = all_same(run.config.values)
        if unanimous is None:
            continue
        for processor in sorted(run.nonfaulty):
            record = run.decisions[processor]
            if record is not None and record[0] != unanimous:
                violations.append(
                    f"[weak-validity] processor {processor} decided "
                    f"{record[0]} despite unanimous {unanimous} in "
                    f"{_describe(run)}"
                )
    return violations


def check_validity(outcome: ProtocolOutcome) -> List[str]:
    """Validity: under unanimous input, all nonfaulty decide that input."""
    violations = check_weak_validity(outcome)
    for run in outcome:
        if all_same(run.config.values) is None:
            continue
        for processor in sorted(run.nonfaulty):
            if run.decisions[processor] is None:
                violations.append(
                    f"[validity] processor {processor} undecided under "
                    f"unanimous input in {_describe(run)}"
                )
    return violations


def check_uniform_agreement(outcome: ProtocolOutcome) -> List[str]:
    """Uniform agreement: *no two deciders* — faulty or not — decide on
    different values.

    The paper's Section 7 points to coordination problems "in which all
    processors (and not only the nonfaulty ones) are required to act
    consistently" [Nei90, NB92].  None of the paper's EBA protocols aim
    for this (a processor may decide and then crash while the survivors,
    never having seen its evidence, decide the other way), and experiment
    E18 measures exactly where each protocol violates it.
    """
    violations: List[str] = []
    for run in outcome:
        values = {
            record[0]
            for record in run.acted_decisions().values()
            if record is not None
        }
        if len(values) > 1:
            violations.append(
                f"[uniform-agreement] decisions {sorted(values)} "
                f"(faulty included) in {_describe(run)}"
            )
    return violations


def check_simultaneity(outcome: ProtocolOutcome) -> List[str]:
    """Simultaneity: all nonfaulty decisions in a run share one round."""
    violations: List[str] = []
    for run in outcome:
        times = {
            run.decision_time(processor)
            for processor in run.nonfaulty
            if run.decisions[processor] is not None
        }
        if len(times) > 1:
            violations.append(
                f"[simultaneity] nonfaulty decision times {sorted(times)} "
                f"in {_describe(run)}"
            )
    return violations


@dataclass
class SpecReport:
    """Aggregated verdict of a specification check.

    Attributes:
        spec_name: Which specification was checked.
        protocol_name: Which protocol's outcome was checked.
        violations: Human-readable violation descriptions (empty = pass).
        runs_checked: Number of runs examined.
    """

    spec_name: str
    protocol_name: str
    violations: List[str] = field(default_factory=list)
    runs_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_on_failure(self) -> "SpecReport":
        """Raise :class:`SpecificationError` when violations exist."""
        if not self.ok:
            preview = "; ".join(self.violations[:3])
            raise SpecificationError(
                f"{self.protocol_name} violates {self.spec_name} "
                f"({len(self.violations)} violations): {preview}"
            )
        return self

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.ok else f"FAIL ({len(self.violations)})"
        return (
            f"{self.protocol_name} vs {self.spec_name}: {status} "
            f"over {self.runs_checked} runs"
        )


def check_nontrivial_agreement(outcome: ProtocolOutcome) -> SpecReport:
    """Weak agreement + weak validity (paper, conditions 2' and 3')."""
    return SpecReport(
        spec_name="nontrivial agreement",
        protocol_name=outcome.name,
        violations=check_weak_agreement(outcome) + check_weak_validity(outcome),
        runs_checked=len(outcome),
    )


def check_eba(outcome: ProtocolOutcome) -> SpecReport:
    """Decision + agreement + validity (paper, conditions 1-3)."""
    return SpecReport(
        spec_name="EBA",
        protocol_name=outcome.name,
        violations=(
            check_decision(outcome)
            + check_weak_agreement(outcome)
            + check_validity(outcome)
        ),
        runs_checked=len(outcome),
    )


def check_sba(outcome: ProtocolOutcome) -> SpecReport:
    """EBA + simultaneity (paper, condition 4)."""
    eba = check_eba(outcome)
    return SpecReport(
        spec_name="SBA",
        protocol_name=outcome.name,
        violations=eba.violations + check_simultaneity(outcome),
        runs_checked=len(outcome),
    )
