"""Protocol outcomes: who decided what, when, in which scenario.

Outcomes are the lingua franca between the two protocol layers of this
library:

* *knowledge-level* protocols (``FIP(Z, O)``) evaluated over enumerated
  systems, and
* *concrete* message-passing protocols executed by the simulator.

Both produce a :class:`ProtocolOutcome` keyed by scenario — the
``(initial configuration, failure pattern)`` pair that the paper uses to
define *corresponding runs* — so specification checking and domination
analysis apply uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..model.config import InitialConfiguration
from ..model.failures import FailurePattern

ScenarioKey = Tuple[InitialConfiguration, FailurePattern]

#: A single processor's decision: ``(value, time)`` or ``None`` if it never
#: decided within the horizon.
DecisionRecord = Optional[Tuple[int, int]]


@dataclass(frozen=True)
class RunOutcome:
    """Decisions of all processors in one run.

    Attributes:
        config: The run's initial configuration.
        pattern: The run's failure pattern.
        decisions: ``decisions[i]`` is ``(value, time)`` of processor ``i``'s
            (irreversible, first) decision, or ``None``.
        horizon: The number of rounds observed; ``None`` decisions mean
            "not within the horizon".
    """

    config: InitialConfiguration
    pattern: FailurePattern
    decisions: Tuple[DecisionRecord, ...]
    horizon: int

    @property
    def n(self) -> int:
        return self.config.n

    @property
    def nonfaulty(self) -> FrozenSet[int]:
        return self.pattern.nonfaulty(self.n)

    def scenario_key(self) -> ScenarioKey:
        return (self.config, self.pattern)

    def decision_value(self, processor: int) -> Optional[int]:
        record = self.decisions[processor]
        return None if record is None else record[0]

    def decision_time(self, processor: int) -> Optional[int]:
        record = self.decisions[processor]
        return None if record is None else record[1]

    def nonfaulty_decisions(self) -> Dict[int, DecisionRecord]:
        """Decisions restricted to nonfaulty processors."""
        return {
            processor: self.decisions[processor]
            for processor in sorted(self.nonfaulty)
        }

    def acted_decisions(self) -> Dict[int, DecisionRecord]:
        """Decisions that were actually *taken* as actions.

        A processor that crashes in round ``k`` is dead from time ``k`` on:
        the simulator keeps evaluating its output function (harmlessly —
        nobody observes it), but a decision first reached at time ``>= k``
        was never an action of the processor.  This filter drops those
        ghost decisions; omission-faulty processors stay alive throughout,
        so all their decisions count.  Used by the uniform-agreement
        checker.
        """
        from ..model.failures import CrashBehavior

        acted: Dict[int, DecisionRecord] = {}
        for processor in range(self.n):
            record = self.decisions[processor]
            if record is not None:
                behavior = self.pattern.behavior_of(processor)
                if (
                    isinstance(behavior, CrashBehavior)
                    and record[1] >= behavior.crash_round
                ):
                    record = None
            acted[processor] = record
        return acted

    def all_nonfaulty_decided(self) -> bool:
        return all(
            self.decisions[processor] is not None
            for processor in self.nonfaulty
        )

    def max_nonfaulty_decision_time(self) -> Optional[int]:
        """Latest nonfaulty decision time, or ``None`` if someone is still
        undecided."""
        latest = -1
        for processor in self.nonfaulty:
            record = self.decisions[processor]
            if record is None:
                return None
            latest = max(latest, record[1])
        return latest if latest >= 0 else 0


class ProtocolOutcome:
    """Decisions of one protocol across a scenario space.

    Attributes:
        name: Display name of the protocol.
        runs: Scenario -> :class:`RunOutcome`, insertion-ordered.
    """

    def __init__(self, name: str, runs: Iterable[RunOutcome] = ()) -> None:
        self.name = name
        self.runs: Dict[ScenarioKey, RunOutcome] = {}
        for run in runs:
            self.add(run)

    def add(self, run: RunOutcome) -> None:
        key = run.scenario_key()
        if key in self.runs:
            raise ConfigurationError(
                f"duplicate outcome for scenario {key[0]} / {key[1]}"
            )
        self.runs[key] = run

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs.values())

    def scenario_keys(self) -> List[ScenarioKey]:
        return list(self.runs.keys())

    def get(self, key: ScenarioKey) -> RunOutcome:
        try:
            return self.runs[key]
        except KeyError:
            raise ConfigurationError(
                f"no outcome recorded for scenario {key[0]} / {key[1]}"
            ) from None

    def common_scenarios(self, other: "ProtocolOutcome") -> List[ScenarioKey]:
        """Scenarios present in both outcomes (for corresponding-run
        comparisons)."""
        return [key for key in self.runs if key in other.runs]

    def decision_times(self) -> List[int]:
        """All nonfaulty decision times across all runs (decided only)."""
        times: List[int] = []
        for run in self:
            for processor in run.nonfaulty:
                record = run.decisions[processor]
                if record is not None:
                    times.append(record[1])
        return times

    def undecided_count(self) -> int:
        """Number of (run, nonfaulty processor) pairs with no decision."""
        count = 0
        for run in self:
            for processor in run.nonfaulty:
                if run.decisions[processor] is None:
                    count += 1
        return count
