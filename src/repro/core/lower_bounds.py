"""Lower-bound checks: the [DS82] facts the paper leans on.

Proposition 2.1's proof uses two classical lower bounds:

1. **t+1 worst case** — in any EBA protocol some run forces some
   (nonfaulty) processor to take at least ``t + 1`` rounds to decide;
2. **distance from the races** — consequently, for any EBA protocol ``P``
   there is a run in which some processor decides at least ``t + 1``
   rounds later than it does under one of the value-races ``P0`` / ``P1``
   (each of which decides its favoured value at time 0).

These are universally-quantified-over-protocols statements, so a finite
tool cannot *prove* them; what it can do — and what experiment E1's probe
and the tests use — is *check any given protocol against them*: a protocol
whose outcome violated either bound over an exhaustive scenario space
would be a counterexample to [DS82].  Every EBA protocol in this library's
zoo satisfies both with equality witnesses, which is exactly the shape the
paper predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .outcomes import ProtocolOutcome, ScenarioKey


@dataclass
class WorstCaseReport:
    """Worst-case decision time of a protocol over a scenario space.

    Attributes:
        protocol_name: The examined protocol.
        worst_time: Latest nonfaulty decision time observed (``None`` never
            counts as larger — undecided processors are reported
            separately).
        witness: Scenario and processor achieving it.
        undecided: Number of (run, nonfaulty processor) pairs with no
            decision (nonzero disqualifies the protocol as EBA).
    """

    protocol_name: str
    worst_time: int
    witness: Optional[Tuple[ScenarioKey, int]]
    undecided: int

    def meets_t_plus_1(self, t: int) -> bool:
        """Whether the [DS82] ``t + 1`` worst case is realized."""
        return self.worst_time >= t + 1


def worst_case_decision_time(outcome: ProtocolOutcome) -> WorstCaseReport:
    """Scan an outcome for its latest nonfaulty decision."""
    worst = -1
    witness: Optional[Tuple[ScenarioKey, int]] = None
    undecided = 0
    for run in outcome:
        for processor in run.nonfaulty:
            record = run.decisions[processor]
            if record is None:
                undecided += 1
                continue
            if record[1] > worst:
                worst = record[1]
                witness = (run.scenario_key(), processor)
    return WorstCaseReport(
        protocol_name=outcome.name,
        worst_time=worst,
        witness=witness,
        undecided=undecided,
    )


@dataclass
class RaceGapReport:
    """Largest lag of a protocol behind the better of two references.

    Used with ``P0`` and ``P1``: for each nonfaulty decision sample the lag
    is ``time_P - min(time_P0, time_P1)``; [DS82] implies the maximum lag
    of any EBA protocol is at least ``t + 1``.
    """

    protocol_name: str
    max_gap: int
    witness: Optional[Tuple[ScenarioKey, int]]


def max_gap_behind_races(
    outcome: ProtocolOutcome,
    race_zero: ProtocolOutcome,
    race_one: ProtocolOutcome,
) -> RaceGapReport:
    """Compute the worst lag of *outcome* behind ``min(P0, P1)``.

    All three outcomes must cover the same scenario space.  Samples where
    *outcome* never decides are treated as lagging by the full horizon
    (they already violate EBA, so the bound holds trivially there).
    """
    max_gap = -(10**9)
    witness: Optional[Tuple[ScenarioKey, int]] = None
    for key in outcome.scenario_keys():
        run = outcome.get(key)
        run_zero = race_zero.get(key)
        run_one = race_one.get(key)
        for processor in run.nonfaulty:
            reference_times = [
                record[1]
                for record in (
                    run_zero.decisions[processor],
                    run_one.decisions[processor],
                )
                if record is not None
            ]
            if not reference_times:
                continue
            reference = min(reference_times)
            record = run.decisions[processor]
            time = run.horizon + 1 if record is None else record[1]
            gap = time - reference
            if gap > max_gap:
                max_gap = gap
                witness = (key, processor)
    return RaceGapReport(
        protocol_name=outcome.name, max_gap=max_gap, witness=witness
    )


def check_ds82_bounds(
    outcome: ProtocolOutcome,
    race_zero: ProtocolOutcome,
    race_one: ProtocolOutcome,
    t: int,
) -> List[str]:
    """Both [DS82]-derived bounds for one protocol; empty list = consistent.

    (A nonempty result would be a refutation of a published lower bound —
    i.e. a bug in this library.)
    """
    problems: List[str] = []
    worst = worst_case_decision_time(outcome)
    if not worst.meets_t_plus_1(t):
        problems.append(
            f"{outcome.name}: worst-case decision time {worst.worst_time} "
            f"< t + 1 = {t + 1} over an exhaustive space"
        )
    gap = max_gap_behind_races(outcome, race_zero, race_one)
    if gap.max_gap < t + 1:
        problems.append(
            f"{outcome.name}: max lag behind min(P0, P1) is {gap.max_gap} "
            f"< t + 1 = {t + 1}"
        )
    return problems
