"""Decision sets and decision pairs (paper, Section 4).

A *decision set* ``A = (A_1, ..., A_n)`` lists, for each processor, the local
states at which it is deciding or has decided on a particular value.  Because
interned view ids (see :mod:`repro.model.views`) embed their owner, we
represent a decision set as a single frozen set of view ids — ``A_i`` is the
subset owned by processor ``i``.

A *decision pair* ``(Z, O)`` gives the zero- and one-decision sets; it fully
determines the full-information protocol ``FIP(Z, O)``.

Decision sets here are *closed under perfect recall*: if a state is in the
set, so is every later state of the same processor in the same run ("decides
or has decided").  :func:`close_under_recall` performs the closure against a
view table; :class:`DecisionPair` stores already-closed sets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Set

from ..errors import ProtocolViolationError
from ..model.views import ViewId, ViewTable

#: Monotone counter used to give decision pairs stable cache tokens.
_TOKEN_COUNTER = itertools.count()


def close_under_recall(
    trigger_states: Iterable[ViewId],
    all_states: Iterable[ViewId],
    table: ViewTable,
) -> FrozenSet[ViewId]:
    """Close a trigger-state set under perfect recall.

    A state belongs to the closure iff some state along its own history
    (itself included) is a trigger state.  *all_states* bounds the closure to
    the states that actually occur in the system of interest.
    """
    triggers = set(trigger_states)
    closed: Dict[ViewId, bool] = {}

    def is_closed(view: ViewId) -> bool:
        cached = closed.get(view)
        if cached is not None:
            return cached
        if view in triggers:
            closed[view] = True
            return True
        previous = table.info(view).previous
        result = previous is not None and is_closed(previous)
        closed[view] = result
        return result

    return frozenset(view for view in all_states if is_closed(view))


@dataclass(frozen=True)
class DecisionPair:
    """A decision pair ``(Z, O)``: closed state sets for deciding 0 / 1.

    Attributes:
        zeros: States at which the owner is deciding or has decided 0.
        ones: States at which the owner is deciding or has decided 1.
        name: Human-readable label (e.g. ``"F^{Λ,2}"``), used in reports.
        token: Stable integer used as part of evaluation cache keys; two
            pairs with equal sets but different tokens are cached separately
            (harmless, merely less sharing).
    """

    zeros: FrozenSet[ViewId]
    ones: FrozenSet[ViewId]
    name: str = "FIP"
    token: int = -1

    def __post_init__(self) -> None:
        if self.token < 0:
            object.__setattr__(self, "token", next(_TOKEN_COUNTER))

    def cache_key(self) -> object:
        return ("decision-pair", self.token)

    def decides_zero(self, view: ViewId) -> bool:
        """Whether the owner of *view* is deciding or has decided 0."""
        return view in self.zeros

    def decides_one(self, view: ViewId) -> bool:
        """Whether the owner of *view* is deciding or has decided 1."""
        return view in self.ones

    def overlap(self) -> FrozenSet[ViewId]:
        """States claimed by both sets (potential conflicts).

        An overlap is not automatically an error: a state can enter ``Z``
        strictly after entering ``O`` (the processor decided 1 first and the
        zero-condition became true later), which is harmless because
        decisions are irreversible and resolved by first trigger.  Genuine
        conflicts — both sets first firing at the same point — are detected
        during decision-map construction in :mod:`repro.protocols.fip`.
        """
        return self.zeros & self.ones

    def renamed(self, name: str) -> "DecisionPair":
        """A copy of this pair under a different display name (same token,
        so cached evaluations are shared)."""
        return DecisionPair(self.zeros, self.ones, name=name, token=self.token)

    def same_sets_as(self, other: "DecisionPair") -> bool:
        """Whether both pairs contain exactly the same state sets."""
        return self.zeros == other.zeros and self.ones == other.ones


def empty_pair(name: str = "F^Λ") -> DecisionPair:
    """The decision pair of the never-deciding protocol ``F^Λ`` (§6.1)."""
    return DecisionPair(frozenset(), frozenset(), name=name)


def pair_from_predicates(
    states: Iterable[ViewId],
    table: ViewTable,
    zero_trigger: Callable[[ViewId], bool],
    one_trigger: Callable[[ViewId], bool],
    name: str = "FIP",
) -> DecisionPair:
    """Build a closed decision pair from per-state trigger predicates.

    Args:
        states: The states occurring in the system of interest.
        table: View table for recall closure.
        zero_trigger / one_trigger: State predicates marking where each
            decision *first becomes enabled*.
        name: Display name for the resulting pair.
    """
    state_list = list(states)
    zero_triggers = [view for view in state_list if zero_trigger(view)]
    one_triggers = [view for view in state_list if one_trigger(view)]
    return DecisionPair(
        close_under_recall(zero_triggers, state_list, table),
        close_under_recall(one_triggers, state_list, table),
        name=name,
    )
