"""Input values and decisions for binary Byzantine agreement.

The paper restricts attention to *binary* agreement: every processor starts
with an initial value in ``V = {0, 1}`` and eventually outputs a value in
``O = {bottom, 0, 1}`` where *bottom* means "no output yet".  We represent
values as plain ints (``0`` / ``1``) and the undecided output as ``None`` so
that decisions compose naturally with Python's truthiness-free comparisons
(``decision is None`` reads exactly like the paper's ``bottom``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

#: The binary input domain of the agreement problem.
VALUES: Tuple[int, int] = (0, 1)

#: Type alias for an initial value.
Value = int

#: Type alias for a decision output: ``None`` = undecided (the paper's ⊥).
Decision = Optional[int]


def other(value: Value) -> Value:
    """Return the other binary value (``1 - value``).

    The paper repeatedly exploits the 0/1 symmetry (e.g. protocol ``P1`` is
    ``P0`` with the roles of the two values exchanged); this helper keeps
    those constructions readable.
    """
    if value not in VALUES:
        raise ValueError(f"not a binary agreement value: {value!r}")
    return 1 - value


def check_value(value: Value) -> Value:
    """Validate that *value* is a legal initial value and return it."""
    if value not in VALUES:
        raise ValueError(f"initial values must be 0 or 1, got {value!r}")
    return value


def check_decision(decision: Decision) -> Decision:
    """Validate that *decision* is ``None``, ``0`` or ``1`` and return it."""
    if decision is not None and decision not in VALUES:
        raise ValueError(f"decisions must be None, 0 or 1, got {decision!r}")
    return decision


def all_same(values: Iterable[Value]) -> Optional[Value]:
    """Return the common value if all *values* are identical, else ``None``.

    Used by the validity checkers: the validity condition only constrains
    runs in which *all* initial values agree.  An empty iterable returns
    ``None`` (there is no common value to enforce).
    """
    common: Optional[Value] = None
    for index, value in enumerate(values):
        if index == 0:
            common = value
        elif value != common:
            return None
    return common
