"""Brute-force improvement search: a second, independent optimality check.

Theorem 5.3 characterizes optimality through knowledge formulas; this
module validates that characterization from the *definition* instead: a
protocol is non-optimal iff some nontrivial agreement protocol strictly
dominates it.  We search the simplest family of candidate improvements —
**single-state speedups**, where one local state (plus its perfect-recall
closure) is added to one decision set — and check each candidate for

* remaining a nontrivial agreement protocol (weak agreement + weak
  validity over the whole system),
* dominating the original, and
* deciding strictly earlier somewhere.

Finding such a candidate *proves* non-optimality.  Not finding one does not
prove optimality in general (improvements could require coordinated
multi-state changes), but on the systems where Theorem 5.3 declares a
protocol non-optimal a single-state speedup has always sufficed in our
experiments — and the test suite asserts the two verdicts agree on the
paper's protocol zoo, which is exactly the cross-validation we want.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..model.system import System
from ..model.views import ViewId
from .decision_sets import DecisionPair, close_under_recall
from .domination import compare
from .outcomes import ProtocolOutcome
from .specs import check_nontrivial_agreement


@dataclass
class Improvement:
    """A successful single-state speedup.

    Attributes:
        state: The local state added to a decision set.
        value: Which decision (0 or 1) the state was added to.
        pair: The improved (still nontrivial-agreement) decision pair.
        description: Human-readable witness of the strict improvement.
    """

    state: ViewId
    value: int
    pair: DecisionPair
    description: str


def _candidate_states(
    system: System, outcome: ProtocolOutcome
) -> Iterator[Tuple[ViewId, int]]:
    """States at which some nonfaulty processor is still undecided, i.e.
    the only places where a speedup could possibly help, tagged with the
    earliest time they occur (earlier states first — bigger wins)."""
    tagged = {}
    for run_index, run in enumerate(system.runs):
        run_outcome = outcome.get(run.scenario_key())
        for processor in run.nonfaulty:
            record = run_outcome.decisions[processor]
            decided_from = (
                system.horizon + 1 if record is None else record[1]
            )
            for time in range(system.horizon + 1):
                if time < decided_from:
                    view = run.view(processor, time)
                    previous = tagged.get(view)
                    if previous is None or time < previous:
                        tagged[view] = time
    for view, time in sorted(tagged.items(), key=lambda item: item[1]):
        yield view, time


def find_improvement(
    system: System,
    pair: DecisionPair,
    *,
    max_candidates: Optional[int] = None,
) -> Optional[Improvement]:
    """Search for a single-state speedup of ``FIP(pair)``.

    Args:
        system: The system to search over.
        pair: The (recall-closed) decision pair to improve.
        max_candidates: Optional cap on examined states (earliest-occurring
            states are tried first).

    Returns:
        The first improvement found, or ``None``.
    """
    from ..protocols.fip import fip  # local: protocols layer imports core

    base_outcome = fip(pair).outcome(system)
    all_states = list(system.occurring_views())
    examined = 0
    for state, _ in _candidate_states(system, base_outcome):
        if max_candidates is not None and examined >= max_candidates:
            return None
        examined += 1
        for value in (0, 1):
            if value == 0:
                zeros = close_under_recall(
                    set(pair.zeros) | {state}, all_states, system.table
                )
                ones = pair.ones
            else:
                zeros = pair.zeros
                ones = close_under_recall(
                    set(pair.ones) | {state}, all_states, system.table
                )
            candidate = DecisionPair(
                zeros, ones, name=f"{pair.name}+speedup"
            )
            protocol = fip(candidate)
            if protocol.conflicts(system):
                nonfaulty_conflict = any(
                    system.runs[run_index].is_nonfaulty(processor)
                    for run_index, processor, _ in protocol.conflicts(system)
                )
                if nonfaulty_conflict:
                    continue
            candidate_outcome = protocol.outcome(system)
            if not check_nontrivial_agreement(candidate_outcome).ok:
                continue
            report = compare(candidate_outcome, base_outcome)
            if report.strict:
                witness = report.improvements[0]
                return Improvement(
                    state=state,
                    value=value,
                    pair=candidate,
                    description=witness.describe(
                        candidate.name, pair.name
                    ),
                )
    return None


def is_single_state_optimal(
    system: System, pair: DecisionPair, **kwargs
) -> bool:
    """Whether no single-state speedup exists (see module caveat)."""
    return find_improvement(system, pair, **kwargs) is None


def improvement_report(
    system: System, pairs: List[DecisionPair]
) -> List[Tuple[str, Optional[str]]]:
    """For each pair: its name and a found-improvement description (or
    ``None``).  Convenience for experiments and examples."""
    results = []
    for pair in pairs:
        improvement = find_improvement(system, pair)
        results.append(
            (
                pair.name,
                None if improvement is None else improvement.description,
            )
        )
    return results
