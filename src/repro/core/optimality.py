"""Optimality characterization of EBA protocols (paper, Theorem 5.3).

A full-information nontrivial agreement protocol ``F = FIP(Z, O)`` is
optimal iff, at every point where the processor is nonfaulty::

    decide_i(0)  ⇔  B_i^N(∃0 ∧ C□_{N∧O} ∃0 ∧ ¬decide_i(1))          (a)
    decide_i(1)  ⇔  B_i^N(∃1 ∧ C□_{N∧Z} ∃1 ∧ ¬decide_i(0))          (b)

(The forward implications are the *necessary* conditions of Proposition 4.3
and hold for every nontrivial agreement protocol; optimality adds the
converses.)  This module evaluates both conditions exactly over an
enumerated system and reports the first few violating points, giving a
decidable optimality test for any knowledge-level protocol in this library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..knowledge.formulas import (
    And,
    Believes,
    ContinualCommon,
    Decided,
    Exists,
    Iff,
    Implies,
    IsNonfaulty,
    Not,
)
from ..knowledge.nonrigid import nonfaulty_and_ones, nonfaulty_and_zeros
from ..model.system import System
from .decision_sets import DecisionPair


@dataclass
class OptimalityReport:
    """Verdict of the Theorem 5.3 optimality check.

    Attributes:
        protocol_name: Display name of the checked pair.
        necessary_ok: Whether the Proposition 4.3 directions (⇒) hold —
            these must hold for *any* nontrivial agreement protocol.
        optimal: Whether both biconditionals hold (Theorem 5.3).
        violations: Descriptions of the first few failing points.
    """

    protocol_name: str
    necessary_ok: bool
    optimal: bool
    violations: List[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "OPTIMAL" if self.optimal else "NOT optimal"
        return f"{self.protocol_name}: {verdict} (Theorem 5.3 check)"


def _violating_points(system: System, formula, label: str, limit: int = 5):
    assignment = formula.evaluate(system)
    found = []
    for run_index, row in enumerate(assignment.values):
        for time, value in enumerate(row):
            if not value:
                run = system.runs[run_index]
                found.append(
                    f"{label} fails at time {time} of run "
                    f"(config={run.config}, pattern={run.pattern})"
                )
                if len(found) >= limit:
                    return found
    return found


def theorem_5_3_conditions(pair: DecisionPair):
    """Build the per-processor condition formulas of Theorem 5.3.

    Returns two factories ``(condition_a, condition_b)`` mapping a processor
    id to the corresponding biconditional guarded by ``i ∈ N``.
    """
    n_and_o = nonfaulty_and_ones(pair)
    n_and_z = nonfaulty_and_zeros(pair)
    cbox_zero = ContinualCommon(n_and_o, Exists(0))
    cbox_one = ContinualCommon(n_and_z, Exists(1))

    def condition_a(processor: int):
        right = Believes(
            processor,
            And(
                (
                    Exists(0),
                    cbox_zero,
                    Not(Decided(pair, processor, 1)),
                )
            ),
        )
        return Implies(
            IsNonfaulty(processor),
            Iff(Decided(pair, processor, 0), right),
        )

    def condition_b(processor: int):
        right = Believes(
            processor,
            And(
                (
                    Exists(1),
                    cbox_one,
                    Not(Decided(pair, processor, 0)),
                )
            ),
        )
        return Implies(
            IsNonfaulty(processor),
            Iff(Decided(pair, processor, 1), right),
        )

    return condition_a, condition_b


def proposition_4_3_conditions(pair: DecisionPair):
    """The necessary (⇒ only) conditions of Proposition 4.3, as factories."""
    n_and_o = nonfaulty_and_ones(pair)
    n_and_z = nonfaulty_and_zeros(pair)
    cbox_zero = ContinualCommon(n_and_o, Exists(0))
    cbox_one = ContinualCommon(n_and_z, Exists(1))

    def condition_a(processor: int):
        right = Believes(
            processor,
            And(
                (
                    Exists(0),
                    cbox_zero,
                    Not(Decided(pair, processor, 1)),
                )
            ),
        )
        return Implies(Decided(pair, processor, 0), right)

    def condition_b(processor: int):
        right = Believes(
            processor,
            And(
                (
                    Exists(1),
                    cbox_one,
                    Not(Decided(pair, processor, 0)),
                )
            ),
        )
        return Implies(Decided(pair, processor, 1), right)

    return condition_a, condition_b


def check_optimality(system: System, pair: DecisionPair) -> OptimalityReport:
    """Run the full Theorem 5.3 optimality check for *pair* over *system*."""
    violations: List[str] = []
    nec_a, nec_b = proposition_4_3_conditions(pair)
    necessary_ok = True
    for processor in range(system.n):
        for label, factory in (("Prop4.3(a)", nec_a), ("Prop4.3(b)", nec_b)):
            found = _violating_points(
                system, factory(processor), f"{label} i={processor}"
            )
            if found:
                necessary_ok = False
                violations.extend(found)
    cond_a, cond_b = theorem_5_3_conditions(pair)
    optimal = True
    for processor in range(system.n):
        for label, factory in (("Thm5.3(a)", cond_a), ("Thm5.3(b)", cond_b)):
            found = _violating_points(
                system, factory(processor), f"{label} i={processor}"
            )
            if found:
                optimal = False
                violations.extend(found)
    return OptimalityReport(
        protocol_name=pair.name,
        necessary_ok=necessary_ok,
        optimal=optimal and necessary_ok,
        violations=violations,
    )
