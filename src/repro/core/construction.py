"""The two-step optimal-protocol construction (paper, Section 5).

Starting from any full-information nontrivial agreement protocol
``F = FIP(Z, O)``, Proposition 5.1 defines two dominating protocols:

* the *prime* step, determined by ``O``::

      Z'_i  = B_i^N(∃0 ∧  C□_{N∧O} ∃0)      O'_i  = B_i^N(∃1 ∧ ¬C□_{N∧O} ∃0)

* the *double-prime* step, determined by ``Z``::

      Z''_i = B_i^N(∃0 ∧ ¬C□_{N∧Z} ∃1)      O''_i = B_i^N(∃1 ∧  C□_{N∧Z} ∃1)

Theorem 5.2: ``F² = (F¹)''`` where ``F¹ = F'`` is an **optimal** nontrivial
agreement protocol, and an optimal EBA protocol dominating ``F`` whenever
``F`` is an EBA protocol.  This module computes these steps exactly over an
enumerated system.
"""

from __future__ import annotations

from typing import List, Tuple

from ..knowledge.formulas import (
    And,
    Believes,
    ContinualCommon,
    Exists,
    Formula,
    Not,
)
from ..knowledge.nonrigid import nonfaulty_and_ones, nonfaulty_and_zeros
from ..model.system import System
from .decision_sets import DecisionPair


def _pair_from_formulas(*args, **kwargs):
    # Imported lazily: repro.protocols re-exports construction helpers, so a
    # module-level import here would be circular.
    from ..protocols.fip import pair_from_formulas

    return pair_from_formulas(*args, **kwargs)


def prime_step(
    system: System, pair: DecisionPair, name: str = ""
) -> DecisionPair:
    """The ``(Z', O')`` step of Proposition 5.1 (determined by ``O``).

    Optimizes the decision on 0 relative to the given rule for deciding 1:
    decide 0 as soon as ``∃0`` is continual common knowledge among the
    nonfaulty 1-deciders of the original protocol (so no one already
    committed to 1 can be contradicted), and decide 1 as soon as that can
    never happen.
    """
    name = name or f"({pair.name})'"
    n_and_o = nonfaulty_and_ones(pair)
    cbox_zero = ContinualCommon(n_and_o, Exists(0))

    def zero(processor: int) -> Formula:
        return Believes(processor, And((Exists(0), cbox_zero)))

    def one(processor: int) -> Formula:
        return Believes(processor, And((Exists(1), Not(cbox_zero))))

    return _pair_from_formulas(system, zero, one, name)


def double_prime_step(
    system: System, pair: DecisionPair, name: str = ""
) -> DecisionPair:
    """The ``(Z'', O'')`` step of Proposition 5.1 (determined by ``Z``).

    The mirror image of :func:`prime_step`: optimizes the decision on 1
    relative to the given rule for deciding 0.
    """
    name = name or f"({pair.name})''"
    n_and_z = nonfaulty_and_zeros(pair)
    cbox_one = ContinualCommon(n_and_z, Exists(1))

    def zero(processor: int) -> Formula:
        return Believes(processor, And((Exists(0), Not(cbox_one))))

    def one(processor: int) -> Formula:
        return Believes(processor, And((Exists(1), cbox_one)))

    return _pair_from_formulas(system, zero, one, name)


def two_step_optimization(
    system: System, pair: DecisionPair
) -> Tuple[DecisionPair, DecisionPair]:
    """Theorem 5.2's construction: returns ``(F¹, F²)`` for a starting ``F``.

    ``F¹ = FIP(Z', O')`` (prime step on ``F``) and ``F² = FIP((Z¹)'',
    (O¹)'')`` (double-prime step on ``F¹``).  ``F²`` is an optimal
    nontrivial agreement protocol; if ``F`` is an EBA protocol, ``F²`` is an
    optimal EBA protocol dominating ``F``.
    """
    first = prime_step(system, pair, name=f"{pair.name}^1")
    second = double_prime_step(system, first, name=f"{pair.name}^2")
    return first, second


def construction_sequence(
    system: System, pair: DecisionPair, steps: int
) -> List[DecisionPair]:
    """Alternate prime / double-prime steps *steps* times.

    Returns ``[F, F¹, F², F^{2,1}, ...]``.  By Theorem 5.2 the decisions of
    nonfaulty processors stabilize from ``F²`` on; the E6 experiment
    verifies this empirically by comparing outcomes along the sequence.
    """
    sequence = [pair]
    current = pair
    for step in range(steps):
        if step % 2 == 0:
            current = prime_step(system, current, name=f"{pair.name}^{step + 1}")
        else:
            current = double_prime_step(
                system, current, name=f"{pair.name}^{step + 1}"
            )
        sequence.append(current)
    return sequence
