"""Core: values, decision sets, outcomes, specs, domination, construction
and optimality — the paper's primary contribution, on top of the model and
knowledge substrates."""

from .construction import (
    construction_sequence,
    double_prime_step,
    prime_step,
    two_step_optimization,
)
from .decision_sets import (
    DecisionPair,
    close_under_recall,
    empty_pair,
    pair_from_predicates,
)
from .domination import (
    DominationReport,
    DominationWitness,
    compare,
    dominates,
    equivalent_decisions,
    strictly_dominates,
)
from .optimality import (
    OptimalityReport,
    check_optimality,
    proposition_4_3_conditions,
    theorem_5_3_conditions,
)
from .outcomes import DecisionRecord, ProtocolOutcome, RunOutcome, ScenarioKey
from .specs import (
    SpecReport,
    check_agreement,
    check_decision,
    check_eba,
    check_nontrivial_agreement,
    check_sba,
    check_simultaneity,
    check_validity,
    check_weak_agreement,
    check_weak_validity,
)
from .values import VALUES, Decision, Value, all_same, check_decision as check_decision_value, check_value, other

__all__ = [
    "DecisionPair",
    "DecisionRecord",
    "Decision",
    "DominationReport",
    "DominationWitness",
    "OptimalityReport",
    "ProtocolOutcome",
    "RunOutcome",
    "ScenarioKey",
    "SpecReport",
    "VALUES",
    "Value",
    "all_same",
    "check_agreement",
    "check_decision",
    "check_decision_value",
    "check_eba",
    "check_nontrivial_agreement",
    "check_optimality",
    "check_sba",
    "check_simultaneity",
    "check_validity",
    "check_value",
    "check_weak_agreement",
    "check_weak_validity",
    "close_under_recall",
    "compare",
    "construction_sequence",
    "dominates",
    "double_prime_step",
    "empty_pair",
    "equivalent_decisions",
    "other",
    "pair_from_predicates",
    "prime_step",
    "proposition_4_3_conditions",
    "strictly_dominates",
    "theorem_5_3_conditions",
    "two_step_optimization",
]
