"""Structured span tracing: *where* inside a workload the time went.

:mod:`repro.obs` answers "how much, in total" with flat process-wide
counters and stage timers; this module answers "where, exactly" with a tree
of **spans**.  A span is one timed region — a system enumeration, a fixpoint
evaluation, a simulator execution, an experiment — with a name, a parent,
free-form attributes (iteration counts, cache outcomes, parameters) and a
wall-clock interval.  Spans nest: the builder span opened while experiment
E4 enumerates its crash system is a child of E4's experiment span, and the
fixpoint spans opened by its formula evaluations nest below that.

Design constraints, in priority order:

1. **Always-on and cheap.**  Like :data:`repro.obs.OBS`, the process-wide
   :data:`TRACER` is enabled by default.  Opening a span is one object
   allocation plus two ``perf_counter`` calls; spans wrap whole stages
   (an enumeration, a fixpoint, one simulator execution), never inner
   loops, so tracing costs well under 5% on the micro benches (asserted in
   ``benchmarks/bench_micro_core.py``).
2. **Bounded, with visible overflow.**  Finished spans land in a ring
   buffer (:data:`DEFAULT_CAPACITY` entries); a long-running process
   keeps the most recent window instead of growing without bound.
   Evictions are no longer silent: every dropped span increments the
   tracer's :attr:`Tracer.dropped` total and the ``trace_spans_dropped``
   obs counter, and :func:`tracer_status` (surfaced by
   ``repro-eba stats``) reports watermark/capacity/drops.
3. **Mergeable.**  Worker processes of the parallel system builder trace
   into their own tracer and export their spans relative to the chunk
   start; the parent grafts them under its own build span
   (:meth:`Tracer.graft`), so the per-worker timeline survives the
   process boundary instead of being silently dropped.  The sharded batch
   engine in :mod:`repro.exec` reuses the same mechanism for its
   ``exec.shard`` spans, grafted under the supervisor's ``exec.pool``
   span.

Export formats:

* :func:`write_jsonl` — one span per line, machine-readable;
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the Chrome
  trace-event format, loadable in Perfetto / ``chrome://tracing``
  (``repro-eba trace run E4 --out trace.json``); resource-sample series
  from :mod:`repro.obs.resource` graft in as counter tracks
  (:func:`chrome_counter_events`) so RSS/CPU rise and fall under the
  span timeline;
* :func:`span_tree` — the nested dict form that
  ``ExperimentResult.data["trace"]`` carries.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "span",
    "watermark",
    "collect",
    "tracer_status",
    "span_tree",
    "export_spans",
    "chrome_trace_events",
    "chrome_counter_events",
    "write_chrome_trace",
    "write_jsonl",
    "DEFAULT_CAPACITY",
]

#: Ring-buffer bound on finished spans kept by a tracer.
DEFAULT_CAPACITY = 16384


class Span:
    """One timed region of the workload.

    Attributes:
        span_id: Monotonically increasing id within the owning tracer.
        parent_id: Id of the enclosing span, or ``None`` for a root.
        name: Stage name (``"build_system"``, ``"fixpoint.common"``, ...).
        start: Seconds since the tracer's epoch at which the span opened.
        duration: Wall seconds the span covered (``None`` while open).
        attributes: Free-form key/value payload (parameters, counts).
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "duration", "attributes")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration: Optional[float] = None
        self.attributes: Dict[str, object] = {}

    def set(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form (used by every export path)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": round(self.start, 9),
            "duration": None if self.duration is None else round(self.duration, 9),
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    """Stand-in yielded while tracing is disabled; absorbs attributes."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Nested span recorder with a bounded ring buffer of finished spans.

    Spans nest through an explicit stack: the span open at the time a new
    one starts becomes its parent.  The reproduction is single-threaded per
    process (parallelism is process-based), so one stack suffices; worker
    processes each own a fresh tracer whose spans are grafted back by the
    parent.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"need capacity >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = True
        #: Total spans evicted from the ring buffer over this tracer's life.
        self.dropped = 0
        self._epoch = time.perf_counter()
        self._finished: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[object]:
        """Open a nested span for the enclosed block.

        Yields the :class:`Span` so the block can attach attributes that are
        only known at the end (iteration counts, cache outcomes); while the
        tracer is disabled a no-op stand-in is yielded instead.
        """
        if not self.enabled:
            yield _NULL_SPAN
            return
        parent = self._stack[-1].span_id if self._stack else None
        record = Span(
            self._next_id, parent, name, time.perf_counter() - self._epoch
        )
        self._next_id += 1
        if attributes:
            record.attributes.update(attributes)
        self._stack.append(record)
        try:
            yield record
        finally:
            self._stack.pop()
            record.duration = (
                time.perf_counter() - self._epoch - record.start
            )
            self._append(record)

    def _append(self, record: Span) -> None:
        self._finished.append(record)
        overflow = len(self._finished) - self.capacity
        if overflow > 0:
            # Drop the oldest in one slice instead of popping per span, and
            # account for the loss so stats can surface it.
            del self._finished[:overflow]
            self.dropped += overflow
            from repro import obs

            obs.count("trace_spans_dropped", overflow)

    def status(self) -> Dict[str, object]:
        """Ring-buffer health: capacity, fill, watermark and drop totals."""
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "buffered": len(self._finished),
            "open": len(self._stack),
            "watermark": self._next_id,
            "dropped": self.dropped,
        }

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span, or ``None``."""
        return self._stack[-1].span_id if self._stack else None

    @property
    def epoch(self) -> float:
        """``perf_counter`` value at which this tracer's clock started.

        Span starts are relative to this; counter tracks built from
        resource samples use it to land on the same timeline."""
        return self._epoch

    # -- collection ---------------------------------------------------------

    def watermark(self) -> int:
        """Marker for :meth:`collect`: the next span id to be assigned."""
        return self._next_id

    def collect(self, since: int = 0) -> List[Span]:
        """Finished spans with ``span_id >= since`` (oldest evicted first).

        Spans are returned in completion order; parents complete after
        their children, so consumers that need start order should sort.
        """
        return [s for s in self._finished if s.span_id >= since]

    def clear(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        self._finished.clear()

    # -- cross-process merge -------------------------------------------------

    def graft(
        self,
        spans: List[Dict[str, object]],
        *,
        parent_id: Optional[int] = None,
        offset: float = 0.0,
    ) -> int:
        """Adopt exported *spans* from another tracer (a worker process).

        Ids are reassigned to this tracer's sequence (internal parent links
        preserved); spans without a parent in the batch are attached to
        *parent_id*; starts are shifted by *offset* seconds so the worker's
        chunk-relative timeline lands inside the parent's build span.

        Returns the number of spans adopted.
        """
        if not self.enabled or not spans:
            return 0
        mapping: Dict[int, int] = {}
        batch_ids = {int(s["span_id"]) for s in spans}
        for exported in spans:
            old_id = int(exported["span_id"])
            record = Span(
                self._next_id,
                None,
                str(exported["name"]),
                float(exported["start"]) + offset,
            )
            mapping[old_id] = self._next_id
            self._next_id += 1
            old_parent = exported.get("parent_id")
            if old_parent is not None and int(old_parent) in batch_ids:
                record.parent_id = mapping.get(int(old_parent))
            else:
                record.parent_id = parent_id
            duration = exported.get("duration")
            record.duration = None if duration is None else float(duration)
            attributes = exported.get("attributes")
            if isinstance(attributes, dict):
                record.attributes.update(attributes)
            self._append(record)
        return len(spans)


#: The process-wide tracer.
TRACER = Tracer()


def span(name: str, **attributes: object):
    """Open a span on the process-wide :data:`TRACER`."""
    return TRACER.span(name, **attributes)


def watermark() -> int:
    """Collection marker on the process-wide tracer."""
    return TRACER.watermark()


def collect(since: int = 0) -> List[Span]:
    """Finished spans of the process-wide tracer since *since*."""
    return TRACER.collect(since)


def tracer_status() -> Dict[str, object]:
    """Ring-buffer health of the process-wide tracer."""
    return TRACER.status()


# -- export -------------------------------------------------------------------


def export_spans(spans: List[Span]) -> List[Dict[str, object]]:
    """Spans as plain dicts, sorted by start time (for JSONL / grafting)."""
    return [s.to_dict() for s in sorted(spans, key=lambda s: s.start)]


def span_tree(spans: List[Span]) -> List[Dict[str, object]]:
    """Nest *spans* into parent/children trees (the ``data["trace"]`` form).

    Spans whose parent is absent from the batch (evicted from the ring
    buffer, or genuinely a root) become roots.  Children are ordered by
    start time.
    """
    nodes: Dict[int, Dict[str, object]] = {}
    for record in sorted(spans, key=lambda s: s.start):
        node = record.to_dict()
        node["children"] = []
        nodes[record.span_id] = node
    roots: List[Dict[str, object]] = []
    for node in nodes.values():
        parent = node["parent_id"]
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)  # type: ignore[union-attr]
        else:
            roots.append(node)
    return roots


def chrome_trace_events(spans: List[Span]) -> List[Dict[str, object]]:
    """Spans as Chrome trace-event format complete events (``"ph": "X"``).

    The produced list loads directly in Perfetto or ``chrome://tracing``;
    timestamps are microseconds since the tracer epoch, and span attributes
    travel in ``args``.
    """
    events: List[Dict[str, object]] = []
    for record in sorted(spans, key=lambda s: s.start):
        events.append(
            {
                "name": record.name,
                "ph": "X",
                "ts": round(record.start * 1e6, 3),
                "dur": round((record.duration or 0.0) * 1e6, 3),
                "pid": 0,
                "tid": 0,
                "args": {
                    "span_id": record.span_id,
                    "parent_id": record.parent_id,
                    **record.attributes,
                },
            }
        )
    return events


def chrome_counter_events(
    samples: List[Dict[str, float]],
    *,
    name: str = "resources",
    pid: int = 0,
    epoch: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Resource samples as Chrome trace counter-track events (``"ph": "C"``).

    Each sample (the :func:`repro.obs.resource.read_sample` shape) becomes
    one counter event carrying RSS (MiB, so the track is readable next to
    CPU) and CPU%.  Timestamps come from the sample's monotonic ``perf``
    field, shifted by *epoch* (pass the tracer's epoch so the counter track
    lines up with the span timeline); samples without ``perf`` are skipped.
    """
    events: List[Dict[str, object]] = []
    for sample in samples:
        perf = sample.get("perf")
        if perf is None:
            continue
        ts = float(perf) - (epoch if epoch is not None else 0.0)
        if ts < 0:
            continue
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": round(ts * 1e6, 3),
                "pid": pid,
                "tid": 0,
                "args": {
                    "rss_mib": round(
                        float(sample.get("rss_bytes", 0.0)) / (1024 * 1024), 2
                    ),
                    "cpu_pct": round(float(sample.get("cpu_pct", 0.0)), 2),
                },
            }
        )
    return events


def write_chrome_trace(
    spans: List[Span],
    path: str,
    *,
    extra_events: Optional[List[Dict[str, object]]] = None,
) -> int:
    """Write *spans* (plus optional pre-built events, e.g. counter tracks
    from :func:`chrome_counter_events`) to *path* in Chrome trace-event
    JSON.

    Returns the number of events written.
    """
    events = chrome_trace_events(spans)
    if extra_events:
        events.extend(extra_events)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)


def write_jsonl(spans: List[Span], path: str) -> int:
    """Write *spans* to *path* as one JSON object per line."""
    exported = export_spans(spans)
    with open(path, "w") as handle:
        for entry in exported:
            handle.write(json.dumps(entry))
            handle.write("\n")
    return len(exported)
