"""E17 — extension: multivalued agreement ("the general case").

The paper proves everything for binary agreement and remarks that the
extension to a general finite value domain is straightforward
(Section 2.1).  This experiment carries the concrete-protocol side of that
remark and measures it:

* ``MultiRace[m]`` (the ``P0`` generalization) and ``MultiOpt[m]`` (the
  ``P0opt`` generalization) satisfy Decision/Agreement/Validity over the
  exhaustive crash scenario space for domains ``m = 2, 3, 4``;
* ``MultiOpt`` dominates ``MultiRace`` at every domain size, strictly;
* at ``m = 2`` both collapse to their binary originals decision-for-
  decision (so the generalization is conservative);
* mean decision time by domain size — the larger the domain, the rarer the
  instant minimum-value decision, so the race's mean time grows while the
  optimized protocol's early-stopping keeps the gap open.
"""

from __future__ import annotations

from ..core.domination import compare, equivalent_decisions
from ..core.specs import check_eba
from ..metrics.stats import decision_time_stats
from ..metrics.tables import format_float, render_table
from ..model.adversary import ExhaustiveCrashAdversary
from ..multivalued.config import all_multi_configurations
from ..multivalued.protocols import multi_opt, multi_race
from ..protocols.p0 import p0
from ..protocols.p0opt import p0opt
from ..sim.engine import run_over_scenarios
from .framework import ExperimentResult


def run(
    n: int = 3, t: int = 1, horizon: int = None, domain_sizes=(2, 3, 4)
) -> ExperimentResult:
    horizon = (t + 2) if horizon is None else horizon
    patterns = list(ExhaustiveCrashAdversary(n, t, horizon).patterns())
    rows = []
    all_ok = True
    binary_collapse = True
    for domain_size in domain_sizes:
        scenarios = [
            (config, pattern)
            for config in all_multi_configurations(n, domain_size)
            for pattern in patterns
        ]
        race = run_over_scenarios(
            multi_race(domain_size), scenarios, horizon, t
        )
        optimized = run_over_scenarios(
            multi_opt(domain_size), scenarios, horizon, t
        )
        race_ok = check_eba(race).ok
        opt_ok = check_eba(optimized).ok
        domination = compare(optimized, race)
        race_stats = decision_time_stats(race)
        opt_stats = decision_time_stats(optimized)
        rows.append(
            [domain_size, len(scenarios), race_ok, opt_ok,
             domination.strict, format_float(race_stats.mean),
             format_float(opt_stats.mean)]
        )
        all_ok = all_ok and race_ok and opt_ok and domination.strict

        if domain_size == 2:
            # conservativity: identical decisions to the binary originals
            binary_scenarios = [
                (config, pattern) for config, pattern in scenarios
            ]
            p0_out = run_over_scenarios(
                p0(), _as_binary(binary_scenarios), horizon, t
            )
            popt_out = run_over_scenarios(
                p0opt(), _as_binary(binary_scenarios), horizon, t
            )
            binary_collapse = (
                _same_decisions(race, p0_out)
                and _same_decisions(optimized, popt_out)
            )

    table = render_table(
        ["|V|", "scenarios", "MultiRace EBA", "MultiOpt EBA",
         "MultiOpt strictly dominates", "race mean t", "opt mean t"],
        rows,
    )
    return ExperimentResult(
        experiment_id="E17",
        title="Multivalued agreement (the paper's 'general case')",
        paper_claim=(
            "(extension — Section 2.1 claims the binary restriction is "
            "inessential; the generalized race/optimized protocols stay "
            "correct, the optimization stays strict, and at |V| = 2 both "
            "collapse to the paper's originals.)"
        ),
        ok=all_ok and binary_collapse,
        table=table,
        notes=[
            f"crash mode, n={n}, t={t}, horizon={horizon}; exhaustive "
            "configurations x patterns per domain size",
            f"binary collapse (|V|=2 equals P0/P0opt): {binary_collapse}",
        ],
        data={"binary_collapse": binary_collapse},
    )


def _as_binary(scenarios):
    """Convert MultiConfiguration scenarios to binary ones (|V| = 2)."""
    from ..model.config import InitialConfiguration

    return [
        (InitialConfiguration(config.values), pattern)
        for config, pattern in scenarios
    ]


def _same_decisions(multi_outcome, binary_outcome) -> bool:
    """Decision-for-decision comparison across the two config types."""
    binary_by_values = {
        (run.config.values, run.pattern): run for run in binary_outcome
    }
    for run in multi_outcome:
        twin = binary_by_values.get((run.config.values, run.pattern))
        if twin is None:
            return False
        for processor in run.nonfaulty:
            if run.decisions[processor] != twin.decisions[processor]:
                return False
    return True
