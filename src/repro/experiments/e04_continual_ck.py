"""E4 — Lemma 3.4 and Section 3.3: properties of continual common
knowledge.

Checks, over exhaustive crash and omission systems:

* the K45-style axioms, fixed-point axiom, induction rule and
  run-invariance (``C□ ⇒ ⊡C□``) of ``C□_S``;
* ``C□_S φ ⇒ C_S φ`` (continual common knowledge is stronger than common
  knowledge) and the *strictness* of that implication — a concrete point
  where ``C_N ∃1`` holds but ``C□_{N} ∃1`` fails;
* agreement between the greatest-fixed-point evaluator and the Corollary
  3.3 reachability-component fast path.
"""

from __future__ import annotations

from ..knowledge.axioms import (
    check_continual_common_k45,
    check_continual_implies_common,
    check_everyone_unfolds,
    check_fixed_point,
    check_induction_rule,
    check_run_invariance,
)
from ..knowledge.explain import explain, render_witness_table
from ..knowledge.formulas import (
    AllStarted,
    Believes,
    Common,
    ContinualCommon,
    Exists,
    Not,
)
from ..knowledge.nonrigid import NONFAULTY
from ..knowledge.planner import prefetch
from ..metrics.tables import render_table
from ..model.builder import crash_system, omission_system
from .framework import ExperimentResult


def run(n: int = 3, t: int = 1, horizon: int = None) -> ExperimentResult:
    rows = []
    all_ok = True
    strict_witness_found = False
    witness_explanation = None
    for mode_name, system in (
        ("crash", crash_system(n, t, horizon)),
        ("omission", omission_system(n, t, horizon)),
    ):
        phis = [Exists(0), Exists(1), AllStarted(1), Not(Exists(0))]
        psis = [Exists(1), Not(Exists(1))]
        # Under --plan, fuse the portfolio the checks below re-evaluate:
        # the C fixpoints iterate in lockstep and the run-level C□ nodes
        # share one component labelling.  Verdicts are unchanged — the
        # checks then hit the seeded cache.
        prefetch(
            system,
            [ContinualCommon(NONFAULTY, phi) for phi in phis]
            + [Common(NONFAULTY, phi) for phi in phis]
            + [
                Common(NONFAULTY, Exists(1)),
                ContinualCommon(NONFAULTY, Exists(1), force_fixpoint=True),
            ],
        )
        failures = []
        failures += check_continual_common_k45(system, NONFAULTY, phis, psis)
        for phi in phis:
            failures += check_fixed_point(system, NONFAULTY, phi)
            failures += check_run_invariance(system, NONFAULTY, phi)
            failures += check_continual_implies_common(system, NONFAULTY, phi)
            failures += check_everyone_unfolds(system, NONFAULTY, phi, depth=2)
        failures += check_induction_rule(
            system, NONFAULTY, Believes(0, Exists(0)), Exists(0)
        )
        # Fast path vs fixpoint cross-check on a run-level fact.
        fast = ContinualCommon(NONFAULTY, Exists(1)).evaluate(system)
        slow = ContinualCommon(
            NONFAULTY, Exists(1), force_fixpoint=True
        ).evaluate(system)
        if fast != slow:
            failures.append("component fast path != fixpoint evaluator")
        # Strictness witness: C_N ∃1 without C□_N ∃1 somewhere.
        common = Common(NONFAULTY, Exists(1)).evaluate(system)
        continual = fast
        witness_point = next(
            (
                (run_index, time)
                for run_index in range(len(system.runs))
                for time in range(system.horizon + 1)
                if common.at(run_index, time)
                and not continual.at(run_index, time)
            ),
            None,
        )
        witness = witness_point is not None
        if witness and witness_explanation is None:
            explanation = explain(
                system, ContinualCommon(NONFAULTY, Exists(1)), witness_point
            )
            if not explanation.check(system):
                witness_explanation = (mode_name, explanation)
        strict_witness_found = strict_witness_found or witness
        rows.append(
            [mode_name, len(system.runs),
             "PASS" if not failures else f"FAIL: {failures[0]}",
             witness]
        )
        all_ok = all_ok and not failures
    table = render_table(
        ["mode", "runs", "Lemma 3.4 axioms", "C without C□ witness"], rows
    )
    data = {"strict_witness": strict_witness_found}
    if witness_explanation is not None:
        witness_mode, explanation = witness_explanation
        point = explanation.point
        table += (
            f"\n\nstrictness witness ({witness_mode} mode): C_N ∃1 holds "
            f"but C□_N ∃1 fails at point ({point[0]},{point[1]}); the "
            "S-□-reachability chain below reaches a run violating ∃1:\n"
            + render_witness_table(explanation)
        )
        data["witness"] = explanation.to_dict()
    return ExperimentResult(
        experiment_id="E4",
        title="Continual common knowledge: Lemma 3.4 and strictness",
        paper_claim=(
            "C□_S satisfies K45, the fixed-point axiom, the induction rule "
            "and C□ ⇒ ⊡C□; C□_S φ ⇒ C_S φ and the converse fails in "
            "general."
        ),
        ok=all_ok and strict_witness_found,
        table=table,
        notes=[
            f"n={n}, t={t}; exhaustive crash and omission systems",
            "fast reachability-component evaluator cross-checked against "
            "the greatest-fixed-point definition",
        ],
        data=data,
    )
