"""E13 — Proposition 2.2 / Corollary 2.3: the full-information protocol is
universal.

Proposition 2.2 says that for every protocol ``P`` there is a function
``f_i`` from the full-information state to ``P``'s state at corresponding
points.  We check this *extensionally*: running each concrete protocol over
the exhaustive scenario space, no full-information view may map to two
different protocol states at corresponding points.

Corollary 2.3 (a full-information protocol dominates ``P``) is then checked
constructively: the FIP whose decision sets are the *images* of ``P``'s
decisions under that function decides at corresponding points no later than
``P`` — in fact exactly when ``P`` does.
"""

from __future__ import annotations

from typing import Dict

from ..core.decision_sets import DecisionPair, close_under_recall
from ..core.domination import compare
from ..metrics.tables import render_table
from ..model.builder import crash_system, omission_system
from ..protocols.chain_eba import chain_eba
from ..protocols.fip import fip
from ..protocols.p0 import p0
from ..protocols.p0opt import p0opt
from ..sim.engine import traces_over_scenarios
from .framework import ExperimentResult


def _check_simulation(system, protocol, t):
    traces = traces_over_scenarios(
        protocol, system.scenarios(), system.horizon, t
    )
    mapping: Dict[int, object] = {}
    functional = True
    zero_triggers = []
    one_triggers = []
    for trace, run in zip(traces, system.runs):
        for time in range(system.horizon + 1):
            for processor in range(system.n):
                view = run.view(processor, time)
                state = trace.state_of(processor, time)
                if view in mapping and mapping[view] != state:
                    functional = False
                mapping[view] = state
                record = trace.decisions[processor]
                if record is not None and record[1] <= time:
                    (zero_triggers if record[0] == 0 else one_triggers).append(
                        view
                    )
    # Corollary 2.3: the induced FIP decides exactly when P does.
    all_states = list(system.occurring_views())
    induced = DecisionPair(
        close_under_recall(zero_triggers, all_states, system.table),
        close_under_recall(one_triggers, all_states, system.table),
        name=f"FIP[{protocol.name}]",
    )
    induced_out = fip(induced).outcome(system)
    from ..core.outcomes import ProtocolOutcome

    original_out = ProtocolOutcome(protocol.name)
    for trace in traces:
        original_out.add(trace.to_outcome())
    dominated = compare(induced_out, original_out).dominates
    return functional, dominated, len(mapping)


def run(n: int = 3, t: int = 1, horizon: int = None) -> ExperimentResult:
    crash = crash_system(n, t, horizon)
    omission = omission_system(n, t, horizon)
    cases = [
        ("crash", crash, p0()),
        ("crash", crash, p0opt()),
        ("omission", omission, chain_eba()),
    ]
    rows = []
    all_ok = True
    for mode_name, system, protocol in cases:
        functional, dominated, states = _check_simulation(system, protocol, t)
        rows.append([mode_name, protocol.name, functional, dominated, states])
        all_ok = all_ok and functional and dominated
    table = render_table(
        ["mode", "protocol", "f_i is a function", "induced FIP dominates",
         "distinct FIP states"],
        rows,
    )
    return ExperimentResult(
        experiment_id="E13",
        title="Full-information universality (Prop 2.2 / Cor 2.3)",
        paper_claim=(
            "The full-information state determines every protocol's state "
            "at corresponding points; hence some full-information protocol "
            "dominates any given protocol."
        ),
        ok=all_ok,
        table=table,
        notes=[f"n={n}, t={t}; exhaustive scenario spaces"],
        data={},
    )
