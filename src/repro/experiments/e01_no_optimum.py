"""E1 — Proposition 2.1: there is no optimum EBA protocol.

Measured reproduction:

* ``P0`` and ``P1`` are both EBA protocols over the exhaustive crash
  scenario space;
* each decides its favoured value at time 0 (so an optimum protocol would
  have to decide everything at time 0);
* neither dominates the other — both directions exhibit counterexamples;
* the [DS82] lower-bound probe: in the worst-case crash-chain run some
  nonfaulty processor cannot decide before time ``t`` under either
  protocol, confirming that no protocol is close to optimum in all runs.
"""

from __future__ import annotations

from ..core.domination import compare
from ..core.specs import check_eba
from ..metrics.stats import decision_time_stats
from ..metrics.tables import format_float, render_table
from ..model.adversary import ExhaustiveCrashAdversary
from ..protocols.p0 import p0, p1
from ..sim.engine import run_over_scenarios
from ..workloads.scenarios import exhaustive_scenarios, worst_case_crash_chain
from ..model.failures import FailureMode
from .framework import ExperimentResult


def run(n: int = 4, t: int = 1, horizon: int = None) -> ExperimentResult:
    horizon = (t + 2) if horizon is None else horizon
    scenarios = exhaustive_scenarios(FailureMode.CRASH, n, t, horizon)
    p0_out = run_over_scenarios(p0(), scenarios, horizon, t)
    p1_out = run_over_scenarios(p1(), scenarios, horizon, t)

    p0_eba = check_eba(p0_out)
    p1_eba = check_eba(p1_out)
    forward = compare(p0_out, p1_out)
    backward = compare(p1_out, p0_out)

    # Time-0 deciders: every nonfaulty processor holding the favoured value.
    def time0_favored_ok(outcome, favored):
        for run_outcome in outcome:
            for processor in run_outcome.nonfaulty:
                if run_outcome.config.value_of(processor) == favored:
                    record = run_outcome.decisions[processor]
                    if record != (favored, 0):
                        return False
        return True

    p0_time0 = time0_favored_ok(p0_out, 0)
    p1_time0 = time0_favored_ok(p1_out, 1)

    # [DS82] probe: the crash-chain run forces a late decision for the
    # survivors under P0 (the lone 0 is whispered down the faulty chain).
    chain_scenario = worst_case_crash_chain(n, t)
    chain_run = p0_out.get(chain_scenario)
    late = max(
        (chain_run.decision_time(processor) or horizon)
        for processor in chain_run.nonfaulty
    )

    stats0 = decision_time_stats(p0_out)
    stats1 = decision_time_stats(p1_out)
    table = render_table(
        ["protocol", "EBA", "mean t", "max t", "decides favored at 0",
         "dominates other"],
        [
            ["P0", p0_eba.ok, format_float(stats0.mean), stats0.maximum,
             p0_time0, forward.dominates],
            ["P1", p1_eba.ok, format_float(stats1.mean), stats1.maximum,
             p1_time0, backward.dominates],
        ],
    )
    ok = (
        p0_eba.ok
        and p1_eba.ok
        and p0_time0
        and p1_time0
        and not forward.dominates
        and not backward.dominates
        and late >= t
    )
    return ExperimentResult(
        experiment_id="E1",
        title="No optimum EBA protocol (Proposition 2.1)",
        paper_claim=(
            "P0 and P1 are EBA protocols deciding their favoured value at "
            "time 0; an optimum protocol would dominate both, hence decide "
            "everything at time 0, which is impossible [DS82]."
        ),
        ok=ok,
        table=table,
        notes=[
            f"crash mode, n={n}, t={t}, horizon={horizon}, "
            f"{len(scenarios)} exhaustive scenarios",
            f"P0 vs P1: {forward}",
            f"P1 vs P0: {backward}",
            f"[DS82] crash-chain probe: latest nonfaulty decision at time "
            f"{late} (>= t = {t})",
        ],
        data={
            "p0_mean": stats0.mean,
            "p1_mean": stats1.mean,
            "chain_latest_decision": late,
            "scenarios": len(scenarios),
        },
    )
