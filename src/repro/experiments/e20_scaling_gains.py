"""E20 — quantitative sweep: how much do the optimal EBA decisions gain,
and does it persist at scale?

The exhaustive experiments (E2, E12, E16) quantify the gains at the sizes
where knowledge tests are exact.  This sweep extends the *concrete*
comparison to larger networks with seeded random crash scenarios —
the figure-style series the paper's introduction gestures at:

* mean decision times of ``P0``, ``P0opt``, ``DM90Waste`` (optimum SBA)
  and ``FloodSBA`` across ``n ∈ {4, 6, 8}``, ``t ∈ {1, 2}``;
* cumulative decision shares at times 0 and 1 (EBA's instant and
  one-round decisions vs. the simultaneous protocols' waits);
* per-cell assertions: ``P0opt`` is EBA and strictly dominates ``P0``;
  the simultaneous protocols never beat ``P0opt``'s mean; the EBA-vs-SBA
  mean gap grows with ``t`` (the ``t + 1`` wait gets worse, early
  decisions do not).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.domination import compare
from ..core.specs import check_eba, check_sba
from ..metrics.stats import decision_time_stats, per_time_cumulative_share
from ..metrics.tables import format_float, render_table
from ..model.failures import FailureMode
from ..protocols.dm90 import dm90_waste
from ..protocols.flood_sba import flood_sba
from ..protocols.p0 import p0
from ..protocols.p0opt import p0opt
from ..sim.engine import run_over_scenarios
from ..workloads.scenarios import random_scenarios
from .framework import ExperimentResult

DEFAULT_CELLS: Tuple[Tuple[int, int], ...] = (
    (4, 1), (6, 1), (8, 1), (4, 2), (6, 2), (8, 2),
)


def cell_result(n: int, t: int, samples: int, seed: int) -> Dict[str, object]:
    """Measure one ``(n, t)`` cell: its table rows, per-cell assertion
    verdict and EBA-vs-SBA mean gap.

    Fully deterministic for fixed inputs (seeded scenarios, no wall-clock
    columns) — the sharded execution path runs each cell as its own shard
    and reassembles results that are byte-identical to :func:`run`'s.
    """
    horizon = t + 2
    scenarios = random_scenarios(
        FailureMode.CRASH, n, t, horizon, count=samples, seed=seed
    )
    # Stratify: unanimous-1 configurations are where P0opt's early
    # 1-decisions show, but a uniform random draw finds one with
    # probability 2^-n — vanishing exactly at the sizes this sweep
    # targets.  Add them deterministically (failure-free and one
    # silent crash per round).
    from ..model.config import uniform_configuration
    from ..model.failures import CrashBehavior, FailurePattern

    all_ones = uniform_configuration(n, 1)
    extra = [(all_ones, FailurePattern(()))]
    extra.extend(
        (all_ones, FailurePattern({0: CrashBehavior(k, frozenset())}))
        for k in range(1, horizon + 1)
    )
    scenarios += [
        scenario for scenario in extra if scenario not in set(scenarios)
    ]
    outcomes = {
        protocol.name: run_over_scenarios(protocol, scenarios, horizon, t)
        for protocol in (p0(), p0opt(), dm90_waste(), flood_sba())
    }
    cell_ok = (
        check_eba(outcomes["P0opt"]).ok
        and check_eba(outcomes["P0"]).ok
        and check_sba(outcomes["DM90Waste"]).ok
        and check_sba(outcomes["FloodSBA"]).ok
        and compare(outcomes["P0opt"], outcomes["P0"]).strict
    )
    rows: List[List[object]] = []
    means = {}
    for name, outcome in outcomes.items():
        stats = decision_time_stats(outcome)
        shares = per_time_cumulative_share(outcome, 1)
        means[name] = stats.mean
        rows.append(
            [f"n={n} t={t}", name, format_float(stats.mean),
             format_float(shares[0]), format_float(shares[1]),
             stats.maximum]
        )
    cell_ok = cell_ok and means["P0opt"] <= means["P0"]
    cell_ok = cell_ok and means["P0opt"] < means["DM90Waste"]
    return {
        "rows": rows,
        "ok": cell_ok,
        "t": t,
        "gap": means["DM90Waste"] - means["P0opt"],
    }


def build_result(
    cell_results: List[Dict[str, object]], samples: int, seed: int
) -> ExperimentResult:
    """Assemble the E20 result from per-cell measurements (shared with the
    sharded execution path's assemble stage)."""
    rows: List[List[object]] = []
    ok = True
    gap_by_t: Dict[int, List[float]] = {}
    for cell in cell_results:
        rows.extend(cell["rows"])  # type: ignore[arg-type]
        ok = ok and bool(cell["ok"])
        gap_by_t.setdefault(int(cell["t"]), []).append(float(cell["gap"]))  # type: ignore[arg-type]

    mean_gap = {
        t: sum(gaps) / len(gaps) for t, gaps in gap_by_t.items()
    }
    gap_grows = all(
        mean_gap[t_low] < mean_gap[t_high]
        for t_low in mean_gap
        for t_high in mean_gap
        if t_low < t_high
    )
    ok = ok and gap_grows
    table = render_table(
        ["cell", "protocol", "mean t", "share<=t0", "share<=t1", "max t"],
        rows,
    )
    return ExperimentResult(
        experiment_id="E20",
        title="Scaling sweep: optimal-EBA gains at larger n and t",
        paper_claim=(
            "(quantitative companion to [DRS90]'s motivation — EBA's "
            "early decisions persist at scale, and the gap to any "
            "simultaneous protocol grows with t.)"
        ),
        ok=ok,
        table=table,
        notes=[
            f"crash mode, {samples} seeded random scenarios per cell "
            f"(seed={seed}); concrete protocols only — knowledge tests "
            "are not needed for decision-time statistics",
            "mean EBA-vs-optimum-SBA gap by t: "
            + ", ".join(
                f"t={t}: {format_float(gap)}"
                for t, gap in sorted(mean_gap.items())
            ),
        ],
        data={"mean_gap_by_t": mean_gap},
    )


def run(
    cells: Tuple[Tuple[int, int], ...] = DEFAULT_CELLS,
    samples: int = 300,
    seed: int = 21,
) -> ExperimentResult:
    return build_result(
        [cell_result(n, t, samples, seed) for n, t in cells], samples, seed
    )
