"""Reproduction experiments E1-E14 (see DESIGN.md's experiment index)."""

from .framework import ExperimentResult

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_all", "run_experiment"]


def __getattr__(name):
    # Deferred: registry imports every experiment module; keep plain
    # `import repro.experiments` light.
    if name in ("EXPERIMENTS", "run_all", "run_experiment", "experiment_ids"):
        from . import registry

        return getattr(registry, name)
    raise AttributeError(name)
