"""E19 — extension: Byzantine failures and the n > 3t threshold
(Sections 2.1 / 7: "we believe that our techniques will extend" to
Byzantine failures).

The paper analyzes crash and sending-omission failures only.  This
experiment supplies the classical Byzantine substrate its conjecture is
about and measures the textbook facts against it:

* **EIG achieves Byzantine agreement for n > 3t**: zero violations of
  agreement + validity over an exhaustive adversarial sweep at
  ``n = 4, t = 1`` (every configuration x every faulty processor x a
  strategy pool of silence, both equivocation polarities and seeded random
  liars) and a seeded two-traitor sweep at ``n = 7, t = 2``;
* **the threshold is sharp**: at ``n = 3, t = 1`` the same sweep produces
  violations — the three-generals impossibility, concretely;
* **Byzantine subsumes crash**: under the silent strategy at
  ``n = 4, t = 1`` the protocol still agrees (with the default value
  filling the traitor's subtree).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List

from ..byzantine.eig import (
    ByzantineStrategy,
    EquivocateStrategy,
    RandomLiarStrategy,
    SilentStrategy,
    run_eig,
)
from ..metrics.tables import render_table
from .framework import ExperimentResult


def _strategy_pool(seeds: int = 5) -> List[ByzantineStrategy]:
    return (
        [SilentStrategy(), EquivocateStrategy(0, 1), EquivocateStrategy(1, 0)]
        + [RandomLiarStrategy(seed) for seed in range(seeds)]
    )


def _sweep_single_traitor(n: int, t: int, seeds: int = 5):
    violations = 0
    total = 0
    witness = None
    for values in itertools.product((0, 1), repeat=n):
        for faulty in range(n):
            for strategy in _strategy_pool(seeds):
                result = run_eig(values, {faulty: strategy}, t)
                total += 1
                if not (
                    result.agreement_holds() and result.validity_holds()
                ):
                    violations += 1
                    if witness is None:
                        witness = (
                            f"values={values}, traitor=p{faulty} "
                            f"({strategy.name}), decisions="
                            f"{result.decisions}"
                        )
    return violations, total, witness


def run(samples_n7: int = 60, seed: int = 0) -> ExperimentResult:
    rows = []

    v4, total4, _ = _sweep_single_traitor(4, 1)
    rows.append(["n=4, t=1 (n > 3t)", "exhaustive single traitor",
                 total4, v4])

    v3, total3, witness3 = _sweep_single_traitor(3, 1)
    rows.append(["n=3, t=1 (n = 3t)", "exhaustive single traitor",
                 total3, v3])

    rng = random.Random(seed)
    v7 = 0
    for trial in range(samples_n7):
        values = tuple(rng.randint(0, 1) for _ in range(7))
        first, second = rng.sample(range(7), 2)
        result = run_eig(
            values,
            {
                first: EquivocateStrategy(),
                second: RandomLiarStrategy(trial),
            },
            t=2,
        )
        if not (result.agreement_holds() and result.validity_holds()):
            v7 += 1
    rows.append(["n=7, t=2 (n > 3t)", "seeded two-traitor sample",
                 samples_n7, v7])

    # Byzantine subsumes crash: the silent traitor never breaks n=4.
    silent_violations = 0
    for values in itertools.product((0, 1), repeat=4):
        for faulty in range(4):
            result = run_eig(values, {faulty: SilentStrategy()}, 1)
            if not (result.agreement_holds() and result.validity_holds()):
                silent_violations += 1
    rows.append(["n=4, t=1, silence only", "exhaustive", 64,
                 silent_violations])

    table = render_table(
        ["cell", "sweep", "runs", "agreement/validity violations"], rows
    )
    ok = v4 == 0 and v7 == 0 and silent_violations == 0 and v3 > 0
    notes = [
        "strategy pool: silent, equivocate (both polarities), 5 seeded "
        "random liars",
        "EIG resolves claim trees bottom-up by strict majority with "
        "default 0",
    ]
    if witness3:
        notes.append(f"three-generals witness: {witness3}")
    return ExperimentResult(
        experiment_id="E19",
        title="Byzantine EIG and the n > 3t threshold (Section 7)",
        paper_claim=(
            "(extension — the paper conjectures its techniques extend to "
            "Byzantine failures; this provides the classical substrate: "
            "EIG agrees iff n > 3t, sharply.)"
        ),
        ok=ok,
        table=table,
        notes=notes,
        data={"n3_violations": v3, "n4_violations": v4},
    )
