"""E9 — Proposition 6.3: ``F^{Λ,2}`` need not terminate under omissions.

The proposition requires ``t > 1`` and ``n ≥ t + 2``; the witness run ``r``
has all processors starting with 1 and processor 0 faulty, silent forever.

Exact regime (default): the **full** omission system at ``n = 4, t = 2,
horizon = 2`` (≈385k runs — the knowledge tests are exact).  Measured:

* in run ``r`` no nonfaulty processor decides at any time within the
  horizon, because ``B_i^N C□_{N∧Z^{Λ,1}} ∃1`` never holds;
* the proof mechanism is visible: at the perturbed run ``r'_m`` (processor
  0 has value 0 and delivers exactly one message, to ``j`` in round ``m``)
  the formula ``C□_{N∧Z^{Λ,1}} ∃1`` is *false* while ``r'_m`` is
  indistinguishable from ``r`` to every other nonfaulty processor — which
  is what blocks the decision;
* by contrast ``t = 1`` omission systems (any horizon) let ``F^{Λ,2}``
  decide everywhere, matching the proposition's ``t > 1`` hypothesis.

Beyond the horizon the paper's induction (Lemma A.9) extends the witness
family round by round; the finite prefix here machine-checks every step the
horizon can express.

The witness-scenario enumeration and the verdict-table assembly are
factored into :func:`witness_target`, :func:`perturbed_cases` and
:func:`build_result` so the sharded execution engine
(:mod:`repro.exec.tasks`) measures exactly the same scenarios and renders
exactly the same result as this monolithic path — that shared code is what
the sharded-vs-monolithic parity tests lean on.
"""

from __future__ import annotations

from typing import List, Tuple

from ..knowledge.formulas import Believes, ContinualCommon, Exists
from ..knowledge.nonrigid import nonfaulty_and_zeros
from ..knowledge.planner import prefetch
from ..metrics.tables import render_table
from ..model.builder import omission_system
from ..model.config import InitialConfiguration, uniform_configuration
from ..model.failures import FailurePattern, OmissionBehavior
from ..protocols.f_lambda import f_lambda_sequence
from ..protocols.fip import fip
from .framework import ExperimentResult


def witness_target(
    n: int, horizon: int
) -> Tuple[InitialConfiguration, FailurePattern]:
    """The witness scenario ``r``: all values 1, processor 0 silent."""
    others = [p for p in range(n) if p != 0]
    silent = OmissionBehavior({r: others for r in range(1, horizon + 1)})
    return uniform_configuration(n, 1), FailurePattern({0: silent})


def perturbed_cases(
    n: int, horizon: int
) -> List[Tuple[str, InitialConfiguration, FailurePattern]]:
    """The perturbed scenarios ``r'_m``, in the verdict table's row order.

    ``r'_m -> pj``: processor 0 starts with 0 and delivers exactly one
    message, to ``j`` in round ``m``; everything else matches ``r``.
    """
    others = [p for p in range(n) if p != 0]
    zero_config = uniform_configuration(n, 1).values
    cases: List[Tuple[str, InitialConfiguration, FailurePattern]] = []
    for m in range(1, horizon + 1):
        for j in others:
            behavior = OmissionBehavior(
                {
                    r: [p for p in others if not (r == m and p == j)]
                    for r in range(1, horizon + 1)
                }
            )
            config_values = list(zero_config)
            config_values[0] = 0
            cases.append(
                (
                    f"r'_{m} -> p{j}",
                    InitialConfiguration(config_values),
                    FailurePattern({0: behavior}),
                )
            )
    return cases


def build_result(
    num_runs: int,
    n: int,
    t: int,
    horizon: int,
    *,
    nobody_decides: bool,
    belief_never: bool,
    perturbed_rows: List[List[object]],
) -> ExperimentResult:
    """Assemble the E9 verdict table from measured truth values.

    Shared by the monolithic :func:`run` and the sharded plan's assemble
    stage, so both paths emit byte-identical tables, notes and data.
    Takes the run count rather than the system so the sharded path —
    which runs on array projections and never materializes ``Run``
    objects — can call it too.
    """
    perturbed_all_false = all(not row[1] for row in perturbed_rows)
    rows = [
        ["no nonfaulty decision in witness run r", nobody_decides],
        ["B_i^N C□∃1 never holds in r", belief_never],
        ["C□∃1 false at every perturbed run r'_m", perturbed_all_false],
    ]
    table = render_table(["claim", "measured"], rows)
    ok = nobody_decides and belief_never and perturbed_all_false
    return ExperimentResult(
        experiment_id="E9",
        title="Omission-mode non-termination of F^{Λ,2} (Proposition 6.3)",
        paper_claim=(
            "For t > 1, n >= t + 2 there are omission-mode runs of F^{Λ,2} "
            "in which the nonfaulty processors never decide."
        ),
        ok=ok,
        table=table,
        notes=[
            f"FULL omission enumeration, n={n}, t={t}, horizon={horizon} "
            f"({num_runs} runs) — knowledge tests exact",
            "witness run: all values 1, processor 0 silent forever",
            "beyond the horizon the paper's Lemma A.9 induction extends "
            "the same witness family",
        ],
        data={
            "runs": num_runs,
            "perturbed_checked": len(perturbed_rows),
        },
    )


def run(n: int = 4, t: int = 2, horizon: int = 2) -> ExperimentResult:
    system = omission_system(n, t, horizon)
    base, first, second = f_lambda_sequence(system)
    protocol = fip(second)
    outcome = protocol.outcome(system)

    target = witness_target(n, horizon)
    target_run = outcome.get(target)
    nobody_decides = all(
        target_run.decisions[processor] is None
        for processor in target_run.nonfaulty
    )

    # Mechanism: C□_{N∧Z^{Λ,1}} ∃1 fails at every perturbed run r'_m.
    sticky_first = fip(first).sticky_pair(system)
    cbox = ContinualCommon(nonfaulty_and_zeros(sticky_first), Exists(1))
    # Under --plan, evaluate C□ and every processor's belief in it
    # through one plan; the probes below then cache-hit.
    prefetch(
        system,
        [cbox] + [Believes(processor, cbox) for processor in range(n)],
    )
    cbox_truth = cbox.evaluate(system)
    perturbed_rows: List[List[object]] = []
    for label, config, pattern in perturbed_cases(n, horizon):
        run_index = system.run_index_for(config, pattern)
        holds = cbox_truth.at(run_index, 0)
        perturbed_rows.append([label, holds])

    # Belief probe: B_i^N C□ ∃1 never true for nonfaulty i in the target.
    target_index = system.run_index_for(*target)
    belief_never = all(
        not Believes(processor, cbox).evaluate(system).at(target_index, time)
        for processor in target_run.nonfaulty
        for time in range(horizon + 1)
    )

    return build_result(
        len(system.runs),
        n,
        t,
        horizon,
        nobody_decides=nobody_decides,
        belief_never=belief_never,
        perturbed_rows=perturbed_rows,
    )
