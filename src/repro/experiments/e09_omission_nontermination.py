"""E9 — Proposition 6.3: ``F^{Λ,2}`` need not terminate under omissions.

The proposition requires ``t > 1`` and ``n ≥ t + 2``; the witness run ``r``
has all processors starting with 1 and processor 0 faulty, silent forever.

Exact regime (default): the **full** omission system at ``n = 4, t = 2,
horizon = 2`` (≈385k runs — the knowledge tests are exact).  Measured:

* in run ``r`` no nonfaulty processor decides at any time within the
  horizon, because ``B_i^N C□_{N∧Z^{Λ,1}} ∃1`` never holds;
* the proof mechanism is visible: at the perturbed run ``r'_m`` (processor
  0 has value 0 and delivers exactly one message, to ``j`` in round ``m``)
  the formula ``C□_{N∧Z^{Λ,1}} ∃1`` is *false* while ``r'_m`` is
  indistinguishable from ``r`` to every other nonfaulty processor — which
  is what blocks the decision;
* by contrast ``t = 1`` omission systems (any horizon) let ``F^{Λ,2}``
  decide everywhere, matching the proposition's ``t > 1`` hypothesis.

Beyond the horizon the paper's induction (Lemma A.9) extends the witness
family round by round; the finite prefix here machine-checks every step the
horizon can express.
"""

from __future__ import annotations

from ..core.specs import check_eba
from ..knowledge.formulas import Believes, ContinualCommon, Exists
from ..knowledge.nonrigid import nonfaulty_and_zeros
from ..metrics.tables import render_table
from ..model.builder import omission_system
from ..model.config import uniform_configuration
from ..model.failures import FailurePattern, OmissionBehavior
from ..protocols.f_lambda import f_lambda_sequence
from ..protocols.fip import fip
from .framework import ExperimentResult


def run(n: int = 4, t: int = 2, horizon: int = 2) -> ExperimentResult:
    system = omission_system(n, t, horizon)
    base, first, second = f_lambda_sequence(system)
    protocol = fip(second)
    outcome = protocol.outcome(system)

    others = [p for p in range(n) if p != 0]
    silent = OmissionBehavior(
        {r: others for r in range(1, horizon + 1)}
    )
    target = (uniform_configuration(n, 1), FailurePattern({0: silent}))
    target_run = outcome.get(target)
    nobody_decides = all(
        target_run.decisions[processor] is None
        for processor in target_run.nonfaulty
    )

    # Mechanism: C□_{N∧Z^{Λ,1}} ∃1 fails at every perturbed run r'_m.
    sticky_first = fip(first).sticky_pair(system)
    cbox = ContinualCommon(nonfaulty_and_zeros(sticky_first), Exists(1))
    cbox_truth = cbox.evaluate(system)
    perturbed_all_false = True
    perturbed_rows = []
    zero_config = uniform_configuration(n, 1).values
    for m in range(1, horizon + 1):
        for j in others:
            behavior = OmissionBehavior(
                {
                    r: [p for p in others if not (r == m and p == j)]
                    for r in range(1, horizon + 1)
                }
            )
            config_values = list(zero_config)
            config_values[0] = 0
            from ..model.config import InitialConfiguration

            config = InitialConfiguration(config_values)
            run_index = system.run_index_for(
                config, FailurePattern({0: behavior})
            )
            holds = cbox_truth.at(run_index, 0)
            perturbed_rows.append([f"r'_{m} -> p{j}", holds])
            perturbed_all_false = perturbed_all_false and not holds

    # Belief probe: B_i^N C□ ∃1 never true for nonfaulty i in the target.
    target_index = system.run_index_for(*target)
    belief_never = all(
        not Believes(processor, cbox).evaluate(system).at(target_index, time)
        for processor in target_run.nonfaulty
        for time in range(horizon + 1)
    )

    rows = [
        ["no nonfaulty decision in witness run r", nobody_decides],
        ["B_i^N C□∃1 never holds in r", belief_never],
        ["C□∃1 false at every perturbed run r'_m", perturbed_all_false],
    ]
    table = render_table(["claim", "measured"], rows)
    ok = nobody_decides and belief_never and perturbed_all_false
    return ExperimentResult(
        experiment_id="E9",
        title="Omission-mode non-termination of F^{Λ,2} (Proposition 6.3)",
        paper_claim=(
            "For t > 1, n >= t + 2 there are omission-mode runs of F^{Λ,2} "
            "in which the nonfaulty processors never decide."
        ),
        ok=ok,
        table=table,
        notes=[
            f"FULL omission enumeration, n={n}, t={t}, horizon={horizon} "
            f"({len(system.runs)} runs) — knowledge tests exact",
            "witness run: all values 1, processor 0 silent forever",
            "beyond the horizon the paper's Lemma A.9 induction extends "
            "the same witness family",
        ],
        data={
            "runs": len(system.runs),
            "perturbed_checked": len(perturbed_rows),
        },
    )
