"""E16 — extension: the [DM90] optimum-SBA baseline, reproduced concretely.

The paper contrasts its EBA results against the known optimum *simultaneous*
protocols of [DM90]/[MT88] ("polynomial time protocols that are optimum for
SBA ... are given").  This experiment reproduces that baseline inside this
codebase and wires it into the EBA comparison:

* ``DM90Waste`` — the concrete waste-based rule ("decide at time
  ``t + 1 - max_j max(0, D(j) - j)``", 0 iff a 0 was seen) — makes exactly
  the same decisions as the knowledge-level common-knowledge oracle
  ``SBA-CK`` at corresponding points of exhaustive crash systems;
* it is a correct SBA protocol and dominates the naive ``FloodSBA``
  (strictly wherever failures expose waste);
* the paper's optimal EBA protocol ``P0opt`` strictly dominates it — the
  quantified version of "EBA decides earlier than even optimum SBA".
"""

from __future__ import annotations

from ..core.domination import compare, equivalent_decisions
from ..core.specs import check_sba
from ..metrics.stats import decision_time_stats
from ..metrics.tables import format_float, render_table
from ..model.builder import crash_system
from ..protocols.dm90 import dm90_waste
from ..protocols.fip import fip
from ..protocols.flood_sba import flood_sba
from ..protocols.p0opt import p0opt
from ..protocols.sba_ck import sba_common_knowledge_pair
from ..sim.engine import run_over_scenarios
from .framework import ExperimentResult


def run(n: int = 4, t: int = 1, horizon: int = None) -> ExperimentResult:
    system = crash_system(n, t, horizon)
    scenarios = system.scenarios()

    oracle = fip(sba_common_knowledge_pair(system)).outcome(system)
    concrete = run_over_scenarios(dm90_waste(), scenarios, system.horizon, t)
    flood = run_over_scenarios(flood_sba(), scenarios, system.horizon, t)
    eba = run_over_scenarios(p0opt(), scenarios, system.horizon, t)

    sba_ok = check_sba(concrete).ok
    matches_oracle, diffs = equivalent_decisions(concrete, oracle)
    vs_flood = compare(concrete, flood)
    eba_vs_dm90 = compare(eba, concrete)

    rows = []
    for outcome in (eba, concrete, oracle, flood):
        stats = decision_time_stats(outcome)
        rows.append(
            [outcome.name, format_float(stats.mean), stats.minimum,
             stats.maximum]
        )
    table = render_table(
        ["protocol", "mean decision t", "min", "max"], rows
    )
    # Second stage: t = 2 is where waste actually buys rounds (with t = 1
    # a single exposed failure can never beat its own exposure round).
    # Sampled scenarios keep this cheap; correctness of a concrete protocol
    # is per-run, so sampling is sound for specification checks.
    from ..model.failures import FailureMode
    from ..workloads.scenarios import random_scenarios

    deep = random_scenarios(
        FailureMode.CRASH, 5, 2, 4, count=400, seed=11
    )
    deep_dm90 = run_over_scenarios(dm90_waste(), deep, 4, 2)
    deep_flood = run_over_scenarios(flood_sba(), deep, 4, 2)
    deep_sba_ok = check_sba(deep_dm90).ok
    deep_report = compare(deep_dm90, deep_flood)

    ok = (
        sba_ok
        and matches_oracle
        and vs_flood.dominates
        and eba_vs_dm90.strict
        and deep_sba_ok
        and deep_report.strict
    )
    notes = [
        f"crash mode, n={n}, t={t}, horizon={system.horizon}, "
        f"{len(scenarios)} exhaustive scenarios",
        f"DM90Waste vs SBA-CK oracle: identical decisions = "
        f"{matches_oracle}",
        str(vs_flood),
        str(eba_vs_dm90),
        f"t=2 stage (n=5, {len(deep)} sampled runs): SBA ok = "
        f"{deep_sba_ok}; {deep_report}",
    ]
    notes.extend(f"oracle diff: {diff}" for diff in diffs[:3])
    return ExperimentResult(
        experiment_id="E16",
        title="Optimum SBA baseline reproduced concretely ([DM90])",
        paper_claim=(
            "(context baseline — [DM90]'s optimum SBA decides at time "
            "t+1-W where W is the waste of the discovered failure pattern; "
            "the paper's optimal EBA strictly dominates it.)"
        ),
        ok=ok,
        table=table,
        notes=notes,
        data={"matches_oracle": matches_oracle},
    )
