"""E10 — Proposition 6.4: the chain protocol decides by time ``f + 1``.

Over the exhaustive omission system, for both the knowledge-level
``FIP(Z⁰, O⁰)`` and the concrete ``ChainEBA`` implementation:

* every nonfaulty processor decides by time ``f + 1`` where ``f`` is the
  number of processors that actually fail in the run (``f ≤ t``);
* both are EBA protocols;
* the per-``f`` worst-case decision time table is printed (the paper's
  claim in table form).
"""

from __future__ import annotations

from typing import Dict

from ..core.outcomes import ProtocolOutcome
from ..core.specs import check_eba
from ..metrics.tables import render_table
from ..model.builder import omission_system
from ..protocols.chain_eba import chain_eba
from ..protocols.chain_fip import chain_pair
from ..protocols.fip import fip
from ..sim.engine import run_over_scenarios
from .framework import ExperimentResult


def _worst_by_f(outcome: ProtocolOutcome) -> Dict[int, int]:
    worst: Dict[int, int] = {}
    for run in outcome:
        f = run.pattern.num_faulty()
        latest = run.max_nonfaulty_decision_time()
        if latest is None:
            worst[f] = 10**9  # undecided sentinel
        else:
            worst[f] = max(worst.get(f, 0), latest)
    return worst


def run(n: int = 3, t: int = 1, horizon: int = None) -> ExperimentResult:
    system = omission_system(n, t, horizon)
    knowledge = fip(chain_pair(system))
    knowledge.assert_no_nonfaulty_conflicts(system)
    knowledge_out = knowledge.outcome(system)
    concrete_out = run_over_scenarios(
        chain_eba(), system.scenarios(), system.horizon, t
    )

    rows = []
    all_ok = True
    for name, outcome in (
        ("FIP(Z⁰,O⁰)", knowledge_out),
        ("ChainEBA", concrete_out),
    ):
        eba = check_eba(outcome)
        worst = _worst_by_f(outcome)
        bound_ok = all(latest <= f + 1 for f, latest in worst.items())
        rows.append(
            [name, eba.ok, bound_ok]
            + [worst.get(f, "-") for f in range(t + 1)]
        )
        all_ok = all_ok and eba.ok and bound_ok
    table = render_table(
        ["protocol", "EBA", "decides by f+1"]
        + [f"worst t(f={f})" for f in range(t + 1)],
        rows,
    )
    return ExperimentResult(
        experiment_id="E10",
        title="Chain protocol decides by f+1 (Proposition 6.4)",
        paper_claim=(
            "In an omission run where f processors actually fail, all "
            "nonfaulty processors running FIP(Z⁰,O⁰) decide by time f + 1."
        ),
        ok=all_ok,
        table=table,
        notes=[
            f"omission mode, n={n}, t={t}, horizon={system.horizon}, "
            f"{len(system.runs)} exhaustive runs; concrete ChainEBA checked "
            "on the same scenario space",
        ],
        data={},
    )
