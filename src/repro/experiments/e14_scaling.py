"""E14 — scaling ablation: enumeration and knowledge-evaluation cost.

Not a paper claim but the reproduction's own cost model (DESIGN.md sizing
guidance): measures, across ``(mode, n, t, horizon)`` cells,

* run-space size and distinct-view count of the exhaustive system;
* wall time to enumerate and to evaluate one continual-common-knowledge
  formula (component fast path);
* message complexity of the concrete protocols per run (``P0`` is frugal,
  ``P0opt`` linear-size tables every round, ``ChainEBA`` never halts).
"""

from __future__ import annotations

import time

from ..knowledge.formulas import ContinualCommon, Exists
from ..knowledge.nonrigid import NONFAULTY
from ..metrics.stats import message_stats
from ..metrics.tables import format_float, render_table
from ..model.adversary import exhaustive_adversary
from ..model.failures import FailureMode
from ..model.system import build_system
from ..protocols.chain_eba import chain_eba
from ..protocols.p0 import p0
from ..protocols.p0opt import p0opt
from ..sim.engine import traces_over_scenarios
from .framework import ExperimentResult

DEFAULT_CELLS = (
    (FailureMode.CRASH, 3, 1, 3),
    (FailureMode.CRASH, 4, 1, 3),
    (FailureMode.CRASH, 4, 2, 3),
    (FailureMode.OMISSION, 3, 1, 3),
    (FailureMode.OMISSION, 4, 1, 3),
)


def cell_row(mode: FailureMode, n: int, t: int, horizon: int) -> list:
    """One measured row of the scaling table (shared with the sharded
    execution path, which runs each cell as its own shard)."""
    start = time.perf_counter()
    system = build_system(exhaustive_adversary(mode, n, t, horizon))
    enumerate_seconds = time.perf_counter() - start
    start = time.perf_counter()
    ContinualCommon(NONFAULTY, Exists(1)).evaluate(system)
    cbox_seconds = time.perf_counter() - start
    return [str(mode), n, t, horizon, len(system.runs), len(system.table),
            format_float(enumerate_seconds, 3),
            format_float(cbox_seconds, 3)]


def message_rows() -> list:
    """Message complexity of the concrete protocols on one shared cell."""
    mode, n, t, horizon = FailureMode.CRASH, 4, 1, 3
    system = build_system(exhaustive_adversary(mode, n, t, horizon))
    scenarios = system.scenarios()
    result = []
    for protocol in (p0(), p0opt(), chain_eba()):
        stats = message_stats(
            traces_over_scenarios(protocol, scenarios, horizon, t)
        )
        result.append(
            [stats.protocol_name, format_float(stats.mean_sent_per_run),
             format_float(stats.mean_delivered_per_run)]
        )
    return result


def build_result(rows: list, msg_rows: list) -> ExperimentResult:
    """Assemble the E14 result from measured rows (shared with the sharded
    execution path's assemble stage)."""
    table = render_table(
        ["mode", "n", "t", "h", "runs", "views", "enumerate s", "C□ eval s"],
        rows,
    )
    message_table = render_table(
        ["protocol", "mean msgs sent/run", "mean delivered/run"],
        msg_rows,
    )
    return ExperimentResult(
        experiment_id="E14",
        title="Scaling ablation: enumeration and evaluation cost",
        paper_claim=(
            "(reproduction cost model — no corresponding paper claim; "
            "the paper notes the knowledge tests are decidable in PSPACE)"
        ),
        ok=True,
        table=table + "\n\n" + message_table,
        notes=[
            "omission-mode cells grow doubly exponentially; see DESIGN.md "
            "for the restricted/sampled regimes used beyond these sizes",
        ],
        data={},
    )


def run(cells=DEFAULT_CELLS) -> ExperimentResult:
    rows = [cell_row(mode, n, t, horizon) for mode, n, t, horizon in cells]
    return build_result(rows, message_rows())
