"""E8 — Theorems 6.1 / 6.2: crash-mode collapse of ``F^{Λ,2}``.

Measured reproduction, over exhaustive crash systems:

* **Theorem 6.1**: ``F^{Λ,2}`` and the explicit pair ``FIP(Z^cr, O^cr)``
  (``Z^cr = B_i^N ∃0``, ``O^cr = B_i^N((N∧Z^cr) = ∅)``) make identical
  decisions at corresponding points;
* **Theorem 6.2**: the concrete protocol ``P0opt`` makes the same decisions
  as ``F^{Λ,2}`` at corresponding points (nonfaulty processors), so both
  are optimal EBA protocols for the crash mode;
* ``F^{Λ,2}`` is an EBA protocol here (it decides — contrast with E9).
"""

from __future__ import annotations

from ..core.domination import equivalent_decisions
from ..core.specs import check_eba
from ..metrics.tables import render_table
from ..model.builder import crash_system
from ..protocols.f_lambda import f_lambda_2_pair, zcr_ocr_pair
from ..protocols.fip import fip
from ..protocols.p0opt import p0opt
from ..sim.engine import run_over_scenarios
from .framework import ExperimentResult


def run(n: int = 3, t: int = 1, horizon: int = None) -> ExperimentResult:
    system = crash_system(n, t, horizon)
    fl2 = fip(f_lambda_2_pair(system))
    fl2.assert_no_nonfaulty_conflicts(system)
    fl2_out = fl2.outcome(system)

    zcr = fip(zcr_ocr_pair(system))
    zcr_out = zcr.outcome(system)

    popt_out = run_over_scenarios(
        p0opt(), system.scenarios(), system.horizon, t
    )

    eba = check_eba(fl2_out)
    thm61, diffs61 = equivalent_decisions(fl2_out, zcr_out)
    thm62, diffs62 = equivalent_decisions(fl2_out, popt_out)

    rows = [
        ["F^{Λ,2} is EBA (crash)", eba.ok],
        ["Thm 6.1: F^{Λ,2} == FIP(Z^cr,O^cr)", thm61],
        ["Thm 6.2: F^{Λ,2} == P0opt (nonfaulty decisions)", thm62],
    ]
    table = render_table(["claim", "measured"], rows)
    notes = [
        f"crash mode, n={n}, t={t}, horizon={system.horizon}, "
        f"{len(system.runs)} runs",
    ]
    notes.extend(f"Thm 6.1 diff: {diff}" for diff in diffs61[:3])
    notes.extend(f"Thm 6.2 diff: {diff}" for diff in diffs62[:3])
    return ExperimentResult(
        experiment_id="E8",
        title="Crash-mode collapse of F^{Λ,2} (Theorems 6.1/6.2)",
        paper_claim=(
            "In the crash mode F^{Λ,2} = FIP(Z^cr, O^cr) and decides "
            "identically to P0opt; both are optimal EBA protocols."
        ),
        ok=eba.ok and thm61 and thm62,
        table=table,
        notes=notes,
        data={"thm61": thm61, "thm62": thm62},
    )
