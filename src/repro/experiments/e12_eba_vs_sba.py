"""E12 — the [DRS90] motivation: EBA decides (much) earlier than SBA.

Compares, over the exhaustive crash scenario space:

* ``P0opt`` (optimal EBA),
* the knowledge-level common-knowledge SBA protocol (the optimum-SBA
  yardstick of [DM90]/[MT88]), and
* the concrete ``FloodSBA`` (always decides at time ``t + 1``),

reporting mean/max decision times and the cumulative decision-share series
(the paper-style "how much earlier does EBA decide" figure, printed as a
table of CDF rows).
"""

from __future__ import annotations

from ..core.domination import compare
from ..core.specs import check_eba, check_sba
from ..metrics.stats import decision_time_stats, per_time_cumulative_share
from ..metrics.tables import format_float, render_table
from ..model.builder import crash_system
from ..protocols.flood_sba import flood_sba
from ..protocols.fip import fip
from ..protocols.p0opt import p0opt
from ..protocols.sba_ck import sba_common_knowledge_pair
from ..sim.engine import run_over_scenarios
from .framework import ExperimentResult


def run(n: int = 3, t: int = 1, horizon: int = None) -> ExperimentResult:
    system = crash_system(n, t, horizon)
    scenarios = system.scenarios()
    eba_out = run_over_scenarios(p0opt(), scenarios, system.horizon, t)
    flood_out = run_over_scenarios(flood_sba(), scenarios, system.horizon, t)
    ck = fip(sba_common_knowledge_pair(system))
    ck.assert_no_nonfaulty_conflicts(system)
    ck_out = ck.outcome(system)

    eba_ok = check_eba(eba_out).ok
    flood_sba_ok = check_sba(flood_out).ok
    ck_sba_ok = check_sba(ck_out).ok
    eba_vs_ck = compare(eba_out, ck_out)

    rows = []
    for outcome, spec_ok in (
        (eba_out, eba_ok),
        (ck_out, ck_sba_ok),
        (flood_out, flood_sba_ok),
    ):
        stats = decision_time_stats(outcome)
        shares = per_time_cumulative_share(outcome, system.horizon)
        rows.append(
            [outcome.name, spec_ok, format_float(stats.mean), stats.maximum]
            + [format_float(share) for share in shares]
        )
    table = render_table(
        ["protocol", "spec ok", "mean t", "max t"]
        + [f"share<=t{time}" for time in range(system.horizon + 1)],
        rows,
    )
    ok = (
        eba_ok
        and flood_sba_ok
        and ck_sba_ok
        and eba_vs_ck.dominates
        and eba_vs_ck.strict
    )
    return ExperimentResult(
        experiment_id="E12",
        title="EBA decides earlier than SBA ([DRS90] motivation)",
        paper_claim=(
            "Dropping simultaneity lets protocols decide much faster: the "
            "optimal EBA protocol strictly dominates even the optimum "
            "(common-knowledge) SBA protocol."
        ),
        ok=ok,
        table=table,
        notes=[
            f"crash mode, n={n}, t={t}, horizon={system.horizon}, "
            f"{len(scenarios)} exhaustive scenarios",
            f"P0opt vs SBA-CK: {eba_vs_ck}",
            "FloodSBA always decides exactly at t+1; SBA-CK decides at the "
            "first point of common knowledge (early-stopping SBA optimum)",
        ],
        data={},
    )
