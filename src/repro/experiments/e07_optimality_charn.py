"""E7 — Theorem 5.3: the optimality characterization separates optimal
from non-optimal protocols.

Positive cases (must satisfy both biconditionals): ``F^{Λ,2}`` in the
crash mode, ``F*`` in the omission mode.

Negative cases (must satisfy the necessary directions of Proposition 4.3
while *violating* at least one converse): ``F^{Λ,1}`` (never decides 1 for
nonfaulty processors) and ``FIP(Z⁰, O⁰)`` (the chain protocol that ``F*``
strictly dominates at larger parameters).
"""

from __future__ import annotations

from ..core.optimality import check_optimality
from ..metrics.tables import render_table
from ..model.builder import crash_system, omission_system
from ..protocols.chain_fip import chain_pair
from ..protocols.f_lambda import f_lambda_sequence
from ..protocols.f_star import f_star_pair
from ..protocols.fip import fip
from .framework import ExperimentResult


def run(n: int = 3, t: int = 1, horizon: int = None) -> ExperimentResult:
    crash = crash_system(n, t, horizon)
    omission = omission_system(n, t, horizon)
    _, crash_f1, crash_f2 = f_lambda_sequence(crash)
    cases = [
        ("crash", crash, crash_f2, True),
        ("crash", crash, crash_f1, False),
        ("omission", omission, f_star_pair(omission), True),
    ]
    rows = []
    all_ok = True
    for mode_name, system, pair, expect_optimal in cases:
        sticky = fip(pair).sticky_pair(system)
        report = check_optimality(system, sticky)
        verdict_ok = report.optimal == expect_optimal and report.necessary_ok
        rows.append(
            [mode_name, pair.name, expect_optimal, report.optimal,
             report.necessary_ok, "PASS" if verdict_ok else "FAIL"]
        )
        all_ok = all_ok and verdict_ok

    # The chain protocol: necessary conditions must hold; optimality is
    # parameter-dependent (at n=3, t=1 it coincides with F*), so report it
    # without asserting a direction.
    chain_sticky = fip(chain_pair(omission)).sticky_pair(omission)
    chain_report = check_optimality(omission, chain_sticky)
    rows.append(
        ["omission", chain_sticky.name, "(informational)",
         chain_report.optimal, chain_report.necessary_ok,
         "PASS" if chain_report.necessary_ok else "FAIL"]
    )
    all_ok = all_ok and chain_report.necessary_ok

    table = render_table(
        ["mode", "protocol", "expected optimal", "Thm 5.3 optimal",
         "Prop 4.3 necessary", "verdict"],
        rows,
    )
    return ExperimentResult(
        experiment_id="E7",
        title="Optimality characterization (Theorem 5.3)",
        paper_claim=(
            "A full-information nontrivial agreement protocol is optimal "
            "iff decisions occur exactly when the continual-common-"
            "knowledge biconditionals hold."
        ),
        ok=all_ok,
        table=table,
        notes=[f"n={n}, t={t}; exhaustive systems"],
        data={},
    )
