"""E2 — Section 2.2: ``P0opt`` strictly dominates ``P0`` and is an optimal
EBA protocol in the crash mode.

Measured reproduction:

* ``P0opt`` is an EBA protocol over the exhaustive crash scenario space;
* it dominates ``P0`` with strict improvements (earlier 1-decisions);
* its decisions on 0 are never later than ``P0``'s (the 0-propagation rule
  is shared);
* its knowledge-level twin ``F^{Λ,2}`` passes the Theorem 5.3 optimality
  characterization (full optimality evidence lives in E7/E8).
"""

from __future__ import annotations

from ..core.domination import compare
from ..core.specs import check_eba
from ..metrics.stats import decision_time_stats, mean_decision_gap
from ..metrics.tables import format_float, render_table
from ..model.failures import FailureMode
from ..protocols.p0 import p0
from ..protocols.p0opt import p0opt
from ..sim.engine import run_over_scenarios
from ..workloads.scenarios import exhaustive_scenarios
from .framework import ExperimentResult


def run(n: int = 4, t: int = 1, horizon: int = None) -> ExperimentResult:
    horizon = (t + 2) if horizon is None else horizon
    scenarios = exhaustive_scenarios(FailureMode.CRASH, n, t, horizon)
    p0_out = run_over_scenarios(p0(), scenarios, horizon, t)
    opt_out = run_over_scenarios(p0opt(), scenarios, horizon, t)

    opt_eba = check_eba(opt_out)
    report = compare(opt_out, p0_out)
    gap = mean_decision_gap(p0_out, opt_out)

    stats_p0 = decision_time_stats(p0_out)
    stats_opt = decision_time_stats(opt_out)
    table = render_table(
        ["protocol", "EBA", "mean decision time", "max", "histogram"],
        [
            ["P0", check_eba(p0_out).ok, format_float(stats_p0.mean),
             stats_p0.maximum, dict(stats_p0.histogram)],
            ["P0opt", opt_eba.ok, format_float(stats_opt.mean),
             stats_opt.maximum, dict(stats_opt.histogram)],
        ],
    )
    ok = opt_eba.ok and report.strict
    return ExperimentResult(
        experiment_id="E2",
        title="P0opt strictly dominates P0 (Section 2.2)",
        paper_claim=(
            "P0opt keeps P0's decide-0 rule, decides 1 as soon as nobody "
            "can ever learn of a 0, and strictly dominates P0; it is an "
            "optimal EBA protocol in the crash mode."
        ),
        ok=ok,
        table=table,
        notes=[
            f"crash mode, n={n}, t={t}, horizon={horizon}, "
            f"{len(scenarios)} exhaustive scenarios",
            str(report),
            f"mean decision-time gap (P0 - P0opt) = {format_float(gap)}",
        ],
        data={
            "strict": report.strict,
            "improvements": len(report.improvements),
            "mean_gap": gap,
        },
    )
