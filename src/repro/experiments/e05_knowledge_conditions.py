"""E5 — Propositions 4.3 / 4.4: knowledge conditions for nontrivial
agreement.

For a portfolio of full-information nontrivial agreement protocols
(``F^Λ``, ``F^{Λ,1}``, ``F^{Λ,2}``, ``FIP(Z⁰,O⁰)``, ``F*``) over crash and
omission systems, verifies the *necessary* conditions of Proposition 4.3::

    decide_i(0) ⇒ B_i^N(∃0 ∧ C□_{N∧O} ∃0 ∧ ¬decide_i(1))
    decide_i(1) ⇒ B_i^N(∃1 ∧ C□_{N∧Z} ∃1 ∧ ¬decide_i(0))

and, for the sufficiency direction (Proposition 4.4), confirms that the
protocols built from those very conditions are indeed nontrivial agreement
protocols (weak agreement + weak validity checked run by run).
"""

from __future__ import annotations

from ..core.optimality import proposition_4_3_conditions
from ..core.specs import check_nontrivial_agreement
from ..knowledge.explain import explain
from ..knowledge.formulas import ContinualCommon, Decided, Exists
from ..knowledge.nonrigid import nonfaulty_and_ones
from ..knowledge.planner import prefetch
from ..metrics.tables import render_table
from ..model.builder import crash_system, omission_system
from ..protocols.chain_fip import chain_pair
from ..protocols.f_lambda import f_lambda_sequence
from ..protocols.f_star import f_star_pair
from ..protocols.fip import fip
from .framework import ExperimentResult


def _check_pair(system, pair):
    protocol = fip(pair)
    protocol.assert_no_nonfaulty_conflicts(system)
    spec = check_nontrivial_agreement(protocol.outcome(system))
    sticky = protocol.sticky_pair(system)
    cond_a, cond_b = proposition_4_3_conditions(sticky)
    # Under --plan, evaluate both Proposition 4.3 conditions of every
    # processor through one fused plan (shared C□ components, one
    # believes sweep per processor); the validity loop then cache-hits.
    prefetch(
        system,
        [
            cond(processor)
            for processor in range(system.n)
            for cond in (cond_a, cond_b)
        ],
    )
    necessary_ok = all(
        cond(processor).is_valid(system)
        for processor in range(system.n)
        for cond in (cond_a, cond_b)
    )
    return spec.ok, necessary_ok, sticky


def _decision_certificate(system, sticky):
    """Component evidence for Prop 4.3(a)'s core at a real decision point.

    At the first point where processor 0 has decided 0, ``C□_{N∧O} ∃0``
    must hold (that is the necessary condition); the explanation carries
    the Corollary 3.3 component whose runs all satisfy ``∃0``.
    """
    decided = Decided(sticky, 0, 0).evaluate(system)
    formula = ContinualCommon(nonfaulty_and_ones(sticky), Exists(0))
    fallback = None
    for run_index in range(len(system.runs)):
        for time in range(system.horizon + 1):
            if not decided.at(run_index, time):
                continue
            explanation = explain(system, formula, (run_index, time))
            if explanation.check(system):
                continue
            # Prefer a point with a real (non-vacuous) component.
            if explanation.component_runs is not None:
                return explanation
            if fallback is None:
                fallback = explanation
    return fallback


def run(n: int = 3, t: int = 1, horizon: int = None) -> ExperimentResult:
    rows = []
    all_ok = True
    certificate = None
    for mode_name, system in (
        ("crash", crash_system(n, t, horizon)),
        ("omission", omission_system(n, t, horizon)),
    ):
        base, first, second = f_lambda_sequence(system)
        pairs = [base, first, second]
        if mode_name == "omission":
            chain = chain_pair(system)
            pairs += [chain, f_star_pair(system)]
        for pair in pairs:
            spec_ok, necessary_ok, sticky = _check_pair(system, pair)
            rows.append([mode_name, pair.name, spec_ok, necessary_ok])
            all_ok = all_ok and spec_ok and necessary_ok
            if certificate is None and necessary_ok:
                certificate = (mode_name, pair.name,
                               _decision_certificate(system, sticky))
                if certificate[2] is None:
                    certificate = None
    table = render_table(
        ["mode", "protocol", "nontrivial agreement (Prop 4.4 side)",
         "necessary conditions (Prop 4.3)"],
        rows,
    )
    data = {}
    if certificate is not None:
        cert_mode, cert_protocol, explanation = certificate
        point = explanation.point
        if explanation.component_runs is not None:
            evidence = (
                f"its S-□-reachability component "
                f"({len(explanation.component_runs)} run(s)) satisfies ∃0 "
                "throughout (Corollary 3.3 evidence, machine-checked)"
            )
        else:
            evidence = (
                "vacuously — N∧O never occurs in that run, so no point is "
                "S-□-reachable from it (machine-checked)"
            )
        table += (
            f"\n\ndecision certificate ({cert_mode} mode, {cert_protocol}): "
            f"at point ({point[0]},{point[1]}) processor 0 has decided 0 "
            f"and C□(N∧O) ∃0 holds — {evidence}"
        )
        data["certificate"] = explanation.to_dict()
    return ExperimentResult(
        experiment_id="E5",
        title="Knowledge conditions for agreement (Propositions 4.3/4.4)",
        paper_claim=(
            "Continual common knowledge among the nonfaulty deciders of the "
            "opposite value is necessary for every nontrivial agreement "
            "protocol, and the condition-built protocols are nontrivial "
            "agreement protocols."
        ),
        ok=all_ok,
        table=table,
        notes=[
            f"n={n}, t={t}; exhaustive crash and omission systems; "
            "necessary conditions checked on each protocol's sticky "
            "decision pair",
        ],
        data=data,
    )
