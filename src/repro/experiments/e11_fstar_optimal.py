"""E11 — Proposition 6.6: ``F*`` is an optimal omission-mode EBA protocol
dominating ``FIP(Z⁰, O⁰)``.

Measured, over the exhaustive omission system:

* ``F*`` is an EBA protocol;
* ``F*`` dominates ``FIP(Z⁰, O⁰)`` (and we report whether the domination
  is strict at these parameters — at ``n = 3, t = 1`` the two coincide;
  strictness appears at larger parameters);
* ``F*`` passes the Theorem 5.3 optimality characterization;
* the explicit mirrored two-step construction reproduces the same
  decisions as the simplified direct definition (Lemmas A.10/A.11 collapse
  of the first step included).
"""

from __future__ import annotations

from ..core.domination import compare, equivalent_decisions
from ..core.optimality import check_optimality
from ..core.specs import check_eba
from ..metrics.tables import render_table
from ..model.builder import omission_system
from ..protocols.chain_fip import chain_pair
from ..protocols.f_star import f_star_pair, f_star_via_construction
from ..protocols.fip import fip
from .framework import ExperimentResult


def run(n: int = 3, t: int = 1, horizon: int = None) -> ExperimentResult:
    system = omission_system(n, t, horizon)
    chain = fip(chain_pair(system))
    chain_out = chain.outcome(system)

    star = fip(f_star_pair(system))
    star.assert_no_nonfaulty_conflicts(system)
    star_out = star.outcome(system)

    eba = check_eba(star_out)
    domination = compare(star_out, chain_out)
    optimality = check_optimality(system, star.sticky_pair(system))

    base, first, second = f_star_via_construction(system)
    first_out = fip(first).outcome(system)
    second_out = fip(second).outcome(system)
    lemma_collapse = equivalent_decisions(first_out, chain_out)[0]
    construction_match = equivalent_decisions(second_out, star_out)[0]

    rows = [
        ["F* is EBA", eba.ok],
        ["F* dominates FIP(Z⁰,O⁰)", domination.dominates],
        ["domination strict at these parameters", domination.strict],
        ["F* optimal (Thm 5.3)", optimality.optimal],
        ["first construction step collapses (Lemmas A.10/A.11)",
         lemma_collapse],
        ["two-step construction == direct F*", construction_match],
    ]
    table = render_table(["claim", "measured"], rows)
    ok = (
        eba.ok
        and domination.dominates
        and optimality.optimal
        and lemma_collapse
        and construction_match
    )
    return ExperimentResult(
        experiment_id="E11",
        title="F* optimal for omission EBA (Proposition 6.6)",
        paper_claim=(
            "F* = FIP(Z*, O*) is an optimal EBA protocol in the omission "
            "mode dominating FIP(Z⁰, O⁰)."
        ),
        ok=ok,
        table=table,
        notes=[
            f"omission mode, n={n}, t={t}, horizon={system.horizon}, "
            f"{len(system.runs)} exhaustive runs",
            str(domination),
        ],
        data={"strict": domination.strict},
    )
