"""Registry of reproduction experiments (DESIGN.md experiment index)."""

from __future__ import annotations

import time
from typing import Callable, Dict, List

from . import (
    e01_no_optimum,
    e02_p0opt_dominates,
    e03_s5_axioms,
    e04_continual_ck,
    e05_knowledge_conditions,
    e06_two_step,
    e07_optimality_charn,
    e08_crash_equivalence,
    e09_omission_nontermination,
    e10_chain_f_plus_1,
    e11_fstar_optimal,
    e12_eba_vs_sba,
    e13_fip_simulation,
    e14_scaling,
    e15_beyond_modes,
    e16_dm90_sba,
    e17_multivalued,
    e18_uniform_agreement,
    e19_byzantine_eig,
    e20_scaling_gains,
    e21_eventual_ck,
)
from .. import obs, trace
from .framework import ExperimentResult, attach_instrumentation, attach_trace

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": e01_no_optimum.run,
    "E2": e02_p0opt_dominates.run,
    "E3": e03_s5_axioms.run,
    "E4": e04_continual_ck.run,
    "E5": e05_knowledge_conditions.run,
    "E6": e06_two_step.run,
    "E7": e07_optimality_charn.run,
    "E8": e08_crash_equivalence.run,
    "E9": e09_omission_nontermination.run,
    "E10": e10_chain_f_plus_1.run,
    "E11": e11_fstar_optimal.run,
    "E12": e12_eba_vs_sba.run,
    "E13": e13_fip_simulation.run,
    "E14": e14_scaling.run,
    "E15": e15_beyond_modes.run,
    "E16": e16_dm90_sba.run,
    "E17": e17_multivalued.run,
    "E18": e18_uniform_agreement.run,
    "E19": e19_byzantine_eig.run,
    "E20": e20_scaling_gains.run,
    "E21": e21_eventual_ck.run,
}


def experiment_ids() -> List[str]:
    """All experiment ids, in index order."""
    return list(EXPERIMENTS.keys())


def run_experiment(experiment_id: str, **params) -> ExperimentResult:
    """Run one experiment by id.

    The returned result's ``data["instrumentation"]`` holds the stage
    timings and cache counters accumulated while this experiment ran, and
    ``data["trace"]`` the nested span tree (experiment span at the root,
    builder / fixpoint / simulator spans below it).
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(EXPERIMENTS)}"
        ) from None
    before = obs.snapshot()
    mark = trace.watermark()
    started = time.perf_counter()
    with trace.span(f"experiment.{experiment_id}", experiment=experiment_id):
        result = runner(**params)
    obs.observe("experiment_seconds", time.perf_counter() - started)
    attach_instrumentation(result, before)
    return attach_trace(result, mark)


def run_all(skip: List[str] = ()) -> List[ExperimentResult]:
    """Run every experiment (optionally skipping ids, e.g. the heavy E9)."""
    return [
        run_experiment(experiment_id)
        for experiment_id in EXPERIMENTS
        if experiment_id not in skip
    ]
