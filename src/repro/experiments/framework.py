"""Experiment framework: uniform results for the reproduction harness.

Each experiment module exposes ``run(**params) -> ExperimentResult``; the
registry in :mod:`repro.experiments.registry` maps experiment ids (E1..E21,
mirroring DESIGN.md's index) to those functions.  The benchmark suite calls
``run`` under ``pytest-benchmark`` and asserts ``result.ok``;
``EXPERIMENTS.md`` is generated from the same results, so the document and
the benches can never drift apart.

Every result carries the instrumentation accumulated while it ran
(:mod:`repro.obs` stage timings and cache counters) under
``data["instrumentation"]``; :func:`attach_instrumentation` is the helper
the registry uses to stamp it, and :meth:`ExperimentResult.render` appends
the summary to the report block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from .. import obs, trace


@dataclass
class ExperimentResult:
    """Outcome of one reproduction experiment.

    Attributes:
        experiment_id: Index entry (``"E1"`` ... ``"E21"``).
        title: Human-readable title.
        paper_claim: What the paper asserts (proposition/theorem text, in
            brief).
        ok: Whether the measured behaviour matches the claim.
        table: Rendered plain-text table of the measured rows.
        notes: Free-form measurement notes (parameters, regimes,
            substitutions used).
        data: Machine-readable measurements for further analysis; the
            registry adds an ``"instrumentation"`` entry with the stage
            timings and cache counters observed while the experiment ran.
    """

    experiment_id: str
    title: str
    paper_claim: str
    ok: bool
    table: str
    notes: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Full plain-text report block for this experiment."""
        status = "REPRODUCED" if self.ok else "MISMATCH"
        lines = [
            f"== {self.experiment_id}: {self.title} [{status}] ==",
            f"Paper claim: {self.paper_claim}",
            "",
            self.table,
        ]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        instrumentation = self.data.get("instrumentation")
        if isinstance(instrumentation, dict) and (
            instrumentation.get("counters") or instrumentation.get("timers")
        ):
            lines.append("")
            lines.append("instrumentation:")
            lines.append(obs.format_summary(instrumentation))
        return "\n".join(lines)


def attach_instrumentation(
    result: ExperimentResult, before: Dict[str, Dict[str, float]]
) -> ExperimentResult:
    """Stamp *result* with the instrumentation accumulated since *before*.

    *before* is an :func:`repro.obs.snapshot` taken just before the
    experiment ran; the delta (stage wall times, runs built, cache
    hits/misses, fixpoint iterations) lands in
    ``result.data["instrumentation"]``, alongside the evaluation kernel
    the experiment ran under (``result.data["kernel"]``).
    """
    from ..model.kernels import active_kernel

    result.data["instrumentation"] = obs.delta_since(before)
    result.data["kernel"] = active_kernel()
    return result


def attach_trace(result: ExperimentResult, mark: int) -> ExperimentResult:
    """Stamp *result* with the span tree recorded since watermark *mark*.

    *mark* is a :func:`repro.trace.watermark` taken just before the
    experiment ran; every span finished since — system builds, fixpoint
    evaluations, simulator executions, and the experiment span itself —
    lands as a nested tree in ``result.data["trace"]``.
    """
    result.data["trace"] = trace.span_tree(trace.collect(mark))
    return result


ExperimentRunner = Callable[..., ExperimentResult]
