"""Experiment framework: uniform results for the reproduction harness.

Each experiment module exposes ``run(**params) -> ExperimentResult``; the
registry in :mod:`repro.experiments.registry` maps experiment ids (E1..E14,
mirroring DESIGN.md's index) to those functions.  The benchmark suite calls
``run`` under ``pytest-benchmark`` and asserts ``result.ok``;
``EXPERIMENTS.md`` is generated from the same results, so the document and
the benches can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List


@dataclass
class ExperimentResult:
    """Outcome of one reproduction experiment.

    Attributes:
        experiment_id: Index entry (``"E1"`` ... ``"E14"``).
        title: Human-readable title.
        paper_claim: What the paper asserts (proposition/theorem text, in
            brief).
        ok: Whether the measured behaviour matches the claim.
        table: Rendered plain-text table of the measured rows.
        notes: Free-form measurement notes (parameters, regimes,
            substitutions used).
        data: Machine-readable measurements for further analysis.
    """

    experiment_id: str
    title: str
    paper_claim: str
    ok: bool
    table: str
    notes: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Full plain-text report block for this experiment."""
        status = "REPRODUCED" if self.ok else "MISMATCH"
        lines = [
            f"== {self.experiment_id}: {self.title} [{status}] ==",
            f"Paper claim: {self.paper_claim}",
            "",
            self.table,
        ]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


ExperimentRunner = Callable[..., ExperimentResult]
