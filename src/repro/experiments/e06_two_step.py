"""E6 — Proposition 5.1 / Theorem 5.2: the two-step construction.

Starting from three different EBA / nontrivial-agreement protocols —
``F^Λ`` (never decides), the ``P0``-style knowledge protocol and (in the
omission mode) ``FIP(Z⁰, O⁰)`` — verifies that:

* each construction step yields a nontrivial agreement protocol dominating
  the previous one (Proposition 5.1);
* the process is a fixed point after two steps: ``F³`` and ``F⁴`` decide
  identically (for nonfaulty processors) to ``F²`` (Theorem 5.2);
* ``F²`` passes the Theorem 5.3 optimality characterization.
"""

from __future__ import annotations

from ..core.construction import construction_sequence
from ..core.domination import compare, equivalent_decisions
from ..core.optimality import check_optimality
from ..core.specs import check_nontrivial_agreement
from ..knowledge.formulas import Believes, Exists, Formula
from ..metrics.tables import render_table
from ..model.builder import crash_system, omission_system
from ..protocols.chain_fip import chain_pair
from ..protocols.f_lambda import f_lambda_pair
from ..protocols.fip import fip, pair_from_formulas
from .framework import ExperimentResult


def _p0_knowledge_pair(system):
    """The knowledge-level ``P0``: decide 0 on ``B_i^N ∃0``; decide 1 at
    time ``t + 1`` otherwise (expressed as a state predicate)."""
    def zero(processor: int) -> Formula:
        return Believes(processor, Exists(0))

    def one(processor: int) -> Formula:
        from ..knowledge.formulas import Not, Predicate
        from ..model.system import TruthAssignment

        def compute(sys):
            believes0 = Believes(processor, Exists(0)).evaluate(sys)
            return TruthAssignment.from_predicate(
                sys,
                lambda run_index, time: time >= sys.t + 1
                and not believes0.at(run_index, time),
            )

        return Predicate(("p0-one-rule", processor), compute)

    return pair_from_formulas(system, zero, one, "P0-knowledge")


def run(n: int = 3, t: int = 1, horizon: int = None) -> ExperimentResult:
    rows = []
    all_ok = True
    cases = []
    crash = crash_system(n, t, horizon)
    cases.append(("crash", crash, f_lambda_pair()))
    cases.append(("crash", crash, _p0_knowledge_pair(crash)))
    omission = omission_system(n, t, horizon)
    cases.append(("omission", omission, chain_pair(omission)))

    for mode_name, system, base in cases:
        sequence = construction_sequence(system, base, steps=4)
        outcomes = [fip(pair).outcome(system) for pair in sequence]
        dominating = all(
            compare(outcomes[index + 1], outcomes[index]).dominates
            for index in range(len(outcomes) - 1)
        )
        nontrivial = all(
            check_nontrivial_agreement(outcome).ok for outcome in outcomes
        )
        fixed_point_3 = equivalent_decisions(outcomes[3], outcomes[2])[0]
        fixed_point_4 = equivalent_decisions(outcomes[4], outcomes[2])[0]
        optimal = check_optimality(
            system, fip(sequence[2]).sticky_pair(system)
        ).optimal
        rows.append(
            [mode_name, base.name, nontrivial, dominating,
             fixed_point_3 and fixed_point_4, optimal]
        )
        all_ok = all_ok and nontrivial and dominating and optimal and (
            fixed_point_3 and fixed_point_4
        )
    table = render_table(
        ["mode", "starting protocol", "all steps nontrivial",
         "each step dominates", "fixed point after 2 steps",
         "F² optimal (Thm 5.3)"],
        rows,
    )
    return ExperimentResult(
        experiment_id="E6",
        title="Two-step optimal construction (Prop 5.1 / Theorem 5.2)",
        paper_claim=(
            "Each prime/double-prime step dominates; two steps reach an "
            "optimal protocol and further steps change nothing."
        ),
        ok=all_ok,
        table=table,
        notes=[f"n={n}, t={t}; exhaustive systems"],
        data={},
    )
