"""E21 — Section 3.2: eventual common knowledge is the wrong tool.

The paper motivates continual common knowledge by showing what goes wrong
with the natural *weakening* of common knowledge.  This experiment
reproduces the whole §3.2 argument measurably:

* the operator facts: ``◇C_S φ ⇒ C◇_S φ`` and ``C□_S φ ⇒ C◇_S φ`` are
  valid, and ``C◇`` is *strictly* weaker than ``C`` (a witness point has
  ``C◇∃1`` without ``C∃1``);
* the consistency failure that forces ``F₀``'s lopsided one-rule: there is
  a point where one processor believes ``C◇∃0`` while another believes
  ``C◇∃1`` — with symmetric decide-on-``C◇`` rules they would disagree;
* ``F₀`` (decide 0 on ``B_i^N C◇∃0``; decide 1 on
  ``B_i^N(C◇∃1 ∧ □¬C◇∃0)``) is a nontrivial agreement protocol, exactly
  as the paper asserts;
* and it is **dominated**: in the omission mode ``F*`` strictly dominates
  ``F₀`` (the paper's "it is possible to decide 1 earlier than F₀"),
  while in the crash mode the optimal protocol dominates it (coinciding
  with it at the smallest sizes).
"""

from __future__ import annotations

from ..core.domination import compare
from ..core.specs import check_nontrivial_agreement
from ..knowledge.explain import explain, render_witness_table
from ..knowledge.formulas import (
    Believes,
    Common,
    ContinualCommon,
    EventualCommon,
    Eventually,
    Exists,
    Implies,
)
from ..knowledge.nonrigid import NONFAULTY
from ..knowledge.planner import prefetch
from ..metrics.tables import render_table
from ..model.builder import crash_system, omission_system
from ..protocols.f_lambda import f_lambda_2_pair
from ..protocols.f_star import f_star_pair
from ..protocols.f_zero import f_zero_pair
from ..protocols.fip import fip
from .framework import ExperimentResult


def run(n: int = 3, t: int = 1, horizon: int = None) -> ExperimentResult:
    rows = []
    ok = True
    strict_somewhere = False
    weaker_explanation = None
    for mode_name, system, optimal_pair_factory in (
        ("crash", crash_system(n, t, horizon), f_lambda_2_pair),
        ("omission", omission_system(n, t, horizon), f_star_pair),
    ):
        ec_zero = EventualCommon(NONFAULTY, Exists(0))
        ec_one = EventualCommon(NONFAULTY, Exists(1))
        # Under --plan, the two C◇ fixpoints iterate in lockstep over a
        # shared frontier and each processor's pair of beliefs fuses
        # into one sweep; the evaluations below then cache-hit.
        prefetch(
            system,
            [
                Implies(Eventually(Common(NONFAULTY, Exists(1))), ec_one),
                Implies(ContinualCommon(NONFAULTY, Exists(1)), ec_one),
            ]
            + [
                Believes(processor, operand)
                for processor in range(system.n)
                for operand in (ec_zero, ec_one)
            ],
        )
        implication_1 = Implies(
            Eventually(Common(NONFAULTY, Exists(1))), ec_one
        ).is_valid(system)
        implication_2 = Implies(
            ContinualCommon(NONFAULTY, Exists(1)), ec_one
        ).is_valid(system)

        common = Common(NONFAULTY, Exists(1)).evaluate(system)
        eventual = ec_one.evaluate(system)
        weaker_point = next(
            (
                (run_index, time)
                for run_index in range(len(system.runs))
                for time in range(system.horizon + 1)
                if eventual.at(run_index, time)
                and not common.at(run_index, time)
            ),
            None,
        )
        strictly_weaker = weaker_point is not None
        if strictly_weaker and weaker_explanation is None:
            explanation = explain(
                system, Common(NONFAULTY, Exists(1)), weaker_point
            )
            if not explanation.check(system):
                weaker_explanation = (mode_name, explanation)

        # The §3.2 consistency failure: some point where one processor
        # believes C◇∃0 and another believes C◇∃1.
        beliefs_zero = [
            Believes(processor, ec_zero).evaluate(system)
            for processor in range(system.n)
        ]
        beliefs_one = [
            Believes(processor, ec_one).evaluate(system)
            for processor in range(system.n)
        ]
        conflict = False
        for run_index, run in enumerate(system.runs):
            for time in range(system.horizon + 1):
                zero_believers = [
                    processor
                    for processor in run.nonfaulty
                    if beliefs_zero[processor].at(run_index, time)
                ]
                one_believers = [
                    processor
                    for processor in run.nonfaulty
                    if beliefs_one[processor].at(run_index, time)
                    and not beliefs_zero[processor].at(run_index, time)
                ]
                if zero_believers and one_believers:
                    conflict = True
                    break
            if conflict:
                break

        f_zero = fip(f_zero_pair(system))
        f_zero.assert_no_nonfaulty_conflicts(system)
        f_zero_out = f_zero.outcome(system)
        nontrivial = check_nontrivial_agreement(f_zero_out).ok

        optimal_out = fip(optimal_pair_factory(system)).outcome(system)
        domination = compare(optimal_out, f_zero_out)
        strict_somewhere = strict_somewhere or domination.strict

        rows.append(
            [mode_name, implication_1, implication_2, strictly_weaker,
             conflict, nontrivial, domination.dominates, domination.strict]
        )
        ok = (
            ok
            and implication_1
            and implication_2
            and strictly_weaker
            and conflict
            and nontrivial
            and domination.dominates
        )
    ok = ok and strict_somewhere
    table = render_table(
        ["mode", "◇C ⇒ C◇", "C□ ⇒ C◇", "C◇ strictly weaker than C",
         "symmetric-rule conflict exists", "F₀ nontrivial agreement",
         "optimal dominates F₀", "strictly"],
        rows,
    )
    data = {}
    if weaker_explanation is not None:
        weaker_mode, explanation = weaker_explanation
        point = explanation.point
        table += (
            f"\n\nstrictly-weaker witness ({weaker_mode} mode): C◇_N ∃1 "
            f"holds but C_N ∃1 fails at point ({point[0]},{point[1]}), "
            f"eliminated at fixpoint iteration {explanation.eliminated_at}; "
            "the indistinguishability chain reaches a ¬∃1 point:\n"
            + render_witness_table(explanation)
        )
        data["witness"] = explanation.to_dict()
    return ExperimentResult(
        experiment_id="E21",
        title="Eventual common knowledge is the wrong tool (Section 3.2)",
        paper_claim=(
            "C◇ weakens common knowledge and loses its consistency "
            "property, forcing F₀'s cautious one-rule; F₀ is a nontrivial "
            "agreement protocol but protocols built on continual common "
            "knowledge dominate it — strictly in the omission mode."
        ),
        ok=ok,
        table=table,
        notes=[
            f"exhaustive systems, n={n}, t={t}",
            "the consistency-failure witness is what rules out symmetric "
            "decide-on-C◇ rules (they would disagree at that point)",
        ],
        data=data,
    )
