"""E3 — Proposition 3.1: the knowledge operator satisfies S5.

Checks the five S5 properties of ``K_i`` for every processor over an
exhaustively enumerated crash system, with a formula pool mixing run-level
facts, beliefs and decision facts of the optimal protocol.
"""

from __future__ import annotations

from ..knowledge.axioms import check_s5
from ..knowledge.formulas import (
    AllStarted,
    Believes,
    Exists,
    IsNonfaulty,
    Knows,
    Not,
)
from ..metrics.tables import render_table
from ..model.builder import crash_system
from .framework import ExperimentResult


def run(n: int = 3, t: int = 1, horizon: int = None) -> ExperimentResult:
    system = crash_system(n, t, horizon)
    phis = [
        Exists(0),
        Exists(1),
        AllStarted(1),
        Not(Exists(0)),
        IsNonfaulty(0),
        Believes(1 % n, Exists(0)),
        Knows(0, Exists(1)),
    ]
    psis = [Exists(1), Not(Exists(1)), IsNonfaulty(1 % n)]
    rows = []
    all_ok = True
    for processor in range(n):
        failures = check_s5(system, processor, phis, psis)
        rows.append(
            [f"K_{processor}", len(phis), len(psis),
             "PASS" if not failures else f"FAIL: {failures[0]}"]
        )
        all_ok = all_ok and not failures
    table = render_table(["operator", "phis", "psis", "S5 verdict"], rows)
    return ExperimentResult(
        experiment_id="E3",
        title="S5 axioms for K_i (Proposition 3.1)",
        paper_claim=(
            "Knowledge generalization, distribution, knowledge, positive "
            "and negative introspection hold for every K_i in every system."
        ),
        ok=all_ok,
        table=table,
        notes=[
            f"crash mode, n={n}, t={t}, horizon={system.horizon}, "
            f"{len(system.runs)} runs / {system.num_points()} points",
        ],
        data={"points": system.num_points()},
    )
