"""E18 — extension: uniform agreement ([Nei90]/[NB92], paper Section 7).

The paper's agreement conditions constrain *nonfaulty* processors only; its
Section 7 notes that the framework extends to problems where **all**
processors that decide must agree (uniform agreement).  This experiment
measures how far the paper's protocols already are from uniformity:

* In the **crash** mode, ``P0``, ``P0opt`` and ``F^{Λ,2}`` all violate
  uniform agreement: a processor can decide 0 on its own initial value and
  crash before any evidence escapes, while the survivors correctly decide
  1.  The violation counts and a concrete witness run are reported.
* ``FloodSBA`` and ``DM90Waste`` decide only at/after the common-knowledge
  point; we measure whether their (late) decisions happen to be uniform
  over the exhaustive space.
* In the **omission** mode the chain protocol's faulty deciders are also
  measured — a sending-omission faulty processor *keeps receiving*, so its
  information (and hence decisions) track the nonfaulty ones much more
  closely.

The experiment asserts the qualitative split: early-deciding EBA protocols
are non-uniform in the crash mode, while the simultaneous baselines are
uniform there.
"""

from __future__ import annotations

from ..core.specs import check_uniform_agreement
from ..metrics.tables import render_table
from ..model.builder import crash_system, omission_system
from ..protocols.chain_eba import chain_eba
from ..protocols.chain_fip import chain_pair
from ..protocols.dm90 import dm90_waste
from ..protocols.f_lambda import f_lambda_2_pair
from ..protocols.fip import fip
from ..protocols.flood_sba import flood_sba
from ..protocols.p0 import p0
from ..protocols.p0opt import p0opt
from ..sim.engine import run_over_scenarios
from .framework import ExperimentResult


def run(n: int = 3, t: int = 1, horizon: int = None) -> ExperimentResult:
    crash = crash_system(n, t, horizon)
    omission = omission_system(n, t, horizon)
    crash_scenarios = crash.scenarios()
    omission_scenarios = omission.scenarios()

    rows = []
    measured = {}

    def record(mode_name, name, outcome):
        violations = check_uniform_agreement(outcome)
        measured[(mode_name, name)] = len(violations)
        rows.append([mode_name, name, len(violations) == 0, len(violations)])
        return violations

    witness = None
    for protocol in (p0(), p0opt(), flood_sba(), dm90_waste()):
        outcome = run_over_scenarios(
            protocol, crash_scenarios, crash.horizon, t
        )
        violations = record("crash", protocol.name, outcome)
        if witness is None and violations:
            witness = violations[0]
    record("crash", "F^{Λ,2}", fip(f_lambda_2_pair(crash)).outcome(crash))

    record(
        "omission",
        "ChainEBA",
        run_over_scenarios(
            chain_eba(), omission_scenarios, omission.horizon, t
        ),
    )
    record(
        "omission",
        "FIP(Z⁰,O⁰)",
        fip(chain_pair(omission)).outcome(omission),
    )

    table = render_table(
        ["mode", "protocol", "uniform", "violating runs"], rows
    )
    ok = (
        measured[("crash", "P0")] > 0
        and measured[("crash", "P0opt")] > 0
        and measured[("crash", "F^{Λ,2}")] > 0
        and measured[("crash", "FloodSBA")] == 0
        and measured[("crash", "DM90Waste")] == 0
    )
    notes = [
        f"exhaustive systems, n={n}, t={t}",
        "early EBA decisions are inherently non-uniform: a decider may "
        "crash before its evidence escapes",
    ]
    if witness:
        notes.append(f"crash witness: {witness}")
    return ExperimentResult(
        experiment_id="E18",
        title="Uniform agreement ablation ([Nei90]/[NB92], Section 7)",
        paper_claim=(
            "(extension — the paper's conditions constrain nonfaulty "
            "processors only; measuring uniformity shows the price of the "
            "early decisions that make EBA fast.)"
        ),
        ok=ok,
        table=table,
        notes=notes,
        data={
            "violations": {
                f"{mode}:{name}": count
                for (mode, name), count in measured.items()
            }
        },
    )
