"""E15 — extension ablation: beyond the paper's failure modes ([PT86]).

The paper restricts its analysis to crash and *sending*-omission failures
(Section 2.1) and explicitly sets aside the Perry-Toueg receive- and
general-omission modes.  This experiment measures what actually happens to
the paper's protocols there:

* **Receive omissions** (exhaustive system): every guarantee survives.
  All sends succeed, so nonfaulty processors still see full information;
  ``P0``, ``P0opt``, ``ChainEBA`` remain EBA, and the two-step construction
  over the receive-omission system still yields an optimal protocol by the
  Theorem 5.3 check.
* **General omissions** (seeded sample — the exhaustive space squares the
  sending-omission one): ``P0`` survives (its only inference is from
  honestly-relayed *content*), but ``P0opt`` loses Decision (its rule (b)
  reads silence as a crash, which general omissions can fake forever) and
  ``ChainEBA`` loses Decision **and weak agreement** — a receive-faulty
  processor's false "X is faulty" reports poison chain validation at
  nonfaulty processors.  Weak validity survives everywhere (message
  *contents* are honest in every omission mode).

This is the reproduction's evidence that the paper's mode restriction is
load-bearing, not cosmetic.
"""

from __future__ import annotations

from ..core.optimality import check_optimality
from ..core.specs import (
    check_decision,
    check_eba,
    check_weak_agreement,
    check_weak_validity,
)
from ..metrics.tables import render_table
from ..model.adversary import (
    ExhaustiveReceiveOmissionAdversary,
    SampledGeneralOmissionAdversary,
)
from ..model.config import all_configurations
from ..model.system import build_system
from ..protocols.chain_eba import chain_eba
from ..protocols.f_lambda import f_lambda_2_pair
from ..protocols.fip import fip
from ..protocols.p0 import p0
from ..protocols.p0opt import p0opt
from ..sim.engine import run_over_scenarios
from .framework import ExperimentResult


def run(
    n: int = 3,
    t: int = 1,
    horizon: int = None,
    *,
    general_n: int = 4,
    general_t: int = 2,
    general_samples: int = 80,
    seed: int = 7,
) -> ExperimentResult:
    horizon = (t + 2) if horizon is None else horizon
    rows = []

    # -- receive omissions: exhaustive, everything must survive ------------
    receive_system = build_system(
        ExhaustiveReceiveOmissionAdversary(n, t, horizon)
    )
    receive_scenarios = receive_system.scenarios()
    receive_ok = True
    for protocol in (p0(), p0opt(), chain_eba()):
        outcome = run_over_scenarios(protocol, receive_scenarios, horizon, t)
        eba = check_eba(outcome)
        rows.append(
            ["receive-omission", protocol.name, eba.ok, 0,
             len(check_weak_agreement(outcome)),
             len(check_weak_validity(outcome))]
        )
        receive_ok = receive_ok and eba.ok
    fl2 = fip(f_lambda_2_pair(receive_system))
    fl2_outcome = fl2.outcome(receive_system)
    fl2_eba = check_eba(fl2_outcome).ok
    fl2_optimal = check_optimality(
        receive_system, fl2.sticky_pair(receive_system)
    ).optimal
    rows.append(
        ["receive-omission", "F^{Λ,2} (rebuilt)", fl2_eba and fl2_optimal,
         0, 0, 0]
    )
    receive_ok = receive_ok and fl2_eba and fl2_optimal

    # -- general omissions: sampled; measure which properties break --------
    general_horizon = general_t + 2
    adversary = SampledGeneralOmissionAdversary(
        general_n, general_t, general_horizon,
        samples=general_samples * 4, seed=seed,
    )
    patterns = list(adversary.patterns())[: general_samples + 1]
    scenarios = [
        (config, pattern)
        for config in all_configurations(general_n)
        for pattern in patterns
    ]
    breakage = {}
    for protocol in (p0(), p0opt(), chain_eba()):
        outcome = run_over_scenarios(
            protocol, scenarios, general_horizon, general_t
        )
        decision = len(check_decision(outcome))
        weak_agree = len(check_weak_agreement(outcome))
        weak_valid = len(check_weak_validity(outcome))
        breakage[protocol.name] = (decision, weak_agree, weak_valid)
        rows.append(
            ["general-omission", protocol.name,
             decision == 0 and weak_agree == 0,
             decision, weak_agree, weak_valid]
        )

    table = render_table(
        ["mode", "protocol", "all guarantees hold", "decision violations",
         "weak-agreement violations", "weak-validity violations"],
        rows,
    )
    # Expected shape: receive mode fully survives; general omissions break
    # P0opt's Decision and ChainEBA's agreement, while weak validity holds
    # for every protocol in every mode.
    general_validity_ok = all(
        weak_valid == 0 for _, _, weak_valid in breakage.values()
    )
    p0_survives = breakage["P0"] == (0, 0, 0)
    chain_breaks = breakage["ChainEBA"][1] > 0
    ok = receive_ok and general_validity_ok and p0_survives and chain_breaks
    return ExperimentResult(
        experiment_id="E15",
        title="Beyond the analyzed failure modes ([PT86] ablation)",
        paper_claim=(
            "(extension — the paper restricts to crash and sending "
            "omissions; this measures why: the guarantees survive receive "
            "omissions but general omissions defeat silence-based "
            "inference.)"
        ),
        ok=ok,
        table=table,
        notes=[
            f"receive-omission: exhaustive, n={n}, t={t}, "
            f"horizon={horizon} ({len(receive_system.runs)} runs)",
            f"general-omission: seeded sample, n={general_n}, "
            f"t={general_t}, {len(scenarios)} scenarios (seed={seed})",
            "weak validity never breaks: omission-mode contents are honest",
        ],
        data={"breakage": breakage},
    )
