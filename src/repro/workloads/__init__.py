"""Workload generation for experiments and sweeps."""

from .scenarios import (
    Scenario,
    exhaustive_scenarios,
    proposition_6_3_family,
    random_scenarios,
    worst_case_crash_chain,
)

__all__ = [
    "Scenario",
    "exhaustive_scenarios",
    "proposition_6_3_family",
    "random_scenarios",
    "worst_case_crash_chain",
]
