"""Workload generation: scenario spaces for experiments and sweeps.

A *scenario* is an ``(initial configuration, failure pattern)`` pair — the
data that, together with a protocol, uniquely determines a run.  This module
provides exhaustive, random (seeded) and proof-derived scenario families:

* :func:`exhaustive_scenarios` — the same space an enumerated system covers;
* :func:`random_scenarios` — seeded samples for large-``n`` sweeps of
  concrete protocols (where knowledge evaluation is not needed);
* :func:`proposition_6_3_family` — the closed run family from the proof of
  Proposition 6.3 (omission-mode non-termination of ``F^{Λ,2}``);
* :func:`worst_case_crash_chain` — the classic "one crash per round, each
  informing exactly one survivor" runs that force ``t + 1``-round decisions
  ([DS82]; used by experiment E1's lower-bound probe).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..model.adversary import (
    SampledOmissionAdversary,
    exhaustive_adversary,
)
from ..model.config import (
    InitialConfiguration,
    all_configurations,
    one_dissenter,
    uniform_configuration,
)
from ..model.failures import (
    CrashBehavior,
    FailureMode,
    FailurePattern,
    OmissionBehavior,
)

Scenario = Tuple[InitialConfiguration, FailurePattern]


def exhaustive_scenarios(
    mode: FailureMode, n: int, t: int, horizon: int
) -> List[Scenario]:
    """Every configuration crossed with every canonical failure pattern."""
    patterns = list(exhaustive_adversary(mode, n, t, horizon).patterns())
    return [
        (config, pattern)
        for config in all_configurations(n)
        for pattern in patterns
    ]


def random_scenarios(
    mode: FailureMode,
    n: int,
    t: int,
    horizon: int,
    *,
    count: int = 200,
    seed: int = 0,
) -> List[Scenario]:
    """Seeded random scenarios for statistics-only sweeps.

    Crash patterns pick a random faulty set, crash round and receiver
    subset per faulty processor; omission patterns come from
    :class:`~repro.model.adversary.SampledOmissionAdversary`.  Configurations
    are uniform random bit vectors.  Scenarios may repeat configurations but
    never the exact (config, pattern) pair.
    """
    rng = random.Random(seed)
    scenarios: List[Scenario] = []
    seen = set()
    if mode is FailureMode.OMISSION:
        patterns = list(
            SampledOmissionAdversary(
                n, t, horizon, samples=max(count, 1), seed=seed
            ).patterns()
        )
    else:
        patterns = None
    attempts = 0
    while len(scenarios) < count and attempts < 50 * count:
        attempts += 1
        config = InitialConfiguration(
            tuple(rng.randint(0, 1) for _ in range(n))
        )
        if mode is FailureMode.CRASH:
            pattern = _random_crash_pattern(rng, n, t, horizon)
        else:
            pattern = patterns[rng.randrange(len(patterns))]
        key = (config, pattern)
        if key in seen:
            continue
        seen.add(key)
        scenarios.append(key)
    return scenarios


def _random_crash_pattern(
    rng: random.Random, n: int, t: int, horizon: int
) -> FailurePattern:
    size = rng.randint(0, t)
    faulty = rng.sample(range(n), size)
    behaviors = {}
    for processor in faulty:
        others = [p for p in range(n) if p != processor]
        receivers = frozenset(
            dest for dest in others if rng.random() < 0.5
        )
        if len(receivers) == len(others):
            receivers = frozenset()  # keep the behaviour canonical
        behaviors[processor] = CrashBehavior(
            rng.randint(1, horizon), receivers
        )
    return FailurePattern(behaviors)


def proposition_6_3_family(
    n: int = 4, horizon: int = 4, *, silent: int = 0
) -> Tuple[List[Scenario], Scenario]:
    """The run family from the proof of Proposition 6.3.

    Returns ``(scenarios, target)`` where *target* is the run ``r``: all
    processors start with 1 and processor *silent* is faulty, omitting every
    message forever.  The family adds, for every round ``m`` and every
    processor ``j ≠ silent``, the perturbed run ``r'``: processor *silent*
    has initial value 0 and delivers exactly one message — in round ``m`` to
    ``j`` — plus supporting runs (value-0 silent, failure-free variants)
    used by the indistinguishability chain of Lemma A.9.

    Knowledge evaluated over this *sub-system* over-approximates the full
    omission system, and the failure of ``C□`` transfers soundly to the
    full system (DESIGN.md §2), which is the direction Proposition 6.3
    needs.
    """
    if n < 4:
        raise ConfigurationError("Proposition 6.3 needs n >= t + 2 with t > 1")
    all_ones = uniform_configuration(n, 1)
    silent_zero = one_dissenter(n, silent, 0)

    def silent_behavior() -> OmissionBehavior:
        return OmissionBehavior(
            {
                round_number: [p for p in range(n) if p != silent]
                for round_number in range(1, horizon + 1)
            }
        )

    def deliver_once(round_number: int, target: int) -> OmissionBehavior:
        return OmissionBehavior(
            {
                rn: [
                    p
                    for p in range(n)
                    if p != silent and not (rn == round_number and p == target)
                ]
                for rn in range(1, horizon + 1)
            }
        )

    target_scenario: Scenario = (
        all_ones,
        FailurePattern({silent: silent_behavior()}),
    )
    scenarios: List[Scenario] = [target_scenario]
    for config in (all_ones, silent_zero):
        scenarios.append((config, FailurePattern({silent: silent_behavior()})))
        for round_number in range(1, horizon + 1):
            for receiver in range(n):
                if receiver == silent:
                    continue
                scenarios.append(
                    (
                        config,
                        FailurePattern(
                            {silent: deliver_once(round_number, receiver)}
                        ),
                    )
                )
    # failure-free anchors for the reachability chain
    scenarios.append((all_ones, FailurePattern(())))
    scenarios.append((silent_zero, FailurePattern(())))
    scenarios.append((uniform_configuration(n, 0), FailurePattern(())))
    deduped: List[Scenario] = []
    seen = set()
    for scenario in scenarios:
        if scenario not in seen:
            seen.add(scenario)
            deduped.append(scenario)
    return deduped, target_scenario


def worst_case_crash_chain(
    n: int, t: int, value_carrier: int = 0
) -> Scenario:
    """The [DS82]-style lower-bound run: processor ``k`` crashes in round
    ``k + 1`` after whispering the lone 0 to exactly one successor.

    Configuration: only *value_carrier* starts with 0.  Processor ``k``
    (for ``k = 0..t-1``) crashes in round ``k + 1`` delivering its message
    only to processor ``k + 1``; the 0 thus stays hidden from the survivors
    until round ``t``, forcing late decisions in any protocol that must
    respect ``∃0``.
    """
    if t >= n - 1:
        raise ConfigurationError("need t < n - 1 for a nonfaulty survivor")
    config = one_dissenter(n, value_carrier, 0)
    behaviors = {}
    for k in range(t):
        behaviors[k] = CrashBehavior(k + 1, frozenset((k + 1,)))
    return (config, FailurePattern(behaviors))
