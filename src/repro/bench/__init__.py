"""Benchmark regression tracking (snapshots, history, comparison)."""

from .regression import (  # noqa: F401
    BenchDelta,
    BenchSnapshot,
    RegressionReport,
    append_history,
    compare_snapshots,
    load_history,
    load_snapshot,
    write_snapshot,
)
