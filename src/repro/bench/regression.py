"""Benchmark snapshots and regression comparison.

A *snapshot* is one timing run of the tier-1 micro benches — a label, a
``name -> best-of-rounds seconds`` mapping, and free-form metadata.
Snapshots append to a JSONL history file (``BENCH_HISTORY.jsonl`` at the
repo root by convention; CI persists it across runs through the actions
cache), and :func:`compare_snapshots` diffs two of them with a noise
threshold so CI can fail on real slowdowns without flaking on timer
jitter:

* a bench **regresses** when it got slower by more than ``threshold``
  (default 25%) *and* both timings sit above the ``min_seconds`` noise
  floor — micro-timings under the floor are dominated by scheduler noise
  and are reported but never failed on;
* benches present on only one side are reported as added/removed, never as
  regressions (renames must not break CI).

The runnable entry point that produces snapshots lives in
``benchmarks/regression.py``; ``repro-eba bench-compare`` drives the
comparison from the command line.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Slowdown fraction above which a bench counts as regressed.
DEFAULT_THRESHOLD = 0.25

#: Timings below this many seconds are treated as noise, never failed on.
DEFAULT_MIN_SECONDS = 1e-3

#: Conventional history location, relative to the working directory.
DEFAULT_HISTORY = "BENCH_HISTORY.jsonl"


@dataclass
class BenchSnapshot:
    """One timing run of the benchmark suite."""

    label: str
    timings: Dict[str, float]
    meta: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "timings": {
                name: float(seconds)
                for name, seconds in sorted(self.timings.items())
            },
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BenchSnapshot":
        return cls(
            label=str(payload.get("label", "")),
            timings={
                str(name): float(seconds)
                for name, seconds in dict(payload.get("timings", {})).items()
            },
            meta=dict(payload.get("meta", {})),
        )


@dataclass
class BenchDelta:
    """One bench's baseline-vs-candidate comparison."""

    name: str
    baseline: Optional[float]
    candidate: Optional[float]
    ratio: Optional[float]
    regressed: bool
    note: str = ""


@dataclass
class RegressionReport:
    """Outcome of :func:`compare_snapshots`."""

    baseline_label: str
    candidate_label: str
    deltas: List[BenchDelta]
    threshold: float

    @property
    def regressions(self) -> List[BenchDelta]:
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        from ..metrics.tables import render_table

        rows = []
        for delta in self.deltas:
            rows.append(
                [
                    delta.name,
                    "-" if delta.baseline is None else f"{delta.baseline:.6f}",
                    "-" if delta.candidate is None else f"{delta.candidate:.6f}",
                    "-" if delta.ratio is None else f"{delta.ratio:.2f}x",
                    "REGRESSED" if delta.regressed else (delta.note or "ok"),
                ]
            )
        header = (
            f"baseline: {self.baseline_label}  "
            f"candidate: {self.candidate_label}  "
            f"(threshold {self.threshold:.0%})"
        )
        table = render_table(
            ["bench", "baseline s", "candidate s", "ratio", "status"], rows
        )
        verdict = (
            "no regressions"
            if self.ok
            else f"{len(self.regressions)} bench(es) regressed"
        )
        return f"{header}\n{table}\n{verdict}"


def compare_snapshots(
    baseline: BenchSnapshot,
    candidate: BenchSnapshot,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> RegressionReport:
    """Diff two snapshots; see the module docstring for the semantics."""
    deltas: List[BenchDelta] = []
    names = sorted(set(baseline.timings) | set(candidate.timings))
    for name in names:
        before = baseline.timings.get(name)
        after = candidate.timings.get(name)
        if before is None:
            deltas.append(
                BenchDelta(name, None, after, None, False, "added")
            )
            continue
        if after is None:
            deltas.append(
                BenchDelta(name, before, None, None, False, "removed")
            )
            continue
        ratio = after / before if before > 0 else float("inf")
        below_floor = before < min_seconds or after < min_seconds
        regressed = ratio > 1.0 + threshold and not below_floor
        note = ""
        if below_floor and ratio > 1.0 + threshold:
            note = "noise (below floor)"
        elif ratio < 1.0 - threshold:
            note = "improved"
        deltas.append(
            BenchDelta(name, before, after, ratio, regressed, note)
        )
    return RegressionReport(
        baseline_label=baseline.label,
        candidate_label=candidate.label,
        deltas=deltas,
        threshold=threshold,
    )


# -- persistence -------------------------------------------------------------

def append_history(path: str, snapshot: BenchSnapshot) -> None:
    """Append one snapshot to the JSONL history at *path*."""
    with open(path, "a") as handle:
        handle.write(json.dumps(snapshot.to_dict(), sort_keys=True) + "\n")


def load_history(path: str) -> List[BenchSnapshot]:
    """All snapshots in the JSONL history (oldest first).

    Tolerates a missing file and skips malformed lines — a corrupt cache
    entry must not break CI.
    """
    if not os.path.exists(path):
        return []
    snapshots: List[BenchSnapshot] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                snapshots.append(BenchSnapshot.from_dict(json.loads(line)))
            except (ValueError, TypeError, AttributeError):
                continue
    return snapshots


def write_snapshot(path: str, snapshot: BenchSnapshot) -> None:
    """Write one snapshot as a standalone JSON file."""
    with open(path, "w") as handle:
        json.dump(snapshot.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_snapshot(path: str) -> BenchSnapshot:
    """Read a standalone snapshot JSON file."""
    with open(path) as handle:
        return BenchSnapshot.from_dict(json.load(handle))
