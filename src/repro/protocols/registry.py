"""Protocol registry: names to protocols, for the CLI and experiments.

Two namespaces, reflecting the library's two layers:

* **concrete** protocols run on the simulator over any scenario iterable;
* **knowledge-level** protocols are decision-pair factories that need an
  enumerated system.

``outcome_for`` resolves either kind uniformly, which is what lets the CLI
say ``repro-eba compare P0opt F_LAMBDA2 --mode crash`` without caring which
layer each name lives in.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.outcomes import ProtocolOutcome
from ..errors import ConfigurationError
from ..model.system import System
from .base import ConcreteProtocol
from .chain_eba import chain_eba
from .chain_fip import chain_pair
from .dm90 import dm90_waste
from .f_lambda import f_lambda_2_pair, zcr_ocr_pair
from .f_star import f_star_pair
from .f_zero import f_zero_pair
from .fip import fip
from .flood_sba import flood_sba
from .p0 import p0, p1
from .p0opt import p0opt
from .sba_ck import sba_common_knowledge_pair

#: Concrete protocols: name -> zero-argument factory.
CONCRETE_PROTOCOLS: Dict[str, Callable[[], ConcreteProtocol]] = {
    "P0": p0,
    "P1": p1,
    "P0opt": p0opt,
    "FloodSBA": flood_sba,
    "ChainEBA": chain_eba,
    "DM90Waste": dm90_waste,
}

#: Knowledge-level protocols: name -> (system -> DecisionPair).
KNOWLEDGE_PROTOCOLS: Dict[str, Callable[[System], object]] = {
    "F_LAMBDA2": f_lambda_2_pair,
    "F_STAR": f_star_pair,
    "F_ZERO": f_zero_pair,
    "CHAIN_FIP": chain_pair,
    "SBA_CK": sba_common_knowledge_pair,
    "ZCR_OCR": zcr_ocr_pair,
}


def protocol_names() -> List[str]:
    """Every registered protocol name (concrete first)."""
    return list(CONCRETE_PROTOCOLS) + list(KNOWLEDGE_PROTOCOLS)


def is_knowledge_level(name: str) -> bool:
    """Whether *name* resolves to a knowledge-level protocol."""
    if name in KNOWLEDGE_PROTOCOLS:
        return True
    if name in CONCRETE_PROTOCOLS:
        return False
    raise ConfigurationError(
        f"unknown protocol {name!r}; known: {', '.join(protocol_names())}"
    )


def outcome_for(name: str, system: System, t: int = None) -> ProtocolOutcome:
    """Run the named protocol over *system*'s scenario space.

    Concrete protocols execute on the simulator over ``system.scenarios()``;
    knowledge-level ones evaluate their decision pair over the system.
    Either way the result covers corresponding runs, so any two registry
    outcomes over the same system are directly comparable.
    """
    t = system.t if t is None else t
    if is_knowledge_level(name):
        pair = KNOWLEDGE_PROTOCOLS[name](system)
        protocol = fip(pair)
        protocol.assert_no_nonfaulty_conflicts(system)
        outcome = protocol.outcome(system)
        outcome.name = name
        return outcome
    from ..sim.engine import run_over_scenarios

    outcome = run_over_scenarios(
        CONCRETE_PROTOCOLS[name](), system.scenarios(), system.horizon, t
    )
    outcome.name = name
    return outcome
