"""Concrete protocol interface (paper, Section 2.3).

The paper models a protocol as a message-generation function, a state
transition function and an output function, all deterministic functions of
the processor's local state.  :class:`ConcreteProtocol` is that model as an
abstract class; :mod:`repro.sim.engine` executes instances round by round
under a failure pattern.

Concrete protocols are the "efficient implementations" of the paper's
knowledge-level protocols (e.g. ``P0opt`` implements ``F^{Λ,2}`` in the
crash mode with linear-size messages — Theorem 6.2).  Their outcomes use the
same :class:`~repro.core.outcomes.ProtocolOutcome` currency as the
knowledge-level protocols, so domination and specification checks apply
across the two layers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

from ..model.failures import ProcessorId

#: A concrete protocol's local state — opaque to the engine.
State = Any

#: A message payload — opaque to the engine (``None`` entries are dropped).
Message = Any


class ConcreteProtocol(ABC):
    """A deterministic round-based protocol in the paper's formal model.

    Subclasses define the tuple ``(Q, σ_i, L, μ_ij, δ_i, O)`` of Section 2.3
    through four methods.  The engine guarantees:

    * :meth:`messages` is called once per processor per round, *before* any
      round delivery, with the processor's state at the previous time;
    * :meth:`transition` is called with exactly the messages that survived
      the failure pattern;
    * :meth:`output` is consulted at every time ``0..horizon``; the first
      non-``None`` output is the processor's (irreversible) decision.

    Faulty processors run the same code; the *pattern* drops their
    messages.  A processor that has halted simply returns no messages.
    """

    #: Display name used in outcomes, reports and tables.
    name: str = "concrete"

    @abstractmethod
    def initial_state(
        self, processor: ProcessorId, n: int, t: int, initial_value: int
    ) -> State:
        """``σ_i``: the state of *processor* at time 0."""

    @abstractmethod
    def messages(
        self, state: State, round_number: int
    ) -> Dict[ProcessorId, Message]:
        """``μ_ij``: messages to send in *round_number* (1-based).

        Returns a destination -> payload map.  Destinations not listed
        receive nothing; ``None`` payloads are treated as "no message".
        """

    @abstractmethod
    def transition(
        self,
        state: State,
        round_number: int,
        received: Dict[ProcessorId, Message],
    ) -> State:
        """``δ_i``: the state after *round_number* given delivered messages."""

    @abstractmethod
    def output(self, state: State) -> Optional[int]:
        """The output function: ``0``/``1`` once decided, else ``None``.

        Must be stable: once a state outputs a value, all successor states
        must output the same value (decisions are irreversible).
        """


def broadcast(
    n: int, sender: ProcessorId, payload: Message
) -> Dict[ProcessorId, Message]:
    """Helper: send *payload* to every other processor."""
    return {
        destination: payload for destination in range(n) if destination != sender
    }
