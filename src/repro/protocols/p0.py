"""The protocols ``P0`` and ``P1`` (paper, Proposition 2.1; after [LF82]).

``P0``: when a processor first learns that some processor has an initial
value of 0, it decides 0, relays 0 to everyone in the next round, and halts;
if by time ``t + 1`` it has not learned of any 0, it decides 1 and halts.
All nonfaulty processors with initial value 0 decide at time 0.

``P1`` is the symmetric protocol with the roles of 0 and 1 exchanged.
Neither protocol dominates the other (a 0-heavy run favours ``P0``, a
1-heavy run favours ``P1``), which is the engine of the paper's proof that
no *optimum* EBA protocol exists — regenerated as experiment E1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..core.values import other
from ..model.failures import ProcessorId
from .base import ConcreteProtocol, Message, State, broadcast


@dataclass(frozen=True)
class _RaceState:
    """Local state of a :class:`ValueRaceProtocol` processor."""

    processor: ProcessorId
    n: int
    t: int
    favored: int
    knows_favored: bool
    relayed: bool
    decided: Optional[int]
    time: int


class ValueRaceProtocol(ConcreteProtocol):
    """The common skeleton of ``P0`` / ``P1``.

    Parameterized by the *favored* value ``w``: decide ``w`` immediately on
    learning ``∃w`` (own value or a relay), relay once, halt; decide
    ``1 - w`` at time ``t + 1`` otherwise.
    """

    def __init__(self, favored: int) -> None:
        self.favored = favored
        self.name = f"P{favored}"

    def initial_state(
        self, processor: ProcessorId, n: int, t: int, initial_value: int
    ) -> State:
        knows = initial_value == self.favored
        return _RaceState(
            processor=processor,
            n=n,
            t=t,
            favored=self.favored,
            knows_favored=knows,
            relayed=False,
            decided=self.favored if knows else None,
            time=0,
        )

    def messages(
        self, state: _RaceState, round_number: int
    ) -> Dict[ProcessorId, Message]:
        if state.knows_favored and not state.relayed:
            return broadcast(state.n, state.processor, ("value", state.favored))
        return {}

    def transition(
        self,
        state: _RaceState,
        round_number: int,
        received: Dict[ProcessorId, Message],
    ) -> State:
        knows = state.knows_favored
        relayed = state.relayed
        decided = state.decided
        if knows and not relayed:
            relayed = True  # the relay just went out in this round
        if not knows and any(
            payload == ("value", state.favored) for payload in received.values()
        ):
            knows = True
            decided = state.favored
        if decided is None and round_number >= state.t + 1:
            decided = other(state.favored)
        return replace(
            state,
            knows_favored=knows,
            relayed=relayed,
            decided=decided,
            time=round_number,
        )

    def output(self, state: _RaceState) -> Optional[int]:
        return state.decided


def p0() -> ValueRaceProtocol:
    """``P0``: race to decide 0; default to 1 at time ``t + 1``."""
    return ValueRaceProtocol(0)


def p1() -> ValueRaceProtocol:
    """``P1``: race to decide 1; default to 0 at time ``t + 1``."""
    return ValueRaceProtocol(1)
