"""The 0-chain EBA protocol ``FIP(Z⁰, O⁰)`` for omission failures
(paper, Section 6.2).

Decision rules, at the knowledge level::

    Z⁰_i = B_i^N ∃0*         — believe a validated 0-chain has formed
    O⁰_i = B_i^N ¬◇∃0*       — believe no validated 0-chain will ever form

Two reading notes against the paper's text:

* the statement "let ``O⁰_i = B_i^N ∃0*``" is an evident typesetting slip —
  Lemma A.11 and the surrounding discussion make clear the one-set is the
  belief in the *negation*;
* ``∃0*`` as defined is time-dependent ("a 0-chain exists at some
  ``m' ≤ m``"), under which a literal ``B_i^N ¬∃0*`` would hold vacuously at
  time 0 and wreck weak validity.  Lemma A.11 proves
  ``B_i^N(∃1 ∧ ⊡((N∧Z⁰) = ∅)) ⇔ B_i^N(¬∃0*)``, i.e. the intended one-rule
  is belief that no chain **ever** forms.  We implement exactly that:
  ``B_i^N ¬◇∃0*``.  Because chains use distinct processors, ``◇∃0*`` is
  decided by time ``n``, so finite-horizon evaluation is exact whenever
  ``horizon ≥ n`` (and for the bounded-failure runs of Proposition 6.4,
  whenever ``horizon ≥ f + 1``).

Proposition 6.4: in any omission-mode run with ``f`` actual failures, all
nonfaulty processors decide by time ``f + 1`` — experiment E10.
"""

from __future__ import annotations

from ..core.decision_sets import DecisionPair
from ..knowledge.chains import eventually_exists_zero_star, exists_zero_star
from ..knowledge.formulas import Believes, Formula, Not
from ..model.system import System
from .fip import pair_from_formulas
from .memo import per_system


@per_system
def chain_pair(system: System) -> DecisionPair:
    """The decision pair ``(Z⁰, O⁰)`` over *system*."""
    zero_star_now = exists_zero_star()
    zero_star_ever = eventually_exists_zero_star()

    def zero(processor: int) -> Formula:
        return Believes(processor, zero_star_now)

    def one(processor: int) -> Formula:
        return Believes(processor, Not(zero_star_ever))

    return pair_from_formulas(system, zero, one, "FIP(Z⁰,O⁰)")
