"""Protocols: the paper's knowledge-level protocols and their concrete
message-passing implementations."""

from .base import ConcreteProtocol, broadcast
from .chain_eba import ChainEBA, chain_eba
from .chain_fip import chain_pair
from .dm90 import DM90Waste, dm90_waste
from .f_lambda import (
    f_lambda_1_explicit_pair,
    f_lambda_2_pair,
    f_lambda_pair,
    f_lambda_sequence,
    zcr_ocr_pair,
)
from .f_star import f_star_pair, f_star_via_construction
from .f_zero import f_zero_pair
from .fip import FullInformationProtocol, fip, pair_from_formulas
from .flood_sba import FloodSBA, assert_crash_pattern, flood_sba
from .p0 import ValueRaceProtocol, p0, p1
from .p0opt import P0OptProtocol, p0opt
from .sba_ck import sba_common_knowledge_pair

__all__ = [
    "ChainEBA",
    "ConcreteProtocol",
    "FloodSBA",
    "FullInformationProtocol",
    "P0OptProtocol",
    "ValueRaceProtocol",
    "assert_crash_pattern",
    "broadcast",
    "chain_eba",
    "chain_pair",
    "DM90Waste",
    "dm90_waste",
    "f_lambda_1_explicit_pair",
    "f_lambda_2_pair",
    "f_lambda_pair",
    "f_lambda_sequence",
    "f_star_pair",
    "f_star_via_construction",
    "f_zero_pair",
    "fip",
    "flood_sba",
    "p0",
    "p0opt",
    "pair_from_formulas",
    "sba_common_knowledge_pair",
    "zcr_ocr_pair",
]
