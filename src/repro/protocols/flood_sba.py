"""``FloodSBA``: the classic ``t + 1``-round simultaneous baseline
(crash mode).

Every processor floods the set of initial values it has seen for ``t + 1``
rounds and then decides: 0 if it ever saw a 0, else 1.  With at most ``t``
crash failures all nonfaulty processors hold the same value set at time
``t + 1`` (the FloodSet argument: some round among ``1..t+1`` is free of new
crashes, after which the sets are equal and stay equal), so the decision is
simultaneous, agreed and valid.

This baseline is what the paper's introduction contrasts EBA against: EBA
protocols such as ``P0opt`` typically decide much earlier than any
simultaneous protocol — regenerated as experiment E12.

**Crash mode only.**  Under sending omissions a faulty processor can inject
its value to a single processor arbitrarily late, so plain flooding loses
agreement; constructing the protocol for an omission-mode comparison is
rejected at run time via the scenario guard :func:`assert_crash_pattern`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Optional

from ..errors import UnsupportedModeError
from ..model.failures import FailureMode, FailurePattern, ProcessorId
from .base import ConcreteProtocol, Message, State, broadcast


def assert_crash_pattern(pattern: FailurePattern) -> None:
    """Reject omission patterns (FloodSBA's agreement argument needs
    crashes)."""
    mode = pattern.mode()
    if mode is not None and mode is not FailureMode.CRASH:
        raise UnsupportedModeError(
            "FloodSBA is only sound for crash failures; got an "
            f"{mode} pattern"
        )


@dataclass(frozen=True)
class _FloodState:
    processor: ProcessorId
    n: int
    t: int
    seen: FrozenSet[int]
    decided: Optional[int]
    time: int


class FloodSBA(ConcreteProtocol):
    """Flood value sets for ``t + 1`` rounds; decide simultaneously."""

    name = "FloodSBA"

    def initial_state(
        self, processor: ProcessorId, n: int, t: int, initial_value: int
    ) -> State:
        return _FloodState(
            processor=processor,
            n=n,
            t=t,
            seen=frozenset((initial_value,)),
            decided=None,
            time=0,
        )

    def messages(
        self, state: _FloodState, round_number: int
    ) -> Dict[ProcessorId, Message]:
        if round_number > state.t + 1:
            return {}
        return broadcast(state.n, state.processor, ("seen", state.seen))

    def transition(
        self,
        state: _FloodState,
        round_number: int,
        received: Dict[ProcessorId, Message],
    ) -> State:
        seen = set(state.seen)
        for payload in received.values():
            tag, values = payload
            assert tag == "seen"
            seen |= values
        decided = state.decided
        if decided is None and round_number >= state.t + 1:
            decided = 0 if 0 in seen else 1
        return replace(
            state, seen=frozenset(seen), decided=decided, time=round_number
        )

    def output(self, state: _FloodState) -> Optional[int]:
        return state.decided


def flood_sba() -> FloodSBA:
    """Construct the ``t + 1``-round simultaneous baseline."""
    return FloodSBA()
