"""``F*``: the optimal EBA protocol for omission failures
(paper, Section 6.2, Proposition 6.6).

Obtained by applying the two-step construction — in the mirrored order the
paper uses for this example: first the double-prime step (optimize the
decision on 1 given ``Z⁰``), then the prime step (optimize the decision on 0
given the resulting one-rule).  Lemmas A.10/A.11 show the first step is a
no-op on decisions (``Z¹ ≡ Z⁰``, ``O¹ ≡ O⁰``), so::

    Z*_i = B_i^N(∃0 ∧  C□_{N∧O⁰} ∃0)
    O*_i = B_i^N(∃1 ∧ ¬C□_{N∧O⁰} ∃0)

``F* = FIP(Z*, O*)`` is an optimal EBA protocol in the omission failure mode
that dominates ``FIP(Z⁰, O⁰)`` — experiment E11.
"""

from __future__ import annotations

from typing import Tuple

from ..core.construction import double_prime_step, prime_step
from ..core.decision_sets import DecisionPair
from ..model.system import System
from .chain_fip import chain_pair
from .memo import per_system


@per_system
def f_star_pair(system: System) -> DecisionPair:
    """``F*`` built directly from ``O⁰`` (the paper's simplified form)."""
    base = chain_pair(system)
    return prime_step(system, base, name="F*")


@per_system
def f_star_via_construction(
    system: System,
) -> Tuple[DecisionPair, DecisionPair, DecisionPair]:
    """``(FIP(Z⁰,O⁰), F¹, F²)`` through the explicit mirrored two-step
    construction.

    ``F¹`` (double-prime on the chain pair) should decide identically to
    ``FIP(Z⁰, O⁰)`` by Lemmas A.10/A.11, and ``F²`` identically to
    :func:`f_star_pair`; tests verify both equivalences.
    """
    base = chain_pair(system)
    first = double_prime_step(system, base, name="FIP(Z⁰,O⁰)^1")
    second = prime_step(system, first, name="F*-via-construction")
    return base, first, second
