"""``DM90Waste``: a concrete early-stopping *simultaneous* BA protocol for
the crash mode, in the style of Dwork-Moses [DM90].

[DM90] showed that optimum SBA decides exactly when an initial value
becomes common knowledge, and that with crash failures this happens at time
``t + 1 - W`` where ``W`` is the run's *waste*: writing ``D(j)`` for the
number of processors whose failure has been *exposed* by round ``j`` (some
processor missed a message from them in a round ``<= j``),

    W  =  max_j  max(0, D(j) - j).

Intuitively, a round that exposes more failures than it costs brings the
inevitable clean round — and with it common knowledge — forward.

``DM90Waste`` implements the rule concretely: every processor floods the
values it has seen plus its delivery-evidence table; at each time ``k`` it
computes the waste visible to it and decides at the first ``k >= t + 1 -
W``, on 0 iff it has seen a 0.  The knowledge-level oracle
(:mod:`repro.protocols.sba_ck`) decides at the exact moment of common
knowledge; experiment E16 verifies that ``DM90Waste`` matches it decision-
for-decision at corresponding points of exhaustive crash systems — i.e.
that this concrete rule *is* the optimum SBA implementation, reproducing
the [DM90] headline inside this codebase.

Crash mode only: the waste computation reads silence as crash-and-gone,
which sending omissions can fake (the same reason ``P0opt``'s rule (b) is
crash-specific).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Optional, Tuple

from ..model.failures import ProcessorId
from .base import ConcreteProtocol, Message, State, broadcast

#: ((processor, round) -> senders it heard from), as a sorted tuple.
EvidenceTable = Tuple[Tuple[Tuple[ProcessorId, int], FrozenSet[ProcessorId]], ...]


@dataclass(frozen=True)
class _WasteState:
    processor: ProcessorId
    n: int
    t: int
    values_seen: FrozenSet[int]
    deliveries: EvidenceTable
    decided: Optional[int]
    time: int

    def deliveries_dict(self) -> Dict[Tuple[ProcessorId, int], FrozenSet[ProcessorId]]:
        return dict(self.deliveries)


def waste_from_deliveries(
    deliveries: Dict[Tuple[ProcessorId, int], FrozenSet[ProcessorId]],
    n: int,
    up_to_round: int,
) -> int:
    """``max_j max(0, D(j) - j)`` from a delivery-evidence table."""
    earliest: Dict[ProcessorId, int] = {}
    for (receiver, round_number), heard in deliveries.items():
        for processor in range(n):
            if processor == receiver or processor in heard:
                continue
            previous = earliest.get(processor)
            if previous is None or round_number < previous:
                earliest[processor] = round_number
    best = 0
    for j in range(1, up_to_round + 1):
        exposed = sum(1 for round_number in earliest.values() if round_number <= j)
        best = max(best, exposed - j)
    return best


class DM90Waste(ConcreteProtocol):
    """Waste-based optimum SBA for crash failures (see module docstring)."""

    name = "DM90Waste"

    def initial_state(
        self, processor: ProcessorId, n: int, t: int, initial_value: int
    ) -> State:
        return _WasteState(
            processor=processor,
            n=n,
            t=t,
            values_seen=frozenset((initial_value,)),
            deliveries=(),
            decided=None,
            time=0,
        )

    def messages(
        self, state: _WasteState, round_number: int
    ) -> Dict[ProcessorId, Message]:
        if state.decided is not None:
            return {}
        return broadcast(
            state.n,
            state.processor,
            ("dm90", state.values_seen, state.deliveries),
        )

    def transition(
        self,
        state: _WasteState,
        round_number: int,
        received: Dict[ProcessorId, Message],
    ) -> State:
        values = set(state.values_seen)
        deliveries = state.deliveries_dict()
        for payload in received.values():
            _tag, their_values, their_deliveries = payload
            values |= their_values
            for key, heard in their_deliveries:
                deliveries.setdefault(key, heard)
        deliveries[(state.processor, round_number)] = frozenset(received)

        decided = state.decided
        if decided is None:
            current_waste = waste_from_deliveries(
                deliveries, state.n, round_number
            )
            if round_number >= state.t + 1 - current_waste:
                decided = 0 if 0 in values else 1
        return replace(
            state,
            values_seen=frozenset(values),
            deliveries=tuple(sorted(deliveries.items())),
            decided=decided,
            time=round_number,
        )

    def output(self, state: _WasteState) -> Optional[int]:
        return state.decided


def dm90_waste() -> DM90Waste:
    """Construct the waste-based SBA protocol."""
    return DM90Waste()
