"""The protocols ``F^Λ``, ``F^{Λ,1}``, ``F^{Λ,2}`` and the crash-mode pair
``FIP(Z^cr, O^cr)`` (paper, Section 6.1).

``F^Λ`` is the trivially nontrivial agreement protocol in which nobody ever
decides.  Applying the paper's two-step optimization yields:

* ``Z^{Λ,1}_i = B_i^N ∃0`` and ``O^{Λ,1}_i = B_i^N false`` (never fires for
  a nonfaulty processor), then
* ``Z^{Λ,2}_i = B_i^N(∃0 ∧ ¬C□_{N∧Z^{Λ,1}} ∃1)`` and
  ``O^{Λ,2}_i = B_i^N(∃1 ∧ C□_{N∧Z^{Λ,1}} ∃1)``.

Theorem 6.1 states that in the **crash** failure mode ``F^{Λ,2}`` collapses
to the simple pair ``Z^cr_i = B_i^N ∃0`` / ``O^cr_i = B_i^N((N∧Z^cr) = ∅)``
— the knowledge-level formulation of the concrete protocol ``P0opt`` — while
Proposition 6.3 shows that in the omission mode ``F^{Λ,2}`` may never
terminate.  Experiments E8 and E9 regenerate both results.
"""

from __future__ import annotations

from typing import Tuple

from ..core.construction import two_step_optimization
from ..core.decision_sets import DecisionPair, empty_pair
from ..knowledge.formulas import (
    And,
    Believes,
    Exists,
    Formula,
    SetEmpty,
)
from ..knowledge.nonrigid import nonfaulty_and_zeros
from ..model.system import System
from .fip import pair_from_formulas
from .memo import per_system


def f_lambda_pair() -> DecisionPair:
    """``F^Λ``: the full-information protocol in which no one ever decides."""
    return empty_pair(name="F^Λ")


@per_system
def f_lambda_sequence(system: System) -> Tuple[DecisionPair, DecisionPair, DecisionPair]:
    """``(F^Λ, F^{Λ,1}, F^{Λ,2})`` via the generic two-step construction."""
    base = f_lambda_pair()
    first, second = two_step_optimization(system, base)
    return (
        base,
        first.renamed("F^{Λ,1}"),
        second.renamed("F^{Λ,2}"),
    )


def f_lambda_2_pair(system: System) -> DecisionPair:
    """``F^{Λ,2}`` — the optimal nontrivial agreement protocol obtained by
    optimizing ``F^Λ`` (both failure modes)."""
    return f_lambda_sequence(system)[2]


@per_system
def zcr_ocr_pair(system: System) -> DecisionPair:
    """The explicit crash-mode pair of Theorem 6.1.

    ``Z^cr_i = B_i^N ∃0`` and ``O^cr_i = B_i^N((N ∧ Z^cr) = ∅)`` — decide 0
    on learning of a 0; decide 1 on believing that no nonfaulty processor
    currently knows of a 0 (which, in the crash mode, implies none ever
    will — Lemma A.8).
    """
    def zero(processor: int) -> Formula:
        return Believes(processor, Exists(0))

    zcr = pair_from_formulas(
        system, zero, lambda _: _never(), "Z^cr-only"
    )
    n_and_zcr = nonfaulty_and_zeros(zcr)

    def one(processor: int) -> Formula:
        return Believes(processor, SetEmpty(n_and_zcr))

    return pair_from_formulas(system, zero, one, "FIP(Z^cr,O^cr)")


def _never() -> Formula:
    from ..knowledge.formulas import FALSE

    return FALSE


@per_system
def f_lambda_1_explicit_pair(system: System) -> DecisionPair:
    """``F^{Λ,1}`` written out directly: ``Z = B_i^N ∃0``, ``O`` empty for
    nonfaulty processors (``B_i^N(∃1 ∧ false)``).

    Provided separately from :func:`f_lambda_sequence` so tests can confirm
    the generic construction reproduces the paper's hand-derived
    simplification.
    """
    def zero(processor: int) -> Formula:
        return Believes(processor, Exists(0))

    def one(processor: int) -> Formula:
        from ..knowledge.formulas import FALSE

        return Believes(processor, And((Exists(1), FALSE)))

    return pair_from_formulas(system, zero, one, "F^{Λ,1}-explicit")
