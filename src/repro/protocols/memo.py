"""Per-system memoization of decision-pair factories.

``DecisionPair`` evaluation caches key on ``pair.token`` — a process-wide
counter, not content (two pairs with identical sets get *distinct* tokens
on purpose, see ``tests/test_decision_sets.py``).  Rebuilding a pair
therefore never shares evaluation caches with the first build.  That
matters once pairs are constructed in separate phases of one process: a
batch plan's ``prepare`` hook seeds ``C□_{N∧Z}`` component labellings and
``B_i^N`` verdicts under the pair tokens its finalize-time ``run()`` must
hit again.  The canonical factories therefore memoize per system — the
same ``(factory, system)`` always returns the *same* pair objects, tokens
included.

Memoization is by system identity in a :class:`weakref.WeakKeyDictionary`;
systems already anchor every evaluation cache, and dropping the last
reference to one drops its pairs with it.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Tuple
from weakref import WeakKeyDictionary

_MEMO: "WeakKeyDictionary[Any, Dict[Tuple, Any]]" = WeakKeyDictionary()


def per_system(factory: Callable) -> Callable:
    """Memoize ``factory(system, *args, **kwargs)`` by system identity.

    The wrapped factory must be deterministic for fixed arguments (every
    pair construction here is — they evaluate formulas over an immutable
    enumerated system).  Extra positional/keyword arguments participate
    in the memo key and must be hashable.
    """

    @functools.wraps(factory)
    def wrapped(system, *args, **kwargs):
        try:
            cells = _MEMO.setdefault(system, {})
        except TypeError:  # unhashable/weakref-less stand-in (tests)
            return factory(system, *args, **kwargs)
        key = (
            factory.__module__,
            factory.__qualname__,
            args,
            tuple(sorted(kwargs.items())),
        )
        try:
            return cells[key]
        except KeyError:
            cells[key] = factory(system, *args, **kwargs)
            return cells[key]

    return wrapped
