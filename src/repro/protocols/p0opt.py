"""``P0opt``: the optimal crash-mode EBA protocol of Section 2.2.

Each processor maintains what it knows of everyone's initial values and
broadcasts that table every round.  Decision rules:

* **decide 0** as soon as it learns that some processor had initial value 0
  (this is the fastest any correct EBA protocol can decide 0 — the fact
  ``∃0`` propagates at full speed);
* **decide 1** as soon as it knows that *nobody will ever know* ``∃0``,
  which in the crash mode happens exactly when

  (a) it knows all initial values are 1, or
  (b) it hears from the same set of processors in two consecutive rounds
      and still does not know of any 0.

After deciding, a processor communicates for ``halt_after`` more rounds
(default 1, per the paper) and then stops sending.

Theorem 6.2: ``P0opt`` makes the same decisions as the knowledge-level
``F^{Λ,2}`` at corresponding points in the crash mode, and both are optimal
EBA protocols there — regenerated as experiments E2 and E8.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Optional, Tuple

from ..model.failures import ProcessorId
from .base import ConcreteProtocol, Message, State, broadcast


@dataclass(frozen=True)
class _OptState:
    """Local state of a ``P0opt`` processor.

    ``known`` maps processors to the initial values this processor has
    learned; ``heard_last`` is the sender set of the most recent round
    (``None`` before round 1).
    """

    processor: ProcessorId
    n: int
    t: int
    known: Tuple[Tuple[ProcessorId, int], ...]
    heard_last: Optional[FrozenSet[ProcessorId]]
    decided: Optional[int]
    decided_at: Optional[int]
    time: int

    def known_dict(self) -> Dict[ProcessorId, int]:
        return dict(self.known)

    def knows_zero(self) -> bool:
        return any(value == 0 for _, value in self.known)

    def knows_all_ones(self) -> bool:
        return len(self.known) == self.n and all(
            value == 1 for _, value in self.known
        )


class P0OptProtocol(ConcreteProtocol):
    """Concrete, linear-message-size implementation of ``P0opt``."""

    def __init__(self, halt_after: Optional[int] = 1) -> None:
        """Args:
            halt_after: Rounds of communication after deciding before the
                processor stops sending; ``None`` means it never halts
                (useful when comparing against never-halting
                full-information protocols).
        """
        self.halt_after = halt_after
        self.name = "P0opt"

    def initial_state(
        self, processor: ProcessorId, n: int, t: int, initial_value: int
    ) -> State:
        return _OptState(
            processor=processor,
            n=n,
            t=t,
            known=((processor, initial_value),),
            heard_last=None,
            decided=0 if initial_value == 0 else None,
            decided_at=0 if initial_value == 0 else None,
            time=0,
        )

    def _halted(self, state: _OptState, round_number: int) -> bool:
        if self.halt_after is None or state.decided_at is None:
            return False
        return round_number > state.decided_at + self.halt_after

    def messages(
        self, state: _OptState, round_number: int
    ) -> Dict[ProcessorId, Message]:
        if self._halted(state, round_number):
            return {}
        return broadcast(state.n, state.processor, ("known", state.known))

    def transition(
        self,
        state: _OptState,
        round_number: int,
        received: Dict[ProcessorId, Message],
    ) -> State:
        known = state.known_dict()
        for payload in received.values():
            tag, entries = payload
            assert tag == "known"
            for processor, value in entries:
                known.setdefault(processor, value)
        heard_now = frozenset(received.keys())

        decided = state.decided
        decided_at = state.decided_at
        if decided is None:
            knows_zero = any(value == 0 for value in known.values())
            if knows_zero:
                decided = 0
            elif len(known) == state.n and all(
                value == 1 for value in known.values()
            ):
                decided = 1  # condition (a)
            elif (
                state.heard_last is not None
                and heard_now == state.heard_last
            ):
                decided = 1  # condition (b)
            if decided is not None:
                decided_at = round_number

        return replace(
            state,
            known=tuple(sorted(known.items())),
            heard_last=heard_now,
            decided=decided,
            decided_at=decided_at,
            time=round_number,
        )

    def output(self, state: _OptState) -> Optional[int]:
        return state.decided


def p0opt(halt_after: Optional[int] = 1) -> P0OptProtocol:
    """Construct ``P0opt`` (see :class:`P0OptProtocol` for *halt_after*)."""
    return P0OptProtocol(halt_after)
