"""``ChainEBA``: a concrete, message-efficient implementation of the
0-chain protocol ``FIP(Z⁰, O⁰)`` for omission failures (Section 6.2).

Mechanics, following the proof of Proposition 6.4:

* every processor broadcasts every round (no halting before the horizon):
  its initial value's chain evidence, plus the set of processors it knows to
  be faulty;
* a processor with initial value 0 is itself a complete 1-member chain — it
  decides 0 at time 0 and broadcasts the chain ``(itself,)`` in round 1;
* a processor receiving in round ``k`` a chain of ``k`` distinct members
  ending at the sender — the sender not known faulty after merging this
  round's failure reports — *accepts* the 0: it decides 0 at time ``k`` and
  forwards the extended chain in round ``k + 1``;
* failure knowledge: a processor that misses an expected message marks the
  sender faulty (sound under sending omissions, where nonfaulty senders
  always deliver) and relays its known-faulty set every round;
* **decide 1** at the first round in which the processor learns of *no new
  failures* while having accepted no chain — the proof's witness for
  ``B_i^N ¬◇∃0*``.

With ``f`` actual failures some round ``m ≤ f + 1`` brings no new failure
news, so every nonfaulty processor decides by time ``f + 1``
(Proposition 6.4) — experiment E10.

This concrete protocol is a conservative implementation of the
knowledge-level :func:`repro.protocols.chain_fip.chain_pair`: the
knowledge-level one-rule can fire earlier (it tests the *exact* belief
``B_i^N ¬◇∃0*``, e.g. firing as soon as the processor knows all initial
values are 1 even while failure news keeps arriving).  Experiments compare
the two.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Optional, Tuple

from ..model.failures import ProcessorId
from .base import ConcreteProtocol, Message, State, broadcast

#: A chain payload: the ordered tuple of member processor ids.
Chain = Tuple[ProcessorId, ...]


@dataclass(frozen=True)
class _ChainState:
    processor: ProcessorId
    n: int
    t: int
    value: int
    known_faulty: FrozenSet[ProcessorId]
    accepted_chain: Optional[Chain]
    accepted_at: Optional[int]
    decided: Optional[int]
    time: int


class ChainEBA(ConcreteProtocol):
    """Concrete 0-chain EBA for the omission failure mode."""

    name = "ChainEBA"

    def initial_state(
        self, processor: ProcessorId, n: int, t: int, initial_value: int
    ) -> State:
        accepted: Optional[Chain] = None
        decided: Optional[int] = None
        accepted_at: Optional[int] = None
        if initial_value == 0:
            accepted = (processor,)
            accepted_at = 0
            decided = 0
        return _ChainState(
            processor=processor,
            n=n,
            t=t,
            value=initial_value,
            known_faulty=frozenset(),
            accepted_chain=accepted,
            accepted_at=accepted_at,
            decided=decided,
            time=0,
        )

    def messages(
        self, state: _ChainState, round_number: int
    ) -> Dict[ProcessorId, Message]:
        # Forward the accepted chain while it is still round-aligned: a
        # chain of L members is forwarded in round L (receivers then hold an
        # L+1-member chain).  Older chains are stale — every processor that
        # could validly extend them already has.
        chain: Optional[Chain] = None
        if (
            state.accepted_chain is not None
            and len(state.accepted_chain) == round_number
        ):
            chain = state.accepted_chain
        return broadcast(
            state.n,
            state.processor,
            ("chain-eba", chain, state.known_faulty),
        )

    def transition(
        self,
        state: _ChainState,
        round_number: int,
        received: Dict[ProcessorId, Message],
    ) -> State:
        known_faulty = set(state.known_faulty)
        # Silence from a processor proves it faulty (sending omissions):
        # everyone broadcasts every round until the horizon.
        for expected in range(state.n):
            if expected != state.processor and expected not in received:
                known_faulty.add(expected)
        for _, payload in received.items():
            _tag, _chain, reported_faulty = payload
            known_faulty |= reported_faulty

        accepted = state.accepted_chain
        accepted_at = state.accepted_at
        if accepted is None:
            for sender, payload in sorted(received.items()):
                _tag, chain, _reported = payload
                if chain is None:
                    continue
                if (
                    len(chain) == round_number
                    and chain[-1] == sender
                    and sender not in known_faulty
                    and state.processor not in chain
                    and len(set(chain)) == len(chain)
                ):
                    accepted = chain + (state.processor,)
                    accepted_at = round_number
                    break

        decided = state.decided
        if decided is None:
            if accepted is not None:
                decided = 0
            elif frozenset(known_faulty) == state.known_faulty:
                decided = 1  # no new failure news this round, no chain
        return replace(
            state,
            known_faulty=frozenset(known_faulty),
            accepted_chain=accepted,
            accepted_at=accepted_at,
            decided=decided,
            time=round_number,
        )

    def output(self, state: _ChainState) -> Optional[int]:
        return state.decided


def chain_eba() -> ChainEBA:
    """Construct the concrete 0-chain EBA protocol."""
    return ChainEBA()
