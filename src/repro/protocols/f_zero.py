"""``F₀``: the eventual-common-knowledge protocol of Section 3.2.

The paper's stepping stone toward continual common knowledge: a
full-information protocol whose decision rules use *eventual* common
knowledge ``C◇``::

    zero_i = B_i^N ( C◇_N ∃0 )
    one_i  = B_i^N ( C◇_N ∃1  ∧  □ ¬ C◇_N ∃0 )

Decide 0 on knowing there is eventual common knowledge of a 0; decide 1
only on knowing there can *never* be eventual common knowledge of a 0.
The asymmetric, overly cautious one-rule is forced exactly because ``C◇``
lacks the consistency property of ``C``/``C□`` (one processor can know
``C◇∃0`` while another knows ``C◇∃1``), and it is what makes ``F₀``
dominated: Section 3.2 sketches, and experiment E21 measures, protocols
that decide 1 strictly earlier — culminating in ``F*``.
"""

from __future__ import annotations

from ..core.decision_sets import DecisionPair
from ..knowledge.formulas import (
    Always,
    And,
    Believes,
    EventualCommon,
    Exists,
    Formula,
    Not,
)
from ..knowledge.nonrigid import NONFAULTY
from ..model.system import System
from .fip import pair_from_formulas
from .memo import per_system


@per_system
def f_zero_pair(system: System) -> DecisionPair:
    """The decision pair of ``F₀`` over *system*."""
    ec_zero = EventualCommon(NONFAULTY, Exists(0))
    ec_one = EventualCommon(NONFAULTY, Exists(1))

    def zero(processor: int) -> Formula:
        return Believes(processor, ec_zero)

    def one(processor: int) -> Formula:
        return Believes(processor, And((ec_one, Always(Not(ec_zero)))))

    return pair_from_formulas(system, zero, one, "F₀")
