"""Full-information protocols ``FIP(Z, O)`` (paper, Sections 2.4 and 5).

A full-information protocol relays complete states everywhere every round;
all FIPs share the same run space (only their output functions differ), so a
FIP here is simply a :class:`~repro.core.decision_sets.DecisionPair`
interpreted over an enumerated :class:`~repro.model.system.System`.

This module provides:

* :class:`FullInformationProtocol` — decisions, outcomes and decision-map
  extraction for a pair over a system;
* :func:`pair_from_formulas` — build a decision pair from per-processor
  knowledge formulas (the paper's "high-level protocols with tests for
  knowledge"), validating that the formulas are state-determined and closing
  them under perfect recall;
* the paper's running examples at the knowledge level live in the sibling
  modules :mod:`repro.protocols.f_lambda`, :mod:`repro.protocols.f_star` and
  :mod:`repro.protocols.chain_fip`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple
from weakref import WeakValueDictionary

from ..core.decision_sets import DecisionPair, close_under_recall
from ..core.outcomes import DecisionRecord, ProtocolOutcome, RunOutcome
from ..errors import EvaluationError, ProtocolViolationError
from ..knowledge.formulas import Formula
from ..model import kernels
from ..model.chunked import ChunkedAssignment
from ..model.system import BitsetAssignment, System
from ..model.views import ViewId


class FullInformationProtocol:
    """``FIP(Z, O)``: the unique full-information protocol with decision
    pair ``(Z, O)``.

    The pair's state sets must be closed under perfect recall ("decides or
    has decided"); a processor's decision value and time in a run are read
    off as the first time its state enters either set, with the earlier set
    winning.

    Simultaneous first entry into both sets deserves care.  For a
    *nonfaulty* processor it is impossible in any of the paper's
    constructions (``decide_i(0) ∧ decide_i(1)`` contradicts Proposition
    4.1(a), and ``B_i^N`` beliefs of a processor that really is in ``N`` are
    mutually consistent).  A *faulty* processor that knows it is faulty,
    however, satisfies ``B_i^N φ`` for every φ, so both rules can fire at
    once; the paper places no constraint on faulty processors' outputs, and
    we break the tie deterministically in favour of 0.  Use
    :meth:`conflicts` to enumerate tie-broken points;
    :meth:`assert_no_nonfaulty_conflicts` is the safety net tests rely on.
    """

    def __init__(self, pair: DecisionPair) -> None:
        self.pair = pair
        self._first_times: Dict[
            System, List[List[Tuple[Optional[int], Optional[int]]]]
        ] = {}
        self._sticky: Dict[System, DecisionPair] = {}

    @property
    def name(self) -> str:
        return self.pair.name

    def _firing_table(
        self, system: System
    ) -> List[List[Tuple[Optional[int], Optional[int]]]]:
        """First zero-/one-firing time per ``(run, processor)``.

        Scanned once per system and memoized on the protocol instance —
        ``outcome``, ``sticky_pair`` and ``conflicts`` all read the same
        table.  Under the packed kernels the scan is a union of same-state
        occurrence masks followed by one lowest-set-bit extraction per run
        window, instead of per-point set-membership tests (vectorized
        window extraction under the chunked kernel).
        """
        table = self._first_times.get(system)
        if table is not None:
            return table
        num_runs = len(system.runs)
        n = system.n
        table = [
            [(None, None)] * n for _ in range(num_runs)
        ]  # type: List[List[Tuple[Optional[int], Optional[int]]]]
        kernel = system.effective_kernel()
        if kernel == kernels.CHUNKED:
            index = system.chunked_index()
            zeros = self.pair.zeros
            ones = self.pair.ones
            for processor in range(n):
                zero_times = index.first_times(
                    index.states_mask(processor, zeros)
                )
                one_times = index.first_times(
                    index.states_mask(processor, ones)
                )
                for run_index in range(num_runs):
                    zero_time = zero_times[run_index]
                    one_time = one_times[run_index]
                    if zero_time is not None or one_time is not None:
                        table[run_index][processor] = (zero_time, one_time)
        elif kernel == kernels.BITSET:
            index = system.bitset_index()
            owners = index.view_owner
            width = index.width
            run_block = index.run_block
            zeros = self.pair.zeros
            ones = self.pair.ones
            zero_masks = [0] * n
            one_masks = [0] * n
            for view, gmask in index.view_masks.items():
                owner = owners[view]
                if view in zeros:
                    zero_masks[owner] |= gmask
                if view in ones:
                    one_masks[owner] |= gmask
            for processor in range(n):
                zeros_left = zero_masks[processor]
                ones_left = one_masks[processor]
                for run_index in range(num_runs):
                    if not zeros_left and not ones_left:
                        break
                    zero_bits = zeros_left & run_block
                    one_bits = ones_left & run_block
                    zeros_left >>= width
                    ones_left >>= width
                    if zero_bits or one_bits:
                        table[run_index][processor] = (
                            (zero_bits & -zero_bits).bit_length() - 1
                            if zero_bits
                            else None,
                            (one_bits & -one_bits).bit_length() - 1
                            if one_bits
                            else None,
                        )
        else:
            for run_index, run in enumerate(system.runs):
                row = table[run_index]
                for processor in range(n):
                    zero_time: Optional[int] = None
                    one_time: Optional[int] = None
                    for time in range(system.horizon + 1):
                        view = run.view(processor, time)
                        if self.pair.decides_zero(view):
                            zero_time = time
                        if self.pair.decides_one(view):
                            one_time = time
                        if zero_time is not None or one_time is not None:
                            break
                    row[processor] = (zero_time, one_time)
        self._first_times[system] = table
        return table

    def decision_for(
        self, system: System, run_index: int, processor: int
    ) -> DecisionRecord:
        """``(value, time)`` of the processor's decision in a run, if any."""
        zero_time, one_time = self._firing_table(system)[run_index][processor]
        if zero_time is None and one_time is None:
            return None
        if zero_time is not None and one_time is not None:
            # Tie-break simultaneous firing in favour of 0 (see class doc).
            return (
                (0, zero_time) if zero_time <= one_time else (1, one_time)
            )
        if zero_time is not None:
            return (0, zero_time)
        return (1, one_time)  # type: ignore[arg-type]

    def outcome(self, system: System) -> ProtocolOutcome:
        """Decisions of every processor in every run of *system*."""
        result = ProtocolOutcome(self.name)
        for run_index, run in enumerate(system.runs):
            decisions: List[DecisionRecord] = [
                self.decision_for(system, run_index, processor)
                for processor in range(system.n)
            ]
            result.add(
                RunOutcome(
                    config=run.config,
                    pattern=run.pattern,
                    decisions=tuple(decisions),
                    horizon=system.horizon,
                )
            )
        return result

    def conflicts(self, system: System) -> List[Tuple[int, int, int]]:
        """Points ``(run_index, processor, time)`` where both decision rules
        first fired simultaneously (tie-broken to 0)."""
        found: List[Tuple[int, int, int]] = []
        table = self._firing_table(system)
        for run_index in range(len(system.runs)):
            row = table[run_index]
            for processor in range(system.n):
                zero_time, one_time = row[processor]
                if (
                    zero_time is not None
                    and one_time is not None
                    and zero_time == one_time
                ):
                    found.append((run_index, processor, zero_time))
        return found

    def assert_no_nonfaulty_conflicts(self, system: System) -> None:
        """Raise unless every simultaneous-firing point belongs to a faulty
        processor (Proposition 4.1(a) forbids nonfaulty conflicts)."""
        for run_index, processor, time in self.conflicts(system):
            run = system.runs[run_index]
            if run.is_nonfaulty(processor):
                raise ProtocolViolationError(
                    f"{self.name}: nonfaulty processor {processor} would "
                    f"decide both values at time {time} of run "
                    f"(config={run.config}, pattern={run.pattern})"
                )

    def sticky_pair(self, system: System) -> DecisionPair:
        """The effective "decides or has decided" pair of this protocol.

        Membership in the raw sets after the *other* value already fired is
        masked out (decisions are irreversible), and the result is closed
        under recall.  For conflict-free monotone pairs — all the paper's
        constructions — this equals the original pair; the equality is
        asserted by tests as a sanity check.

        Memoized on the protocol instance per system (like
        :meth:`_firing_table`): evaluation caches key on the sticky
        pair's *token*, so phases of one process that both ask for it —
        a batch plan's prepare hook and its finalize-time ``run()`` —
        must see the same object.
        """
        memoized = self._sticky.get(system)
        if memoized is not None:
            return memoized
        zero_triggers: List[ViewId] = []
        one_triggers: List[ViewId] = []
        for run_index, run in enumerate(system.runs):
            for processor in range(system.n):
                record = self.decision_for(system, run_index, processor)
                if record is None:
                    continue
                value, time = record
                view = run.view(processor, time)
                (zero_triggers if value == 0 else one_triggers).append(view)
        all_states = list(system.occurring_views())
        sticky = DecisionPair(
            close_under_recall(zero_triggers, all_states, system.table),
            close_under_recall(one_triggers, all_states, system.table),
            name=self.pair.name,
        )
        self._sticky[system] = sticky
        return sticky


def pair_from_formulas(
    system: System,
    zero_formula: Callable[[int], Formula],
    one_formula: Callable[[int], Formula],
    name: str = "FIP",
    *,
    require_state_determined: bool = True,
) -> DecisionPair:
    """Build a decision pair from per-processor knowledge formulas.

    Args:
        system: The system over which the formulas are interpreted.
        zero_formula: ``i -> φ_i`` — processor ``i`` joins ``Z`` at states
            where ``φ_i`` holds.
        one_formula: Likewise for ``O``.
        name: Display name of the resulting pair.
        require_state_determined: Verify that each formula's truth is a
            function of the processor's local state (true for any formula of
            the form ``K_i ψ`` / ``B_i^S ψ``, which is what the paper's
            decision rules always use).  A violation raises
            :class:`~repro.errors.EvaluationError`.

    The trigger sets are closed under perfect recall, so the result is a
    legitimate "decides or has decided" pair even for non-monotone formulas.
    """
    zero_states: List[ViewId] = []
    one_states: List[ViewId] = []
    for which, factory, sink in (
        ("zero", zero_formula, zero_states),
        ("one", one_formula, one_states),
    ):
        for processor in range(system.n):
            truth = factory(processor).evaluate(system)
            if isinstance(truth, ChunkedAssignment) and require_state_determined:
                # Same subset test as the bitset branch, one sparse
                # popcount-free pass per state group over the limb-sliced
                # entry table (vectorized under the numpy backend).
                index = system.chunked_index()
                views, full_ids, mixed_ids = index.state_verdicts(
                    processor, truth.limbs
                )
                if mixed_ids:
                    raise EvaluationError(
                        f"{name}: {which}-formula for processor "
                        f"{processor} is not state-determined "
                        f"(state {views[mixed_ids[0]]} evaluates both ways)"
                    )
                sink.extend(views[g] for g in full_ids)
                continue
            if isinstance(truth, BitsetAssignment) and require_state_determined:
                # One subset test per distinct local state: the state's
                # occurrence mask is entirely inside the truth mask (holds
                # everywhere), disjoint from it (holds nowhere), or split —
                # which is exactly a state-determinism violation.
                index = system.bitset_index()
                mask = truth.mask
                owners = index.view_owner
                for view, gmask in index.view_masks.items():
                    if owners[view] != processor:
                        continue
                    overlap = mask & gmask
                    if overlap == gmask:
                        sink.append(view)
                    elif overlap:
                        raise EvaluationError(
                            f"{name}: {which}-formula for processor "
                            f"{processor} is not state-determined "
                            f"(state {view} evaluates both ways)"
                        )
                continue
            by_state: Dict[ViewId, bool] = {}
            for run_index, run in enumerate(system.runs):
                for time in range(system.horizon + 1):
                    view = run.view(processor, time)
                    value = truth.at(run_index, time)
                    if require_state_determined:
                        previous = by_state.get(view)
                        if previous is not None and previous != value:
                            raise EvaluationError(
                                f"{name}: {which}-formula for processor "
                                f"{processor} is not state-determined "
                                f"(state {view} evaluates both ways)"
                            )
                    by_state[view] = value
            sink.extend(view for view, value in by_state.items() if value)
    all_states = list(system.occurring_views())
    return DecisionPair(
        close_under_recall(zero_states, all_states, system.table),
        close_under_recall(one_states, all_states, system.table),
        name=name,
    )


#: Protocol instances memoized per pair: the protocol's firing table and
#: sticky pair are memoized *on the instance*, so handing the same pair
#: to ``fip`` twice must return the same instance for that memoization
#: (and the sticky token identity it guards) to engage.  Keyed weakly —
#: pairs die with the systems that built them.
_FIP_MEMO: "WeakValueDictionary[int, FullInformationProtocol]" = (
    WeakValueDictionary()
)


def fip(pair: DecisionPair) -> FullInformationProtocol:
    """Convenience constructor mirroring the paper's ``FIP(Z, O)``."""
    protocol = _FIP_MEMO.get(pair.token)
    if protocol is None or protocol.pair is not pair:
        protocol = FullInformationProtocol(pair)
        _FIP_MEMO[pair.token] = protocol
    return protocol
