"""Knowledge-level SBA: decide on *common knowledge* of an initial value.

[DM90]/[MT88] show that simultaneous Byzantine agreement is exactly the
problem of attaining common knowledge of an initial value among the
nonfaulty processors: deciding the moment ``C_N(∃v)`` holds is an *optimum*
SBA protocol (it is attained simultaneously by all nonfaulty processors —
the fixed-point axiom — and no SBA protocol can decide earlier).

Decision rules (0-preferring, state-determined via ``B_i^N``)::

    zero_i = B_i^N C_N ∃0
    one_i  = B_i^N (C_N ∃1 ∧ ¬ C_N ∃0)

This protocol is the paper's point of contrast for EBA (Section 1 /
[DRS90]): the freedom to decide at different times lets EBA protocols like
``P0opt`` decide much earlier than *any* simultaneous protocol.  Experiment
E12 measures the gap against this optimum-SBA yardstick and the concrete
``FloodSBA`` baseline.
"""

from __future__ import annotations

from ..core.decision_sets import DecisionPair
from ..knowledge.formulas import And, Believes, Common, Exists, Formula, Not
from ..knowledge.nonrigid import NONFAULTY
from ..model.system import System
from .fip import pair_from_formulas


def sba_common_knowledge_pair(system: System) -> DecisionPair:
    """The decision pair of the common-knowledge SBA protocol."""
    ck_zero = Common(NONFAULTY, Exists(0))
    ck_one = Common(NONFAULTY, Exists(1))

    def zero(processor: int) -> Formula:
        return Believes(processor, ck_zero)

    def one(processor: int) -> Formula:
        return Believes(processor, And((ck_one, Not(ck_zero))))

    return pair_from_formulas(system, zero, one, "SBA-CK")
