"""The synchronous round-based execution engine (paper, Section 2.3).

Executes a :class:`~repro.protocols.base.ConcreteProtocol` under an initial
configuration and a failure pattern:

* round ``k`` happens between times ``k - 1`` and ``k``;
* every processor first emits its round-``k`` messages from its time-
  ``k - 1`` state, the failure pattern drops the omitted/crashed ones, and
  each processor then transitions on what it received;
* decisions are read from the output function *at points* (times), matching
  the paper's convention that messages are sent *in rounds* and decisions
  are made *at times*.

Faulty processors run the same protocol code; only their outgoing messages
are filtered.  (In both failure modes of the paper the faulty processor's
*contents* are correct whenever a message is delivered — there is no
Byzantine corruption.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .. import trace as spantrace
from ..core.outcomes import DecisionRecord, ProtocolOutcome
from ..errors import ConfigurationError
from ..model.config import InitialConfiguration
from ..model.failures import FailurePattern, ProcessorId
from ..protocols.base import ConcreteProtocol, Message
from .trace import Trace

ScenarioKey = Tuple[InitialConfiguration, FailurePattern]


def execute(
    protocol: ConcreteProtocol,
    config: InitialConfiguration,
    pattern: FailurePattern,
    horizon: int,
    t: int,
) -> Trace:
    """Run *protocol* for *horizon* rounds under one scenario.

    Returns the full :class:`~repro.sim.trace.Trace`; use
    ``trace.to_outcome()`` for decision-only analysis.
    """
    n = config.n
    if horizon < 1:
        raise ConfigurationError(f"need horizon >= 1, got {horizon}")
    pattern.validate(n, t)
    with spantrace.span(
        "sim.execute", protocol=protocol.name, n=n, rounds=horizon
    ) as execute_span:
        trace = _execute_rounds(protocol, config, pattern, horizon, n, t)
        execute_span.set("sent", trace.total_sent())
        execute_span.set("delivered", trace.total_delivered())
    return trace


def _execute_rounds(
    protocol: ConcreteProtocol,
    config: InitialConfiguration,
    pattern: FailurePattern,
    horizon: int,
    n: int,
    t: int,
) -> Trace:
    """The round loop of :func:`execute` (split out for span bookkeeping)."""
    states = [
        protocol.initial_state(processor, n, t, config.value_of(processor))
        for processor in range(n)
    ]
    trace = Trace(
        protocol_name=protocol.name,
        config=config,
        pattern=pattern,
        horizon=horizon,
    )
    trace.states.append(tuple(states))

    decisions: List[DecisionRecord] = [None] * n
    for processor in range(n):
        value = protocol.output(states[processor])
        if value is not None:
            decisions[processor] = (value, 0)

    for round_number in range(1, horizon + 1):
        outboxes: List[Dict[ProcessorId, Message]] = []
        sent = 0
        for sender in range(n):
            outbox = {
                destination: payload
                for destination, payload in protocol.messages(
                    states[sender], round_number
                ).items()
                if payload is not None and destination != sender
            }
            for destination in outbox:
                if not 0 <= destination < n:
                    raise ConfigurationError(
                        f"{protocol.name}: processor {sender} addressed "
                        f"message to unknown destination {destination}"
                    )
            sent += len(outbox)
            outboxes.append(outbox)

        delivered = 0
        inboxes: List[Dict[ProcessorId, Message]] = [dict() for _ in range(n)]
        for sender in range(n):
            for destination, payload in outboxes[sender].items():
                if pattern.delivered(sender, destination, round_number):
                    inboxes[destination][sender] = payload
                    delivered += 1

        states = [
            protocol.transition(states[processor], round_number, inboxes[processor])
            for processor in range(n)
        ]
        trace.states.append(tuple(states))
        trace.sent_counts.append(sent)
        trace.delivered_counts.append(delivered)

        for processor in range(n):
            if decisions[processor] is None:
                value = protocol.output(states[processor])
                if value is not None:
                    decisions[processor] = (value, round_number)

    trace.decisions = decisions
    return trace


def run_over_scenarios(
    protocol: ConcreteProtocol,
    scenarios: Iterable[ScenarioKey],
    horizon: int,
    t: int,
) -> ProtocolOutcome:
    """Execute *protocol* over a scenario space, collecting outcomes.

    The scenario iterable is typically ``system.scenarios()`` for an
    enumerated system (so knowledge-level and concrete protocols are
    compared over identical corresponding runs) or a workload generator's
    output.
    """
    outcome = ProtocolOutcome(protocol.name)
    with spantrace.span(
        "sim.run_over_scenarios", protocol=protocol.name, rounds=horizon
    ) as batch_span:
        count = 0
        for config, pattern in scenarios:
            outcome.add(
                execute(protocol, config, pattern, horizon, t).to_outcome()
            )
            count += 1
        batch_span.set("scenarios", count)
    return outcome


def traces_over_scenarios(
    protocol: ConcreteProtocol,
    scenarios: Iterable[ScenarioKey],
    horizon: int,
    t: int,
) -> List[Trace]:
    """Like :func:`run_over_scenarios` but keeping the full traces."""
    return [
        execute(protocol, config, pattern, horizon, t)
        for config, pattern in scenarios
    ]
