"""Synchronous round-based execution of concrete protocols."""

from .engine import execute, run_over_scenarios, traces_over_scenarios
from .trace import Trace

__all__ = [
    "Trace",
    "execute",
    "run_over_scenarios",
    "traces_over_scenarios",
]
