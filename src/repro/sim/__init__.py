"""Synchronous round-based execution of concrete protocols, plus the
streaming knowledge monitor."""

from .engine import execute, run_over_scenarios, traces_over_scenarios
from .monitor import StreamingMonitor, monitor_scenario
from .trace import Trace

__all__ = [
    "StreamingMonitor",
    "Trace",
    "execute",
    "monitor_scenario",
    "run_over_scenarios",
    "traces_over_scenarios",
]
