"""Execution traces of concrete protocols.

A :class:`Trace` records everything observable about one execution: per-time
states, per-round message counts (sent by the protocol vs. actually
delivered after the failure pattern), and the decision record extracted from
the output function.  Traces convert to
:class:`~repro.core.outcomes.RunOutcome` for specification and domination
analysis, and feed the message-complexity metrics of experiment E14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.outcomes import DecisionRecord, RunOutcome
from ..model.config import InitialConfiguration
from ..model.failures import FailurePattern


@dataclass
class Trace:
    """Full record of one concrete-protocol execution.

    Attributes:
        protocol_name: The executed protocol's display name.
        config: Initial configuration of the run.
        pattern: Failure pattern of the run.
        horizon: Rounds executed; states exist for times ``0..horizon``.
        states: ``states[m][i]`` — processor ``i``'s state at time ``m``.
        decisions: Per-processor first decision ``(value, time)`` or
            ``None``.
        sent_counts: ``sent_counts[k]`` — messages emitted by all protocol
            instances in round ``k + 1`` (before failure filtering).
        delivered_counts: Same, after the failure pattern dropped messages.
    """

    protocol_name: str
    config: InitialConfiguration
    pattern: FailurePattern
    horizon: int
    states: List[Tuple[Any, ...]] = field(default_factory=list)
    decisions: List[DecisionRecord] = field(default_factory=list)
    sent_counts: List[int] = field(default_factory=list)
    delivered_counts: List[int] = field(default_factory=list)

    @property
    def n(self) -> int:
        return self.config.n

    def total_sent(self) -> int:
        return sum(self.sent_counts)

    def total_delivered(self) -> int:
        return sum(self.delivered_counts)

    def state_of(self, processor: int, time: int) -> Any:
        return self.states[time][processor]

    def to_outcome(self) -> RunOutcome:
        """Project the trace onto the decision-only :class:`RunOutcome`."""
        return RunOutcome(
            config=self.config,
            pattern=self.pattern,
            decisions=tuple(self.decisions),
            horizon=self.horizon,
        )
