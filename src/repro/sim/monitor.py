"""Streaming K/E/C□ monitor: online verdicts as rounds arrive.

The batch pipeline answers "what holds at ``(r, m)``" after enumerating a
whole ``(mode, n, t, horizon)`` cell.  A *monitor* instead follows one live
scenario — a fixed initial configuration and failure pattern — and after
each observed round reports what is known **now**: per-processor
``K_i ∃v``, ``E_N ∃v`` and continual common knowledge ``C□_N ∃v`` at the
current point of the current run.

Each :meth:`StreamingMonitor.advance` grows the ambient system by one
round through :meth:`~repro.model.provider.SystemProvider.extend` — the
incremental path that reuses the previous horizon's enumeration and pays
only the new round — then locates the run of the scenario's *truncated*
pattern (the observable prefix, :func:`~repro.model.failures.
truncate_pattern`) and evaluates the formulas at the new horizon.  The
per-round cost is therefore the extension delta plus three formula
sweeps, not a cold rebuild; intermediate systems stay in the provider's
LRU so round ``r+1`` always extends round ``r``.

Observability: every round updates the ``monitor_horizon`` gauge, the
``monitor_round_seconds`` histogram and the ``monitor_rounds`` counter,
and (when a :class:`~repro.obs.journal.TelemetryJournal` is attached)
emits one schema-validated ``monitor_round`` journal event.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .. import obs, trace
from ..errors import ConfigurationError
from ..model.config import InitialConfiguration
from ..model.failures import (
    CrashBehavior,
    FailureMode,
    FailurePattern,
    OmissionBehavior,
    ReceiveOmissionBehavior,
    truncate_pattern,
)
from ..model.provider import SystemProvider, get_provider

__all__ = ["StreamingMonitor", "canonicalize_pattern", "monitor_scenario"]


def canonicalize_pattern(
    pattern: FailurePattern, n: int
) -> FailurePattern:
    """*pattern* rewritten into the exhaustive adversaries' canonical form.

    User-specified patterns (e.g. from the CLI fault mini-language) may be
    observationally canonical-equivalent without being literally canonical:
    a crash delivering its final round to *everyone* is the same run as a
    crash one round later delivering nothing, and self-directed omissions
    are vacuous.  Enumerated systems index runs by canonical patterns, so
    the monitor normalizes before looking scenarios up.
    """
    behaviors = []
    for processor, behavior in pattern.behaviors:
        if isinstance(behavior, CrashBehavior):
            receivers = behavior.receivers - {processor}
            if len(receivers) == n - 1:
                behavior = CrashBehavior(
                    behavior.crash_round + 1, frozenset()
                )
            else:
                behavior = CrashBehavior(behavior.crash_round, receivers)
        elif isinstance(behavior, OmissionBehavior):
            behavior = OmissionBehavior(
                [(r, s - {processor}) for r, s in behavior.omissions]
            )
        elif isinstance(behavior, ReceiveOmissionBehavior):
            behavior = ReceiveOmissionBehavior(
                [(r, s - {processor}) for r, s in behavior.omissions]
            )
        behaviors.append((processor, behavior))
    return FailurePattern(behaviors)


class StreamingMonitor:
    """Online knowledge verdicts for one live scenario.

    Args:
        mode: Failure mode of the ambient system (every behaviour in
            *pattern* must belong to it).
        n, t: System parameters.
        config: The scenario's initial configuration (``config.n == n``).
        pattern: The scenario's full failure pattern.  Behaviours may
            schedule failures arbitrarily far in the future; each round
            only their observable prefix matters.
        value: The initial value whose existence is monitored (``∃value``).
        provider: System provider to extend through; defaults to the
            process-wide one.
        journal: Optional telemetry journal receiving one
            ``monitor_round`` event per round.
        on_round: Optional callback invoked with each round's record as
            soon as it is computed — the streaming hook the serve daemon
            uses to push verdicts to a connected client round by round.
    """

    def __init__(
        self,
        mode: FailureMode,
        n: int,
        t: int,
        config: InitialConfiguration,
        pattern: FailurePattern,
        *,
        value: int = 1,
        provider: Optional[SystemProvider] = None,
        journal=None,
        on_round=None,
    ) -> None:
        if config.n != n:
            raise ConfigurationError(
                f"configuration has {config.n} bits but n={n}"
            )
        pattern = canonicalize_pattern(pattern, n).validate(n, t)
        for _, behavior in pattern.behaviors:
            from ..model.failures import behavior_mode

            if behavior_mode(behavior) is not mode:
                raise ConfigurationError(
                    f"behaviour {behavior!r} is not a {mode} behaviour"
                )
        self.mode = mode
        self.n = n
        self.t = t
        self.config = config
        self.pattern = pattern
        self.value = value
        self.provider = provider if provider is not None else get_provider()
        self.journal = journal
        self.on_round = on_round
        self.round = 0
        self.history: List[Dict[str, object]] = []

    def advance(self) -> Dict[str, object]:
        """Feed one more round; evaluate and record the online verdicts."""
        from ..knowledge.formulas import (
            ContinualCommon,
            Everyone,
            Knows,
            exists,
        )
        from ..knowledge.nonrigid import NONFAULTY

        self.round += 1
        started = time.perf_counter()
        with trace.span(
            "monitor_round", round=self.round, mode=self.mode.value
        ):
            system = self.provider.extend(
                self.mode, self.n, self.t, self.round
            )
            observed = truncate_pattern(self.pattern, self.round, self.n)
            run_index = system.run_index_for(self.config, observed)
            phi = exists(self.value)
            knows = [
                bool(
                    Knows(p, phi).holds_at(system, run_index, self.round)
                )
                for p in range(self.n)
            ]
            everyone = bool(
                Everyone(NONFAULTY, phi).holds_at(
                    system, run_index, self.round
                )
            )
            continual = bool(
                ContinualCommon(NONFAULTY, phi).holds_at(
                    system, run_index, self.round
                )
            )
        seconds = time.perf_counter() - started
        verdicts: Dict[str, object] = {
            "knows": knows,
            "everyone": everyone,
            "continual_common": continual,
        }
        obs.gauge("monitor_horizon", self.round)
        obs.observe("monitor_round_seconds", seconds)
        obs.count("monitor_rounds")
        if self.journal is not None:
            self.journal.emit(
                "monitor_round",
                round=self.round,
                horizon=system.horizon,
                seconds=seconds,
                verdicts=verdicts,
            )
        record: Dict[str, object] = {
            "round": self.round,
            "run_index": run_index,
            "observed_pattern": str(observed),
            "seconds": seconds,
            "verdicts": verdicts,
        }
        self.history.append(record)
        if self.on_round is not None:
            self.on_round(record)
        return record

    def run(self, rounds: int) -> List[Dict[str, object]]:
        """Advance *rounds* times; the per-round records, oldest first."""
        if rounds < 1:
            raise ConfigurationError(f"need rounds >= 1, got {rounds}")
        return [self.advance() for _ in range(rounds)]


def monitor_scenario(
    mode: FailureMode,
    n: int,
    t: int,
    config: InitialConfiguration,
    pattern: FailurePattern,
    rounds: int,
    *,
    value: int = 1,
    provider: Optional[SystemProvider] = None,
    journal=None,
) -> List[Dict[str, object]]:
    """Run a :class:`StreamingMonitor` for *rounds* rounds."""
    monitor = StreamingMonitor(
        mode,
        n,
        t,
        config,
        pattern,
        value=value,
        provider=provider,
        journal=journal,
    )
    return monitor.run(rounds)
