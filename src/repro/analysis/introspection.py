"""Structural introspection of full-information views.

A full-information local state embeds, recursively, everything its owner
ever heard.  These helpers decode that structure into flat, queryable
tables — "which deliveries does this processor know about", "which
processors does it know to be faulty, and since when" — which power both
the human-facing reports in :mod:`repro.analysis.knowledge_report` and the
view-local decision rules (e.g. the DM90-style waste protocol in
:mod:`repro.protocols.dm90`).

Unlike the formula layer (:mod:`repro.knowledge`), these functions read a
*single* view structurally; they compute what is *visible*, which is a
sound lower bound on what is *known* (knowledge additionally quantifies
over indistinguishable runs).  For failure evidence in the crash and
sending-omission modes, visible-miss and knowable-miss coincide: a missing
delivery from an expected sender proves faultiness outright.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from ..model.views import ViewId, ViewTable

#: (processor, round) -> the senders that processor heard from in that
#: round, as far as the inspected view can see.
DeliveryTable = Dict[Tuple[int, int], FrozenSet[int]]


def visible_deliveries(table: ViewTable, view: ViewId) -> DeliveryTable:
    """Every round-delivery fact embedded in *view*.

    Walks the view DAG once (iteratively — views can be deep) and records,
    for each embedded ``(processor, time > 0)`` state, the sender set of
    its last round.  If the same processor-time state is reachable along
    several paths the entries agree (full-information states are unique per
    processor and time within a run), so first-wins is safe.
    """
    deliveries: DeliveryTable = {}
    stack = [view]
    seen = set()
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        info = table.info(current)
        if info.time > 0:
            key = (info.processor, info.time)
            if key not in deliveries:
                deliveries[key] = info.senders
            if info.previous is not None:
                stack.append(info.previous)
        for _, sender_view in info.heard_from:
            stack.append(sender_view)
    return deliveries


def failure_evidence(
    table: ViewTable, view: ViewId, n: int
) -> Dict[int, int]:
    """Earliest failure round provable from *view*, per processor.

    Returns ``{processor: round}`` where *round* is the earliest round in
    which the view contains evidence that *processor* omitted a required
    message (some embedded state of another processor did not hear from it
    that round).  Sound in the crash and sending-omission modes, where
    every processor is required to send to everyone each round and
    nonfaulty processors always deliver.
    """
    evidence: Dict[int, int] = {}
    for (receiver, round_number), heard in visible_deliveries(
        table, view
    ).items():
        for processor in range(n):
            if processor == receiver or processor in heard:
                continue
            previous = evidence.get(processor)
            if previous is None or round_number < previous:
                evidence[processor] = round_number
    return evidence


def discovered_failure_counts(
    table: ViewTable, view: ViewId, n: int
) -> Dict[int, int]:
    """``D(j)`` — how many processors are known failed *by round j*.

    ``D(j)`` counts processors whose earliest failure evidence round is
    ``<= j``; defined for ``j = 1 .. time(view)``.  This is the quantity
    the DM90-style waste is computed from.
    """
    evidence = failure_evidence(table, view, n)
    time = table.time_of(view)
    return {
        j: sum(1 for round_number in evidence.values() if round_number <= j)
        for j in range(1, time + 1)
    }


def waste(table: ViewTable, view: ViewId, n: int) -> int:
    """The run's *waste* as visible from *view*: ``max_j (D(j) - j, 0)``.

    [DM90]'s measure of how much the failure pattern "wasted" its budget:
    ``D(j) - j > 0`` means more failures were exposed by round ``j`` than
    rounds have passed, which brings common knowledge — and therefore the
    optimum simultaneous decision — forward by exactly that amount.
    """
    best = 0
    for j, count in discovered_failure_counts(table, view, n).items():
        best = max(best, count - j)
    return best
