"""Analysis and diagnostics: diagrams, knowledge reports, component
inspection and view introspection."""

from .components import (
    ComponentSummary,
    ReachabilityLink,
    component_summaries,
    witness_path,
)
from .diagram import (
    render_decision_timeline,
    render_outcome_diagram,
    render_run_diagram,
)
from .introspection import (
    discovered_failure_counts,
    failure_evidence,
    visible_deliveries,
    waste,
)
from .knowledge_report import belief_matrix, knowledge_table, who_learns_value

__all__ = [
    "ComponentSummary",
    "ReachabilityLink",
    "belief_matrix",
    "component_summaries",
    "discovered_failure_counts",
    "failure_evidence",
    "knowledge_table",
    "render_decision_timeline",
    "render_outcome_diagram",
    "render_run_diagram",
    "visible_deliveries",
    "waste",
    "who_learns_value",
]
