"""Human-facing knowledge reports: who knows what, when.

Produces the "epistemic trace" of a run: for each time step and processor,
the truth of a chosen set of formulas — the table one draws on the
whiteboard when working through an agreement argument.  Used by the
examples and handy in a REPL when debugging a protocol's decision rule.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..knowledge.formulas import Believes, Exists, Formula
from ..knowledge.nonrigid import NONFAULTY
from ..metrics.tables import render_table
from ..model.system import System


def knowledge_table(
    system: System,
    run_index: int,
    formulas: Sequence[Tuple[str, Formula]],
) -> str:
    """Render the truth of labelled formulas at every point of one run.

    Args:
        system: The enumerated system the formulas are interpreted over.
        run_index: Which run to trace.
        formulas: ``(label, formula)`` pairs; each becomes a column.
    """
    run = system.runs[run_index]
    headers = ["time"] + [label for label, _ in formulas]
    evaluated = [
        (label, formula.evaluate(system)) for label, formula in formulas
    ]
    rows: List[List[object]] = []
    for time in range(system.horizon + 1):
        row: List[object] = [time]
        for _, truth in evaluated:
            row.append("T" if truth.at(run_index, time) else ".")
        rows.append(row)
    title = (
        f"run: config={run.config} {run.pattern} "
        f"nonfaulty={sorted(run.nonfaulty)}"
    )
    return title + "\n" + render_table(headers, rows)


def belief_matrix(
    system: System, run_index: int, operand: Formula, label: str = "φ"
) -> str:
    """Per-processor, per-time truth of ``B_i^N operand`` in one run.

    The workhorse view when tracing a decision rule: columns are
    processors, rows are times, ``T`` marks points where the processor
    believes the fact (relative to the nonfaulty set).
    """
    run = system.runs[run_index]
    beliefs = [
        Believes(processor, operand, NONFAULTY).evaluate(system)
        for processor in range(system.n)
    ]
    headers = ["time"] + [
        f"B_{processor}^N {label}"
        + ("" if run.is_nonfaulty(processor) else " (faulty)")
        for processor in range(system.n)
    ]
    rows = []
    for time in range(system.horizon + 1):
        rows.append(
            [time]
            + [
                "T" if beliefs[processor].at(run_index, time) else "."
                for processor in range(system.n)
            ]
        )
    return render_table(headers, rows)


def who_learns_value(
    system: System, run_index: int, value: int
) -> Dict[int, int]:
    """First time each processor believes ``∃value`` in a run
    (``B_i^N ∃value``); processors that never learn are absent."""
    result: Dict[int, int] = {}
    for processor in range(system.n):
        truth = Believes(processor, Exists(value), NONFAULTY).evaluate(system)
        for time in range(system.horizon + 1):
            if truth.at(run_index, time):
                result[processor] = time
                break
    return result
