"""ASCII space-time diagrams of runs and traces.

Renders a run as a processor-by-time grid in the style distributed-systems
papers draw executions: one row per processor, one column per time step,
with markers for decisions, crashes and dropped messages.  Works for both
enumerated full-information runs (:class:`repro.model.runs.Run`) and
simulator traces (:class:`repro.sim.trace.Trace`).

Example output for the "whisper" run of ``examples/omission_chains.py``::

    time      0      1      2      3
    p0*      [0]    D0     .      .        faulty: omit r1-[2];r2-[2];r3-[2]
    p1       [1]    D0     .      .
    p2       [1]    x0     D0     .

    x0 = message from p0 dropped this round; Dv = decides v.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.outcomes import DecisionRecord, RunOutcome
from ..model.config import InitialConfiguration
from ..model.failures import FailurePattern


def _drop_markers(
    pattern: FailurePattern, n: int, horizon: int
) -> Dict[Tuple[int, int], List[int]]:
    """(receiver, round) -> senders whose message was dropped."""
    drops: Dict[Tuple[int, int], List[int]] = {}
    for round_number in range(1, horizon + 1):
        for receiver in range(n):
            for sender in range(n):
                if sender == receiver:
                    continue
                if not pattern.delivered(sender, receiver, round_number):
                    drops.setdefault((receiver, round_number), []).append(
                        sender
                    )
    return drops


def render_run_diagram(
    config: InitialConfiguration,
    pattern: FailurePattern,
    horizon: int,
    decisions: Optional[Sequence[DecisionRecord]] = None,
) -> str:
    """Render one scenario (and optional decisions) as an ASCII diagram.

    Args:
        config: Initial values, shown in brackets at time 0.
        pattern: Failure pattern; faulty processors get a ``*`` and a
            trailing behaviour note, dropped messages an ``x<sender>``
            marker in the round they were lost.
        horizon: Number of rounds to draw.
        decisions: Optional per-processor ``(value, time)`` records; the
            decision time is marked ``Dv``.
    """
    n = config.n
    drops = _drop_markers(pattern, n, horizon)
    decision_at: Dict[Tuple[int, int], int] = {}
    if decisions is not None:
        for processor, record in enumerate(decisions):
            if record is not None:
                value, time = record
                decision_at[(processor, time)] = value

    width = 7
    header = "time".ljust(5) + "".join(
        str(time).center(width) for time in range(horizon + 1)
    )
    lines = [header]
    faulty = pattern.faulty
    for processor in range(n):
        star = "*" if processor in faulty else " "
        cells = []
        for time in range(horizon + 1):
            parts = []
            if time == 0:
                parts.append(f"[{config.value_of(processor)}]")
            dropped = drops.get((processor, time))
            if dropped:
                parts.append("x" + ",".join(str(s) for s in sorted(dropped)))
            if (processor, time) in decision_at:
                parts.append(f"D{decision_at[(processor, time)]}")
            cells.append(("+".join(parts) if parts else ".").center(width))
        line = f"p{processor}{star}".ljust(5) + "".join(cells)
        behavior = pattern.behavior_of(processor)
        if behavior is not None:
            note = str(
                FailurePattern({processor: behavior})
            ).removeprefix("FailurePattern(").removesuffix(")")
            line += f"   {note}"
        lines.append(line)
    lines.append("")
    lines.append(
        "legend: [v] initial value; x<s> message from p<s> dropped this "
        "round; Dv decides v; * faulty."
    )
    return "\n".join(lines)


def render_outcome_diagram(run: RunOutcome) -> str:
    """Diagram a :class:`RunOutcome` (scenario + recorded decisions)."""
    return render_run_diagram(
        run.config, run.pattern, run.horizon, run.decisions
    )


def render_decision_timeline(
    outcomes: Sequence[RunOutcome], names: Sequence[str]
) -> str:
    """Side-by-side decision timelines of corresponding runs.

    All outcomes must describe the same scenario; one row per nonfaulty
    processor, one column per protocol, cells ``v@t``.
    """
    if not outcomes:
        return "(no runs)"
    key = outcomes[0].scenario_key()
    for run in outcomes[1:]:
        if run.scenario_key() != key:
            raise ValueError("decision timelines need corresponding runs")
    nonfaulty = sorted(outcomes[0].nonfaulty)
    width = max(12, max(len(name) for name in names) + 2)
    header = "proc".ljust(6) + "".join(name.center(width) for name in names)
    lines = [header]
    for processor in nonfaulty:
        cells = []
        for run in outcomes:
            record = run.decisions[processor]
            cells.append(
                ("never" if record is None else f"{record[0]}@t{record[1]}")
                .center(width)
            )
        lines.append(f"p{processor}".ljust(6) + "".join(cells))
    return "\n".join(lines)
