"""Reachability-component inspection for continual common knowledge.

Corollary 3.3 reduces ``C□_S φ`` (for run-level φ) to a question about
*S-□-reachability components* over runs.  This module exposes those
components for inspection: their sizes, which facts hold uniformly inside
each, and — the part proofs need — an explicit *witness path* of
(run, processor, state) links explaining **why** two runs are mutually
reachable.  The Proposition 6.3 analysis in the examples uses witness
paths to show exactly how a perturbed run escapes `C□∃1`.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..knowledge.formulas import Formula
from ..knowledge.nonrigid import NonrigidSet
from ..knowledge.semantics import run_reachability_components
from ..model.system import System


@dataclass
class ComponentSummary:
    """One S-□-reachability component.

    Attributes:
        representative: Union-find representative run index.
        run_indices: Members, in run order.
        fact_uniform: For each labelled fact, whether it holds in *every*
            member run (the condition under which ``C□_S fact`` holds
            throughout the component).
    """

    representative: int
    run_indices: List[int]
    fact_uniform: Dict[str, bool]


def component_summaries(
    system: System,
    nonrigid: NonrigidSet,
    facts: Dict[str, Formula] = None,
) -> List[ComponentSummary]:
    """All components of *nonrigid* over *system*, largest first.

    Runs with no ``S`` occurrence (where every ``C□_S φ`` holds vacuously)
    are not part of any component and are omitted.
    """
    facts = facts or {}
    components = run_reachability_components(system, nonrigid)
    members: Dict[int, List[int]] = defaultdict(list)
    for run_index, representative in enumerate(components):
        if representative != -1:
            members[representative].append(run_index)
    evaluated = {
        label: formula.evaluate(system) for label, formula in facts.items()
    }
    summaries = []
    for representative, run_indices in members.items():
        uniform = {
            label: all(truth.at(run_index, 0) for run_index in run_indices)
            for label, truth in evaluated.items()
        }
        summaries.append(
            ComponentSummary(representative, run_indices, uniform)
        )
    summaries.sort(key=lambda summary: -len(summary.run_indices))
    return summaries


@dataclass(frozen=True)
class ReachabilityLink:
    """One step of an S-□-reachability witness path.

    Processor *processor*, while in ``S`` at both endpoints, has the same
    local state at time *time_a* of run *run_a* and time *time_b* of run
    *run_b*.
    """

    run_a: int
    time_a: int
    run_b: int
    time_b: int
    processor: int

    def describe(self, system: System) -> str:
        config_a = system.runs[self.run_a].config
        config_b = system.runs[self.run_b].config
        return (
            f"p{self.processor}@t{self.time_a} of run#{self.run_a} "
            f"(config={config_a}) is indistinguishable from "
            f"p{self.processor}@t{self.time_b} of run#{self.run_b} "
            f"(config={config_b})"
        )


def witness_path(
    system: System,
    nonrigid: NonrigidSet,
    source_run: int,
    target_run: int,
) -> Optional[List[ReachabilityLink]]:
    """A shortest chain of state-sharing links from one run to another.

    Returns ``None`` when the target is not S-□-reachable from the source.
    BFS over the run graph whose edges are shared ``(processor ∈ S,
    state)`` occurrences — each returned link is one edge, directly
    checkable against the definition of S-□-reachability.
    """
    members = nonrigid.members_matrix(system)
    occurrences: Dict[int, List[Tuple[int, int, int]]] = defaultdict(list)
    for run_index, run in enumerate(system.runs):
        for time in range(system.horizon + 1):
            for processor in members[run_index][time]:
                occurrences[run.view(processor, time)].append(
                    (run_index, time, processor)
                )

    adjacency: Dict[int, List[ReachabilityLink]] = defaultdict(list)
    for view, points in occurrences.items():
        if len(points) < 2:
            continue
        anchor_run, anchor_time, processor = points[0]
        for run_index, time, _ in points[1:]:
            link = ReachabilityLink(
                anchor_run, anchor_time, run_index, time, processor
            )
            adjacency[anchor_run].append(link)
            adjacency[run_index].append(
                ReachabilityLink(
                    run_index, time, anchor_run, anchor_time, processor
                )
            )

    if source_run == target_run:
        return []
    queue = deque([source_run])
    parents: Dict[int, ReachabilityLink] = {}
    visited = {source_run}
    while queue:
        current = queue.popleft()
        for link in adjacency.get(current, []):
            nxt = link.run_b
            if nxt in visited:
                continue
            visited.add(nxt)
            parents[nxt] = link
            if nxt == target_run:
                path = []
                walk = target_run
                while walk != source_run:
                    link = parents[walk]
                    path.append(link)
                    walk = link.run_a
                path.reverse()
                return path
            queue.append(nxt)
    return None
