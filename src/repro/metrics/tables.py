"""Plain-text table rendering for experiment reports.

No third-party dependency: the experiment harness and the CLI print
fixed-width tables that read well in terminals and in ``EXPERIMENTS.md``
code blocks.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a fixed-width table with a header rule.

    Cells are stringified with ``str``; ``None`` renders as ``-``.
    """
    materialized: List[List[str]] = [
        ["-" if cell is None else str(cell) for cell in row] for row in rows
    ]
    header_row = [str(h) for h in headers]
    widths = [len(h) for h in header_row]
    for row in materialized:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.extend([0] * (index + 1 - len(widths)))
            widths[index] = max(widths[index], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(row)
        ).rstrip()

    lines = [fmt(header_row), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def format_float(value: object, digits: int = 2) -> str:
    """Format a float (or None) for a table cell."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)
