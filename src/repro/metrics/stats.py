"""Decision-time and message-complexity statistics.

Summaries over :class:`~repro.core.outcomes.ProtocolOutcome` objects and
:class:`~repro.sim.trace.Trace` lists, used by the experiment harness to
print the paper-style comparison rows (who decides when, by how much one
protocol beats another, how many messages each costs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.outcomes import ProtocolOutcome
from ..sim.trace import Trace


@dataclass(frozen=True)
class DecisionTimeStats:
    """Distribution summary of nonfaulty decision times.

    Attributes:
        protocol_name: Whose decisions were summarized.
        count: Number of (run, nonfaulty processor) decision samples.
        undecided: Samples with no decision within the horizon.
        mean: Mean decision time over decided samples (``None`` if none).
        maximum / minimum: Extremes over decided samples.
        histogram: time -> number of decisions at that time.
    """

    protocol_name: str
    count: int
    undecided: int
    mean: Optional[float]
    maximum: Optional[int]
    minimum: Optional[int]
    histogram: Tuple[Tuple[int, int], ...]

    def histogram_dict(self) -> Dict[int, int]:
        return dict(self.histogram)


def decision_time_stats(outcome: ProtocolOutcome) -> DecisionTimeStats:
    """Summarize nonfaulty decision times of *outcome*."""
    times = outcome.decision_times()
    histogram: Dict[int, int] = {}
    for time in times:
        histogram[time] = histogram.get(time, 0) + 1
    return DecisionTimeStats(
        protocol_name=outcome.name,
        count=len(times) + outcome.undecided_count(),
        undecided=outcome.undecided_count(),
        mean=(sum(times) / len(times)) if times else None,
        maximum=max(times) if times else None,
        minimum=min(times) if times else None,
        histogram=tuple(sorted(histogram.items())),
    )


@dataclass(frozen=True)
class MessageStats:
    """Message-complexity summary over a set of traces."""

    protocol_name: str
    runs: int
    total_sent: int
    total_delivered: int
    mean_sent_per_run: float

    @property
    def mean_delivered_per_run(self) -> float:
        return self.total_delivered / self.runs if self.runs else 0.0


def message_stats(traces: Sequence[Trace]) -> MessageStats:
    """Summarize message complexity of concrete-protocol traces."""
    total_sent = sum(trace.total_sent() for trace in traces)
    total_delivered = sum(trace.total_delivered() for trace in traces)
    runs = len(traces)
    return MessageStats(
        protocol_name=traces[0].protocol_name if traces else "-",
        runs=runs,
        total_sent=total_sent,
        total_delivered=total_delivered,
        mean_sent_per_run=total_sent / runs if runs else 0.0,
    )


def mean_decision_gap(
    slower: ProtocolOutcome, faster: ProtocolOutcome
) -> Optional[float]:
    """Mean (slower - faster) decision-time gap over shared samples.

    Only (run, processor) samples decided under *both* protocols
    contribute; a positive value means *faster* really is faster on
    average.
    """
    gaps: List[int] = []
    for key in faster.common_scenarios(slower):
        run_fast = faster.get(key)
        run_slow = slower.get(key)
        for processor in run_fast.nonfaulty:
            fast_time = run_fast.decision_time(processor)
            slow_time = run_slow.decision_time(processor)
            if fast_time is not None and slow_time is not None:
                gaps.append(slow_time - fast_time)
    return sum(gaps) / len(gaps) if gaps else None


def per_time_cumulative_share(
    outcome: ProtocolOutcome, max_time: int
) -> List[float]:
    """Fraction of nonfaulty decisions made by each time ``0..max_time``.

    The decision-time CDF used by the EBA-vs-SBA comparison figure
    (experiment E12).
    """
    times = outcome.decision_times()
    total = len(times) + outcome.undecided_count()
    if total == 0:
        return [0.0] * (max_time + 1)
    shares: List[float] = []
    for cutoff in range(max_time + 1):
        shares.append(sum(1 for time in times if time <= cutoff) / total)
    return shares
