"""Metrics: decision-time statistics, message complexity and table output."""

from .stats import (
    DecisionTimeStats,
    MessageStats,
    decision_time_stats,
    mean_decision_gap,
    message_stats,
    per_time_cumulative_share,
)
from .tables import format_float, render_table

__all__ = [
    "DecisionTimeStats",
    "MessageStats",
    "decision_time_stats",
    "format_float",
    "mean_decision_gap",
    "message_stats",
    "per_time_cumulative_share",
    "render_table",
]
