"""Deterministic fault injection for the shard pool (tests and drills).

The ``REPRO_EXEC_FAULTS`` environment variable carries a comma-separated
list of fault directives, each of the form::

    mode:shard_id[@attempt]

where *mode* is one of

* ``kill`` — the worker SIGKILLs itself mid-shard (a genuine process
  death, exercising dead-worker detection and respawn);
* ``hang`` — the worker sleeps far past any configured shard timeout
  (exercising timeout-triggered retry);
* ``corrupt`` — the worker mangles the payload bytes after computing the
  checksum, so the supervisor's integrity check rejects the result
  (exercising checksum-triggered retry).

The optional ``@attempt`` (default ``0``) restricts the fault to one
specific attempt of the shard, so a faulted shard's *retry* runs clean and
the batch completes — which is exactly what the crash/retry/resume tests
assert.  Workers parse the spec once at startup; because the spec is pure
data in the environment, fault schedules are fully deterministic and
reproducible.

Malformed specs raise :class:`~repro.errors.ConfigurationError` naming the
variable and the offending value, matching the ``REPRO_BUILD_WORKERS``
convention.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError

#: Environment variable holding the fault-injection spec.
FAULTS_ENV = "REPRO_EXEC_FAULTS"

#: Recognized fault modes.
FAULT_MODES = ("kill", "hang", "corrupt")

#: How long a ``hang`` fault sleeps — far beyond any sane shard timeout.
HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultAction:
    """One parsed fault directive."""

    mode: str
    shard_id: str
    attempt: int = 0


def parse_faults(text: str) -> Dict[str, FaultAction]:
    """Parse a fault spec into ``{shard_id: action}`` (empty spec → ``{}``)."""
    plan: Dict[str, FaultAction] = {}
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        mode, sep, rest = entry.partition(":")
        mode = mode.strip().lower()
        if not sep or not rest.strip():
            raise ConfigurationError(
                f"{FAULTS_ENV} entry {entry!r} must look like "
                f"mode:shard_id[@attempt]"
            )
        if mode not in FAULT_MODES:
            raise ConfigurationError(
                f"{FAULTS_ENV} entry {entry!r} has unknown fault mode "
                f"{mode!r}; expected one of {', '.join(FAULT_MODES)}"
            )
        shard_id, at_sep, attempt_text = rest.strip().rpartition("@")
        attempt = 0
        if at_sep:
            try:
                attempt = int(attempt_text)
            except ValueError:
                attempt = -1
            if attempt < 0:
                raise ConfigurationError(
                    f"{FAULTS_ENV} entry {entry!r} has invalid attempt "
                    f"{attempt_text!r}; expected an integer >= 0"
                )
        else:
            shard_id = rest.strip()
        if not shard_id:
            raise ConfigurationError(
                f"{FAULTS_ENV} entry {entry!r} is missing a shard id"
            )
        plan[shard_id] = FaultAction(mode=mode, shard_id=shard_id, attempt=attempt)
    return plan


def active_faults() -> Dict[str, FaultAction]:
    """The fault plan from the current environment (``{}`` if unset)."""
    return parse_faults(os.environ.get(FAULTS_ENV, ""))


def fault_for(
    plan: Dict[str, FaultAction], shard_id: str, attempt: int
) -> Optional[FaultAction]:
    """The fault to apply to this attempt of this shard, if any."""
    action = plan.get(shard_id)
    if action is not None and action.attempt == attempt:
        return action
    return None
