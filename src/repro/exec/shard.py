"""Shard descriptors, deterministic chunking and the worker task registry.

A :class:`Shard` is the unit of scheduling: a stable id, the name of a
registered task, and a JSON-serializable parameter dict.  Shard ids and
parameters are derived purely from the experiment's parameters and the
system's deterministic enumeration order, so the same batch always produces
the same shard set — which is what makes checkpoints addressable and
resume sound.

Tasks are plain functions ``params -> payload`` registered by name with
:func:`register_task`.  Workers are forked from the supervisor *after* the
stage's ``prepare`` hook has loaded any heavy shared state (typically the
enumerated :class:`~repro.model.system.System`) into the module-level
worker context, so children inherit it copy-on-write instead of
re-deserializing it per process (the same trick as the parallel system
builder in :mod:`repro.model.system`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from ..errors import ConfigurationError

TaskFn = Callable[[Dict[str, Any]], Dict[str, Any]]

_TASKS: Dict[str, TaskFn] = {}

#: Shared state visible to tasks (set by stage ``prepare`` hooks before the
#: pool forks; inherited copy-on-write by workers).
_WORKER_CONTEXT: Dict[str, Any] = {}


def register_task(name: str) -> Callable[[TaskFn], TaskFn]:
    """Decorator registering a task implementation under *name*."""

    def decorate(fn: TaskFn) -> TaskFn:
        _TASKS[name] = fn
        return fn

    return decorate


def get_task(name: str) -> TaskFn:
    """Look up a registered task; unknown names raise ``ConfigurationError``."""
    try:
        return _TASKS[name]
    except KeyError:
        known = ", ".join(sorted(_TASKS))
        raise ConfigurationError(
            f"unknown shard task {name!r}; registered tasks: {known}"
        ) from None


def run_task(name: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Execute a registered task (in-worker entry point)."""
    return get_task(name)(params)


#: Bumped on every context change; the pool compares it against the epoch
#: its workers were forked at, so stale workers are recycled instead of
#: serving shards against an outdated context.
_CONTEXT_EPOCH = 0


def set_worker_context(**values: Any) -> None:
    """Publish shared state for tasks (call before the pool forks)."""
    global _CONTEXT_EPOCH
    _WORKER_CONTEXT.update(values)
    _CONTEXT_EPOCH += 1


def worker_context(key: str) -> Any:
    """Read shared state published by :func:`set_worker_context`."""
    if key not in _WORKER_CONTEXT:
        raise ConfigurationError(
            f"worker context has no {key!r}; the stage's prepare hook must "
            "publish it via set_worker_context() before shards run"
        )
    return _WORKER_CONTEXT[key]


def clear_worker_context() -> None:
    """Drop all shared state (test isolation)."""
    global _CONTEXT_EPOCH
    _WORKER_CONTEXT.clear()
    _CONTEXT_EPOCH += 1


def context_epoch() -> int:
    """The current worker-context generation."""
    return _CONTEXT_EPOCH


def params_digest(params: Dict[str, Any]) -> str:
    """Stable SHA-256 of a JSON-serializable parameter dict."""
    blob = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def payload_digest(payload: Dict[str, Any]) -> str:
    """Canonical SHA-256 of a task payload (checksum for transport and
    checkpoint integrity)."""
    return params_digest(payload)


def chunk_ranges(total: int, size: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into deterministic ``[start, stop)`` chunks.

    The last chunk absorbs the remainder; ``total == 0`` yields no chunks.
    """
    if size <= 0:
        raise ConfigurationError(f"chunk size must be >= 1, got {size}")
    return [(start, min(start + size, total)) for start in range(0, total, size)]


@dataclass(frozen=True)
class Shard:
    """One schedulable unit of a batch stage."""

    shard_id: str
    task: str
    params: Dict[str, Any] = field(default_factory=dict)
    stage: str = ""

    def params_digest(self) -> str:
        """Digest binding a checkpoint to this shard's exact inputs."""
        return params_digest({"task": self.task, "params": self.params})
