"""``repro.exec`` — sharded, checkpointed, fault-tolerant batch execution.

The monolithic path runs an experiment as one in-process call; this package
runs the same computation as a **batch**: a linear DAG of stages (build the
system → evaluate the formula set → assemble the verdict tables) whose
stages fan out into deterministic shards, executed on a supervised process
pool with per-shard timeouts, bounded retry with exponential backoff and
heartbeat-based dead-worker detection.  Completed shards are checkpointed
to versioned files under ``.repro_cache/exec/`` so an interrupted batch
resumes from the last durable shard (``repro-eba batch run E9 --resume``).

Layout:

* :mod:`repro.exec.shard` — shard descriptors, deterministic range
  chunking and the task registry workers execute from;
* :mod:`repro.exec.pool` — the supervised process pool;
* :mod:`repro.exec.checkpoint` — durable per-shard payload storage;
* :mod:`repro.exec.faults` — the deterministic fault-injection harness
  (``REPRO_EXEC_FAULTS``) the tests use to prove crash/retry/resume;
* :mod:`repro.exec.plan` — stages, batch plans, ``run_batch`` and the
  per-experiment plan registry;
* :mod:`repro.exec.tasks` — the shard task implementations (E9's belief
  and reachability shards, E14/E20 sweep cells).

The sharded path carries a **verdict-parity guarantee**: for a given
parameter cell it produces an :class:`~repro.experiments.framework.
ExperimentResult` whose verdict table, ``ok`` flag and measurement data are
identical to the monolithic path's (asserted for E9/E14/E20 in
``tests/test_exec.py``, under both evaluation kernels).
"""

from __future__ import annotations

from .checkpoint import CheckpointStore, exec_root, list_batches
from .faults import FAULTS_ENV, FaultAction, parse_faults
from .plan import EXEC_PLANS, BatchPlan, Stage, plan_for, run_batch
from .pool import ShardPool
from .shard import Shard, chunk_ranges, get_task, register_task

__all__ = [
    "BatchPlan",
    "CheckpointStore",
    "EXEC_PLANS",
    "FAULTS_ENV",
    "FaultAction",
    "Shard",
    "ShardPool",
    "Stage",
    "chunk_ranges",
    "exec_root",
    "get_task",
    "list_batches",
    "parse_faults",
    "plan_for",
    "register_task",
    "run_batch",
]
