"""Supervised process pool executing shards with retry and health checks.

The supervisor forks one process per worker slot (fork, so workers inherit
the stage's prepared shared state copy-on-write) and assigns each worker
exactly one shard at a time over a dedicated queue — the supervisor
therefore always knows which shard a dead or stuck worker was holding.
Workers persist across a batch's stages (recycled only when the worker
context changes generation), so the shared pages are faulted in once per
worker rather than once per stage.
Health is tracked three ways:

* **liveness** — ``Process.is_alive()``; a worker that died mid-shard
  (e.g. SIGKILL) is detected, its shard is rescheduled, and a replacement
  worker is forked;
* **heartbeats** — each worker runs a daemon thread posting a beat every
  ``heartbeat`` seconds; a worker that is alive but silent past the stale
  threshold (frozen/stopped) is killed and replaced;
* **per-shard timeout** — a shard running past ``timeout`` seconds is
  presumed hung, its worker is killed, and the shard is retried.

Failed attempts (death, timeout, checksum mismatch, task exception) are
retried up to ``retries`` times with exponential backoff
(``backoff * 2**attempt``, non-blocking — other shards keep dispatching
while a retry waits).  Exhausting retries raises
:class:`~repro.errors.ShardExecutionError`.  Every retry is counted
twice in :mod:`repro.obs`: once under the aggregate
``exec_shard_retries`` and once under a per-cause counter
(``exec_shard_retries_<cause>`` for causes ``task-error``, ``checksum``,
``worker-death``, ``timeout``, ``stale-heartbeat``); the pool also keeps
per-shard retry counts and exposes a :meth:`ShardPool.health_snapshot`
(in-flight shard ages, worker heartbeat ages, retry tallies) that the
batch runner persists for ``repro-eba batch status``.

Every completed shard ships its payload (canonical JSON bytes plus a
SHA-256 the supervisor re-verifies), its :mod:`repro.obs` counter delta and
its :mod:`repro.trace` spans; the supervisor folds deltas into the parent
instrumentation — histograms merging per-bucket alongside the counters —
and grafts spans under the stage span, so a sharded batch reports the same
counters and a coherent timeline, exactly like the parallel system
builder.  The supervisor additionally records every shard's wall time in
the ``exec_shard_seconds`` histogram.

Heartbeats double as the resource-telemetry channel: roughly once a
second the beat thread attaches a :func:`repro.obs.resource.read_sample`
(RSS, CPU seconds, fault counters) to the beat, giving the supervisor a
per-worker resource series with no extra thread or pipe.  The latest
sample per worker lands in :meth:`ShardPool.health_snapshot` and — via
the pool's :attr:`~ShardPool.on_event` hook — in the batch run's
telemetry journal, alongside ``worker_spawned`` / ``worker_retired`` and
shard lifecycle events, all tagged with worker/shard provenance.

Results and heartbeats travel over a **per-worker pipe**, not a shared
queue.  A shared ``multiprocessing.Queue`` serializes writers through one
cross-process lock held by each sender's feeder thread; SIGKILLing a
worker (the ``retire`` path for checksum mismatches, timeouts and stale
heartbeats) could land mid-write and strand that lock forever, freezing
every *other* worker's results and heartbeats and cascading into
spurious stale-heartbeat retries until the shard's attempts were
exhausted.  With one pipe per worker a kill can only tear the killed
worker's own channel — the supervisor sees EOF, retires it and
reschedules its shard, and the rest of the pool is untouched.

Pool sizing and limits resolve from ``REPRO_EXEC_WORKERS``,
``REPRO_EXEC_TIMEOUT``, ``REPRO_EXEC_RETRIES`` and ``REPRO_EXEC_BACKOFF``
when not passed explicitly; malformed values raise
:class:`~repro.errors.ConfigurationError` naming the variable and value.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import threading
import time
from multiprocessing import connection as mp_connection
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .. import obs, trace
from ..errors import ConfigurationError, ShardExecutionError
from ..obs.resource import read_sample
from . import faults as fault_mod
from .shard import Shard, context_epoch, run_task

WORKERS_ENV = "REPRO_EXEC_WORKERS"
TIMEOUT_ENV = "REPRO_EXEC_TIMEOUT"
RETRIES_ENV = "REPRO_EXEC_RETRIES"
BACKOFF_ENV = "REPRO_EXEC_BACKOFF"

DEFAULT_TIMEOUT = 600.0
DEFAULT_RETRIES = 2
DEFAULT_BACKOFF = 0.5
DEFAULT_HEARTBEAT = 0.5

#: A worker whose last heartbeat is older than this many heartbeat
#: intervals (and at least this many seconds) is presumed frozen.  Generous
#: on purpose: a GIL-bound compute burst must not read as death.
STALE_BEATS = 20
STALE_FLOOR_SECONDS = 10.0

#: Minimum seconds between resource samples shipped with heartbeats; a
#: 0.5 s beat does not need to read ``/proc`` every time.
SAMPLE_EVERY = 1.0


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer >= {minimum}, got {raw!r}"
        ) from None
    if value < minimum:
        raise ConfigurationError(
            f"{name} must be an integer >= {minimum}, got {raw!r}"
        )
    return value


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number > 0, got {raw!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(f"{name} must be a number > 0, got {raw!r}")
    return value


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_EXEC_WORKERS``, else
    ``min(4, cores)``."""
    if workers is None:
        workers = _env_int(WORKERS_ENV, min(4, os.cpu_count() or 1))
    if workers < 1:
        raise ConfigurationError(f"need workers >= 1, got {workers}")
    return workers


def resolve_timeout(timeout: Optional[float] = None) -> float:
    return timeout if timeout is not None else _env_float(TIMEOUT_ENV, DEFAULT_TIMEOUT)


def resolve_retries(retries: Optional[int] = None) -> int:
    return (
        retries
        if retries is not None
        else _env_int(RETRIES_ENV, DEFAULT_RETRIES, minimum=0)
    )


def resolve_backoff(backoff: Optional[float] = None) -> float:
    return backoff if backoff is not None else _env_float(BACKOFF_ENV, DEFAULT_BACKOFF)


def _worker_main(work_queue, conn, heartbeat: float) -> None:
    """Worker loop: execute assigned shards until told to stop.

    Results and heartbeats go out over *conn*, this worker's private pipe
    to the supervisor.  ``Connection.send`` writes from the calling thread
    under an in-process lock — there is no cross-process write lock to
    strand, so a worker SIGKILLed mid-send can only tear its own pipe
    (the supervisor reads it as EOF), never freeze its siblings.

    Each result carries canonical payload bytes, their SHA-256 (computed
    *before* any ``corrupt`` fault fires, so corruption is detectable), the
    worker's obs delta for the shard and its exported trace spans (starts
    relative to the shard span, for grafting).
    """
    pid = os.getpid()
    stop = threading.Event()
    send_lock = threading.Lock()

    def post(message) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except Exception:
            return False

    def beat() -> None:
        # Beats carry a resource sample roughly once per SAMPLE_EVERY so
        # the supervisor gets a per-worker RSS/CPU series for free.  The
        # first beat goes out (with a sample) immediately, so even shards
        # faster than the interval leave a per-worker resource record.
        last_sampled = time.time()
        try:
            first = read_sample()
        except Exception:
            first = None
        if not post(("hb", pid, last_sampled, first)):
            return
        while not stop.wait(heartbeat):
            now = time.time()
            sample = None
            if now - last_sampled >= SAMPLE_EVERY:
                try:
                    sample = read_sample()
                except Exception:
                    sample = None
                last_sampled = now
            if not post(("hb", pid, now, sample)):
                return

    threading.Thread(target=beat, daemon=True).start()
    fault_plan = fault_mod.active_faults()
    while True:
        item = work_queue.get()
        if item is None:
            stop.set()
            return
        shard_id, task_name, params, attempt = item
        post(("started", pid, shard_id, attempt))
        try:
            action = fault_mod.fault_for(fault_plan, shard_id, attempt)
            if action is not None and action.mode == "kill":
                os.kill(pid, signal.SIGKILL)
            if action is not None and action.mode == "hang":
                time.sleep(fault_mod.HANG_SECONDS)
            obs_before = obs.snapshot()
            mark = trace.TRACER.watermark()
            started = time.perf_counter()
            with trace.TRACER.span(
                "exec.shard", shard=shard_id, task=task_name, attempt=attempt
            ) as shard_span:
                payload = run_task(task_name, params)
            elapsed = time.perf_counter() - started
            spans = trace.export_spans(trace.TRACER.collect(mark))
            base = shard_span.start if spans else 0.0
            for exported in spans:
                exported["start"] = float(exported["start"]) - base
            blob = json.dumps(payload, sort_keys=True).encode("utf-8")
            digest = hashlib.sha256(blob).hexdigest()
            if action is not None and action.mode == "corrupt":
                blob = b'{"corrupted": ' + blob + b"}"
            post(
                (
                    "done",
                    pid,
                    shard_id,
                    attempt,
                    blob,
                    digest,
                    obs.delta_since(obs_before),
                    spans,
                    elapsed,
                )
            )
        except KeyboardInterrupt:
            stop.set()
            return
        except BaseException as exc:
            post(
                ("error", pid, shard_id, attempt, f"{type(exc).__name__}: {exc}")
            )


class _Worker:
    """A forked worker process, its assignment queue and result pipe."""

    def __init__(self, ctx, heartbeat: float) -> None:
        self.queue = ctx.Queue()
        self.conn, child_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(self.queue, child_conn, heartbeat),
            daemon=True,
        )
        self.process.start()
        # Drop the parent's copy of the send end so a worker death reads
        # as EOF on ``conn`` instead of a silent hang.
        child_conn.close()
        self.pid: int = self.process.pid or 0
        self.last_beat = time.time()

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - double close
            pass


class ShardPool:
    """Run lists of shards to completion under supervision.

    Workers are forked lazily on the first :meth:`run` and **persist
    across calls**: a batch plan's stages reuse the same worker processes,
    so the copy-on-write pages of the shared system are faulted in once
    per worker, not once per stage.  Workers are recycled automatically
    when the worker context changes generation (a stage's ``prepare``
    published new state after they forked), and torn down by
    :meth:`close` — the batch runner closes the pool when the batch ends.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
        heartbeat: float = DEFAULT_HEARTBEAT,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.timeout = resolve_timeout(timeout)
        self.retries = resolve_retries(retries)
        self.backoff = resolve_backoff(backoff)
        self.heartbeat = heartbeat
        self.stale_after = max(STALE_BEATS * heartbeat, STALE_FLOOR_SECONDS)
        self._ctx = None
        self._workers: Dict[int, _Worker] = {}
        self._idle: Deque[int] = deque()
        self._epoch = context_epoch()
        #: Cumulative retries per shard id, across every :meth:`run`.
        self.shard_retries: Dict[str, int] = {}
        #: Cumulative retries per failure cause, across every :meth:`run`.
        self.retry_causes: Dict[str, int] = {}
        #: The active :meth:`run`'s in-flight map (pid -> shard, attempt,
        #: dispatch time); empty between runs.
        self._inflight: Dict[int, Tuple[Shard, int, float]] = {}
        #: Latest heartbeat-shipped resource sample per worker pid.
        self.worker_samples: Dict[int, Dict[str, float]] = {}
        #: Optional telemetry hook ``(event_name, fields_dict)``; the batch
        #: runner points it at the run's journal.  Exceptions are swallowed
        #: — telemetry must never fail a shard.
        self.on_event: Optional[Callable[[str, Dict[str, Any]], None]] = None

    def _emit(self, event: str, **fields: Any) -> None:
        hook = self.on_event
        if hook is not None:
            try:
                hook(event, fields)
            except Exception:
                pass

    def health_snapshot(self) -> Dict[str, Any]:
        """Point-in-time worker/shard health for ``batch status``.

        JSON-serializable: in-flight shards with their attempt number,
        how long they have been running and the owning worker's heartbeat
        age, a per-worker detail table (heartbeat age plus the latest
        heartbeat-shipped RSS/CPU sample), and the cumulative per-shard
        and per-cause retry tallies.
        """
        now = time.time()
        inflight = []
        for pid, (shard, attempt, dispatched) in sorted(
            self._inflight.items()
        ):
            worker = self._workers.get(pid)
            inflight.append(
                {
                    "shard": shard.shard_id,
                    "pid": pid,
                    "attempt": attempt,
                    "running_seconds": round(now - dispatched, 3),
                    "heartbeat_age": round(
                        now - worker.last_beat, 3
                    )
                    if worker is not None
                    else None,
                }
            )
        worker_rows = []
        for pid, worker in sorted(self._workers.items()):
            sample = self.worker_samples.get(pid)
            worker_rows.append(
                {
                    "pid": pid,
                    "alive": worker.alive(),
                    "heartbeat_age": round(now - worker.last_beat, 3),
                    "rss_bytes": sample.get("rss_bytes") if sample else None,
                    "cpu_seconds": (
                        sample.get("cpu_seconds") if sample else None
                    ),
                }
            )
        return {
            "updated": now,
            "workers": len(self._workers),
            "worker_detail": worker_rows,
            "inflight": inflight,
            "shard_retries": dict(self.shard_retries),
            "retry_causes": dict(self.retry_causes),
        }

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down all workers and release their channels."""
        for worker in list(self._workers.values()):
            try:
                worker.queue.put(None)
            except Exception:
                pass
        deadline = time.time() + 2.0
        for worker in list(self._workers.values()):
            worker.process.join(timeout=max(0.0, deadline - time.time()))
            worker.kill()
        self._workers.clear()
        self._idle.clear()
        self.worker_samples.clear()
        self._ctx = None

    def _ensure_ready(self, pool_size: int) -> None:
        """Recycle stale workers, prune dead ones, top up to *pool_size*."""
        epoch = context_epoch()
        if self._workers and epoch != self._epoch:
            self.close()
        self._epoch = epoch
        if self._ctx is None:
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                self._ctx = multiprocessing.get_context()
        for pid in list(self._idle):
            worker = self._workers.get(pid)
            if worker is None or not worker.alive():
                self._idle.remove(pid)
                self._workers.pop(pid, None)
        while len(self._workers) < pool_size:
            self._spawn()

    def _spawn(self) -> None:
        worker = _Worker(self._ctx, self.heartbeat)
        self._workers[worker.pid] = worker
        self._idle.append(worker.pid)
        self._emit("worker_spawned", worker=worker.pid)

    def run(
        self,
        shards: List[Shard],
        *,
        on_complete: Optional[Callable[[Shard, Dict[str, Any]], None]] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """Execute *shards*, returning ``{shard_id: payload}``.

        *on_complete* fires in the supervisor as each shard's payload is
        verified — the batch runner uses it to checkpoint durably before
        the stage is allowed to finish.
        """
        if not shards:
            return {}
        by_id = {shard.shard_id: shard for shard in shards}
        if len(by_id) != len(shards):
            raise ShardExecutionError("duplicate shard ids in batch stage")
        pool_size = min(self.workers, len(shards))
        self._ensure_ready(pool_size)
        workers = self._workers
        idle = self._idle
        # (shard, attempt, not_before): retries wait out their backoff here
        # without blocking dispatch of other shards.
        pending: Deque[Tuple[Shard, int, float]] = deque(
            (shard, 0, 0.0) for shard in shards
        )
        inflight = self._inflight
        inflight.clear()
        done: Dict[str, Dict[str, Any]] = {}
        # Last worker each shard was dispatched to (provenance for the
        # shard_retry telemetry event).
        pid_of: Dict[str, int] = {}

        def spawn() -> None:
            self._spawn()

        def retire(pid: int, *, respawn: bool) -> None:
            worker = workers.pop(pid, None)
            if worker is not None:
                worker.kill()
            if pid in idle:
                idle.remove(pid)
            self.worker_samples.pop(pid, None)
            self._emit("worker_retired", worker=pid)
            if respawn and len(workers) < pool_size:
                spawn()
                obs.count("exec_worker_restarts")

        def reschedule(
            shard: Shard, attempt: int, why: str, cause: str
        ) -> None:
            if attempt + 1 > self.retries:
                raise ShardExecutionError(
                    f"shard {shard.shard_id!r} failed after "
                    f"{attempt + 1} attempt(s): {why}"
                )
            obs.count("exec_shard_retries")
            obs.count(f"exec_shard_retries_{cause}")
            self.shard_retries[shard.shard_id] = (
                self.shard_retries.get(shard.shard_id, 0) + 1
            )
            self.retry_causes[cause] = self.retry_causes.get(cause, 0) + 1
            self._emit(
                "shard_retry",
                shard=shard.shard_id,
                worker=pid_of.get(shard.shard_id, 0),
                attempt=attempt,
                cause=cause,
            )
            delay = self.backoff * (2 ** attempt)
            pending.append((shard, attempt + 1, time.time() + delay))

        pool_span = trace.TRACER.span(
            "exec.pool", shards=len(shards), workers=pool_size
        )
        span_obj = pool_span.__enter__()
        parent_span = trace.TRACER.current_span_id()
        graft_offset = getattr(span_obj, "start", 0.0)
        try:
            while len(done) < len(by_id):
                now = time.time()
                # Dispatch ready pending shards to idle workers.
                if idle and pending:
                    deferred: List[Tuple[Shard, int, float]] = []
                    while idle and pending:
                        shard, attempt, not_before = pending.popleft()
                        if not_before > now:
                            deferred.append((shard, attempt, not_before))
                            continue
                        pid = idle.popleft()
                        inflight[pid] = (shard, attempt, now)
                        pid_of[shard.shard_id] = pid
                        workers[pid].queue.put(
                            (shard.shard_id, shard.task, shard.params, attempt)
                        )
                        self._emit(
                            "shard_started",
                            shard=shard.shard_id,
                            worker=pid,
                            attempt=attempt,
                        )
                    pending.extendleft(reversed(deferred))
                # Drain ready result pipes (or time out for health checks).
                conn_map = {
                    worker.conn: worker_pid
                    for worker_pid, worker in workers.items()
                    if not worker.conn.closed
                }
                try:
                    ready = mp_connection.wait(
                        list(conn_map), timeout=min(self.heartbeat, 0.25)
                    )
                except OSError:  # pragma: no cover - race with retire()
                    ready = []
                messages = []
                for conn in ready:
                    try:
                        messages.append(conn.recv())
                    except (EOFError, OSError):
                        # The worker's send end is gone — death, or a send
                        # torn mid-write by SIGKILL.  Close our end so the
                        # pipe stops polling ready; the liveness check
                        # below retires the worker and reschedules.
                        try:
                            conn.close()
                        except OSError:
                            pass
                for message in messages:
                    kind = message[0]
                    pid = message[1]
                    worker = workers.get(pid)
                    if kind == "hb":
                        if worker is not None:
                            worker.last_beat = message[2]
                            sample = message[3] if len(message) > 3 else None
                            if sample is not None:
                                self.worker_samples[pid] = sample
                                self._emit(
                                    "resource_sample",
                                    scope="worker",
                                    worker=pid,
                                    rss_bytes=sample.get("rss_bytes", 0.0),
                                    cpu_seconds=sample.get(
                                        "cpu_seconds", 0.0
                                    ),
                                    majflt=sample.get("majflt", 0.0),
                                    minflt=sample.get("minflt", 0.0),
                                )
                    elif kind == "started":
                        if pid in inflight:
                            shard, attempt, _ = inflight[pid]
                            inflight[pid] = (shard, attempt, time.time())
                    elif kind == "done" and worker is not None and pid in inflight:
                        shard, attempt, _ = inflight.pop(pid)
                        _, _, shard_id, _, blob, digest, delta, spans, elapsed = (
                            message
                        )
                        worker.last_beat = time.time()
                        if hashlib.sha256(blob).hexdigest() != digest:
                            retire(pid, respawn=True)
                            reschedule(
                                shard,
                                attempt,
                                "payload checksum mismatch",
                                "checksum",
                            )
                            continue
                        payload = json.loads(blob.decode("utf-8"))
                        obs.merge_delta(delta)
                        obs.observe("exec_shard_seconds", elapsed)
                        trace.TRACER.graft(
                            spans, parent_id=parent_span, offset=graft_offset
                        )
                        self._emit(
                            "shard_done",
                            shard=shard_id,
                            worker=pid,
                            attempt=attempt,
                            seconds=round(float(elapsed), 6),
                            bytes=len(blob),
                        )
                        if shard_id not in done:
                            done[shard_id] = payload
                            obs.count("exec_shards_completed")
                            if on_complete is not None:
                                on_complete(shard, payload)
                        idle.append(pid)
                    elif kind == "error" and pid in inflight:
                        shard, attempt, _ = inflight.pop(pid)
                        idle.append(pid)
                        reschedule(shard, attempt, message[4], "task-error")
                # Health checks on inflight workers.
                now = time.time()
                for pid in list(inflight):
                    worker = workers.get(pid)
                    shard, attempt, started = inflight[pid]
                    if worker is None or not worker.alive():
                        inflight.pop(pid)
                        retire(pid, respawn=True)
                        reschedule(
                            shard,
                            attempt,
                            "worker died mid-shard",
                            "worker-death",
                        )
                    elif now - started > self.timeout:
                        inflight.pop(pid)
                        obs.count("exec_shard_timeouts")
                        retire(pid, respawn=True)
                        reschedule(
                            shard,
                            attempt,
                            f"shard exceeded timeout ({self.timeout:g}s)",
                            "timeout",
                        )
                    elif now - worker.last_beat > self.stale_after:
                        inflight.pop(pid)
                        retire(pid, respawn=True)
                        reschedule(
                            shard,
                            attempt,
                            "worker heartbeat went stale",
                            "stale-heartbeat",
                        )
                # Replace idle workers that died outside a shard.
                for pid in list(idle):
                    worker = workers.get(pid)
                    if worker is None or not worker.alive():
                        retire(pid, respawn=bool(pending))
        except BaseException:
            # a failed stage may leave workers mid-shard; don't let their
            # late results bleed into a subsequent run
            self.close()
            raise
        finally:
            pool_span.__exit__(None, None, None)
        return done
