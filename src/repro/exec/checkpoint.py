"""Durable shard checkpoints under ``.repro_cache/exec/``.

Layout::

    <cache_root>/exec/<batch_key>/manifest.json
    <cache_root>/exec/<batch_key>/health.json
    <cache_root>/exec/<batch_key>/telemetry.jsonl
    <cache_root>/exec/<batch_key>/shards/<shard_id>.json

``telemetry.jsonl`` is the run-scoped event journal
(:mod:`repro.obs.journal`) the batch runner writes next to the
checkpoints; like ``health.json`` it is run metadata, not a checkpoint —
:meth:`CheckpointStore.clear` removes both so a fresh run starts a fresh
record.

The manifest records the batch's identity (experiment, parameter digest,
evaluation kernel) plus the checkpoint spec version and library version;
``--resume`` only reuses a directory whose manifest matches the batch being
launched.  Each shard file is a versioned record carrying the shard's
parameter digest and a canonical SHA-256 of its payload; a load validates
all of them and returns ``None`` on any mismatch or corruption, so a stale
or truncated checkpoint silently degrades to a cache miss and the shard is
re-executed.  Writes are atomic (``mkstemp`` + ``os.replace``), which is
what makes "resume from the last durable shard" safe against SIGKILL at
any instant.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from .shard import payload_digest

#: Bump when the checkpoint record layout — or the meaning of the shard
#: payloads — changes.  Version 2: limb-block sharding replaced the
#: run-level E9 shards; version-1 directories hold run-level payloads
#: that must be invalidated, never silently resumed, so both the
#: manifest check and the per-record check reject them wholesale.
CHECKPOINT_VERSION = 2

#: Environment variable relocating the cache root (shared with the system
#: disk cache in :mod:`repro.model.provider`).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

DEFAULT_CACHE_DIR = ".repro_cache"


def exec_root(root: Optional[str] = None) -> str:
    """The directory batch checkpoints live under."""
    if root is not None:
        return root
    return os.path.join(
        os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR), "exec"
    )


def _sanitize(shard_id: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "._-" else "__" for ch in shard_id
    )


def _atomic_write(path: str, blob: bytes) -> None:
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class CheckpointStore:
    """Checkpoint directory for one batch."""

    def __init__(self, batch_key: str, root: Optional[str] = None) -> None:
        self.batch_key = batch_key
        self.directory = os.path.join(exec_root(root), _sanitize(batch_key))
        self.shard_dir = os.path.join(self.directory, "shards")

    # -- manifest ---------------------------------------------------------

    def manifest_path(self) -> str:
        return os.path.join(self.directory, "manifest.json")

    def write_manifest(self, meta: Dict[str, Any]) -> None:
        record = dict(meta)
        record["checkpoint_version"] = CHECKPOINT_VERSION
        _atomic_write(
            self.manifest_path(),
            json.dumps(record, sort_keys=True, indent=2).encode("utf-8"),
        )

    def load_manifest(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.manifest_path(), "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        return record

    def manifest_matches(self, meta: Dict[str, Any]) -> bool:
        """Whether the stored manifest describes the same batch."""
        record = self.load_manifest()
        if record is None:
            return False
        if record.get("checkpoint_version") != CHECKPOINT_VERSION:
            return False
        return all(record.get(key) == value for key, value in meta.items())

    # -- health snapshots -------------------------------------------------

    def health_path(self) -> str:
        return os.path.join(self.directory, "health.json")

    def write_health(self, snapshot: Dict[str, Any]) -> None:
        """Persist a pool health snapshot (see
        :meth:`repro.exec.pool.ShardPool.health_snapshot`) for
        ``batch status``."""
        _atomic_write(
            self.health_path(),
            json.dumps(snapshot, sort_keys=True, indent=2).encode("utf-8"),
        )

    def load_health(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.health_path(), "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        return record

    # -- telemetry journal ------------------------------------------------

    def journal_path(self) -> str:
        """Where the run's ``telemetry.jsonl`` event journal lives."""
        return os.path.join(self.directory, "telemetry.jsonl")

    # -- shard records ----------------------------------------------------

    def shard_path(self, shard_id: str) -> str:
        return os.path.join(self.shard_dir, _sanitize(shard_id) + ".json")

    def store(
        self, shard_id: str, params_digest: str, payload: Dict[str, Any]
    ) -> None:
        record = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "shard_id": shard_id,
            "params_digest": params_digest,
            "payload_sha256": payload_digest(payload),
            "payload": payload,
        }
        _atomic_write(
            self.shard_path(shard_id),
            json.dumps(record, sort_keys=True).encode("utf-8"),
        )

    def load(
        self, shard_id: str, params_digest: str
    ) -> Optional[Dict[str, Any]]:
        """The checkpointed payload, or ``None`` unless every validation
        (version, shard identity, input digest, payload checksum) passes."""
        try:
            with open(self.shard_path(shard_id), "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        if record.get("checkpoint_version") != CHECKPOINT_VERSION:
            return None
        if record.get("shard_id") != shard_id:
            return None
        if record.get("params_digest") != params_digest:
            return None
        payload = record.get("payload")
        if not isinstance(payload, dict):
            return None
        if record.get("payload_sha256") != payload_digest(payload):
            return None
        return payload

    def completed_ids(self) -> List[str]:
        """Sanitized shard ids with a checkpoint file on disk."""
        try:
            names = os.listdir(self.shard_dir)
        except OSError:
            return []
        return sorted(
            name[: -len(".json")] for name in names if name.endswith(".json")
        )

    def clear(self) -> None:
        """Delete every checkpoint of this batch (fresh, non-resumed run)."""
        for directory in (self.shard_dir, self.directory):
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                path = os.path.join(directory, name)
                if os.path.isfile(path):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass


def list_batches(root: Optional[str] = None) -> List[Dict[str, Any]]:
    """Inventory of checkpointed batches (for ``repro-eba batch status``)."""
    base = exec_root(root)
    entries: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(base))
    except OSError:
        return entries
    for name in names:
        store = CheckpointStore(name, root=root)
        if not os.path.isdir(store.directory):
            continue
        manifest = store.load_manifest() or {}
        shard_ids = store.completed_ids()
        size = 0
        for shard_id in shard_ids:
            try:
                size += os.path.getsize(
                    os.path.join(store.shard_dir, shard_id + ".json")
                )
            except OSError:
                pass
        health = store.load_health() or {}
        retries = health.get("shard_retries") or {}
        inflight = health.get("inflight") or []
        beat_ages = [
            entry["heartbeat_age"]
            for entry in inflight
            if isinstance(entry, dict)
            and entry.get("heartbeat_age") is not None
        ]
        journal_path = store.journal_path()
        try:
            journal_bytes = os.path.getsize(journal_path)
        except OSError:
            journal_bytes = None
        entries.append(
            {
                "batch": name,
                "experiment": manifest.get("experiment", "?"),
                "kernel": manifest.get("kernel", "?"),
                "partition": manifest.get("partition", "?"),
                "shards": len(shard_ids),
                "bytes": size,
                "retries": sum(retries.values()),
                "retry_causes": health.get("retry_causes") or {},
                "inflight": len(inflight),
                "max_heartbeat_age": max(beat_ages) if beat_ages else None,
                "journal": journal_path if journal_bytes is not None else None,
                "journal_bytes": journal_bytes,
                "manifest": manifest,
                "health": health,
            }
        )
    return entries
