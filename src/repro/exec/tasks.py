"""Shard task implementations and plan factories for the wired experiments.

E9 (Proposition 6.3, the ~385k-run omission cell) is decomposed into the
stage chain

``build`` → ``eval-base`` → ``eval-first`` → ``eval-cbox1`` →
``eval-second`` → ``eval-sticky`` → ``eval-cbox2`` → ``eval-probes`` →
``assemble``

which mirrors the monolithic evaluation exactly, but runs on **limb-block
shards** instead of run ranges: the supervisor loads the cell's
:class:`~repro.model.partition.SystemArrays` projection (an ``.npz``
sidecar — no ``Run`` objects are ever materialized on this path), cuts
the chunked kernel's group tables into
:class:`~repro.model.partition.LimbBlockPartition` blocks, and ships the
tiny JSON block descriptors to workers while the heavy tables travel
copy-on-write through the worker context:

* **believes shards** compute per-view verdicts of ``B_i^N(φ)`` for a
  *run-level* operand φ (every operand the F^Λ construction uses is one)
  over one ``(processor, block)`` slice of the group tables — one
  vectorized gather/segmented-reduce per shard, with verdicts identical
  to the reference ``eval_believes`` semantics;
* **components shards** emit one limb block's slice of the Corollary 3.3
  reachability components for a nonrigid set ``N∧Z`` as a compressed
  ``(runs, reps)`` partition; the stage barrier welds the block
  partitions with :func:`~repro.model.partition.merge_component_labels`
  (a union-find over the conflicting representatives only) and run-level
  ``C□`` values follow by AND-ing φ over each merged component;
* **trigger shards** stay run-range sharded (the first-firing scan is a
  dense pass over the view matrix) but are vectorized over their range,
  with the same simultaneous-firing tie-break as
  ``FullInformationProtocol.decision_for``;
* **probe shards** read belief verdicts at chosen points of the witness
  run through the partition's group-lookup path.

Run-level truth assignments travel between stages as hex-encoded bit
masks (bit ``i`` = run ``i``), so shard parameters stay JSON-serializable
and checkpoint digests bind each shard to its exact operand *and* its
exact block bounds — a relaid partition can never silently resume
another layout's shards.

E14 and E20 shard per sweep cell; their tasks call the same per-cell
helpers the monolithic experiments use.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.decision_sets import DecisionPair
from ..model.partition import (
    LimbBlockPartition,
    cbox_mask_from_labels,
    merge_component_labels,
    run_mask_to_limbs,
)
from .plan import BatchPlan, Stage, register_plan
from .shard import (
    Shard,
    chunk_ranges,
    register_task,
    set_worker_context,
    worker_context,
)

#: Default chunk size for the run-sharded trigger scan.
DEFAULT_RUN_CHUNK = 131072


# -- run-level bit masks ---------------------------------------------------


def pack_run_levels(values: Iterable[bool]) -> int:
    """Pack per-run booleans into an int (bit ``i`` = run ``i``).

    Accumulates little-endian bytes and converts once — bit-by-bit
    ``mask |= 1 << i`` would be quadratic in the run count (385k-bit masks
    on the E9 cell).
    """
    data = bytearray()
    byte = 0
    shift = 0
    for value in values:
        if value:
            byte |= 1 << shift
        shift += 1
        if shift == 8:
            data.append(byte)
            byte = 0
            shift = 0
    if shift:
        data.append(byte)
    return int.from_bytes(bytes(data), "little")


def mask_bytes(mask: int, count: int) -> bytes:
    """Little-endian bytes of a run-level mask, for O(1) per-bit reads."""
    return mask.to_bytes((count + 7) // 8 or 1, "little")


def mask_bit(data: bytes, index: int) -> int:
    """Bit *index* of a mask serialized by :func:`mask_bytes`."""
    return (data[index >> 3] >> (index & 7)) & 1


def cbox_bits(components: List[int], phi: int) -> int:
    """Run-level ``C□`` truth from component labels and run-level φ bits.

    A run's value is the AND of φ over its reachability component; label
    ``-1`` (no nonfaulty member occurrence anywhere in the run) is
    vacuously true — the same contract as
    :func:`repro.knowledge.semantics.eval_continual_common_components`.
    """
    phi_bytes = mask_bytes(phi, len(components))
    component_ok: Dict[int, bool] = {}
    for run_index, label in enumerate(components):
        if label != -1:
            component_ok[label] = bool(
                component_ok.get(label, True)
                and mask_bit(phi_bytes, run_index)
            )
    return pack_run_levels(
        label == -1 or component_ok[label] for label in components
    )


# -- E9 tasks --------------------------------------------------------------


def _operand_limbs(partition: LimbBlockPartition, operand_hex: str):
    """A shard's run-level operand, spread to point-level limbs."""
    return run_mask_to_limbs(
        int(operand_hex, 16), partition.num_runs, partition.width
    )


@register_task("system.ensure")
def _task_system_ensure(params: Dict[str, Any]) -> Dict[str, Any]:
    """Build stage: make sure the cell's cache artifacts are on disk.

    ``params["need"]`` picks the artifact set:

    * ``"arrays"`` — only the :class:`~repro.model.partition.SystemArrays`
      ``.npz`` sidecar.  This is the arrays-first fast path: the provider
      vectorizes the projection straight from the enumeration tables
      (:mod:`repro.model.fastbuild`) and **never materializes a ``Run``
      object**.  E9-style plans, whose every stage consumes arrays or
      limb blocks, use this.
    * ``"full"`` (default) — the pickled enumeration *and* the arrays
      sidecar, for plans whose finalize replays the experiment's
      monolithic ``run()`` against the object graph (E4/E5/E21).

    If the requested artifacts already exist at the current cache version
    the shard is a no-op.  With the disk layer off there is nothing a
    worker could hand back cheaply, so the supervisor builds in-process
    instead.
    """
    from ..model.failures import FailureMode
    from ..model.provider import get_provider

    mode = FailureMode(params["mode"])
    n, t, horizon = params["n"], params["t"], params["horizon"]
    need = params.get("need", "full")
    provider = get_provider()
    has_arrays = provider.has_current_arrays(mode, n, t, horizon)
    if need == "arrays":
        if has_arrays:
            return {"built": False, "cached": True}
    elif provider.has_current_cell(mode, n, t, horizon) and has_arrays:
        return {"built": False, "cached": True}
    if not provider.disk_enabled:
        return {"built": False, "cached": False}
    if need != "arrays":
        provider.get(mode, n, t, horizon)  # enumerate + persist the pickle
    arrays = provider.get_arrays(mode, n, t, horizon)
    return {
        "built": True,
        "cached": False,
        "runs": arrays.num_runs,
        "views": arrays.num_views,
    }


@register_task("e9.believes")
def _task_believes(params: Dict[str, Any]) -> Dict[str, Any]:
    """``B_p^N(operand)`` verdicts over one limb block's state groups."""
    partition: LimbBlockPartition = worker_context("partition")
    nf_limbs = worker_context("nf_limbs")
    processor = params["processor"]
    phi = _operand_limbs(partition, params["operand"])
    views = partition.believes_true_views(
        processor, params["block"]["block"], nf_limbs[processor], phi
    )
    return {"true_views": [int(view) for view in views]}


@register_task("e9.components")
def _task_components(params: Dict[str, Any]) -> Dict[str, Any]:
    """One limb block's slice of the ``N∧Z`` reachability components.

    Emits the block-local partition compressed as ``(runs, reps)`` — the
    touched runs and each one's component representative.  The stage
    barrier merges the blocks
    (:func:`~repro.model.partition.merge_component_labels`); the merged
    labels may differ in value from the monolithic union-find scan's, but
    the partition (all that ``cbox_bits`` consumes) is identical.
    """
    partition: LimbBlockPartition = worker_context("partition")
    nf_limbs = worker_context("nf_limbs")
    flags = partition.state_flags(params["states"])
    runs, reps = partition.component_labels(
        params["block"]["block"], flags, nf_limbs
    )
    return {
        "runs": [int(run) for run in runs],
        "reps": [int(rep) for rep in reps],
    }


@register_task("e9.triggers")
def _task_triggers(params: Dict[str, Any]) -> Dict[str, Any]:
    """First-firing trigger views of a pair over a contiguous run range."""
    arrays = worker_context("arrays")
    zeros, ones = arrays.first_fire_triggers(
        params["zeros"], params["ones"], tuple(params["runs"])
    )
    return {
        "zero_triggers": [int(view) for view in zeros],
        "one_triggers": [int(view) for view in ones],
    }


@register_task("e9.probe")
def _task_probe(params: Dict[str, Any]) -> Dict[str, Any]:
    """Belief verdicts ``B_p^N(operand)`` at explicit ``(run, time)`` points."""
    arrays = worker_context("arrays")
    partition: LimbBlockPartition = worker_context("partition")
    nf_limbs = worker_context("nf_limbs")
    processor = params["processor"]
    phi = _operand_limbs(partition, params["operand"])
    values = []
    for run_index, time in params["points"]:
        view = arrays.view_at(run_index, time, processor)
        values.append(
            bool(
                partition.probe_believes(
                    processor, view, nf_limbs[processor], phi
                )
            )
        )
    return {"values": values}


# -- E9 plan ---------------------------------------------------------------


def _shard_id_order(results: Dict[str, Dict[str, Any]]) -> List[str]:
    return sorted(results)


@register_plan("E9")
def e9_plan(n: int = 4, t: int = 2, horizon: int = 2) -> BatchPlan:
    from ..experiments import e09_omission_nontermination as e09

    params = {"n": n, "t": t, "horizon": horizon}

    def prepare_eval(context: Dict[str, Any]) -> None:
        """Load the array projection, cut the limb-block partition and
        publish both (plus the per-processor nonfaulty point masks) to
        the worker context — exactly one context epoch, so the pool's
        workers fork once and inherit everything copy-on-write."""
        from ..model.failures import FailureMode
        from ..model.provider import get_provider

        arrays = get_provider().get_arrays(
            FailureMode("omission"), n, t, horizon
        )
        partition = LimbBlockPartition.from_arrays(
            arrays, target_entries=context.get("shard_size") or None
        )
        nf_limbs = [
            partition.nonfaulty_limbs(processor)
            for processor in range(arrays.n)
        ]
        context["arrays"] = arrays
        context["partition"] = partition
        context["exists0"] = arrays.exists_mask(0)
        context["exists1"] = arrays.exists_mask(1)
        context["full_mask"] = (1 << arrays.num_runs) - 1
        context["empty_states"] = []
        set_worker_context(
            arrays=arrays, partition=partition, nf_limbs=nf_limbs
        )

    def make_build(context: Dict[str, Any]) -> List[Shard]:
        # Arrays-only: every E9 stage consumes the array projection or
        # limb blocks, so the cold build takes the vectorized fastbuild
        # path and never enumerates Run objects.
        return [
            Shard(
                shard_id="build/system",
                task="system.ensure",
                params={"mode": "omission", "need": "arrays", **params},
                stage="build",
            )
        ]

    def reduce_build(results, context) -> None:
        context["build_info"] = results["build/system"]

    def components_stage(
        name: str, states_key: str, phi_key: str, out_key: str
    ) -> Stage:
        """One reachability-component scan, sharded by limb block."""

        def make(context: Dict[str, Any]) -> List[Shard]:
            partition: LimbBlockPartition = context["partition"]
            states = sorted(context[states_key])
            return [
                Shard(
                    shard_id=f"{name}/b{block['block']}",
                    task="e9.components",
                    params={"states": states, "block": block},
                    stage=name,
                )
                for block in partition.block_descriptors()
            ]

        def reduce(results, context) -> None:
            labels = merge_component_labels(
                context["arrays"].num_runs,
                [
                    (results[shard_id]["runs"], results[shard_id]["reps"])
                    for shard_id in _shard_id_order(results)
                ],
            )
            context[out_key] = cbox_mask_from_labels(
                labels, context[phi_key], context["arrays"].num_runs
            )

        return Stage(name=name, make_shards=make, reduce=reduce)

    def believes_stage(
        name: str, ops_key: str, pair_key: str, pair_name: str
    ) -> Stage:
        """Fan out ``B_i^N`` view verdicts per limb block, close under
        recall, emit a decision pair."""

        def make(context: Dict[str, Any]) -> List[Shard]:
            partition: LimbBlockPartition = context["partition"]
            ops = context[ops_key]
            shards = []
            for processor in range(partition.n):
                for which in ("zero", "one"):
                    operand = format(ops[which], "x")
                    for block in partition.block_descriptors():
                        shards.append(
                            Shard(
                                shard_id=(
                                    f"{name}/p{processor}-{which}"
                                    f"/b{block['block']}"
                                ),
                                task="e9.believes",
                                params={
                                    "processor": processor,
                                    "which": which,
                                    "operand": operand,
                                    "block": block,
                                },
                                stage=name,
                            )
                        )
            return shards

        def reduce(results, context) -> None:
            arrays = context["arrays"]
            zero_states: List[int] = []
            one_states: List[int] = []
            for shard_id in _shard_id_order(results):
                sink = zero_states if "-zero/" in shard_id else one_states
                sink.extend(results[shard_id]["true_views"])
            context[pair_key] = DecisionPair(
                frozenset(arrays.recall_closure(zero_states)),
                frozenset(arrays.recall_closure(one_states)),
                name=pair_name,
            )

        return Stage(name=name, make_shards=make, reduce=reduce)

    def reduce_base(results, context) -> None:
        # C□_{N∧∅}∃0 over the empty decision set: prime-step base case.
        labels = merge_component_labels(
            context["arrays"].num_runs,
            [
                (results[shard_id]["runs"], results[shard_id]["reps"])
                for shard_id in _shard_id_order(results)
            ],
        )
        cbox_base = cbox_mask_from_labels(
            labels, context["exists0"], context["arrays"].num_runs
        )
        full = context["full_mask"]
        context["first_ops"] = {
            "zero": context["exists0"] & cbox_base,
            "one": context["exists1"] & (full & ~cbox_base),
        }

    def prepare_cbox1(context: Dict[str, Any]) -> None:
        context["first_zeros"] = sorted(context["first_pair"].zeros)

    def reduce_cbox1(results, context) -> None:
        labels = merge_component_labels(
            context["arrays"].num_runs,
            [
                (results[shard_id]["runs"], results[shard_id]["reps"])
                for shard_id in _shard_id_order(results)
            ],
        )
        cbox1 = cbox_mask_from_labels(
            labels, context["exists1"], context["arrays"].num_runs
        )
        full = context["full_mask"]
        context["cbox1"] = cbox1
        context["second_ops"] = {
            "zero": context["exists0"] & (full & ~cbox1),
            "one": context["exists1"] & cbox1,
        }

    def make_sticky(context: Dict[str, Any]) -> List[Shard]:
        arrays = context["arrays"]
        first = context["first_pair"]
        size = context.get("shard_size") or DEFAULT_RUN_CHUNK
        if size < 1024:
            size = max(size * 64, 1024)  # run chunks are cheaper than views
        zeros = sorted(first.zeros)
        ones = sorted(first.ones)
        return [
            Shard(
                shard_id=f"eval-sticky/runs/{index}",
                task="e9.triggers",
                params={
                    "zeros": zeros,
                    "ones": ones,
                    "runs": [start, stop],
                },
                stage="eval-sticky",
            )
            for index, (start, stop) in enumerate(
                chunk_ranges(arrays.num_runs, size)
            )
        ]

    def reduce_sticky(results, context) -> None:
        arrays = context["arrays"]
        zero_triggers: List[int] = []
        one_triggers: List[int] = []
        for shard_id in _shard_id_order(results):
            zero_triggers.extend(results[shard_id]["zero_triggers"])
            one_triggers.extend(results[shard_id]["one_triggers"])
        context["sticky_first"] = DecisionPair(
            frozenset(arrays.recall_closure(zero_triggers)),
            frozenset(arrays.recall_closure(one_triggers)),
            name=context["first_pair"].name,
        )

    def prepare_cbox2(context: Dict[str, Any]) -> None:
        context["sticky_zeros"] = sorted(context["sticky_first"].zeros)

    def make_probes(context: Dict[str, Any]) -> List[Shard]:
        arrays = context["arrays"]
        target = e09.witness_target(n, horizon)
        target_index = arrays.run_index_of(*target)
        context["target_index"] = target_index
        nonfaulty = arrays.nonfaulty_of(target_index)
        context["target_nonfaulty"] = nonfaulty
        operand = format(context["cbox2"], "x")
        return [
            Shard(
                shard_id=f"eval-probes/p{processor}",
                task="e9.probe",
                params={
                    "processor": processor,
                    "operand": operand,
                    "points": [
                        [target_index, time] for time in range(horizon + 1)
                    ],
                },
                stage="eval-probes",
            )
            for processor in nonfaulty
        ]

    def reduce_probes(results, context) -> None:
        context["belief_never"] = all(
            not value
            for shard_id in _shard_id_order(results)
            for value in results[shard_id]["values"]
        )

    def reduce_assemble(results, context) -> None:
        arrays = context["arrays"]
        second = context["second_pair"]
        target_index = context["target_index"]
        nobody_decides = all(
            arrays.first_decision(
                target_index, processor, second.zeros, second.ones
            )
            is None
            for processor in context["target_nonfaulty"]
        )
        cbox2 = context["cbox2"]
        perturbed_rows: List[List[Any]] = []
        for label, config, pattern in e09.perturbed_cases(n, horizon):
            run_index = arrays.run_index_of(config, pattern)
            perturbed_rows.append(
                [label, bool((cbox2 >> run_index) & 1)]
            )
        context["nobody_decides"] = nobody_decides
        context["perturbed_rows"] = perturbed_rows

    def finalize(context: Dict[str, Any]):
        return e09.build_result(
            context["arrays"].num_runs,
            n,
            t,
            horizon,
            nobody_decides=context["nobody_decides"],
            belief_never=context["belief_never"],
            perturbed_rows=context["perturbed_rows"],
        )

    stages = [
        Stage("build", make_build, reduce_build),
        components_stage("eval-base", "empty_states", "exists0", "cbox_base"),
        believes_stage("eval-first", "first_ops", "first_pair", "F^{Λ,1}"),
        components_stage("eval-cbox1", "first_zeros", "exists1", "cbox1"),
        believes_stage("eval-second", "second_ops", "second_pair", "F^{Λ,2}"),
        Stage("eval-sticky", make_sticky, reduce_sticky),
        components_stage("eval-cbox2", "sticky_zeros", "exists1", "cbox2"),
        Stage("eval-probes", make_probes, reduce_probes),
        Stage("assemble", lambda context: [], reduce_assemble),
    ]
    # eval-base loads arrays + partition (one worker-context epoch for the
    # whole batch) and its reduce derives the first-pair operands;
    # eval-cbox1/2 compute their Z states in prepare hooks from the
    # preceding stage's pair.
    stages[1].prepare = prepare_eval
    stages[1].reduce = reduce_base
    stages[3].prepare = prepare_cbox1
    stages[3].reduce = reduce_cbox1
    stages[6].prepare = prepare_cbox2

    return BatchPlan(
        experiment_id="E9",
        params=params,
        stages=stages,
        finalize=finalize,
        partition="limb",
    )


# -- portfolio tasks: E4/E5/E21 formula portfolios over limb blocks --------
#
# E4, E5 and E21 evaluate formula *portfolios* — a dozen ``C□`` axioms,
# two Proposition 4.3 conditions per processor per protocol, belief
# sweeps over ``C◇`` operands — against the same crash and omission
# cells.  Their plans shard the two heavy, blockable sweep families the
# same way E9 does:
#
# * **components** — the Corollary 3.3 reachability labelling of a
#   nonrigid set (``N`` or ``N∧Z``), one shard per limb block, welded by
#   :func:`~repro.model.partition.merge_component_labels`;
# * **believes** — per-view ``B_p^N φ`` verdicts for a *point-level*
#   operand φ (shipped as a hex limb buffer), one shard per
#   ``(processor, block)`` slice.
#
# The reduce hooks plant the merged results into the cells' evaluation
# caches (``System.cached_components`` / ``System.cached_evaluation``)
# under exactly the keys the experiments' unchanged ``run()`` bodies
# compute — decision pairs are memoized per system
# (:mod:`repro.protocols.memo`), so the tokens inside those keys are
# stable from a plan's prepare hooks through its finalize.  ``run()``
# then cache-hits every seeded sweep and its verdict logic is untouched:
# sharded and monolithic verdicts are digest-identical by construction,
# which the parity suite asserts.


def _cell_id(mode: str, n: int, t: int, horizon: int) -> str:
    return f"{mode}-n{n}t{t}h{horizon}"


def _cell_system(mode: str, n: int, t: int, horizon: int):
    from ..model.builder import crash_system, omission_system

    make = crash_system if mode == "crash" else omission_system
    return make(n, t, horizon)


def _point_limbs_hex(truth, nlimbs: int) -> str:
    """A truth assignment as a hex point-level limb buffer.

    Point order is ``run * width + time`` on every kernel (the bitset
    mask, the chunked limbs and the partition tables all share it), so
    the conversion is a reinterpretation, not a per-point loop — except
    on the reference kernel, whose row lists are packed bit by bit.
    """
    from ..model.chunked import ChunkedAssignment
    from ..model.partition import limbs_to_hex
    from ..model.system import BitsetAssignment

    nbytes = nlimbs * 8
    if isinstance(truth, ChunkedAssignment):
        return limbs_to_hex(truth.limbs)
    if isinstance(truth, BitsetAssignment):
        return truth.mask.to_bytes(nbytes, "little").hex()
    rows = truth.to_rows()
    mask = pack_run_levels(value for row in rows for value in row)
    return mask.to_bytes(nbytes, "little").hex()


@register_task("portfolio.components")
def _task_portfolio_components(params: Dict[str, Any]) -> Dict[str, Any]:
    """One limb block's slice of a nonrigid set's reachability components.

    Like ``e9.components`` but cell-addressed: the worker context holds a
    ``cells`` map (several systems per batch), and ``states`` may be the
    sentinel ``"all"`` for the plain nonfaulty set ``N``.
    """
    cell = worker_context("cells")[params["cell"]]
    partition: LimbBlockPartition = cell["partition"]
    states = params["states"]
    if states == "all":
        states = range(partition.num_views)
    flags = partition.state_flags(states)
    runs, reps = partition.component_labels(
        params["block"]["block"], flags, cell["nf_limbs"]
    )
    return {
        "runs": [int(run) for run in runs],
        "reps": [int(rep) for rep in reps],
    }


@register_task("portfolio.believes")
def _task_portfolio_believes(params: Dict[str, Any]) -> Dict[str, Any]:
    """``B_p^N(φ)`` true views over one limb block, for point-level φ.

    Unlike ``e9.believes`` (whose operands are run-level masks), the
    operand here is a full point-level limb buffer — E5's Proposition
    4.3 consequents and E21's ``C◇`` operands are time-dependent.
    """
    from ..model.partition import hex_to_limbs

    cell = worker_context("cells")[params["cell"]]
    partition: LimbBlockPartition = cell["partition"]
    processor = params["processor"]
    phi = hex_to_limbs(params["operand"])
    views = partition.believes_true_views(
        processor,
        params["block"]["block"],
        cell["nf_limbs"][processor],
        phi,
    )
    return {"true_views": [int(view) for view in views]}


def _portfolio_build_stage(cells: List[Tuple[str, int, int, int]]) -> Stage:
    """Ensure every cell's enumeration + arrays are on disk (one shard
    per cell; ``need="full"`` because finalize replays ``run()``)."""

    def make(context: Dict[str, Any]) -> List[Shard]:
        return [
            Shard(
                shard_id=f"build/{_cell_id(*cell)}",
                task="system.ensure",
                params={
                    "mode": cell[0],
                    "n": cell[1],
                    "t": cell[2],
                    "horizon": cell[3],
                    "need": "full",
                },
                stage="build",
            )
            for cell in cells
        ]

    def reduce(results, context) -> None:
        context["build_info"] = {
            shard_id: results[shard_id]
            for shard_id in _shard_id_order(results)
        }

    return Stage(name="build", make_shards=make, reduce=reduce)


def _prepare_portfolio_cells(
    context: Dict[str, Any], cells: List[Tuple[str, int, int, int]]
) -> None:
    """Cut each cell's limb-block partition and publish the worker context
    (one epoch for the whole batch — the pool forks once)."""
    from ..model.failures import FailureMode
    from ..model.provider import get_provider

    provider = get_provider()
    cell_map: Dict[str, Dict[str, Any]] = {}
    for mode, n, t, horizon in cells:
        arrays = provider.get_arrays(FailureMode(mode), n, t, horizon)
        partition = LimbBlockPartition.from_arrays(
            arrays, target_entries=context.get("shard_size") or None
        )
        cell_map[_cell_id(mode, n, t, horizon)] = {
            "arrays": arrays,
            "partition": partition,
            "nf_limbs": [
                partition.nonfaulty_limbs(processor)
                for processor in range(arrays.n)
            ],
        }
    context["cells"] = cell_map
    set_worker_context(
        cells={
            key: {
                "partition": value["partition"],
                "nf_limbs": value["nf_limbs"],
            }
            for key, value in cell_map.items()
        }
    )


def _component_shards(
    cell: str,
    partition: LimbBlockPartition,
    prefix: str,
    states,
    stage: str,
) -> List[Shard]:
    return [
        Shard(
            shard_id=f"{prefix}/b{block['block']}",
            task="portfolio.components",
            params={"cell": cell, "states": states, "block": block},
            stage=stage,
        )
        for block in partition.block_descriptors()
    ]


def _believes_shards(
    cell: str,
    partition: LimbBlockPartition,
    prefix: str,
    processor: int,
    operand_hex: str,
    stage: str,
) -> List[Shard]:
    return [
        Shard(
            shard_id=f"{prefix}/b{block['block']}",
            task="portfolio.believes",
            params={
                "cell": cell,
                "processor": processor,
                "operand": operand_hex,
                "block": block,
            },
            stage=stage,
        )
        for block in partition.block_descriptors()
    ]


def _merged_labels(results, prefix: str, num_runs: int) -> List[int]:
    """Weld one prefix's block shards into a global component labelling."""
    block_results = [
        (results[shard_id]["runs"], results[shard_id]["reps"])
        for shard_id in _shard_id_order(results)
        if shard_id.startswith(prefix)
    ]
    return [
        int(label)
        for label in merge_component_labels(num_runs, block_results)
    ]


def _collected_views(results, prefix: str) -> List[int]:
    """Concatenate one prefix's block shards' true views (views never
    span blocks, so this is a disjoint union)."""
    views: List[int] = []
    for shard_id in _shard_id_order(results):
        if shard_id.startswith(prefix):
            views.extend(results[shard_id]["true_views"])
    return views


def _seed_believes(system, node, processor: int, views: List[int]) -> None:
    """Plant a ``Believes`` verdict assembled from sharded true views.

    Belief verdicts are constant per view, so the truth assignment is
    exactly ``from_states`` over the collected view set (no recall
    closure — that is a decision-*set* operation, not a verdict one),
    built under the ambient kernel so the cache key matches what the
    experiment's ``run()`` will look up.
    """
    from ..model.system import TruthAssignment

    truth = TruthAssignment.from_states(system, processor, frozenset(views))
    system.cached_evaluation(node.cache_key(), lambda: truth)


# -- E4 plan ---------------------------------------------------------------


@register_plan("E4")
def e4_plan(n: int = 3, t: int = 1, horizon: Optional[int] = None) -> BatchPlan:
    """E4 sharded: the ``C□`` portfolio's shared ``N`` component labelling
    is computed block-by-block; finalize seeds it and replays ``run()``."""
    from ..model.builder import default_horizon

    resolved = default_horizon(t) if horizon is None else horizon
    cells = [("crash", n, t, resolved), ("omission", n, t, resolved)]
    params = {"n": n, "t": t, "horizon": resolved}

    def make_components(context: Dict[str, Any]) -> List[Shard]:
        shards: List[Shard] = []
        for cell in cells:
            key = _cell_id(*cell)
            shards += _component_shards(
                key,
                context["cells"][key]["partition"],
                f"components/{key}",
                "all",
                "components",
            )
        return shards

    def reduce_components(results, context) -> None:
        from ..knowledge.nonrigid import NONFAULTY

        for cell in cells:
            key = _cell_id(*cell)
            labels = _merged_labels(
                results,
                f"components/{key}/",
                context["cells"][key]["arrays"].num_runs,
            )
            system = _cell_system(*cell)
            system.cached_components(
                NONFAULTY.cache_key(), lambda labels=labels: labels
            )

    def finalize(context: Dict[str, Any]):
        from ..experiments.e04_continual_ck import run as e4_run

        return e4_run(n, t, resolved)

    return BatchPlan(
        experiment_id="E4",
        params=params,
        stages=[
            _portfolio_build_stage(cells),
            Stage(
                "components",
                make_components,
                reduce_components,
                prepare=lambda context: _prepare_portfolio_cells(
                    context, cells
                ),
            ),
        ],
        finalize=finalize,
        partition="limb",
    )


# -- E5 plan ---------------------------------------------------------------


@register_plan("E5")
def e5_plan(n: int = 3, t: int = 1, horizon: Optional[int] = None) -> BatchPlan:
    """E5 sharded: per protocol, the sticky pair's ``N∧Z`` / ``N∧O``
    component labellings and the Proposition 4.3 belief consequents run
    as limb-block shards; finalize seeds both and replays ``run()``."""
    from ..model.builder import default_horizon

    resolved = default_horizon(t) if horizon is None else horizon
    cells = [("crash", n, t, resolved), ("omission", n, t, resolved)]
    params = {"n": n, "t": t, "horizon": resolved}

    def prepare_components(context: Dict[str, Any]) -> None:
        """Build the cells' partitions, then the protocol portfolio —
        the same factories ``run()`` calls, memoized per system, so the
        sticky pairs (and their cache-key tokens) here are the objects
        ``run()`` sees again at finalize."""
        from ..protocols.chain_fip import chain_pair
        from ..protocols.f_lambda import f_lambda_sequence
        from ..protocols.f_star import f_star_pair
        from ..protocols.fip import fip

        _prepare_portfolio_cells(context, cells)
        entries: List[Dict[str, Any]] = []
        for cell in cells:
            system = _cell_system(*cell)
            pairs = list(f_lambda_sequence(system))
            if cell[0] == "omission":
                pairs += [chain_pair(system), f_star_pair(system)]
            for pair in pairs:
                entries.append(
                    {
                        "cell": _cell_id(*cell),
                        "system": system,
                        "sticky": fip(pair).sticky_pair(system),
                    }
                )
        context["entries"] = entries

    def make_components(context: Dict[str, Any]) -> List[Shard]:
        shards: List[Shard] = []
        for index, entry in enumerate(context["entries"]):
            partition = context["cells"][entry["cell"]]["partition"]
            for which in ("zeros", "ones"):
                shards += _component_shards(
                    entry["cell"],
                    partition,
                    f"components/e{index}-{which}",
                    sorted(getattr(entry["sticky"], which)),
                    "components",
                )
        return shards

    def reduce_components(results, context) -> None:
        from ..knowledge.nonrigid import NonfaultyAndDeciding

        for index, entry in enumerate(context["entries"]):
            num_runs = context["cells"][entry["cell"]]["arrays"].num_runs
            for which in ("zeros", "ones"):
                labels = _merged_labels(
                    results, f"components/e{index}-{which}/", num_runs
                )
                nonrigid = NonfaultyAndDeciding(entry["sticky"], which)
                entry["system"].cached_components(
                    nonrigid.cache_key(), lambda labels=labels: labels
                )

    def prepare_believes(context: Dict[str, Any]) -> None:
        """Evaluate each condition's belief *operand* under the ambient
        kernel (its run-level ``C□`` core hits the labellings just
        seeded) and ship it to the shards as point-level limbs."""
        from ..core.optimality import proposition_4_3_conditions

        seeds: List[Dict[str, Any]] = []
        for index, entry in enumerate(context["entries"]):
            system = entry["system"]
            partition = context["cells"][entry["cell"]]["partition"]
            cond_a, cond_b = proposition_4_3_conditions(entry["sticky"])
            for tag, cond in (("a", cond_a), ("b", cond_b)):
                for processor in range(system.n):
                    node = cond(processor).consequent
                    operand = node.operand.evaluate(system)
                    seeds.append(
                        {
                            "prefix": f"believes/e{index}-{tag}-p{processor}",
                            "cell": entry["cell"],
                            "system": system,
                            "node": node,
                            "processor": processor,
                            "operand": _point_limbs_hex(
                                operand, partition.nlimbs
                            ),
                        }
                    )
        context["seeds"] = seeds

    def make_believes(context: Dict[str, Any]) -> List[Shard]:
        shards: List[Shard] = []
        for seed in context["seeds"]:
            shards += _believes_shards(
                seed["cell"],
                context["cells"][seed["cell"]]["partition"],
                seed["prefix"],
                seed["processor"],
                seed["operand"],
                "believes",
            )
        return shards

    def reduce_believes(results, context) -> None:
        for seed in context["seeds"]:
            _seed_believes(
                seed["system"],
                seed["node"],
                seed["processor"],
                _collected_views(results, seed["prefix"] + "/"),
            )

    def finalize(context: Dict[str, Any]):
        from ..experiments.e05_knowledge_conditions import run as e5_run

        return e5_run(n, t, resolved)

    return BatchPlan(
        experiment_id="E5",
        params=params,
        stages=[
            _portfolio_build_stage(cells),
            Stage(
                "components",
                make_components,
                reduce_components,
                prepare=prepare_components,
            ),
            Stage(
                "believes",
                make_believes,
                reduce_believes,
                prepare=prepare_believes,
            ),
        ],
        finalize=finalize,
        partition="limb",
    )


# -- E21 plan --------------------------------------------------------------


@register_plan("E21")
def e21_plan(
    n: int = 3, t: int = 1, horizon: Optional[int] = None
) -> BatchPlan:
    """E21 sharded: the ``N`` component labelling (for the ``C□ ⇒ C◇``
    implication's fast path) and the per-processor ``B_i^N C◇∃v`` belief
    sweeps run as limb-block shards; finalize seeds and replays
    ``run()``.  The ``C◇`` fixpoints themselves are inherently global
    and stay in the supervisor — evaluated once in the believes
    ``prepare``, where ``run()`` later cache-hits them."""
    from ..model.builder import default_horizon

    resolved = default_horizon(t) if horizon is None else horizon
    cells = [("crash", n, t, resolved), ("omission", n, t, resolved)]
    params = {"n": n, "t": t, "horizon": resolved}

    def make_components(context: Dict[str, Any]) -> List[Shard]:
        shards: List[Shard] = []
        for cell in cells:
            key = _cell_id(*cell)
            shards += _component_shards(
                key,
                context["cells"][key]["partition"],
                f"components/{key}",
                "all",
                "components",
            )
        return shards

    def reduce_components(results, context) -> None:
        from ..knowledge.nonrigid import NONFAULTY

        for cell in cells:
            key = _cell_id(*cell)
            labels = _merged_labels(
                results,
                f"components/{key}/",
                context["cells"][key]["arrays"].num_runs,
            )
            system = _cell_system(*cell)
            system.cached_components(
                NONFAULTY.cache_key(), lambda labels=labels: labels
            )

    def prepare_believes(context: Dict[str, Any]) -> None:
        from ..knowledge.formulas import Believes, EventualCommon, Exists
        from ..knowledge.nonrigid import NONFAULTY

        seeds: List[Dict[str, Any]] = []
        for cell in cells:
            key = _cell_id(*cell)
            system = _cell_system(*cell)
            partition = context["cells"][key]["partition"]
            for value in (0, 1):
                eventual = EventualCommon(NONFAULTY, Exists(value))
                operand = _point_limbs_hex(
                    eventual.evaluate(system), partition.nlimbs
                )
                for processor in range(system.n):
                    seeds.append(
                        {
                            "prefix": f"believes/{key}-v{value}-p{processor}",
                            "cell": key,
                            "system": system,
                            "node": Believes(processor, eventual),
                            "processor": processor,
                            "operand": operand,
                        }
                    )
        context["seeds"] = seeds

    def make_believes(context: Dict[str, Any]) -> List[Shard]:
        shards: List[Shard] = []
        for seed in context["seeds"]:
            shards += _believes_shards(
                seed["cell"],
                context["cells"][seed["cell"]]["partition"],
                seed["prefix"],
                seed["processor"],
                seed["operand"],
                "believes",
            )
        return shards

    def reduce_believes(results, context) -> None:
        for seed in context["seeds"]:
            _seed_believes(
                seed["system"],
                seed["node"],
                seed["processor"],
                _collected_views(results, seed["prefix"] + "/"),
            )

    def finalize(context: Dict[str, Any]):
        from ..experiments.e21_eventual_ck import run as e21_run

        return e21_run(n, t, resolved)

    return BatchPlan(
        experiment_id="E21",
        params=params,
        stages=[
            _portfolio_build_stage(cells),
            Stage(
                "components",
                make_components,
                reduce_components,
                prepare=lambda context: _prepare_portfolio_cells(
                    context, cells
                ),
            ),
            Stage(
                "believes",
                make_believes,
                reduce_believes,
                prepare=prepare_believes,
            ),
        ],
        finalize=finalize,
        partition="limb",
    )


# -- E14: scaling ablation -------------------------------------------------


@register_task("e14.cell")
def _task_e14_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..experiments.e14_scaling import cell_row
    from ..model.failures import FailureMode

    row = cell_row(
        FailureMode(params["mode"]),
        params["n"],
        params["t"],
        params["horizon"],
    )
    return {"row": row}


@register_task("e14.messages")
def _task_e14_messages(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..experiments.e14_scaling import message_rows

    return {"rows": message_rows()}


@register_plan("E14")
def e14_plan(cells=None) -> BatchPlan:
    from ..experiments.e14_scaling import DEFAULT_CELLS, build_result

    normalized = [
        [getattr(mode, "value", mode), n, t, horizon]
        for mode, n, t, horizon in (cells or DEFAULT_CELLS)
    ]
    params = {"cells": normalized}

    def make_evaluate(context: Dict[str, Any]) -> List[Shard]:
        shards = [
            Shard(
                shard_id=f"evaluate/cell-{index}",
                task="e14.cell",
                params={
                    "mode": mode,
                    "n": n,
                    "t": t,
                    "horizon": horizon,
                },
                stage="evaluate",
            )
            for index, (mode, n, t, horizon) in enumerate(normalized)
        ]
        shards.append(
            Shard(
                shard_id="evaluate/messages",
                task="e14.messages",
                params={},
                stage="evaluate",
            )
        )
        return shards

    def reduce_evaluate(results, context) -> None:
        context["rows"] = [
            results[f"evaluate/cell-{index}"]["row"]
            for index in range(len(normalized))
        ]
        context["message_rows"] = results["evaluate/messages"]["rows"]

    def finalize(context: Dict[str, Any]):
        return build_result(context["rows"], context["message_rows"])

    return BatchPlan(
        experiment_id="E14",
        params=params,
        stages=[Stage("evaluate", make_evaluate, reduce_evaluate)],
        finalize=finalize,
    )


# -- E20: scaling sweep ----------------------------------------------------


@register_task("e20.cell")
def _task_e20_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..experiments.e20_scaling_gains import cell_result

    return cell_result(
        params["n"], params["t"], params["samples"], params["seed"]
    )


@register_plan("E20")
def e20_plan(cells=None, samples: int = 300, seed: int = 21) -> BatchPlan:
    from ..experiments.e20_scaling_gains import DEFAULT_CELLS, build_result

    normalized = [[n, t] for n, t in (cells or DEFAULT_CELLS)]
    params = {"cells": normalized, "samples": samples, "seed": seed}

    def make_evaluate(context: Dict[str, Any]) -> List[Shard]:
        return [
            Shard(
                shard_id=f"evaluate/cell-{index}-n{n}t{t}",
                task="e20.cell",
                params={"n": n, "t": t, "samples": samples, "seed": seed},
                stage="evaluate",
            )
            for index, (n, t) in enumerate(normalized)
        ]

    def reduce_evaluate(results, context) -> None:
        context["cell_results"] = [
            results[f"evaluate/cell-{index}-n{n}t{t}"]
            for index, (n, t) in enumerate(normalized)
        ]

    def finalize(context: Dict[str, Any]):
        return build_result(context["cell_results"], samples, seed)

    return BatchPlan(
        experiment_id="E20",
        params=params,
        stages=[Stage("evaluate", make_evaluate, reduce_evaluate)],
        finalize=finalize,
    )
