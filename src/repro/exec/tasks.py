"""Shard task implementations and plan factories for the wired experiments.

E9 (Proposition 6.3, the ~385k-run omission cell) is decomposed into the
stage chain

``build`` → ``eval-base`` → ``eval-first`` → ``eval-cbox1`` →
``eval-second`` → ``eval-sticky`` → ``eval-cbox2`` → ``eval-probes`` →
``assemble``

which mirrors the monolithic evaluation exactly:

* **believes shards** compute per-view verdicts of ``B_i^N(φ)`` for a
  *run-level* operand φ (every operand the F^Λ construction uses is one):
  the verdict at a view is the AND of φ over the view's occurrence points
  whose owner is nonfaulty, vacuously true with none — precisely the
  reference ``eval_believes`` semantics, and kernel-independent.  Sharded
  by contiguous chunks of the owner's sorted view list;
* **components shards** run the Corollary 3.3 reachability-component scan
  for one nonrigid set ``N∧Z``; run-level ``C□`` values follow by AND-ing
  φ over each component (isolated runs are vacuously true);
* **trigger shards** scan contiguous run ranges for first firing times of
  a pair (the ``sticky_pair`` semantics, with the same simultaneous-firing
  tie-break as ``FullInformationProtocol.decision_for``);
* **probe shards** read belief verdicts at chosen points of the witness
  run.

Run-level truth assignments travel between stages as hex-encoded bit
masks (bit ``i`` = run ``i``), so shard parameters stay JSON-serializable
and checkpoint digests bind each shard to its exact operand.

E14 and E20 shard per sweep cell; their tasks call the same per-cell
helpers the monolithic experiments use.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.decision_sets import DecisionPair, close_under_recall
from .plan import BatchPlan, Stage, register_plan
from .shard import (
    Shard,
    chunk_ranges,
    register_task,
    set_worker_context,
    worker_context,
)

#: Default chunk sizes for view-sharded and run-sharded tasks.
DEFAULT_VIEW_CHUNK = 4096
DEFAULT_RUN_CHUNK = 131072


# -- run-level bit masks ---------------------------------------------------


def pack_run_levels(values: Iterable[bool]) -> int:
    """Pack per-run booleans into an int (bit ``i`` = run ``i``).

    Accumulates little-endian bytes and converts once — bit-by-bit
    ``mask |= 1 << i`` would be quadratic in the run count (385k-bit masks
    on the E9 cell).
    """
    data = bytearray()
    byte = 0
    shift = 0
    for value in values:
        if value:
            byte |= 1 << shift
        shift += 1
        if shift == 8:
            data.append(byte)
            byte = 0
            shift = 0
    if shift:
        data.append(byte)
    return int.from_bytes(bytes(data), "little")


def mask_bytes(mask: int, count: int) -> bytes:
    """Little-endian bytes of a run-level mask, for O(1) per-bit reads."""
    return mask.to_bytes((count + 7) // 8 or 1, "little")


def mask_bit(data: bytes, index: int) -> int:
    """Bit *index* of a mask serialized by :func:`mask_bytes`."""
    return (data[index >> 3] >> (index & 7)) & 1


def cbox_bits(components: List[int], phi: int) -> int:
    """Run-level ``C□`` truth from component labels and run-level φ bits.

    A run's value is the AND of φ over its reachability component; label
    ``-1`` (no nonfaulty member occurrence anywhere in the run) is
    vacuously true — the same contract as
    :func:`repro.knowledge.semantics.eval_continual_common_components`.
    """
    phi_bytes = mask_bytes(phi, len(components))
    component_ok: Dict[int, bool] = {}
    for run_index, label in enumerate(components):
        if label != -1:
            component_ok[label] = bool(
                component_ok.get(label, True)
                and mask_bit(phi_bytes, run_index)
            )
    return pack_run_levels(
        label == -1 or component_ok[label] for label in components
    )


# -- shared worker-side lookups -------------------------------------------

_PROC_VIEWS: Dict[Tuple[int, int], List[int]] = {}


def _proc_views(system, processor: int) -> List[int]:
    """Sorted occurring views owned by *processor* (memoized per system)."""
    key = (id(system), processor)
    cached = _PROC_VIEWS.get(key)
    if cached is None:
        table = system.table
        cached = sorted(
            view
            for view in system._state_index
            if table.info(view).processor == processor
        )
        _PROC_VIEWS[key] = cached
    return cached


def _believes_view_verdict(
    system, view: int, processor: int, operand_bytes: bytes
) -> bool:
    """``B_processor^N(operand)`` at a local state, for run-level operand."""
    runs = system.runs
    for run_index, _time in system._state_index[view]:
        if processor in runs[run_index].nonfaulty and not mask_bit(
            operand_bytes, run_index
        ):
            return False
    return True


# -- E9 tasks --------------------------------------------------------------


@register_task("system.ensure")
def _task_system_ensure(params: Dict[str, Any]) -> Dict[str, Any]:
    """Build stage: make sure the cell's enumeration is on disk.

    If a current-version cache file already exists the shard is a no-op;
    otherwise the worker enumerates (possibly in parallel) and the provider
    persists it, so the supervisor's evaluate-stage ``prepare`` gets a fast
    disk hit.  With the disk layer off there is nothing a worker could hand
    back cheaply, so the supervisor builds in-process instead.
    """
    from ..model.failures import FailureMode
    from ..model.provider import get_provider

    mode = FailureMode(params["mode"])
    n, t, horizon = params["n"], params["t"], params["horizon"]
    provider = get_provider()
    if provider.has_current_cell(mode, n, t, horizon):
        return {"built": False, "cached": True}
    if not provider.disk_enabled:
        return {"built": False, "cached": False}
    system = provider.get(mode, n, t, horizon)
    return {
        "built": True,
        "cached": False,
        "runs": len(system.runs),
        "views": len(system.table),
    }


@register_task("e9.believes")
def _task_believes(params: Dict[str, Any]) -> Dict[str, Any]:
    system = worker_context("system")
    processor = params["processor"]
    operand_bytes = mask_bytes(
        int(params["operand"], 16), len(system.runs)
    )
    start, stop = params["chunk"]
    views = _proc_views(system, processor)[start:stop]
    true_views = [
        view
        for view in views
        if _believes_view_verdict(system, view, processor, operand_bytes)
    ]
    return {"true_views": true_views}


@register_task("e9.components")
def _task_components(params: Dict[str, Any]) -> Dict[str, Any]:
    """Reachability components of ``N∧Z`` for ``Z = set(params["states"])``.

    Same union-find contract as the monolithic
    ``semantics._compute_components`` for a ``NonfaultyAndDeciding`` set:
    processor ``i`` is a member at ``(run, time)`` iff its view there is in
    ``Z`` and ``i`` is nonfaulty in the run.  Labels are union-find roots —
    their values may differ from the monolithic scan's, but the partition
    (all that ``cbox_bits`` consumes) is identical.
    """
    system = worker_context("system")
    states = set(params["states"])
    runs = system.runs
    table = system.table
    num_runs = len(runs)
    parent = list(range(num_runs))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    has_occurrence = [False] * num_runs
    for view in states:
        points = system._state_index.get(view)
        if not points:
            continue
        owner = table.info(view).processor
        anchor = -1
        for run_index, _time in points:
            if owner not in runs[run_index].nonfaulty:
                continue
            has_occurrence[run_index] = True
            if anchor < 0:
                anchor = run_index
            else:
                root_a, root_b = find(anchor), find(run_index)
                if root_a != root_b:
                    parent[root_b] = root_a
    components = [
        find(run_index) if has_occurrence[run_index] else -1
        for run_index in range(num_runs)
    ]
    return {"components": components}


@register_task("e9.triggers")
def _task_triggers(params: Dict[str, Any]) -> Dict[str, Any]:
    """First-firing trigger views of a pair over a contiguous run range."""
    system = worker_context("system")
    zeros = set(params["zeros"])
    ones = set(params["ones"])
    start, stop = params["runs"]
    horizon = system.horizon
    n = system.n
    zero_triggers = set()
    one_triggers = set()
    for run_index in range(start, stop):
        run = system.runs[run_index]
        for processor in range(n):
            zero_time: Optional[int] = None
            one_time: Optional[int] = None
            for time in range(horizon + 1):
                view = run.view(processor, time)
                if view in zeros:
                    zero_time = time
                if view in ones:
                    one_time = time
                if zero_time is not None or one_time is not None:
                    break
            if zero_time is None and one_time is None:
                continue
            if zero_time is not None and (
                one_time is None or zero_time <= one_time
            ):
                zero_triggers.add(run.view(processor, zero_time))
            else:
                one_triggers.add(run.view(processor, one_time))
    return {
        "zero_triggers": sorted(zero_triggers),
        "one_triggers": sorted(one_triggers),
    }


@register_task("e9.probe")
def _task_probe(params: Dict[str, Any]) -> Dict[str, Any]:
    """Belief verdicts ``B_p^N(operand)`` at explicit ``(run, time)`` points."""
    system = worker_context("system")
    processor = params["processor"]
    operand_bytes = mask_bytes(
        int(params["operand"], 16), len(system.runs)
    )
    values = []
    for run_index, time in params["points"]:
        view = system.runs[run_index].view(processor, time)
        values.append(
            _believes_view_verdict(system, view, processor, operand_bytes)
        )
    return {"values": values}


# -- E9 plan ---------------------------------------------------------------


def _shard_id_order(results: Dict[str, Dict[str, Any]]) -> List[str]:
    return sorted(results)


@register_plan("E9")
def e9_plan(n: int = 4, t: int = 2, horizon: int = 2) -> BatchPlan:
    from ..experiments import e09_omission_nontermination as e09

    params = {"n": n, "t": t, "horizon": horizon}

    def prepare_system(context: Dict[str, Any]) -> None:
        from ..model.builder import omission_system

        system = omission_system(n, t, horizon)
        context["system"] = system
        set_worker_context(system=system)
        context["exists0"] = pack_run_levels(
            run.exists(0) for run in system.runs
        )
        context["exists1"] = pack_run_levels(
            run.exists(1) for run in system.runs
        )
        context["full_mask"] = (1 << len(system.runs)) - 1
        context["all_states"] = list(system.occurring_views())

    def make_build(context: Dict[str, Any]) -> List[Shard]:
        return [
            Shard(
                shard_id="build/system",
                task="system.ensure",
                params={"mode": "omission", **params},
                stage="build",
            )
        ]

    def reduce_build(results, context) -> None:
        context["build_info"] = results["build/system"]

    def components_stage(
        name: str, states_key: str, phi_key: str, out_key: str
    ) -> Stage:
        """One reachability-component scan (a single, heavy shard)."""

        def make(context: Dict[str, Any]) -> List[Shard]:
            return [
                Shard(
                    shard_id=f"{name}/components",
                    task="e9.components",
                    params={"states": context[states_key]},
                    stage=name,
                )
            ]

        def reduce(results, context) -> None:
            components = results[f"{name}/components"]["components"]
            context[out_key] = cbox_bits(components, context[phi_key])

        return Stage(name=name, make_shards=make, reduce=reduce)

    def believes_stage(
        name: str, ops_key: str, pair_key: str, pair_name: str
    ) -> Stage:
        """Fan out ``B_i^N`` view verdicts, close under recall, emit a pair."""

        def make(context: Dict[str, Any]) -> List[Shard]:
            system = context["system"]
            size = context.get("shard_size") or DEFAULT_VIEW_CHUNK
            ops = context[ops_key]
            shards = []
            for processor in range(system.n):
                views = _proc_views(system, processor)
                for which in ("zero", "one"):
                    for index, (start, stop) in enumerate(
                        chunk_ranges(len(views), size)
                    ):
                        shards.append(
                            Shard(
                                shard_id=f"{name}/p{processor}-{which}/{index}",
                                task="e9.believes",
                                params={
                                    "processor": processor,
                                    "which": which,
                                    "operand": format(ops[which], "x"),
                                    "chunk": [start, stop],
                                },
                                stage=name,
                            )
                        )
            return shards

        def reduce(results, context) -> None:
            system = context["system"]
            zero_states: List[int] = []
            one_states: List[int] = []
            for shard_id in _shard_id_order(results):
                sink = zero_states if "-zero/" in shard_id else one_states
                sink.extend(results[shard_id]["true_views"])
            context[pair_key] = DecisionPair(
                close_under_recall(
                    zero_states, context["all_states"], system.table
                ),
                close_under_recall(
                    one_states, context["all_states"], system.table
                ),
                name=pair_name,
            )

        return Stage(name=name, make_shards=make, reduce=reduce)

    def reduce_base(results, context) -> None:
        # C□_{N∧∅}∃0 over the empty decision set: prime-step base case.
        components = results["eval-base/components"]["components"]
        cbox_base = cbox_bits(components, context["exists0"])
        full = context["full_mask"]
        context["first_ops"] = {
            "zero": context["exists0"] & cbox_base,
            "one": context["exists1"] & (full & ~cbox_base),
        }

    def prepare_cbox1(context: Dict[str, Any]) -> None:
        context["first_zeros"] = sorted(context["first_pair"].zeros)

    def reduce_cbox1(results, context) -> None:
        components = results["eval-cbox1/components"]["components"]
        cbox1 = cbox_bits(components, context["exists1"])
        full = context["full_mask"]
        context["cbox1"] = cbox1
        context["second_ops"] = {
            "zero": context["exists0"] & (full & ~cbox1),
            "one": context["exists1"] & cbox1,
        }

    def make_sticky(context: Dict[str, Any]) -> List[Shard]:
        system = context["system"]
        first = context["first_pair"]
        size = context.get("shard_size") or DEFAULT_RUN_CHUNK
        if size < 1024:
            size = max(size * 64, 1024)  # run chunks are cheaper than views
        zeros = sorted(first.zeros)
        ones = sorted(first.ones)
        return [
            Shard(
                shard_id=f"eval-sticky/runs/{index}",
                task="e9.triggers",
                params={
                    "zeros": zeros,
                    "ones": ones,
                    "runs": [start, stop],
                },
                stage="eval-sticky",
            )
            for index, (start, stop) in enumerate(
                chunk_ranges(len(system.runs), size)
            )
        ]

    def reduce_sticky(results, context) -> None:
        system = context["system"]
        zero_triggers: List[int] = []
        one_triggers: List[int] = []
        for shard_id in _shard_id_order(results):
            zero_triggers.extend(results[shard_id]["zero_triggers"])
            one_triggers.extend(results[shard_id]["one_triggers"])
        context["sticky_first"] = DecisionPair(
            close_under_recall(
                zero_triggers, context["all_states"], system.table
            ),
            close_under_recall(
                one_triggers, context["all_states"], system.table
            ),
            name=context["first_pair"].name,
        )

    def prepare_cbox2(context: Dict[str, Any]) -> None:
        context["sticky_zeros"] = sorted(context["sticky_first"].zeros)

    def make_probes(context: Dict[str, Any]) -> List[Shard]:
        system = context["system"]
        target = e09.witness_target(n, horizon)
        target_index = system.run_index_for(*target)
        context["target_index"] = target_index
        nonfaulty = sorted(system.runs[target_index].nonfaulty)
        context["target_nonfaulty"] = nonfaulty
        operand = format(context["cbox2"], "x")
        return [
            Shard(
                shard_id=f"eval-probes/p{processor}",
                task="e9.probe",
                params={
                    "processor": processor,
                    "operand": operand,
                    "points": [
                        [target_index, time] for time in range(horizon + 1)
                    ],
                },
                stage="eval-probes",
            )
            for processor in nonfaulty
        ]

    def reduce_probes(results, context) -> None:
        context["belief_never"] = all(
            not value
            for shard_id in _shard_id_order(results)
            for value in results[shard_id]["values"]
        )

    def reduce_assemble(results, context) -> None:
        system = context["system"]
        second = context["second_pair"]
        target_index = context["target_index"]
        run = system.runs[target_index]
        nobody_decides = all(
            _decision_in_run(system, second, target_index, processor) is None
            for processor in run.nonfaulty
        )
        cbox2 = context["cbox2"]
        perturbed_rows: List[List[Any]] = []
        for label, config, pattern in e09.perturbed_cases(n, horizon):
            run_index = system.run_index_for(config, pattern)
            perturbed_rows.append(
                [label, bool((cbox2 >> run_index) & 1)]
            )
        context["nobody_decides"] = nobody_decides
        context["perturbed_rows"] = perturbed_rows

    def finalize(context: Dict[str, Any]):
        return e09.build_result(
            context["system"],
            n,
            t,
            horizon,
            nobody_decides=context["nobody_decides"],
            belief_never=context["belief_never"],
            perturbed_rows=context["perturbed_rows"],
        )

    stages = [
        Stage("build", make_build, reduce_build),
        components_stage("eval-base", "empty_states", "exists0", "cbox_base"),
        believes_stage("eval-first", "first_ops", "first_pair", "F^{Λ,1}"),
        components_stage("eval-cbox1", "first_zeros", "exists1", "cbox1"),
        believes_stage("eval-second", "second_ops", "second_pair", "F^{Λ,2}"),
        Stage("eval-sticky", make_sticky, reduce_sticky),
        components_stage("eval-cbox2", "sticky_zeros", "exists1", "cbox2"),
        Stage("eval-probes", make_probes, reduce_probes),
        Stage("assemble", lambda context: [], reduce_assemble),
    ]
    # eval-base needs no member states; eval-cbox1/2 compute theirs in a
    # prepare hook from the preceding stage's pair.  The base stage's
    # reduce also derives the first-pair operands (it sees exists0/1).
    stages[1].prepare = lambda context: _prepare_base(context, prepare_system)
    stages[1].reduce = reduce_base
    stages[3].prepare = prepare_cbox1
    stages[3].reduce = reduce_cbox1
    stages[6].prepare = prepare_cbox2

    return BatchPlan(
        experiment_id="E9",
        params=params,
        stages=stages,
        finalize=finalize,
    )


def _prepare_base(context: Dict[str, Any], prepare_system) -> None:
    prepare_system(context)
    context["empty_states"] = []


def _decision_in_run(
    system, pair: DecisionPair, run_index: int, processor: int
) -> Optional[Tuple[int, int]]:
    """First decision of *processor* in one run — the reference firing
    scan of ``FullInformationProtocol``, including its 0-favouring
    tie-break for simultaneous first firings."""
    run = system.runs[run_index]
    zero_time: Optional[int] = None
    one_time: Optional[int] = None
    for time in range(system.horizon + 1):
        view = run.view(processor, time)
        if pair.decides_zero(view):
            zero_time = time
        if pair.decides_one(view):
            one_time = time
        if zero_time is not None or one_time is not None:
            break
    if zero_time is None and one_time is None:
        return None
    if zero_time is not None and (one_time is None or zero_time <= one_time):
        return (0, zero_time)
    return (1, one_time)  # type: ignore[return-value]


# -- E14: scaling ablation -------------------------------------------------


@register_task("e14.cell")
def _task_e14_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..experiments.e14_scaling import cell_row
    from ..model.failures import FailureMode

    row = cell_row(
        FailureMode(params["mode"]),
        params["n"],
        params["t"],
        params["horizon"],
    )
    return {"row": row}


@register_task("e14.messages")
def _task_e14_messages(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..experiments.e14_scaling import message_rows

    return {"rows": message_rows()}


@register_plan("E14")
def e14_plan(cells=None) -> BatchPlan:
    from ..experiments.e14_scaling import DEFAULT_CELLS, build_result

    normalized = [
        [getattr(mode, "value", mode), n, t, horizon]
        for mode, n, t, horizon in (cells or DEFAULT_CELLS)
    ]
    params = {"cells": normalized}

    def make_evaluate(context: Dict[str, Any]) -> List[Shard]:
        shards = [
            Shard(
                shard_id=f"evaluate/cell-{index}",
                task="e14.cell",
                params={
                    "mode": mode,
                    "n": n,
                    "t": t,
                    "horizon": horizon,
                },
                stage="evaluate",
            )
            for index, (mode, n, t, horizon) in enumerate(normalized)
        ]
        shards.append(
            Shard(
                shard_id="evaluate/messages",
                task="e14.messages",
                params={},
                stage="evaluate",
            )
        )
        return shards

    def reduce_evaluate(results, context) -> None:
        context["rows"] = [
            results[f"evaluate/cell-{index}"]["row"]
            for index in range(len(normalized))
        ]
        context["message_rows"] = results["evaluate/messages"]["rows"]

    def finalize(context: Dict[str, Any]):
        return build_result(context["rows"], context["message_rows"])

    return BatchPlan(
        experiment_id="E14",
        params=params,
        stages=[Stage("evaluate", make_evaluate, reduce_evaluate)],
        finalize=finalize,
    )


# -- E20: scaling sweep ----------------------------------------------------


@register_task("e20.cell")
def _task_e20_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..experiments.e20_scaling_gains import cell_result

    return cell_result(
        params["n"], params["t"], params["samples"], params["seed"]
    )


@register_plan("E20")
def e20_plan(cells=None, samples: int = 300, seed: int = 21) -> BatchPlan:
    from ..experiments.e20_scaling_gains import DEFAULT_CELLS, build_result

    normalized = [[n, t] for n, t in (cells or DEFAULT_CELLS)]
    params = {"cells": normalized, "samples": samples, "seed": seed}

    def make_evaluate(context: Dict[str, Any]) -> List[Shard]:
        return [
            Shard(
                shard_id=f"evaluate/cell-{index}-n{n}t{t}",
                task="e20.cell",
                params={"n": n, "t": t, "samples": samples, "seed": seed},
                stage="evaluate",
            )
            for index, (n, t) in enumerate(normalized)
        ]

    def reduce_evaluate(results, context) -> None:
        context["cell_results"] = [
            results[f"evaluate/cell-{index}-n{n}t{t}"]
            for index, (n, t) in enumerate(normalized)
        ]

    def finalize(context: Dict[str, Any]):
        return build_result(context["cell_results"], samples, seed)

    return BatchPlan(
        experiment_id="E20",
        params=params,
        stages=[Stage("evaluate", make_evaluate, reduce_evaluate)],
        finalize=finalize,
    )
