"""Shard task implementations and plan factories for the wired experiments.

E9 (Proposition 6.3, the ~385k-run omission cell) is decomposed into the
stage chain

``build`` → ``eval-base`` → ``eval-first`` → ``eval-cbox1`` →
``eval-second`` → ``eval-sticky`` → ``eval-cbox2`` → ``eval-probes`` →
``assemble``

which mirrors the monolithic evaluation exactly, but runs on **limb-block
shards** instead of run ranges: the supervisor loads the cell's
:class:`~repro.model.partition.SystemArrays` projection (an ``.npz``
sidecar — no ``Run`` objects are ever materialized on this path), cuts
the chunked kernel's group tables into
:class:`~repro.model.partition.LimbBlockPartition` blocks, and ships the
tiny JSON block descriptors to workers while the heavy tables travel
copy-on-write through the worker context:

* **believes shards** compute per-view verdicts of ``B_i^N(φ)`` for a
  *run-level* operand φ (every operand the F^Λ construction uses is one)
  over one ``(processor, block)`` slice of the group tables — one
  vectorized gather/segmented-reduce per shard, with verdicts identical
  to the reference ``eval_believes`` semantics;
* **components shards** emit one limb block's slice of the Corollary 3.3
  reachability components for a nonrigid set ``N∧Z`` as a compressed
  ``(runs, reps)`` partition; the stage barrier welds the block
  partitions with :func:`~repro.model.partition.merge_component_labels`
  (a union-find over the conflicting representatives only) and run-level
  ``C□`` values follow by AND-ing φ over each merged component;
* **trigger shards** stay run-range sharded (the first-firing scan is a
  dense pass over the view matrix) but are vectorized over their range,
  with the same simultaneous-firing tie-break as
  ``FullInformationProtocol.decision_for``;
* **probe shards** read belief verdicts at chosen points of the witness
  run through the partition's group-lookup path.

Run-level truth assignments travel between stages as hex-encoded bit
masks (bit ``i`` = run ``i``), so shard parameters stay JSON-serializable
and checkpoint digests bind each shard to its exact operand *and* its
exact block bounds — a relaid partition can never silently resume
another layout's shards.

E14 and E20 shard per sweep cell; their tasks call the same per-cell
helpers the monolithic experiments use.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.decision_sets import DecisionPair
from ..model.partition import (
    LimbBlockPartition,
    cbox_mask_from_labels,
    merge_component_labels,
    run_mask_to_limbs,
)
from .plan import BatchPlan, Stage, register_plan
from .shard import (
    Shard,
    chunk_ranges,
    register_task,
    set_worker_context,
    worker_context,
)

#: Default chunk size for the run-sharded trigger scan.
DEFAULT_RUN_CHUNK = 131072


# -- run-level bit masks ---------------------------------------------------


def pack_run_levels(values: Iterable[bool]) -> int:
    """Pack per-run booleans into an int (bit ``i`` = run ``i``).

    Accumulates little-endian bytes and converts once — bit-by-bit
    ``mask |= 1 << i`` would be quadratic in the run count (385k-bit masks
    on the E9 cell).
    """
    data = bytearray()
    byte = 0
    shift = 0
    for value in values:
        if value:
            byte |= 1 << shift
        shift += 1
        if shift == 8:
            data.append(byte)
            byte = 0
            shift = 0
    if shift:
        data.append(byte)
    return int.from_bytes(bytes(data), "little")


def mask_bytes(mask: int, count: int) -> bytes:
    """Little-endian bytes of a run-level mask, for O(1) per-bit reads."""
    return mask.to_bytes((count + 7) // 8 or 1, "little")


def mask_bit(data: bytes, index: int) -> int:
    """Bit *index* of a mask serialized by :func:`mask_bytes`."""
    return (data[index >> 3] >> (index & 7)) & 1


def cbox_bits(components: List[int], phi: int) -> int:
    """Run-level ``C□`` truth from component labels and run-level φ bits.

    A run's value is the AND of φ over its reachability component; label
    ``-1`` (no nonfaulty member occurrence anywhere in the run) is
    vacuously true — the same contract as
    :func:`repro.knowledge.semantics.eval_continual_common_components`.
    """
    phi_bytes = mask_bytes(phi, len(components))
    component_ok: Dict[int, bool] = {}
    for run_index, label in enumerate(components):
        if label != -1:
            component_ok[label] = bool(
                component_ok.get(label, True)
                and mask_bit(phi_bytes, run_index)
            )
    return pack_run_levels(
        label == -1 or component_ok[label] for label in components
    )


# -- E9 tasks --------------------------------------------------------------


def _operand_limbs(partition: LimbBlockPartition, operand_hex: str):
    """A shard's run-level operand, spread to point-level limbs."""
    return run_mask_to_limbs(
        int(operand_hex, 16), partition.num_runs, partition.width
    )


@register_task("system.ensure")
def _task_system_ensure(params: Dict[str, Any]) -> Dict[str, Any]:
    """Build stage: make sure the cell's enumeration *and* its
    :class:`~repro.model.partition.SystemArrays` sidecar are on disk.

    If both current-version cache files already exist the shard is a
    no-op; otherwise the worker enumerates (possibly in parallel) and the
    provider persists the system plus the array projection, so the
    supervisor's evaluate-stage ``prepare`` gets a fast ``.npz`` hit and
    never unpickles a ``Run`` object.  With the disk layer off there is
    nothing a worker could hand back cheaply, so the supervisor builds
    in-process instead.
    """
    from ..model.failures import FailureMode
    from ..model.provider import get_provider

    mode = FailureMode(params["mode"])
    n, t, horizon = params["n"], params["t"], params["horizon"]
    provider = get_provider()
    if provider.has_current_cell(
        mode, n, t, horizon
    ) and provider.has_current_arrays(mode, n, t, horizon):
        return {"built": False, "cached": True}
    if not provider.disk_enabled:
        return {"built": False, "cached": False}
    arrays = provider.get_arrays(mode, n, t, horizon)
    return {
        "built": True,
        "cached": False,
        "runs": arrays.num_runs,
        "views": arrays.num_views,
    }


@register_task("e9.believes")
def _task_believes(params: Dict[str, Any]) -> Dict[str, Any]:
    """``B_p^N(operand)`` verdicts over one limb block's state groups."""
    partition: LimbBlockPartition = worker_context("partition")
    nf_limbs = worker_context("nf_limbs")
    processor = params["processor"]
    phi = _operand_limbs(partition, params["operand"])
    views = partition.believes_true_views(
        processor, params["block"]["block"], nf_limbs[processor], phi
    )
    return {"true_views": [int(view) for view in views]}


@register_task("e9.components")
def _task_components(params: Dict[str, Any]) -> Dict[str, Any]:
    """One limb block's slice of the ``N∧Z`` reachability components.

    Emits the block-local partition compressed as ``(runs, reps)`` — the
    touched runs and each one's component representative.  The stage
    barrier merges the blocks
    (:func:`~repro.model.partition.merge_component_labels`); the merged
    labels may differ in value from the monolithic union-find scan's, but
    the partition (all that ``cbox_bits`` consumes) is identical.
    """
    partition: LimbBlockPartition = worker_context("partition")
    nf_limbs = worker_context("nf_limbs")
    flags = partition.state_flags(params["states"])
    runs, reps = partition.component_labels(
        params["block"]["block"], flags, nf_limbs
    )
    return {
        "runs": [int(run) for run in runs],
        "reps": [int(rep) for rep in reps],
    }


@register_task("e9.triggers")
def _task_triggers(params: Dict[str, Any]) -> Dict[str, Any]:
    """First-firing trigger views of a pair over a contiguous run range."""
    arrays = worker_context("arrays")
    zeros, ones = arrays.first_fire_triggers(
        params["zeros"], params["ones"], tuple(params["runs"])
    )
    return {
        "zero_triggers": [int(view) for view in zeros],
        "one_triggers": [int(view) for view in ones],
    }


@register_task("e9.probe")
def _task_probe(params: Dict[str, Any]) -> Dict[str, Any]:
    """Belief verdicts ``B_p^N(operand)`` at explicit ``(run, time)`` points."""
    arrays = worker_context("arrays")
    partition: LimbBlockPartition = worker_context("partition")
    nf_limbs = worker_context("nf_limbs")
    processor = params["processor"]
    phi = _operand_limbs(partition, params["operand"])
    values = []
    for run_index, time in params["points"]:
        view = arrays.view_at(run_index, time, processor)
        values.append(
            bool(
                partition.probe_believes(
                    processor, view, nf_limbs[processor], phi
                )
            )
        )
    return {"values": values}


# -- E9 plan ---------------------------------------------------------------


def _shard_id_order(results: Dict[str, Dict[str, Any]]) -> List[str]:
    return sorted(results)


@register_plan("E9")
def e9_plan(n: int = 4, t: int = 2, horizon: int = 2) -> BatchPlan:
    from ..experiments import e09_omission_nontermination as e09

    params = {"n": n, "t": t, "horizon": horizon}

    def prepare_eval(context: Dict[str, Any]) -> None:
        """Load the array projection, cut the limb-block partition and
        publish both (plus the per-processor nonfaulty point masks) to
        the worker context — exactly one context epoch, so the pool's
        workers fork once and inherit everything copy-on-write."""
        from ..model.failures import FailureMode
        from ..model.provider import get_provider

        arrays = get_provider().get_arrays(
            FailureMode("omission"), n, t, horizon
        )
        partition = LimbBlockPartition.from_arrays(
            arrays, target_entries=context.get("shard_size") or None
        )
        nf_limbs = [
            partition.nonfaulty_limbs(processor)
            for processor in range(arrays.n)
        ]
        context["arrays"] = arrays
        context["partition"] = partition
        context["exists0"] = arrays.exists_mask(0)
        context["exists1"] = arrays.exists_mask(1)
        context["full_mask"] = (1 << arrays.num_runs) - 1
        context["empty_states"] = []
        set_worker_context(
            arrays=arrays, partition=partition, nf_limbs=nf_limbs
        )

    def make_build(context: Dict[str, Any]) -> List[Shard]:
        return [
            Shard(
                shard_id="build/system",
                task="system.ensure",
                params={"mode": "omission", **params},
                stage="build",
            )
        ]

    def reduce_build(results, context) -> None:
        context["build_info"] = results["build/system"]

    def components_stage(
        name: str, states_key: str, phi_key: str, out_key: str
    ) -> Stage:
        """One reachability-component scan, sharded by limb block."""

        def make(context: Dict[str, Any]) -> List[Shard]:
            partition: LimbBlockPartition = context["partition"]
            states = sorted(context[states_key])
            return [
                Shard(
                    shard_id=f"{name}/b{block['block']}",
                    task="e9.components",
                    params={"states": states, "block": block},
                    stage=name,
                )
                for block in partition.block_descriptors()
            ]

        def reduce(results, context) -> None:
            labels = merge_component_labels(
                context["arrays"].num_runs,
                [
                    (results[shard_id]["runs"], results[shard_id]["reps"])
                    for shard_id in _shard_id_order(results)
                ],
            )
            context[out_key] = cbox_mask_from_labels(
                labels, context[phi_key], context["arrays"].num_runs
            )

        return Stage(name=name, make_shards=make, reduce=reduce)

    def believes_stage(
        name: str, ops_key: str, pair_key: str, pair_name: str
    ) -> Stage:
        """Fan out ``B_i^N`` view verdicts per limb block, close under
        recall, emit a decision pair."""

        def make(context: Dict[str, Any]) -> List[Shard]:
            partition: LimbBlockPartition = context["partition"]
            ops = context[ops_key]
            shards = []
            for processor in range(partition.n):
                for which in ("zero", "one"):
                    operand = format(ops[which], "x")
                    for block in partition.block_descriptors():
                        shards.append(
                            Shard(
                                shard_id=(
                                    f"{name}/p{processor}-{which}"
                                    f"/b{block['block']}"
                                ),
                                task="e9.believes",
                                params={
                                    "processor": processor,
                                    "which": which,
                                    "operand": operand,
                                    "block": block,
                                },
                                stage=name,
                            )
                        )
            return shards

        def reduce(results, context) -> None:
            arrays = context["arrays"]
            zero_states: List[int] = []
            one_states: List[int] = []
            for shard_id in _shard_id_order(results):
                sink = zero_states if "-zero/" in shard_id else one_states
                sink.extend(results[shard_id]["true_views"])
            context[pair_key] = DecisionPair(
                frozenset(arrays.recall_closure(zero_states)),
                frozenset(arrays.recall_closure(one_states)),
                name=pair_name,
            )

        return Stage(name=name, make_shards=make, reduce=reduce)

    def reduce_base(results, context) -> None:
        # C□_{N∧∅}∃0 over the empty decision set: prime-step base case.
        labels = merge_component_labels(
            context["arrays"].num_runs,
            [
                (results[shard_id]["runs"], results[shard_id]["reps"])
                for shard_id in _shard_id_order(results)
            ],
        )
        cbox_base = cbox_mask_from_labels(
            labels, context["exists0"], context["arrays"].num_runs
        )
        full = context["full_mask"]
        context["first_ops"] = {
            "zero": context["exists0"] & cbox_base,
            "one": context["exists1"] & (full & ~cbox_base),
        }

    def prepare_cbox1(context: Dict[str, Any]) -> None:
        context["first_zeros"] = sorted(context["first_pair"].zeros)

    def reduce_cbox1(results, context) -> None:
        labels = merge_component_labels(
            context["arrays"].num_runs,
            [
                (results[shard_id]["runs"], results[shard_id]["reps"])
                for shard_id in _shard_id_order(results)
            ],
        )
        cbox1 = cbox_mask_from_labels(
            labels, context["exists1"], context["arrays"].num_runs
        )
        full = context["full_mask"]
        context["cbox1"] = cbox1
        context["second_ops"] = {
            "zero": context["exists0"] & (full & ~cbox1),
            "one": context["exists1"] & cbox1,
        }

    def make_sticky(context: Dict[str, Any]) -> List[Shard]:
        arrays = context["arrays"]
        first = context["first_pair"]
        size = context.get("shard_size") or DEFAULT_RUN_CHUNK
        if size < 1024:
            size = max(size * 64, 1024)  # run chunks are cheaper than views
        zeros = sorted(first.zeros)
        ones = sorted(first.ones)
        return [
            Shard(
                shard_id=f"eval-sticky/runs/{index}",
                task="e9.triggers",
                params={
                    "zeros": zeros,
                    "ones": ones,
                    "runs": [start, stop],
                },
                stage="eval-sticky",
            )
            for index, (start, stop) in enumerate(
                chunk_ranges(arrays.num_runs, size)
            )
        ]

    def reduce_sticky(results, context) -> None:
        arrays = context["arrays"]
        zero_triggers: List[int] = []
        one_triggers: List[int] = []
        for shard_id in _shard_id_order(results):
            zero_triggers.extend(results[shard_id]["zero_triggers"])
            one_triggers.extend(results[shard_id]["one_triggers"])
        context["sticky_first"] = DecisionPair(
            frozenset(arrays.recall_closure(zero_triggers)),
            frozenset(arrays.recall_closure(one_triggers)),
            name=context["first_pair"].name,
        )

    def prepare_cbox2(context: Dict[str, Any]) -> None:
        context["sticky_zeros"] = sorted(context["sticky_first"].zeros)

    def make_probes(context: Dict[str, Any]) -> List[Shard]:
        arrays = context["arrays"]
        target = e09.witness_target(n, horizon)
        target_index = arrays.run_index_of(*target)
        context["target_index"] = target_index
        nonfaulty = arrays.nonfaulty_of(target_index)
        context["target_nonfaulty"] = nonfaulty
        operand = format(context["cbox2"], "x")
        return [
            Shard(
                shard_id=f"eval-probes/p{processor}",
                task="e9.probe",
                params={
                    "processor": processor,
                    "operand": operand,
                    "points": [
                        [target_index, time] for time in range(horizon + 1)
                    ],
                },
                stage="eval-probes",
            )
            for processor in nonfaulty
        ]

    def reduce_probes(results, context) -> None:
        context["belief_never"] = all(
            not value
            for shard_id in _shard_id_order(results)
            for value in results[shard_id]["values"]
        )

    def reduce_assemble(results, context) -> None:
        arrays = context["arrays"]
        second = context["second_pair"]
        target_index = context["target_index"]
        nobody_decides = all(
            arrays.first_decision(
                target_index, processor, second.zeros, second.ones
            )
            is None
            for processor in context["target_nonfaulty"]
        )
        cbox2 = context["cbox2"]
        perturbed_rows: List[List[Any]] = []
        for label, config, pattern in e09.perturbed_cases(n, horizon):
            run_index = arrays.run_index_of(config, pattern)
            perturbed_rows.append(
                [label, bool((cbox2 >> run_index) & 1)]
            )
        context["nobody_decides"] = nobody_decides
        context["perturbed_rows"] = perturbed_rows

    def finalize(context: Dict[str, Any]):
        return e09.build_result(
            context["arrays"].num_runs,
            n,
            t,
            horizon,
            nobody_decides=context["nobody_decides"],
            belief_never=context["belief_never"],
            perturbed_rows=context["perturbed_rows"],
        )

    stages = [
        Stage("build", make_build, reduce_build),
        components_stage("eval-base", "empty_states", "exists0", "cbox_base"),
        believes_stage("eval-first", "first_ops", "first_pair", "F^{Λ,1}"),
        components_stage("eval-cbox1", "first_zeros", "exists1", "cbox1"),
        believes_stage("eval-second", "second_ops", "second_pair", "F^{Λ,2}"),
        Stage("eval-sticky", make_sticky, reduce_sticky),
        components_stage("eval-cbox2", "sticky_zeros", "exists1", "cbox2"),
        Stage("eval-probes", make_probes, reduce_probes),
        Stage("assemble", lambda context: [], reduce_assemble),
    ]
    # eval-base loads arrays + partition (one worker-context epoch for the
    # whole batch) and its reduce derives the first-pair operands;
    # eval-cbox1/2 compute their Z states in prepare hooks from the
    # preceding stage's pair.
    stages[1].prepare = prepare_eval
    stages[1].reduce = reduce_base
    stages[3].prepare = prepare_cbox1
    stages[3].reduce = reduce_cbox1
    stages[6].prepare = prepare_cbox2

    return BatchPlan(
        experiment_id="E9",
        params=params,
        stages=stages,
        finalize=finalize,
        partition="limb",
    )


# -- E14: scaling ablation -------------------------------------------------


@register_task("e14.cell")
def _task_e14_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..experiments.e14_scaling import cell_row
    from ..model.failures import FailureMode

    row = cell_row(
        FailureMode(params["mode"]),
        params["n"],
        params["t"],
        params["horizon"],
    )
    return {"row": row}


@register_task("e14.messages")
def _task_e14_messages(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..experiments.e14_scaling import message_rows

    return {"rows": message_rows()}


@register_plan("E14")
def e14_plan(cells=None) -> BatchPlan:
    from ..experiments.e14_scaling import DEFAULT_CELLS, build_result

    normalized = [
        [getattr(mode, "value", mode), n, t, horizon]
        for mode, n, t, horizon in (cells or DEFAULT_CELLS)
    ]
    params = {"cells": normalized}

    def make_evaluate(context: Dict[str, Any]) -> List[Shard]:
        shards = [
            Shard(
                shard_id=f"evaluate/cell-{index}",
                task="e14.cell",
                params={
                    "mode": mode,
                    "n": n,
                    "t": t,
                    "horizon": horizon,
                },
                stage="evaluate",
            )
            for index, (mode, n, t, horizon) in enumerate(normalized)
        ]
        shards.append(
            Shard(
                shard_id="evaluate/messages",
                task="e14.messages",
                params={},
                stage="evaluate",
            )
        )
        return shards

    def reduce_evaluate(results, context) -> None:
        context["rows"] = [
            results[f"evaluate/cell-{index}"]["row"]
            for index in range(len(normalized))
        ]
        context["message_rows"] = results["evaluate/messages"]["rows"]

    def finalize(context: Dict[str, Any]):
        return build_result(context["rows"], context["message_rows"])

    return BatchPlan(
        experiment_id="E14",
        params=params,
        stages=[Stage("evaluate", make_evaluate, reduce_evaluate)],
        finalize=finalize,
    )


# -- E20: scaling sweep ----------------------------------------------------


@register_task("e20.cell")
def _task_e20_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..experiments.e20_scaling_gains import cell_result

    return cell_result(
        params["n"], params["t"], params["samples"], params["seed"]
    )


@register_plan("E20")
def e20_plan(cells=None, samples: int = 300, seed: int = 21) -> BatchPlan:
    from ..experiments.e20_scaling_gains import DEFAULT_CELLS, build_result

    normalized = [[n, t] for n, t in (cells or DEFAULT_CELLS)]
    params = {"cells": normalized, "samples": samples, "seed": seed}

    def make_evaluate(context: Dict[str, Any]) -> List[Shard]:
        return [
            Shard(
                shard_id=f"evaluate/cell-{index}-n{n}t{t}",
                task="e20.cell",
                params={"n": n, "t": t, "samples": samples, "seed": seed},
                stage="evaluate",
            )
            for index, (n, t) in enumerate(normalized)
        ]

    def reduce_evaluate(results, context) -> None:
        context["cell_results"] = [
            results[f"evaluate/cell-{index}-n{n}t{t}"]
            for index, (n, t) in enumerate(normalized)
        ]

    def finalize(context: Dict[str, Any]):
        return build_result(context["cell_results"], samples, seed)

    return BatchPlan(
        experiment_id="E20",
        params=params,
        stages=[Stage("evaluate", make_evaluate, reduce_evaluate)],
        finalize=finalize,
    )
