"""Batch plans: stage DAGs, the batch runner and the plan registry.

A :class:`BatchPlan` is a linear DAG of :class:`Stage` objects — build the
system, evaluate the formula set (one or more fan-out stages), assemble the
verdict tables.  Each stage

1. optionally runs a ``prepare`` hook in the supervisor (e.g. load the
   enumerated system into the worker context so forked workers inherit it
   copy-on-write);
2. produces a deterministic shard list via ``make_shards``;
3. has its shards executed by :class:`~repro.exec.pool.ShardPool` (with
   checkpointing, retry and fault tolerance), already-checkpointed shards
   being skipped on ``--resume``;
4. folds the payloads into the shared batch context via ``reduce``, where
   the next stage's ``make_shards`` can see them.

``finalize`` turns the accumulated context into an
:class:`~repro.experiments.framework.ExperimentResult` — for the wired
experiments (E9, E14, E20) through the *same* assembly helpers the
monolithic path uses, which is what makes the sharded verdicts
byte-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .. import obs, trace
from ..errors import ConfigurationError
from .checkpoint import CheckpointStore
from .shard import Shard, params_digest

#: Registered plan factories, keyed by experiment id.
EXEC_PLANS: Dict[str, Callable[..., "BatchPlan"]] = {}


def register_plan(
    experiment_id: str,
) -> Callable[[Callable[..., "BatchPlan"]], Callable[..., "BatchPlan"]]:
    """Decorator registering a plan factory for an experiment id."""

    def decorate(factory: Callable[..., "BatchPlan"]):
        EXEC_PLANS[experiment_id] = factory
        return factory

    return decorate


def plan_for(experiment_id: str, **params: Any) -> "BatchPlan":
    """The batch plan for an experiment; unknown ids raise with the known
    set listed (mirroring the experiment registry's behaviour)."""
    from . import tasks  # noqa: F401  (populates EXEC_PLANS on first use)

    factory = EXEC_PLANS.get(experiment_id)
    if factory is None:
        known = ", ".join(sorted(EXEC_PLANS))
        raise ConfigurationError(
            f"no batch plan for experiment {experiment_id!r}; "
            f"sharded execution is wired for: {known}"
        )
    return factory(**params)


@dataclass
class Stage:
    """One stage of a batch plan."""

    name: str
    make_shards: Callable[[Dict[str, Any]], List[Shard]]
    reduce: Callable[[Dict[str, Dict[str, Any]], Dict[str, Any]], None]
    prepare: Optional[Callable[[Dict[str, Any]], None]] = None


@dataclass
class BatchPlan:
    """A complete sharded computation for one experiment."""

    experiment_id: str
    params: Dict[str, Any]
    stages: List[Stage]
    finalize: Callable[[Dict[str, Any]], Any]
    context: Dict[str, Any] = field(default_factory=dict)
    #: Sharding scheme the plan's stages use (``"run"`` for run-range /
    #: per-cell fan-out, ``"limb"`` for limb-block shards over the
    #: chunked kernel's group tables).  Part of the batch key: a
    #: checkpoint directory written under one scheme is never resumed by
    #: a plan sharding under another.
    partition: str = "run"

    def params_digest(self) -> str:
        return params_digest(self.params)

    def batch_key(self) -> str:
        """Checkpoint-directory key: experiment + inputs + kernel +
        partition scheme.

        The selected evaluation kernel (three-valued:
        ``bitset`` / ``chunked`` / ``reference``) is part of the key
        because shard payloads of different kernels, while
        verdict-identical, are not interchangeable as *resume* state for
        a batch claiming a specific kernel; the partition scheme is part
        of it for the same reason — run-range and limb-block shards
        decompose the same truth table along different axes.
        """
        from ..model.kernels import active_kernel

        return (
            f"{self.experiment_id}_{self.params_digest()[:12]}"
            f"_{active_kernel()}_{self.partition}"
        )

    def manifest_meta(self) -> Dict[str, Any]:
        from .. import __version__
        from ..model.kernels import active_kernel

        return {
            "experiment": self.experiment_id,
            "params_digest": self.params_digest(),
            "kernel": active_kernel(),
            "partition": self.partition,
            "library_version": __version__,
        }


def run_batch(
    plan: BatchPlan,
    *,
    workers: Optional[int] = None,
    resume: bool = False,
    shard_size: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff: Optional[float] = None,
    checkpoint_root: Optional[str] = None,
):
    """Execute *plan* to completion and return its ``ExperimentResult``.

    With ``resume=True``, shards whose checkpoints validate (same inputs,
    same checkpoint/library version) are served from disk and only the
    missing shards execute; otherwise the batch's checkpoint directory is
    cleared and every shard runs.  Completed shards are checkpointed as
    they finish, so the batch can be killed at any instant and resumed.
    """
    from ..experiments.framework import attach_instrumentation, attach_trace
    from ..obs.journal import TelemetryJournal
    from ..obs.resource import ResourceSampler
    from .pool import ShardPool

    store = CheckpointStore(plan.batch_key(), root=checkpoint_root)
    meta = plan.manifest_meta()
    if not (resume and store.manifest_matches(meta)):
        store.clear()
        store.write_manifest(meta)
        resume = False
    pool = ShardPool(
        workers, timeout=timeout, retries=retries, backoff=backoff
    )
    # Run-scoped telemetry journal next to the checkpoints.  Best-effort
    # throughout: the journal observes the run, it never fails it.
    try:
        journal: Optional[TelemetryJournal] = TelemetryJournal(
            store.journal_path(),
            batch=plan.batch_key(),
            experiment=plan.experiment_id,
        )
    except OSError:
        journal = None

    def emit(event: str, fields: Dict[str, Any]) -> None:
        if journal is not None:
            journal.emit(event, **fields)

    pool.on_event = emit
    sampler = ResourceSampler(
        on_sample=lambda sample: emit(
            "resource_sample",
            {
                "scope": "supervisor",
                "worker": 0,
                "rss_bytes": sample.get("rss_bytes", 0.0),
                "cpu_seconds": sample.get("cpu_seconds", 0.0),
                "majflt": sample.get("majflt", 0.0),
                "minflt": sample.get("minflt", 0.0),
            },
        )
    )
    context = plan.context
    context.update(
        {
            "experiment": plan.experiment_id,
            "params": dict(plan.params),
            "shard_size": shard_size,
        }
    )
    before = obs.snapshot()
    mark = trace.watermark()
    started = time.perf_counter()
    total_shards = 0
    resumed_shards = 0

    def snapshot_health() -> None:
        # Durable, best-effort: `batch status` and `batch top` read this
        # to show retry counts and worker heartbeat/RSS for running or
        # interrupted batches; a write failure must never fail the batch.
        try:
            snapshot = pool.health_snapshot()
            store.write_health(snapshot)
            emit("health", {"snapshot": snapshot})
        except Exception:
            pass

    ok = False
    try:
        sampler.start()
        with trace.span(
            f"experiment.{plan.experiment_id}",
            experiment=plan.experiment_id,
            batch=plan.batch_key(),
        ):
            for stage in plan.stages:
                stage_started = time.perf_counter()
                if stage.prepare is not None:
                    with trace.span("exec.prepare", stage=stage.name):
                        stage.prepare(context)
                shards = stage.make_shards(context)
                emit(
                    "stage_start",
                    {"stage": stage.name, "shards": len(shards)},
                )
                total_shards += len(shards)
                results: Dict[str, Dict[str, Any]] = {}
                to_run: List[Shard] = []
                for shard in shards:
                    payload = (
                        store.load(shard.shard_id, shard.params_digest())
                        if resume
                        else None
                    )
                    if payload is not None:
                        results[shard.shard_id] = payload
                        resumed_shards += 1
                        obs.count("exec_shards_resumed")
                        emit("shard_resumed", {"shard": shard.shard_id})
                    else:
                        to_run.append(shard)
                if to_run:
                    with trace.span(
                        "exec.stage", stage=stage.name, shards=len(to_run)
                    ):
                        results.update(
                            pool.run(
                                to_run,
                                on_complete=lambda s, p: store.store(
                                    s.shard_id, s.params_digest(), p
                                ),
                            )
                        )
                    snapshot_health()
                stage.reduce(results, context)
                emit(
                    "stage_done",
                    {
                        "stage": stage.name,
                        "seconds": round(
                            time.perf_counter() - stage_started, 6
                        ),
                    },
                )
            result = plan.finalize(context)
        ok = True
    finally:
        snapshot_health()
        pool.close()
        sampler.stop()
        if journal is not None:
            delta = obs.delta_since(before)
            journal.emit("counter_delta", scope="supervisor", delta=delta)
            for name, stats in _span_summaries(mark).items():
                journal.emit(
                    "span_summary",
                    name=name,
                    spans=stats["spans"],
                    seconds=stats["seconds"],
                )
            journal.emit(
                "batch_done",
                seconds=round(time.perf_counter() - started, 6),
                shards=total_shards,
                ok=ok,
            )
            journal.close()
    attach_instrumentation(result, before)
    attach_trace(result, mark)
    result.data["batch"] = {
        "key": plan.batch_key(),
        "stages": [stage.name for stage in plan.stages],
        "shards": total_shards,
        "resumed": resumed_shards,
        "workers": pool.workers,
        "wall_seconds": time.perf_counter() - started,
        "retries": sum(pool.shard_retries.values()),
        "retry_causes": dict(pool.retry_causes),
        "journal": store.journal_path() if journal is not None else None,
    }
    return result


def _span_summaries(mark: int) -> Dict[str, Dict[str, Any]]:
    """Per-name span count/total-seconds since trace watermark *mark*."""
    summaries: Dict[str, Dict[str, Any]] = {}
    for span_record in trace.collect(mark):
        entry = summaries.setdefault(
            span_record.name, {"spans": 0, "seconds": 0.0}
        )
        entry["spans"] += 1
        entry["seconds"] = round(
            entry["seconds"] + (span_record.duration or 0.0), 6
        )
    return summaries
