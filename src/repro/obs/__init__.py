"""Telemetry: process-wide counters, stage timers, histograms and gauges.

Every hot path of the stack reports into one lightweight, always-on
:class:`Instrumentation` instance (:data:`OBS`):

* the system builder counts runs built and views interned and times the
  enumeration stage;
* :meth:`repro.model.system.System.cached_evaluation` counts formula-cache
  hits/misses and times cache-miss evaluations;
* the fixpoint evaluators in :mod:`repro.knowledge.semantics` and
  :mod:`repro.model.chunked` count iterations and record
  **iterations-to-convergence** and **dirty-limb frontier width**
  histograms — the distribution-shaped quantities (elimination depth for
  ``C□``/``C◇``, frontier decay) that cumulative counters hide;
* the :class:`~repro.model.provider.SystemProvider` counts system-cache and
  disk-cache hits/misses (including pickle-sidecar hits);
* the sharded batch engine in :mod:`repro.exec` counts shard lifecycle
  events, records per-shard wall-time histograms
  (``exec_shard_seconds``) and folds each worker's delta back into the
  supervisor via :func:`merge_delta` — histograms merge per-bucket,
  exactly like counters add;
* every :func:`stage` additionally records its duration into a histogram
  of the same name, so cumulative timers come with distributions
  (system build and cache-load latencies included) for free.

The cost model stays "a few dict operations per event": counters are dict
increments, timers wrap whole stages, and a histogram observe is one
bisect over ~50 fixed log-spaced bounds (see :mod:`repro.obs.metrics`) —
keeping everything on costs well under 5% on the micro benches (asserted
in ``benchmarks/bench_micro_core.py``).

The instance is **thread-safe**: mutation happens under a lock, and the
``stage()`` reentrancy set is thread-local, so the background resource
sampler (:mod:`repro.obs.resource`) and future daemon worker threads can
report concurrently without racing dict updates or suppressing each
other's same-named stages.

Consumers take a :func:`snapshot` before a workload and a
:func:`delta_since` after it; :func:`repro.experiments.registry.run_experiment`
does exactly that to stamp every ``ExperimentResult.data`` with its own
stage timings, and ``repro-eba --stats`` prints the process totals.
``repro-eba metrics`` renders the same snapshot as Prometheus text
exposition (:func:`repro.obs.metrics.prometheus_text`), and batch runs
stream deltas into a run-scoped telemetry journal
(:mod:`repro.obs.journal`).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .metrics import Histogram, histogram_delta, summarize

__all__ = [
    "Instrumentation",
    "OBS",
    "count",
    "stage",
    "observe",
    "gauge",
    "snapshot",
    "delta_since",
    "merge_delta",
    "reset",
    "format_summary",
]


class Instrumentation:
    """Named counters, cumulative wall-time stages, histograms and gauges.

    Stages are reentrancy-safe: a nested ``stage("x")`` inside an open
    ``stage("x")`` is a no-op, so recursive evaluation (formulas evaluating
    their operands) never double-counts wall time.  The reentrancy set is
    per-thread, so the same stage name running concurrently in two threads
    is timed in both instead of one silently suppressing the other.
    """

    __slots__ = (
        "counters",
        "timers",
        "histograms",
        "gauges",
        "enabled",
        "_lock",
        "_local",
    )

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.gauges: Dict[str, float] = {}
        self.enabled = True
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def _active(self) -> set:
        """This thread's set of currently-open stage names."""
        active = getattr(self._local, "active", None)
        if active is None:
            active = self._local.active = set()
        return active

    def count(self, name: str, delta: int = 1) -> None:
        """Add *delta* to counter *name*."""
        if self.enabled:
            with self._lock:
                self.counters[name] = self.counters.get(name, 0) + delta

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name* (shared log buckets)."""
        if self.enabled:
            with self._lock:
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = Histogram()
                histogram.observe(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        if self.enabled:
            with self._lock:
                self.gauges[name] = value

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the enclosed block under *name*.

        Each completed (non-reentrant) frame also lands one observation in
        the histogram of the same name, so every stage gets a latency
        distribution alongside its cumulative timer.
        """
        active = self._active
        if not self.enabled or name in active:
            yield
            return
        active.add(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            active.discard(name)
            elapsed = time.perf_counter() - start
            with self._lock:
                self.timers[name] = self.timers.get(name, 0.0) + elapsed
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = Histogram()
                histogram.observe(elapsed)

    def snapshot(self) -> Dict[str, Any]:
        """A copyable, JSON-ready view of the current totals."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "timers": dict(self.timers),
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in self.histograms.items()
                },
                "gauges": dict(self.gauges),
            }

    def delta_since(self, before: Dict[str, Any]) -> Dict[str, Any]:
        """Totals accumulated since *before* (zero entries dropped).

        Histogram entries diff per-bucket; gauges report their current
        value when it changed since *before*.
        """
        current = self.snapshot()
        counters_before = before.get("counters", {})
        timers_before = before.get("timers", {})
        histograms_before = before.get("histograms", {})
        gauges_before = before.get("gauges", {})
        counters = {
            name: value - counters_before.get(name, 0)
            for name, value in current["counters"].items()
            if value - counters_before.get(name, 0)
        }
        timers = {
            name: round(value - timers_before.get(name, 0.0), 6)
            for name, value in current["timers"].items()
            if value - timers_before.get(name, 0.0) > 0.0
        }
        histograms = {}
        for name, snap in current["histograms"].items():
            diff = histogram_delta(snap, histograms_before.get(name))
            if diff is not None:
                histograms[name] = diff
        gauges = {
            name: value
            for name, value in current["gauges"].items()
            if gauges_before.get(name) != value
        }
        delta: Dict[str, Any] = {"counters": counters, "timers": timers}
        if histograms:
            delta["histograms"] = histograms
        if gauges:
            delta["gauges"] = gauges
        return delta

    def merge_delta(self, delta: Dict[str, Any]) -> None:
        """Fold a snapshot/delta from another process into this instance.

        Used by the parallel system builder and the sharded batch engine:
        each worker returns the :func:`delta_since` it accumulated, and
        the parent folds those into its own totals so parallel and serial
        runs report identical counters — and, bucket for bucket,
        identical histograms.  Gauges are last-write-wins.
        """
        if not self.enabled:
            return
        with self._lock:
            for name, value in delta.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + int(value)
            for name, value in delta.get("timers", {}).items():
                self.timers[name] = self.timers.get(name, 0.0) + float(value)
            for name, snap in (delta.get("histograms") or {}).items():
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = Histogram()
                histogram.merge(snap)
            for name, value in (delta.get("gauges") or {}).items():
                self.gauges[name] = value

    def reset(self) -> None:
        """Zero all counters, timers, histograms and gauges (for tests)."""
        with self._lock:
            self.counters.clear()
            self.timers.clear()
            self.histograms.clear()
            self.gauges.clear()


#: The process-wide instrumentation sink.
OBS = Instrumentation()


def count(name: str, delta: int = 1) -> None:
    """Add *delta* to the process-wide counter *name*."""
    OBS.count(name, delta)


def observe(name: str, value: float) -> None:
    """Record *value* into the process-wide histogram *name*."""
    OBS.observe(name, value)


def gauge(name: str, value: float) -> None:
    """Set the process-wide gauge *name* to *value*."""
    OBS.gauge(name, value)


def stage(name: str):
    """Time the enclosed block under the process-wide stage *name*."""
    return OBS.stage(name)


def snapshot() -> Dict[str, Any]:
    """Current process-wide totals."""
    return OBS.snapshot()


def delta_since(before: Dict[str, Any]) -> Dict[str, Any]:
    """Process-wide totals accumulated since *before*."""
    return OBS.delta_since(before)


def merge_delta(delta: Dict[str, Any]) -> None:
    """Fold a worker-process delta into the process-wide totals."""
    OBS.merge_delta(delta)


def reset() -> None:
    """Zero the process-wide totals (mainly for tests)."""
    OBS.reset()


def format_summary(summary: Optional[Dict[str, Any]] = None) -> str:
    """Human-readable one-block rendering of a snapshot/delta.

    With no argument, renders the current process totals.  Timers first
    (sorted by descending wall time), then counters (alphabetically),
    then gauges, then histogram digests (count / mean / p50 / p90 / p99).
    """
    if summary is None:
        summary = snapshot()
    timers = summary.get("timers", {})
    counters = summary.get("counters", {})
    gauges = summary.get("gauges", {})
    histograms = summary.get("histograms", {})
    lines = []
    for name, seconds in sorted(timers.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<28} {seconds:9.3f}s")
    for name, value in sorted(counters.items()):
        lines.append(f"  {name:<28} {int(value):>10}")
    for name, value in sorted(gauges.items()):
        lines.append(f"  {name:<28} {value:>14.3f} (gauge)")
    for name in sorted(histograms):
        snap = histograms[name]
        digest = summarize(
            snap.snapshot() if isinstance(snap, Histogram) else snap
        )
        lines.append(
            f"  {name:<28} n={digest['count']:<7} "
            f"mean={digest['mean']:.4g} p50={digest['p50']:.4g} "
            f"p90={digest['p90']:.4g} p99={digest['p99']:.4g}"
        )
    if not lines:
        return "  (no instrumentation recorded)"
    return "\n".join(lines)
