"""Instrumentation: process-wide counters and stage timers.

Every hot path of the stack reports into one lightweight, always-on
:class:`Instrumentation` instance (:data:`OBS`):

* the system builder counts runs built and views interned and times the
  enumeration stage;
* :meth:`repro.model.system.System.cached_evaluation` counts formula-cache
  hits/misses and times cache-miss evaluations;
* the fixpoint evaluators in :mod:`repro.knowledge.semantics` count
  iterations;
* the :class:`~repro.model.provider.SystemProvider` counts system-cache and
  disk-cache hits/misses (including pickle-sidecar hits);
* the sharded batch engine in :mod:`repro.exec` counts shard lifecycle
  events (``exec_shards_completed``, ``exec_shard_retries``,
  ``exec_shards_resumed``, ``exec_shard_timeouts``,
  ``exec_worker_restarts``) and folds each worker's delta back into the
  supervisor via :func:`merge_delta`.

The cost model is "one dict operation per event": counters are plain dict
increments and timers wrap whole stages, never inner loops, so keeping the
instrumentation on costs well under 5% on the micro benches (asserted in
``benchmarks/bench_provider.py``).

Consumers take a :func:`snapshot` before a workload and a
:func:`delta_since` after it; :func:`repro.experiments.registry.run_experiment`
does exactly that to stamp every ``ExperimentResult.data`` with its own
stage timings, and ``repro-eba --stats`` prints the process totals.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = [
    "Instrumentation",
    "OBS",
    "count",
    "stage",
    "snapshot",
    "delta_since",
    "merge_delta",
    "reset",
    "format_summary",
]


class Instrumentation:
    """Named counters plus named cumulative wall-time stages.

    Stages are reentrancy-safe: a nested ``stage("x")`` inside an open
    ``stage("x")`` is a no-op, so recursive evaluation (formulas evaluating
    their operands) never double-counts wall time.
    """

    __slots__ = ("counters", "timers", "enabled", "_active")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        self.enabled = True
        self._active: set = set()

    def count(self, name: str, delta: int = 1) -> None:
        """Add *delta* to counter *name*."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + delta

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the enclosed block under *name*."""
        if not self.enabled or name in self._active:
            yield
            return
        self._active.add(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            self._active.discard(name)
            self.timers[name] = (
                self.timers.get(name, 0.0) + time.perf_counter() - start
            )

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A copyable view of the current totals."""
        return {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
        }

    def delta_since(
        self, before: Dict[str, Dict[str, float]]
    ) -> Dict[str, Dict[str, float]]:
        """Totals accumulated since *before* (zero entries dropped)."""
        counters_before = before.get("counters", {})
        timers_before = before.get("timers", {})
        counters = {
            name: value - counters_before.get(name, 0)
            for name, value in self.counters.items()
            if value - counters_before.get(name, 0)
        }
        timers = {
            name: round(value - timers_before.get(name, 0.0), 6)
            for name, value in self.timers.items()
            if value - timers_before.get(name, 0.0) > 0.0
        }
        return {"counters": counters, "timers": timers}

    def merge_delta(self, delta: Dict[str, Dict[str, float]]) -> None:
        """Fold a snapshot/delta from another process into this instance.

        Used by the parallel system builder: each worker returns the
        :func:`delta_since` it accumulated while building its chunk, and the
        parent folds those into its own totals so parallel and serial builds
        report identical counters.
        """
        if not self.enabled:
            return
        for name, value in delta.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + int(value)
        for name, value in delta.get("timers", {}).items():
            self.timers[name] = self.timers.get(name, 0.0) + float(value)

    def reset(self) -> None:
        """Zero all counters and timers (mainly for tests)."""
        self.counters.clear()
        self.timers.clear()


#: The process-wide instrumentation sink.
OBS = Instrumentation()


def count(name: str, delta: int = 1) -> None:
    """Add *delta* to the process-wide counter *name*."""
    OBS.count(name, delta)


def stage(name: str):
    """Time the enclosed block under the process-wide stage *name*."""
    return OBS.stage(name)


def snapshot() -> Dict[str, Dict[str, float]]:
    """Current process-wide totals."""
    return OBS.snapshot()


def delta_since(before: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    """Process-wide totals accumulated since *before*."""
    return OBS.delta_since(before)


def merge_delta(delta: Dict[str, Dict[str, float]]) -> None:
    """Fold a worker-process delta into the process-wide totals."""
    OBS.merge_delta(delta)


def reset() -> None:
    """Zero the process-wide totals (mainly for tests)."""
    OBS.reset()


def format_summary(
    summary: Optional[Dict[str, Dict[str, float]]] = None
) -> str:
    """Human-readable one-block rendering of a snapshot/delta.

    With no argument, renders the current process totals.  Timers first
    (sorted by descending wall time), then counters (alphabetically).
    """
    if summary is None:
        summary = snapshot()
    timers = summary.get("timers", {})
    counters = summary.get("counters", {})
    lines = []
    for name, seconds in sorted(timers.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<28} {seconds:9.3f}s")
    for name, value in sorted(counters.items()):
        lines.append(f"  {name:<28} {int(value):>10}")
    if not lines:
        return "  (no instrumentation recorded)"
    return "\n".join(lines)
