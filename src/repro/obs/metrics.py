"""Distribution metrics: fixed-bucket histograms and their exports.

The counter/timer layer in :mod:`repro.obs` answers "how much, in total";
histograms answer "how is it *distributed*" — per-shard wall times,
fixpoint iterations-to-convergence, dirty-limb frontier widths, state-group
sweep sizes.  Those are exactly the quantities whose tails matter (a p99
shard latency drives the batch's critical path; the fixpoint elimination
depth for ``C□``/``C◇`` is the paper's own complexity measure), and a
cumulative timer hides them completely.

Design constraints:

* **Fixed log-spaced buckets.**  Every histogram shares one bucket scheme
  (powers of two from ``2^-20`` to ``2^30``, plus an overflow bucket), so
  two histograms of the same name — one per worker process — merge by
  plain per-bucket addition, with no rebinning and no data-dependent
  layout.  That is what lets worker histograms fold into the supervisor
  over the existing :func:`repro.obs.merge_delta` pipe exactly like
  counters do.
* **O(log buckets) observes.**  Recording is one ``bisect`` over ~50
  bounds plus two dict updates; cheap enough for the always-on policy the
  counters already follow.
* **Plain-dict snapshots.**  A snapshot is JSON-ready (string bucket
  keys), diffable (:func:`histogram_delta`) and mergeable
  (:class:`Histogram.merge`), so it travels untouched through worker
  pipes, the telemetry journal and checkpointed batch results.

Exports: :func:`summarize` estimates p50/p90/p99 (and the mean) from the
bucket counts; :func:`prometheus_text` renders a full instrumentation
snapshot — counters, timers, gauges and histograms — in the Prometheus
text exposition format (``repro-eba metrics``).
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Dict, List, Optional

__all__ = [
    "BUCKET_BOUNDS",
    "OVERFLOW_INDEX",
    "Histogram",
    "bucket_index",
    "bucket_upper",
    "bucket_lower",
    "histogram_delta",
    "summarize",
    "quantile",
    "quantile_from_values",
    "prometheus_text",
]

#: Shared upper bounds of the log-spaced buckets: ``2^-20 .. 2^30``.
#: A value lands in the first bucket whose bound it does not exceed;
#: values above the last bound land in the overflow bucket.
BUCKET_BOUNDS: List[float] = [float(2.0 ** e) for e in range(-20, 31)]

#: Index of the overflow ("+Inf") bucket.
OVERFLOW_INDEX = len(BUCKET_BOUNDS)


def bucket_index(value: float) -> int:
    """The bucket a value lands in (log-spaced; 0 for values <= 2^-20)."""
    if value <= BUCKET_BOUNDS[0]:
        return 0
    return bisect_left(BUCKET_BOUNDS, value)


def bucket_upper(index: int) -> float:
    """Upper bound of bucket *index* (``inf`` for the overflow bucket)."""
    if index >= OVERFLOW_INDEX:
        return float("inf")
    return BUCKET_BOUNDS[index]


def bucket_lower(index: int) -> float:
    """Lower bound of bucket *index* (0 for the first)."""
    if index <= 0:
        return 0.0
    return BUCKET_BOUNDS[index - 1]


class Histogram:
    """Counts of observed values in the shared log-spaced buckets.

    Mutation is not locked here — the owning
    :class:`repro.obs.Instrumentation` serializes access.
    """

    __slots__ = ("count", "total", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        #: Sparse ``{bucket_index: count}``.
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready form: string bucket keys, stable field names."""
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "buckets": {
                str(index): count
                for index, count in sorted(self.buckets.items())
            },
        }

    def merge(self, delta: Dict[str, Any]) -> None:
        """Fold a snapshot/delta (e.g. from a worker process) into this."""
        for key, count in (delta.get("buckets") or {}).items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + int(count)
        self.count += int(delta.get("count", 0))
        self.total += float(delta.get("sum", 0.0))


def histogram_delta(
    current: Dict[str, Any], before: Optional[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Per-bucket difference of two snapshots (``None`` if nothing new)."""
    if before is None:
        return current if current.get("count") else None
    count = int(current.get("count", 0)) - int(before.get("count", 0))
    if count <= 0:
        return None
    before_buckets = before.get("buckets") or {}
    buckets = {}
    for key, value in (current.get("buckets") or {}).items():
        diff = int(value) - int(before_buckets.get(key, 0))
        if diff:
            buckets[key] = diff
    return {
        "count": count,
        "sum": round(
            float(current.get("sum", 0.0)) - float(before.get("sum", 0.0)), 9
        ),
        "buckets": buckets,
    }


def quantile(snapshot: Dict[str, Any], q: float) -> float:
    """Estimate the *q*-quantile from bucket counts.

    Linear interpolation inside the bucket the quantile falls into; the
    overflow bucket reports its lower bound (the estimate is then a floor).
    """
    count = int(snapshot.get("count", 0))
    if count <= 0:
        return 0.0
    target = q * count
    seen = 0
    for key in sorted(
        (snapshot.get("buckets") or {}), key=lambda k: int(k)
    ):
        index = int(key)
        bucket_count = int(snapshot["buckets"][key])
        if seen + bucket_count >= target:
            lower = bucket_lower(index)
            upper = bucket_upper(index)
            if upper == float("inf"):
                return lower
            fraction = (target - seen) / bucket_count
            return lower + (upper - lower) * fraction
        seen += bucket_count
    return bucket_upper(OVERFLOW_INDEX)


def summarize(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Count / mean / p50 / p90 / p99 digest of a histogram snapshot."""
    count = int(snapshot.get("count", 0))
    total = float(snapshot.get("sum", 0.0))
    return {
        "count": count,
        "mean": total / count if count else 0.0,
        "p50": quantile(snapshot, 0.50),
        "p90": quantile(snapshot, 0.90),
        "p99": quantile(snapshot, 0.99),
    }


def quantile_from_values(values: List[float], q: float) -> float:
    """Exact quantile of raw values (nearest-rank with interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


# -- Prometheus text exposition ----------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(
    summary: Dict[str, Any], *, prefix: str = "repro"
) -> str:
    """Render an instrumentation snapshot in Prometheus text exposition.

    Counters become ``<prefix>_<name>_total``, cumulative stage timers
    become ``<prefix>_stage_seconds_total{stage="..."}``, gauges pass
    through as gauges, and histograms render with the standard
    cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.
    """
    lines: List[str] = []
    counters = summary.get("counters") or {}
    for name in sorted(counters):
        metric = f"{prefix}_{_metric_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    timers = summary.get("timers") or {}
    if timers:
        metric = f"{prefix}_stage_seconds_total"
        lines.append(f"# TYPE {metric} counter")
        for name in sorted(timers):
            lines.append(
                f'{metric}{{stage="{_metric_name(name)}"}} '
                f"{_format_value(round(float(timers[name]), 9))}"
            )
    gauges = summary.get("gauges") or {}
    for name in sorted(gauges):
        metric = f"{prefix}_{_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    histograms = summary.get("histograms") or {}
    for name in sorted(histograms):
        snapshot = histograms[name]
        metric = f"{prefix}_{_metric_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        buckets = snapshot.get("buckets") or {}
        for key in sorted(buckets, key=lambda k: int(k)):
            cumulative += int(buckets[key])
            le = _format_value(bucket_upper(int(key)))
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        count = int(snapshot.get("count", 0))
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines.append(
            f"{metric}_sum {_format_value(float(snapshot.get('sum', 0.0)))}"
        )
        lines.append(f"{metric}_count {count}")
    if not lines:
        return "# (no instrumentation recorded)\n"
    return "\n".join(lines) + "\n"
