"""Run-scoped telemetry journal: ``telemetry.jsonl`` next to the checkpoints.

A batch run is the unit of observability for the sharded engine — the
checkpoint store already makes its *results* durable; the journal makes
its *behaviour* durable.  :class:`TelemetryJournal` appends one JSON
object per event, each stamped with:

* ``v`` — the journal schema version (:data:`SCHEMA_VERSION`; consumers
  must reject lines from a version they do not understand);
* ``seq`` — a per-run monotonically increasing sequence number (gaps mean
  truncation, inversions mean corruption — both detectable);
* ``ts`` — wall-clock seconds;
* ``event`` — one of :data:`EVENT_TYPES`, each with a fixed set of
  required fields (extra fields are allowed, so events can grow without a
  version bump).

Shard lifecycle events (``shard_started`` / ``shard_done`` /
``shard_retry``) and resource samples carry **worker provenance** (the
worker pid), counter/histogram deltas arrive as ``counter_delta`` events
in the exact :func:`repro.obs.snapshot` shape, and ``span_summary``
events aggregate the run's trace spans by name.  The journal is what
``repro-eba batch top`` tails and what ``repro-eba metrics --journal``
folds back into a metrics snapshot (:func:`fold_journal`) — and it is the
per-run record the ROADMAP's results warehouse ingests.

Writes are line-buffered appends under a lock; a telemetry failure must
never fail the batch, so :meth:`TelemetryJournal.emit` swallows I/O
errors after disabling itself.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

from .metrics import quantile_from_values

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "TelemetryJournal",
    "validate_event",
    "read_journal",
    "validate_journal",
    "fold_journal",
]

#: Bump when required fields change meaning or shape.
SCHEMA_VERSION = 1

_NUMBER = (int, float)

#: Required fields (name -> type tuple) per event type.  ``None`` means
#: "any JSON value".  Extra fields are always allowed.
EVENT_TYPES: Dict[str, Dict[str, Any]] = {
    "journal_open": {"batch": (str,), "experiment": (str,), "pid": _NUMBER},
    "stage_start": {"stage": (str,), "shards": _NUMBER},
    "stage_done": {"stage": (str,), "seconds": _NUMBER},
    "shard_started": {"shard": (str,), "worker": _NUMBER, "attempt": _NUMBER},
    "shard_done": {
        "shard": (str,),
        "worker": _NUMBER,
        "attempt": _NUMBER,
        "seconds": _NUMBER,
        "bytes": _NUMBER,
    },
    "shard_retry": {
        "shard": (str,),
        "worker": _NUMBER,
        "attempt": _NUMBER,
        "cause": (str,),
    },
    "shard_resumed": {"shard": (str,)},
    "worker_spawned": {"worker": _NUMBER},
    "worker_retired": {"worker": _NUMBER},
    "resource_sample": {
        "scope": (str,),
        "worker": _NUMBER,
        "rss_bytes": _NUMBER,
        "cpu_seconds": _NUMBER,
    },
    "counter_delta": {"scope": (str,), "delta": (dict,)},
    "span_summary": {"name": (str,), "spans": _NUMBER, "seconds": _NUMBER},
    "health": {"snapshot": (dict,)},
    "batch_done": {"seconds": _NUMBER, "shards": _NUMBER, "ok": (bool,)},
    "monitor_round": {
        "round": _NUMBER,
        "horizon": _NUMBER,
        "seconds": _NUMBER,
        "verdicts": (dict,),
    },
    # One per request the serve daemon finishes (ok or not); `code` is
    # "ok" on success, else the wire error code the client received.
    "serve_request": {
        "op": (str,),
        "seconds": _NUMBER,
        "ok": (bool,),
        "code": (str,),
    },
}


def validate_event(record: Any) -> List[str]:
    """Problems with one journal line (empty list = schema-valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["event is not a JSON object"]
    version = record.get("v")
    if version != SCHEMA_VERSION:
        problems.append(
            f"schema version {version!r} != {SCHEMA_VERSION}"
        )
    seq = record.get("seq")
    if not isinstance(seq, int) or seq < 0:
        problems.append(f"seq {seq!r} is not a non-negative integer")
    if not isinstance(record.get("ts"), _NUMBER):
        problems.append(f"ts {record.get('ts')!r} is not a number")
    event = record.get("event")
    spec = EVENT_TYPES.get(event) if isinstance(event, str) else None
    if spec is None:
        problems.append(f"unknown event type {event!r}")
        return problems
    for field, types in spec.items():
        if field not in record:
            problems.append(f"{event}: missing required field {field!r}")
        elif types is not None and not isinstance(record[field], types):
            problems.append(
                f"{event}: field {field!r} has type "
                f"{type(record[field]).__name__}"
            )
    return problems


class TelemetryJournal:
    """Append-only, monotonically-sequenced event sink for one batch run.

    Opening truncates any previous journal at *path* — the journal is
    scoped to one run, so a resumed batch starts a fresh sequence (its
    ``shard_resumed`` events record what was served from checkpoints).
    """

    def __init__(
        self,
        path: str,
        *,
        batch: str = "",
        experiment: str = "",
    ) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._seq = 0
        self._handle = None
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "w", encoding="utf-8")
        self.emit(
            "journal_open",
            batch=batch,
            experiment=experiment,
            pid=os.getpid(),
        )

    def emit(self, event: str, **fields: Any) -> Optional[int]:
        """Append one event; returns its sequence number (None if closed
        or after a write failure)."""
        with self._lock:
            if self._handle is None:
                return None
            record = {
                "v": SCHEMA_VERSION,
                "seq": self._seq,
                "ts": round(time.time(), 6),
                "event": event,
            }
            record.update(fields)
            try:
                self._handle.write(json.dumps(record, sort_keys=True))
                self._handle.write("\n")
                self._handle.flush()
            except (OSError, ValueError, TypeError):
                # Telemetry must never fail the batch: stop journaling.
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
                return None
            self._seq += 1
            return record["seq"]

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def __enter__(self) -> "TelemetryJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- consumption ---------------------------------------------------------------


def read_journal(path: str) -> Iterator[Dict[str, Any]]:
    """Yield the parsed events of a journal file (unparseable lines are
    yielded as ``{"event": "_malformed", "line": ...}`` markers so
    validators can report them)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                yield {"event": "_malformed", "line": line}
                continue
            yield record


def validate_journal(path: str) -> List[str]:
    """Validate every line of a journal: schema per event, monotonic
    sequence numbers across the file.  Returns the list of problems."""
    problems: List[str] = []
    last_seq = -1
    for index, record in enumerate(read_journal(path)):
        if record.get("event") == "_malformed":
            problems.append(f"line {index + 1}: not valid JSON")
            continue
        for problem in validate_event(record):
            problems.append(f"line {index + 1}: {problem}")
        seq = record.get("seq")
        if isinstance(seq, int):
            if seq <= last_seq:
                problems.append(
                    f"line {index + 1}: seq {seq} not monotonically "
                    f"increasing (previous {last_seq})"
                )
            last_seq = seq
    if last_seq < 0 and not problems:
        problems.append("journal holds no events")
    return problems


def fold_journal(events: Iterator[Dict[str, Any]]) -> Dict[str, Any]:
    """Reconstruct a metrics/state view from a journal's events.

    Returns::

        {
          "meta":     {batch, experiment, pid},
          "metrics":  {counters, timers, histograms, gauges},   # merged
          "workers":  {pid: {last_sample, spawned, retired, shards_done,
                             retries, latencies, inflight...}},
          "shards":   {done, started, resumed, retries_by_cause},
          "stages":   [{stage, shards, seconds}],
          "spans":    [{name, spans, seconds}],
          "health":   latest health snapshot or None,
          "done":     batch_done event or None,
        }

    ``metrics`` is built by folding every ``counter_delta`` exactly the
    way :func:`repro.obs.merge_delta` would, so a journal replay and a
    live supervisor agree.  Per-worker shard latencies keep the raw
    values (journals are bounded per run), which lets the dashboard show
    exact p50/p95 per worker.
    """
    from . import Instrumentation

    sink = Instrumentation()
    meta: Dict[str, Any] = {}
    workers: Dict[int, Dict[str, Any]] = {}
    shards = {
        "done": 0,
        "started": 0,
        "resumed": 0,
        "retries": 0,
        "retries_by_cause": {},
    }
    stages: List[Dict[str, Any]] = []
    spans: List[Dict[str, Any]] = []
    health: Optional[Dict[str, Any]] = None
    done_event: Optional[Dict[str, Any]] = None

    def worker(pid: Any) -> Dict[str, Any]:
        entry = workers.get(pid)
        if entry is None:
            entry = workers[pid] = {
                "last_sample": None,
                "shards_done": 0,
                "retries": 0,
                "latencies": [],
                "inflight": None,
                "last_event_ts": None,
            }
        return entry

    for record in events:
        event = record.get("event")
        ts = record.get("ts")
        if event == "journal_open":
            meta = {
                "batch": record.get("batch"),
                "experiment": record.get("experiment"),
                "pid": record.get("pid"),
            }
        elif event == "counter_delta":
            sink.merge_delta(record.get("delta") or {})
        elif event == "resource_sample":
            if record.get("scope") == "worker":
                entry = worker(record.get("worker"))
                entry["last_sample"] = record
                entry["last_event_ts"] = ts
            else:
                sink.gauge("rss_bytes", record.get("rss_bytes", 0))
                sink.gauge("cpu_seconds", record.get("cpu_seconds", 0))
        elif event == "shard_started":
            shards["started"] += 1
            entry = worker(record.get("worker"))
            entry["inflight"] = {
                "shard": record.get("shard"),
                "attempt": record.get("attempt"),
                "since": ts,
            }
            entry["last_event_ts"] = ts
        elif event == "shard_done":
            shards["done"] += 1
            entry = worker(record.get("worker"))
            entry["shards_done"] += 1
            entry["latencies"].append(float(record.get("seconds", 0.0)))
            entry["inflight"] = None
            entry["last_event_ts"] = ts
        elif event == "shard_retry":
            shards["retries"] += 1
            cause = record.get("cause", "?")
            shards["retries_by_cause"][cause] = (
                shards["retries_by_cause"].get(cause, 0) + 1
            )
            entry = worker(record.get("worker"))
            entry["retries"] += 1
            entry["inflight"] = None
        elif event == "shard_resumed":
            shards["resumed"] += 1
        elif event == "stage_done":
            stages.append(
                {
                    "stage": record.get("stage"),
                    "seconds": record.get("seconds"),
                }
            )
        elif event == "span_summary":
            spans.append(
                {
                    "name": record.get("name"),
                    "spans": record.get("spans"),
                    "seconds": record.get("seconds"),
                }
            )
        elif event == "health":
            health = record.get("snapshot")
        elif event == "batch_done":
            done_event = record
    return {
        "meta": meta,
        "metrics": sink.snapshot(),
        "workers": workers,
        "shards": shards,
        "stages": stages,
        "spans": spans,
        "health": health,
        "done": done_event,
    }


def worker_latency_quantiles(
    entry: Dict[str, Any]
) -> Dict[str, float]:
    """p50/p95 of one folded worker's shard latencies."""
    latencies = entry.get("latencies") or []
    return {
        "p50": quantile_from_values(latencies, 0.50),
        "p95": quantile_from_values(latencies, 0.95),
    }
