"""Resource sampling: RSS / CPU / page-fault series, stdlib only.

A :class:`ResourceSampler` is a daemon thread that periodically reads this
process's memory and CPU usage and hands each sample to a callback (the
telemetry journal, a heartbeat message, a Chrome-trace counter track) while
also setting the process-wide ``rss_bytes`` / ``cpu_seconds`` gauges in
:mod:`repro.obs`.

Reading order:

1. ``/proc/self/status`` (``VmRSS``) and ``/proc/self/stat``
   (``utime``/``stime``, fault counters) — the precise, Linux-native path;
2. ``resource.getrusage(RUSAGE_SELF)`` — the portable fallback
   (``ru_maxrss`` is a high-water mark, not instantaneous RSS, and is
   reported in kilobytes on Linux).

Both paths are a few microseconds per sample; at the default 1 s interval
the sampler is invisible next to any workload.  Fork-pool workers do not
run a second thread — their heartbeat thread calls :func:`read_sample`
directly and ships the sample with the beat (see
:mod:`repro.exec.pool`), which is how per-worker series reach the
supervisor with worker provenance attached.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from . import OBS, Instrumentation

__all__ = [
    "ResourceSampler",
    "read_sample",
    "DEFAULT_INTERVAL",
    "SAMPLE_FIELDS",
]

#: Seconds between samples when none is given explicitly.
DEFAULT_INTERVAL = 1.0

#: Numeric fields every sample carries (journal schema + dashboards).
SAMPLE_FIELDS = (
    "ts",
    "perf",
    "rss_bytes",
    "cpu_seconds",
    "majflt",
    "minflt",
)

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096
try:
    _CLOCK_TICKS = os.sysconf("SC_CLK_TCK")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _CLOCK_TICKS = 100


def _proc_sample() -> Optional[Dict[str, float]]:
    """One sample from ``/proc/self/{stat,status}`` (``None`` off Linux)."""
    try:
        with open("/proc/self/stat", "rb") as handle:
            stat = handle.read().decode("ascii", "replace")
    except OSError:
        return None
    # Field 2 (comm) may contain spaces; everything after the closing
    # paren is space-separated.  0-based after the paren: utime=11,
    # stime=12, minflt=7, majflt=9, rss=21 (pages).
    try:
        rest = stat.rsplit(")", 1)[1].split()
        minflt = int(rest[7])
        majflt = int(rest[9])
        utime = int(rest[11])
        stime = int(rest[12])
        rss_pages = int(rest[21])
    except (IndexError, ValueError):
        return None
    rss_bytes = rss_pages * _PAGE_SIZE
    try:
        with open("/proc/self/status", "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    rss_bytes = int(line.split()[1]) * 1024
                    break
    except (OSError, ValueError, IndexError):
        pass
    return {
        "rss_bytes": float(rss_bytes),
        "cpu_seconds": (utime + stime) / float(_CLOCK_TICKS),
        "majflt": float(majflt),
        "minflt": float(minflt),
    }


def _rusage_sample() -> Dict[str, float]:
    """Portable fallback via ``resource.getrusage``."""
    import resource as resource_mod

    usage = resource_mod.getrusage(resource_mod.RUSAGE_SELF)
    # ru_maxrss: kilobytes on Linux, bytes on macOS.
    scale = 1024 if os.uname().sysname != "Darwin" else 1
    return {
        "rss_bytes": float(usage.ru_maxrss * scale),
        "cpu_seconds": float(usage.ru_utime + usage.ru_stime),
        "majflt": float(usage.ru_majflt),
        "minflt": float(usage.ru_minflt),
    }


def read_sample() -> Dict[str, float]:
    """One point-in-time resource sample for this process.

    Keys: wall ``ts`` (``time.time``), monotonic ``perf``
    (``time.perf_counter``, for aligning with span timelines),
    ``rss_bytes``, cumulative ``cpu_seconds``, ``majflt``/``minflt``.
    """
    values = _proc_sample()
    if values is None:
        values = _rusage_sample()
    values["ts"] = time.time()
    values["perf"] = time.perf_counter()
    return values


class ResourceSampler:
    """Background thread producing a bounded resource-sample series.

    Each sample is enriched with ``cpu_pct`` (CPU seconds burned per wall
    second since the previous sample), appended to :attr:`samples`
    (bounded ring), pushed through *on_sample*, and reflected into the
    ``rss_bytes`` / ``cpu_seconds`` gauges of *sink* (default: the
    process-wide :data:`repro.obs.OBS`).
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        *,
        on_sample: Optional[Callable[[Dict[str, float]], None]] = None,
        sink: Optional[Instrumentation] = None,
        capacity: int = 4096,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"need interval > 0, got {interval}")
        self.interval = interval
        self.on_sample = on_sample
        self.sink = OBS if sink is None else sink
        self.capacity = capacity
        self.samples: List[Dict[str, float]] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._previous: Optional[Dict[str, float]] = None

    # -- one sample --------------------------------------------------------

    def sample_once(self) -> Dict[str, float]:
        """Take (and record) one sample immediately."""
        sample = read_sample()
        previous = self._previous
        if previous is not None:
            wall = sample["perf"] - previous["perf"]
            burned = sample["cpu_seconds"] - previous["cpu_seconds"]
            sample["cpu_pct"] = 100.0 * burned / wall if wall > 0 else 0.0
        else:
            sample["cpu_pct"] = 0.0
        self._previous = sample
        self.samples.append(sample)
        if len(self.samples) > self.capacity:
            del self.samples[: len(self.samples) - self.capacity]
        if self.sink is not None:
            self.sink.gauge("rss_bytes", sample["rss_bytes"])
            self.sink.gauge("cpu_seconds", sample["cpu_seconds"])
        if self.on_sample is not None:
            try:
                self.on_sample(sample)
            except Exception:
                pass
        return sample

    def latest(self) -> Optional[Dict[str, float]]:
        """The most recent sample, or ``None`` before the first."""
        return self.samples[-1] if self.samples else None

    # -- thread lifecycle --------------------------------------------------

    def start(self) -> "ResourceSampler":
        """Start sampling in a daemon thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self.sample_once()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def stop(self) -> None:
        """Stop the thread and take one final sample."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
