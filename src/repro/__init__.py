"""repro — Eventual Byzantine Agreement via continual common knowledge.

A faithful, executable reproduction of Halpern, Moses & Waarts,
*"A Characterization of Eventual Byzantine Agreement"* (PODC 1990):

* a synchronous round-based simulator with crash and sending-omission
  failure modes (:mod:`repro.sim`, :mod:`repro.model`);
* an exact knowledge model checker over enumerated full-information run
  spaces, including the paper's new **continual common knowledge** operator
  ``C□_S`` (:mod:`repro.knowledge`);
* the two-step optimal-EBA construction of Theorem 5.2 and the Theorem 5.3
  optimality characterization (:mod:`repro.core`);
* the paper's protocols — ``P0``/``P1``, ``P0opt``, ``F^Λ``/``F^{Λ,2}``,
  ``FIP(Z⁰,O⁰)``, ``F*`` — plus SBA baselines (:mod:`repro.protocols`);
* an experiment harness regenerating every proposition/theorem as a
  measured table (:mod:`repro.experiments`).

Quickstart::

    from repro import crash_system, f_lambda_2_pair, fip, check_eba

    system = crash_system(n=3, t=1)          # enumerate all runs exactly
    optimal = fip(f_lambda_2_pair(system))   # the paper's optimal EBA
    report = check_eba(optimal.outcome(system))
    assert report.ok
"""

from .core import (
    DecisionPair,
    DominationReport,
    OptimalityReport,
    ProtocolOutcome,
    RunOutcome,
    SpecReport,
    check_eba,
    check_nontrivial_agreement,
    check_optimality,
    check_sba,
    compare,
    construction_sequence,
    dominates,
    double_prime_step,
    empty_pair,
    equivalent_decisions,
    prime_step,
    strictly_dominates,
    two_step_optimization,
)
from .errors import (
    ConfigurationError,
    EvaluationError,
    ProtocolViolationError,
    ReproError,
    SpecificationError,
    UnsupportedModeError,
)
from .model import (
    CrashBehavior,
    FailureMode,
    FailurePattern,
    InitialConfiguration,
    OmissionBehavior,
    System,
    crash_system,
    omission_system,
    restricted_system,
    system_for,
)
from .protocols import (
    chain_eba,
    chain_pair,
    f_lambda_2_pair,
    f_lambda_pair,
    f_lambda_sequence,
    f_star_pair,
    fip,
    flood_sba,
    p0,
    p0opt,
    p1,
    pair_from_formulas,
    sba_common_knowledge_pair,
    zcr_ocr_pair,
)
from .sim import execute, run_over_scenarios

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "CrashBehavior",
    "DecisionPair",
    "DominationReport",
    "EvaluationError",
    "FailureMode",
    "FailurePattern",
    "InitialConfiguration",
    "OmissionBehavior",
    "OptimalityReport",
    "ProtocolOutcome",
    "ProtocolViolationError",
    "ReproError",
    "RunOutcome",
    "SpecReport",
    "SpecificationError",
    "System",
    "UnsupportedModeError",
    "__version__",
    "chain_eba",
    "chain_pair",
    "check_eba",
    "check_nontrivial_agreement",
    "check_optimality",
    "check_sba",
    "compare",
    "construction_sequence",
    "crash_system",
    "dominates",
    "double_prime_step",
    "empty_pair",
    "equivalent_decisions",
    "execute",
    "f_lambda_2_pair",
    "f_lambda_pair",
    "f_lambda_sequence",
    "f_star_pair",
    "fip",
    "flood_sba",
    "omission_system",
    "p0",
    "p0opt",
    "p1",
    "pair_from_formulas",
    "prime_step",
    "restricted_system",
    "run_over_scenarios",
    "sba_common_knowledge_pair",
    "strictly_dominates",
    "system_for",
    "two_step_optimization",
    "zcr_ocr_pair",
]
