"""Multivalued EBA protocols for the crash mode.

Generalizations of the paper's binary examples to an arbitrary finite value
domain, preserving their structure:

* :class:`MultiRace` — the ``P0`` generalization.  Value ``0`` (the domain
  minimum) plays the role binary 0 played: decide 0 immediately on learning
  of it and relay; otherwise flood value sets and decide ``min(seen)`` at
  time ``t + 1``.  Validity holds because a unanimous value is the only one
  ever seen; agreement holds by the FloodSet argument plus the binary-``P0``
  argument for the early 0-decisions.

* :class:`MultiOpt` — the ``P0opt`` generalization.  Decide ``min(seen)``
  early once the processor knows its value set can never shrink below its
  current minimum: (a) it has seen *every* processor's initial value, or
  (b) it heard from the same set of processors in two consecutive rounds
  (the crash-mode stability argument of Section 2.2: everything any live
  processor knows was in those messages, and crashed processors' hidden
  values can no longer circulate).  A seen domain minimum still decides
  immediately.

Both reduce exactly to ``P0`` / ``P0opt`` at ``domain_size = 2``
(modulo message encoding), which the test suite checks decision-for-
decision.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Optional, Tuple

from ..model.failures import ProcessorId
from ..protocols.base import ConcreteProtocol, Message, State, broadcast


@dataclass(frozen=True)
class _MultiState:
    processor: ProcessorId
    n: int
    t: int
    domain_size: int
    known: Tuple[Tuple[ProcessorId, int], ...]
    heard_last: Optional[FrozenSet[ProcessorId]]
    decided: Optional[int]
    decided_at: Optional[int]
    time: int

    def known_dict(self) -> Dict[ProcessorId, int]:
        return dict(self.known)

    def seen_values(self) -> FrozenSet[int]:
        return frozenset(value for _, value in self.known)


class _MultiBase(ConcreteProtocol):
    """Shared plumbing: flood per-processor value tables every round."""

    def __init__(self, domain_size: int, halt_after: Optional[int] = 1) -> None:
        self.domain_size = domain_size
        self.halt_after = halt_after

    def initial_state(
        self, processor: ProcessorId, n: int, t: int, initial_value: int
    ) -> State:
        decided = 0 if initial_value == 0 else None
        return _MultiState(
            processor=processor,
            n=n,
            t=t,
            domain_size=self.domain_size,
            known=((processor, initial_value),),
            heard_last=None,
            decided=decided,
            decided_at=0 if decided is not None else None,
            time=0,
        )

    def _halted(self, state: _MultiState, round_number: int) -> bool:
        if self.halt_after is None or state.decided_at is None:
            return False
        return round_number > state.decided_at + self.halt_after

    def messages(
        self, state: _MultiState, round_number: int
    ) -> Dict[ProcessorId, Message]:
        if self._halted(state, round_number):
            return {}
        return broadcast(state.n, state.processor, ("multi", state.known))

    def transition(
        self,
        state: _MultiState,
        round_number: int,
        received: Dict[ProcessorId, Message],
    ) -> State:
        known = state.known_dict()
        for payload in received.values():
            _tag, entries = payload
            for processor, value in entries:
                known.setdefault(processor, value)
        heard_now = frozenset(received)
        decided = state.decided
        decided_at = state.decided_at
        if decided is None:
            decided = self._decide(state, known, heard_now, round_number)
            if decided is not None:
                decided_at = round_number
        return replace(
            state,
            known=tuple(sorted(known.items())),
            heard_last=heard_now,
            decided=decided,
            decided_at=decided_at,
            time=round_number,
        )

    def _decide(
        self,
        state: _MultiState,
        known: Dict[ProcessorId, int],
        heard_now: FrozenSet[ProcessorId],
        round_number: int,
    ) -> Optional[int]:
        raise NotImplementedError

    def output(self, state: _MultiState) -> Optional[int]:
        return state.decided


class MultiRace(_MultiBase):
    """The ``P0`` generalization (see module docstring)."""

    def __init__(self, domain_size: int, halt_after: Optional[int] = 1) -> None:
        super().__init__(domain_size, halt_after)
        self.name = f"MultiRace[{domain_size}]"

    def _decide(self, state, known, heard_now, round_number):
        values = set(known.values())
        if 0 in values:
            return 0
        if round_number >= state.t + 1:
            return min(values)
        return None


class MultiOpt(_MultiBase):
    """The ``P0opt`` generalization (see module docstring)."""

    def __init__(self, domain_size: int, halt_after: Optional[int] = 1) -> None:
        super().__init__(domain_size, halt_after)
        self.name = f"MultiOpt[{domain_size}]"

    def _decide(self, state, known, heard_now, round_number):
        values = set(known.values())
        if 0 in values:
            return 0
        if len(known) == state.n:
            return min(values)  # condition (a): all values seen
        if state.heard_last is not None and heard_now == state.heard_last:
            return min(values)  # condition (b): stable heard set
        if round_number >= state.t + 1:
            return min(values)
        return None


def multi_race(domain_size: int) -> MultiRace:
    """Construct the ``P0`` generalization for a value domain."""
    return MultiRace(domain_size)


def multi_opt(domain_size: int) -> MultiOpt:
    """Construct the ``P0opt`` generalization for a value domain."""
    return MultiOpt(domain_size)
