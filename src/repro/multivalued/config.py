"""Initial configurations over arbitrary finite value domains.

The paper restricts to binary agreement "for simplicity", noting that
"extending our methods to the general case is straightforward"
(Section 2.1).  This subpackage carries the concrete-protocol layer of
that extension: values are ``0 .. domain_size - 1``.

:class:`MultiConfiguration` deliberately mirrors the interface of
:class:`repro.model.config.InitialConfiguration` (``n``, ``values``,
``value_of``, ``exists``, ``all_equal``) so the simulator, the outcome
containers and the specification checkers — all of which only use that
interface — work unchanged over multivalued runs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class MultiConfiguration:
    """Initial values drawn from ``{0, ..., domain_size - 1}``.

    Attributes:
        values: ``values[i]`` is processor ``i``'s initial value.
        domain_size: Size of the value domain ``V``.
    """

    values: Tuple[int, ...]
    domain_size: int

    def __init__(self, values: Sequence[int], domain_size: int) -> None:
        if domain_size < 2:
            raise ConfigurationError(
                f"need a domain of size >= 2, got {domain_size}"
            )
        values = tuple(values)
        for value in values:
            if not 0 <= value < domain_size:
                raise ConfigurationError(
                    f"value {value} outside domain 0..{domain_size - 1}"
                )
        if len(values) < 2:
            raise ConfigurationError("a system needs at least 2 processors")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "domain_size", domain_size)

    @property
    def n(self) -> int:
        return len(self.values)

    def value_of(self, processor: int) -> int:
        return self.values[processor]

    def exists(self, value: int) -> bool:
        return value in self.values

    def all_equal(self, value: int) -> bool:
        return all(v == value for v in self.values)

    def minimum(self) -> int:
        """The smallest initial value present (the canonical tie-break)."""
        return min(self.values)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "".join(str(v) for v in self.values)


def all_multi_configurations(
    n: int, domain_size: int
) -> Iterator[MultiConfiguration]:
    """All ``domain_size ** n`` configurations, lexicographically."""
    for values in itertools.product(range(domain_size), repeat=n):
        yield MultiConfiguration(values, domain_size)
