"""Multivalued agreement: the paper's "general case" extension
(Section 2.1: "Extending our methods to the general case is
straightforward").

Concrete-protocol layer only: multivalued initial configurations duck-type
the binary ones, so the simulator, outcome containers, specification
checkers and domination analysis all apply unchanged.
"""

from .config import MultiConfiguration, all_multi_configurations
from .protocols import MultiOpt, MultiRace, multi_opt, multi_race

__all__ = [
    "MultiConfiguration",
    "MultiOpt",
    "MultiRace",
    "all_multi_configurations",
    "multi_opt",
    "multi_race",
]
