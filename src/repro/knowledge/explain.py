"""Machine-checkable explanations for knowledge verdicts.

The evaluators in :mod:`repro.knowledge.semantics` answer *whether*
``K_i φ`` / ``E_S φ`` / ``C_S φ`` / ``C□_S φ`` / ``C◇_S φ`` holds at a
point; this module answers *why*, in a form a test can re-verify against
the semantics:

* a **failure** explanation carries an indistinguishability chain — a
  sequence of ``(processor, point, point')`` steps, each justified by a
  shared local view — ending at a counterexample point where the operand
  itself is false, together with the fixpoint iteration at which each
  visited point was eliminated;
* a **success** explanation for the fixpoint operators carries the number
  of iterations to convergence, and for run-level ``C□_S φ`` the Corollary
  3.3 reachability component whose runs all satisfy φ.

:meth:`Explanation.check` replays every recorded claim against the system
(views really shared, memberships really hold, the witness really violates
the operand, the component really satisfies it) and returns the list of
discrepancies — empty means the explanation is sound.  The walk used for
fixpoint failures is itself sound by construction: a point eliminated at
iteration ``k`` always has either a direct ``¬φ`` counterexample or a
neighbour eliminated at iteration ``≤ k - 1``, so the chain's elimination
levels strictly decrease and terminate at a direct counterexample.

``repro-eba explain <experiment> <formula> [--point R:M]`` surfaces the
same machinery on the command line via :data:`EXPLAIN_CATALOG`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from .. import trace
from ..errors import EvaluationError
from ..model import kernels
from ..model.system import Point, System, TruthAssignment
from . import semantics
from .formulas import (
    Believes,
    Common,
    ContinualCommon,
    EventualCommon,
    Everyone,
    Formula,
    Knows,
)
from .nonrigid import NonrigidSet

#: Fixpoint variants and the time range an ``E``-failure may anchor at.
_VARIANTS = ("common", "continual", "eventual")


@dataclass
class ChainStep:
    """One indistinguishability step: *processor* cannot tell
    ``from_point`` and ``to_point`` apart (it has local view ``view`` at
    both)."""

    processor: int
    from_point: Point
    to_point: Point
    view: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "processor": self.processor,
            "from": list(self.from_point),
            "to": list(self.to_point),
            "view": self.view,
        }


@dataclass
class Explanation:
    """Evidence for one formula verdict at one point.

    Serializable fields describe the evidence; the private ``_formula`` /
    ``_operand`` / ``_nonrigid`` handles let :meth:`check` replay it.
    """

    kind: str
    formula: str
    point: Point
    verdict: bool
    chain: List[ChainStep] = field(default_factory=list)
    witness: Optional[Point] = None
    eliminated_at: Optional[int] = None
    iterations: Optional[int] = None
    component_runs: Optional[List[int]] = None
    notes: List[str] = field(default_factory=list)
    _formula: Optional[Formula] = field(default=None, repr=False)
    _operand: Optional[Formula] = field(default=None, repr=False)
    _nonrigid: Optional[NonrigidSet] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (handles stripped)."""
        return {
            "kind": self.kind,
            "formula": self.formula,
            "point": list(self.point),
            "verdict": self.verdict,
            "chain": [step.to_dict() for step in self.chain],
            "witness": None if self.witness is None else list(self.witness),
            "eliminated_at": self.eliminated_at,
            "iterations": self.iterations,
            "component_runs": self.component_runs,
            "notes": list(self.notes),
        }

    # -- machine verification ----------------------------------------------

    def check(self, system: System) -> List[str]:
        """Replay every claim against *system*; return discrepancies."""
        problems: List[str] = []
        if self._formula is not None and (
            self._formula.holds_at(system, *self.point) != self.verdict
        ):
            problems.append("recorded verdict does not match re-evaluation")
        members = (
            self._nonrigid.members_matrix(system)
            if self._nonrigid is not None
            else None
        )
        previous_run = self.point[0]
        for index, step in enumerate(self.chain):
            from_run, from_time = step.from_point
            to_run, to_time = step.to_point
            if from_run != previous_run:
                problems.append(
                    f"step {index}: anchors run {from_run}, chain was at "
                    f"run {previous_run}"
                )
            if system.runs[from_run].view(step.processor, from_time) != step.view:
                problems.append(
                    f"step {index}: processor {step.processor} does not "
                    f"have view {step.view} at {step.from_point}"
                )
            if system.runs[to_run].view(step.processor, to_time) != step.view:
                problems.append(
                    f"step {index}: processor {step.processor} does not "
                    f"have view {step.view} at {step.to_point}"
                )
            if members is not None:
                if step.processor not in members[to_run][to_time]:
                    problems.append(
                        f"step {index}: processor {step.processor} is not "
                        f"an S-member at target {step.to_point}"
                    )
                if self.kind != "believes" and (
                    step.processor not in members[from_run][from_time]
                ):
                    problems.append(
                        f"step {index}: processor {step.processor} is not "
                        f"an S-member at anchor {step.from_point}"
                    )
            previous_run = to_run
        if not self.verdict and self.witness is not None:
            if self._operand is not None and self._operand.holds_at(
                system, *self.witness
            ):
                problems.append(
                    "witness point satisfies the operand; not a "
                    "counterexample"
                )
            if self.chain and self.chain[-1].to_point != self.witness:
                problems.append("chain does not terminate at the witness")
        if not self.verdict and self.witness is None and self.chain:
            problems.append("failure chain recorded without a witness")
        if self.component_runs is not None and self.verdict and (
            self._operand is not None
        ):
            truth = self._operand.evaluate(system)
            for run_index in self.component_runs:
                if not all(
                    truth.at(run_index, time)
                    for time in range(system.horizon + 1)
                ):
                    problems.append(
                        f"component run {run_index} violates the operand"
                    )
            if self.point[0] not in self.component_runs:
                problems.append("point's run missing from its component")
        return problems


# -- instrumented fixpoints --------------------------------------------------

_EliminationRecord = Tuple[TruthAssignment, List[List[Optional[int]]], int]
_ELIMINATION_CACHE: "WeakKeyDictionary[System, Dict[object, _EliminationRecord]]" = (
    WeakKeyDictionary()
)


def _fixpoint_step(
    system: System,
    nonrigid: NonrigidSet,
    phi: TruthAssignment,
    variant: str,
) -> Callable[[TruthAssignment], TruthAssignment]:
    if variant == "common":
        return lambda x: semantics.eval_everyone(
            system, nonrigid, phi.conjoin(x)
        )
    if variant == "continual":
        return lambda x: semantics.eval_everyone_box(
            system, nonrigid, phi.conjoin(x)
        )
    return lambda x: semantics.eval_eventually(
        system, semantics.eval_everyone(system, nonrigid, phi.conjoin(x))
    )


def fixpoint_eliminations(
    system: System,
    nonrigid: NonrigidSet,
    operand: Formula,
    variant: str,
) -> _EliminationRecord:
    """Greatest-fixed-point evaluation that also records, per point, the
    iteration at which the point was eliminated (``None`` = survives).

    Memoized per system; identical to the evaluators in
    :mod:`repro.knowledge.semantics` on the final assignment.
    """
    if variant not in _VARIANTS:
        raise EvaluationError(f"unknown fixpoint variant {variant!r}")
    cache = _ELIMINATION_CACHE.setdefault(system, {})
    key = (
        # The kernel the system *resolves* to (three-valued), so the
        # automatic bitset→chunked upgrade on huge systems gets its own
        # cache rows.
        system.effective_kernel(),
        variant,
        nonrigid.cache_key(),
        operand.cache_key(),
    )
    hit = cache.get(key)
    if hit is not None:
        return hit
    phi = operand.evaluate(system)
    step = _fixpoint_step(system, nonrigid, phi, variant)
    horizon = system.horizon
    with trace.span(
        "explain.fixpoint", variant=variant, runs=len(system.runs)
    ) as fixpoint_span:
        eliminated: List[List[Optional[int]]] = [
            [None] * (horizon + 1) for _ in system.runs
        ]
        current = TruthAssignment.constant(system, True)
        iterations = 0
        while True:
            iterations += 1
            candidate = step(current)
            # Row views work for both kernels (bitset materializes masks).
            current_rows = current.to_rows()
            candidate_rows = candidate.to_rows()
            for run_index in range(len(system.runs)):
                current_row = current_rows[run_index]
                candidate_row = candidate_rows[run_index]
                eliminated_row = eliminated[run_index]
                for time in range(horizon + 1):
                    if (
                        current_row[time]
                        and not candidate_row[time]
                        and eliminated_row[time] is None
                    ):
                        eliminated_row[time] = iterations
            if candidate == current:
                fixpoint_span.set("iterations", iterations)
                break
            current = candidate
    record = (current, eliminated, iterations)
    cache[key] = record
    return record


def _failure_times(system: System, point: Point, variant: str):
    """Times within ``point``'s run where an ``E``-failure may anchor."""
    _, time = point
    if variant == "common":
        return (time,)
    if variant == "continual":
        return range(system.horizon + 1)
    return range(time, system.horizon + 1)


def _scan_belief_failures(
    system: System,
    members,
    phi: TruthAssignment,
    eliminated: List[List[Optional[int]]],
    anchor: Point,
    max_level: int,
):
    """Find why ``E_S(φ ∧ X)`` fails at *anchor*.

    Returns ``(direct, fallback)`` where each is ``(processor, point)`` or
    ``None``: *direct* targets a same-state point violating φ itself,
    *fallback* one eliminated at iteration ``≤ max_level``.
    """
    run_index, time = anchor
    run = system.runs[run_index]
    fallback = None
    for processor in sorted(members[run_index][time]):
        view = run.view(processor, time)
        for target in system.same_state_points(view):
            target_run, target_time = target
            if processor not in members[target_run][target_time]:
                continue
            if not phi.at(target_run, target_time):
                return (processor, target), fallback
            if fallback is None and max_level >= 0:
                level = eliminated[target_run][target_time]
                if level is not None and level <= max_level:
                    fallback = (processor, target)
    return None, fallback


def _elimination_walk(
    system: System,
    nonrigid: NonrigidSet,
    phi: TruthAssignment,
    eliminated: List[List[Optional[int]]],
    point: Point,
    variant: str,
) -> Tuple[List[ChainStep], Optional[Point]]:
    """Walk elimination levels down to a direct ``¬φ`` counterexample.

    Each step either ends at a point violating φ (returned as the witness)
    or moves to a point eliminated strictly earlier, so the walk terminates
    — at level 1 the candidate set is all-true and only direct failures
    remain.
    """
    members = nonrigid.members_matrix(system)
    steps: List[ChainStep] = []
    current = point
    for _ in range(system.num_points() + 1):
        level = eliminated[current[0]][current[1]]
        if level is None:
            return steps, None
        direct = fallback = None
        direct_anchor = fallback_anchor = None
        for anchor_time in _failure_times(system, current, variant):
            anchor = (current[0], anchor_time)
            found_direct, found_fallback = _scan_belief_failures(
                system, members, phi, eliminated, anchor, level - 1
            )
            if found_direct is not None:
                direct, direct_anchor = found_direct, anchor
                break
            if found_fallback is not None and fallback is None:
                fallback, fallback_anchor = found_fallback, anchor
        if direct is not None:
            processor, target = direct
            anchor = direct_anchor
        elif fallback is not None:
            processor, target = fallback
            anchor = fallback_anchor
        else:
            return steps, None
        steps.append(
            ChainStep(
                processor,
                anchor,
                target,
                system.runs[anchor[0]].view(processor, anchor[1]),
            )
        )
        if direct is not None:
            return steps, target
        current = target
    return steps, None


# -- per-operator explainers -------------------------------------------------

def _describe(formula: Formula) -> str:
    text = repr(formula)
    if text.startswith("<"):
        text = type(formula).__name__
    return text


def _explain_state_operator(
    system: System, formula, point: Point, verdict: bool, kind: str
) -> Explanation:
    """Shared machinery for ``K_i`` and ``B_i^S`` (one-step chains)."""
    processor = formula.processor
    operand = formula.operand
    nonrigid = formula.nonrigid if kind == "believes" else None
    phi = operand.evaluate(system)
    members = nonrigid.members_matrix(system) if nonrigid else None
    run_index, time = point
    view = system.runs[run_index].view(processor, time)
    explanation = Explanation(
        kind=kind,
        formula=_describe(formula),
        point=point,
        verdict=verdict,
        _formula=formula,
        _operand=operand,
        _nonrigid=nonrigid,
    )
    relevant = 0
    for target in system.same_state_points(view):
        target_run, target_time = target
        if members is not None and (
            processor not in members[target_run][target_time]
        ):
            continue
        relevant += 1
        if not verdict and not phi.at(target_run, target_time):
            explanation.chain = [ChainStep(processor, point, target, view)]
            explanation.witness = target
            explanation.notes.append(
                f"processor {processor} cannot distinguish "
                f"{point} from {target}, where the operand fails"
            )
            return explanation
    if verdict:
        if relevant == 0:
            explanation.notes.append(
                f"vacuously true: processor {processor} is an S-member at "
                "none of its same-state points"
            )
        else:
            explanation.notes.append(
                f"operand holds at all {relevant} point(s) where processor "
                f"{processor} has this local state"
            )
    return explanation


def _explain_everyone(
    system: System, formula: Everyone, point: Point, verdict: bool
) -> Explanation:
    nonrigid = formula.nonrigid
    operand = formula.operand
    phi = operand.evaluate(system)
    members = nonrigid.members_matrix(system)
    explanation = Explanation(
        kind="everyone",
        formula=_describe(formula),
        point=point,
        verdict=verdict,
        _formula=formula,
        _operand=operand,
        _nonrigid=nonrigid,
    )
    if verdict:
        count = len(members[point[0]][point[1]])
        explanation.notes.append(
            "vacuously true: S is empty at the point"
            if count == 0
            else f"all {count} S-member(s) believe the operand"
        )
        return explanation
    # E_S φ false: some member's belief fails via a direct counterexample.
    direct, _ = _scan_belief_failures(
        system, members, phi, [], point, max_level=-1
    )
    if direct is not None:
        processor, target = direct
        view = system.runs[point[0]].view(processor, point[1])
        explanation.chain = [ChainStep(processor, point, target, view)]
        explanation.witness = target
        explanation.notes.append(
            f"S-member {processor} considers {target} possible, where the "
            "operand fails"
        )
    return explanation


def _explain_fixpoint(
    system: System, formula, point: Point, verdict: bool, variant: str
) -> Explanation:
    nonrigid = formula.nonrigid
    operand = formula.operand
    kinds = {
        "common": "common",
        "continual": "continual-common",
        "eventual": "eventual-common",
    }
    explanation = Explanation(
        kind=kinds[variant],
        formula=_describe(formula),
        point=point,
        verdict=verdict,
        _formula=formula,
        _operand=operand,
        _nonrigid=nonrigid,
    )
    _, eliminated, iterations = fixpoint_eliminations(
        system, nonrigid, operand, variant
    )
    explanation.iterations = iterations
    if verdict:
        explanation.notes.append(
            f"point survives all {iterations} fixpoint iteration(s)"
        )
        return explanation
    explanation.eliminated_at = eliminated[point[0]][point[1]]
    phi = operand.evaluate(system)
    chain, witness = _elimination_walk(
        system, nonrigid, phi, eliminated, point, variant
    )
    explanation.chain = chain
    explanation.witness = witness
    if witness is not None:
        explanation.notes.append(
            f"eliminated at iteration {explanation.eliminated_at}; "
            f"{len(chain)}-step indistinguishability chain reaches "
            f"{witness}, where the operand fails"
        )
    return explanation


def _explain_components(
    system: System, formula: ContinualCommon, point: Point, verdict: bool
) -> Explanation:
    nonrigid = formula.nonrigid
    operand = formula.operand
    explanation = Explanation(
        kind="continual-common-components",
        formula=_describe(formula),
        point=point,
        verdict=verdict,
        _formula=formula,
        _operand=operand,
        _nonrigid=nonrigid,
    )
    components = semantics.run_reachability_components(system, nonrigid)
    anchor_component = components[point[0]]
    if anchor_component == -1:
        explanation.notes.append(
            "vacuously true: S never occurs in the point's run, so no "
            "point is S-□-reachable from it"
        )
        return explanation
    component = [
        run_index
        for run_index, representative in enumerate(components)
        if representative == anchor_component
    ]
    explanation.component_runs = component
    phi = operand.evaluate(system)
    if verdict:
        explanation.notes.append(
            f"operand holds in all {len(component)} run(s) of the point's "
            "S-□-reachability component (Corollary 3.3)"
        )
        return explanation
    chain, witness = _component_chain(system, nonrigid, phi, point)
    explanation.chain = chain
    explanation.witness = witness
    if witness is not None:
        explanation.notes.append(
            f"run {witness[0]} is S-□-reachable in {len(chain)} step(s) "
            "and violates the operand"
        )
    return explanation


def _component_chain(
    system: System,
    nonrigid: NonrigidSet,
    phi: TruthAssignment,
    point: Point,
) -> Tuple[List[ChainStep], Optional[Point]]:
    """BFS over S-□-reachability links to a run violating run-level φ."""
    members = nonrigid.members_matrix(system)
    start = point[0]
    if not phi.at(start, 0):
        return [], point
    occurrences: Dict[int, List[Point]] = {}
    for run_index, run in enumerate(system.runs):
        for time in range(system.horizon + 1):
            for processor in members[run_index][time]:
                occurrences.setdefault(
                    run.view(processor, time), []
                ).append((run_index, time))
    parents: Dict[int, Optional[Tuple[int, ChainStep]]] = {start: None}
    queue = [start]
    while queue:
        run_index = queue.pop(0)
        run = system.runs[run_index]
        for time in range(system.horizon + 1):
            for processor in members[run_index][time]:
                view = run.view(processor, time)
                for target_run, target_time in occurrences.get(view, ()):
                    if target_run in parents:
                        continue
                    step = ChainStep(
                        processor,
                        (run_index, time),
                        (target_run, target_time),
                        view,
                    )
                    parents[target_run] = (run_index, step)
                    if not phi.at(target_run, 0):
                        chain = [step]
                        back = run_index
                        while parents[back] is not None:
                            previous_run, previous_step = parents[back]
                            chain.append(previous_step)
                            back = previous_run
                        chain.reverse()
                        return chain, (target_run, target_time)
                    queue.append(target_run)
    return [], None


def explain(system: System, formula: Formula, point: Point) -> Explanation:
    """Explain ``formula``'s verdict at ``point`` over *system*.

    Dispatches on the outermost operator; operators without structural
    evidence (boolean/temporal connectives, atoms) get a re-check-only
    explanation.
    """
    run_index, time = point
    if not (0 <= run_index < len(system.runs)) or not (
        0 <= time <= system.horizon
    ):
        raise EvaluationError(
            f"point {point!r} outside system "
            f"({len(system.runs)} runs, horizon {system.horizon})"
        )
    verdict = formula.holds_at(system, run_index, time)
    with trace.span(
        "explain", operator=type(formula).__name__, verdict=verdict
    ):
        if isinstance(formula, Knows):
            return _explain_state_operator(
                system, formula, point, verdict, "knows"
            )
        if isinstance(formula, Believes):
            return _explain_state_operator(
                system, formula, point, verdict, "believes"
            )
        if isinstance(formula, Everyone):
            return _explain_everyone(system, formula, point, verdict)
        if isinstance(formula, Common):
            return _explain_fixpoint(system, formula, point, verdict, "common")
        if isinstance(formula, EventualCommon):
            return _explain_fixpoint(
                system, formula, point, verdict, "eventual"
            )
        if isinstance(formula, ContinualCommon):
            if formula.operand.is_run_level() and not formula.force_fixpoint:
                return _explain_components(system, formula, point, verdict)
            return _explain_fixpoint(
                system, formula, point, verdict, "continual"
            )
        explanation = Explanation(
            kind="generic",
            formula=_describe(formula),
            point=point,
            verdict=verdict,
            _formula=formula,
        )
        explanation.notes.append(
            f"no structural evidence for {type(formula).__name__}; "
            "verdict re-checked only"
        )
        return explanation


# -- rendering ---------------------------------------------------------------

def render_witness_table(explanation: Explanation) -> str:
    """Plain-text table of the indistinguishability chain."""
    from ..metrics.tables import render_table

    rows = [
        [
            index,
            step.processor,
            f"({step.from_point[0]},{step.from_point[1]})",
            f"({step.to_point[0]},{step.to_point[1]})",
            step.view,
        ]
        for index, step in enumerate(explanation.chain)
    ]
    return render_table(
        ["step", "processor", "from (r,m)", "to (r,m)", "shared view"], rows
    )


def render_explanation(explanation: Explanation) -> str:
    """Full plain-text report for one explanation."""
    status = "HOLDS" if explanation.verdict else "FAILS"
    lines = [
        f"{explanation.formula} at point "
        f"({explanation.point[0]},{explanation.point[1]}): {status} "
        f"[{explanation.kind}]"
    ]
    if explanation.eliminated_at is not None:
        lines.append(
            f"eliminated at fixpoint iteration {explanation.eliminated_at} "
            f"of {explanation.iterations}"
        )
    elif explanation.iterations is not None:
        lines.append(f"fixpoint converged in {explanation.iterations} "
                     "iteration(s)")
    if explanation.component_runs is not None:
        preview = ", ".join(str(r) for r in explanation.component_runs[:12])
        more = (
            f", … ({len(explanation.component_runs)} runs)"
            if len(explanation.component_runs) > 12
            else ""
        )
        lines.append(f"S-□-reachability component: [{preview}{more}]")
    if explanation.chain:
        lines.append("indistinguishability chain:")
        lines.append(render_witness_table(explanation))
    if explanation.witness is not None:
        lines.append(
            f"counterexample point: ({explanation.witness[0]},"
            f"{explanation.witness[1]})"
        )
    lines.extend(f"note: {note}" for note in explanation.notes)
    return "\n".join(lines)


# -- experiment catalog ------------------------------------------------------

@dataclass
class CatalogEntry:
    """One explainable formula tied to an experiment's systems."""

    key: str
    experiment_id: str
    mode: str
    description: str
    build: Callable[[System], Formula]


def _e5_cbox_zero(system: System) -> Formula:
    from ..protocols.f_lambda import f_lambda_sequence
    from ..protocols.fip import fip
    from .formulas import Exists
    from .nonrigid import nonfaulty_and_ones

    _, _, second = f_lambda_sequence(system)
    sticky = fip(second).sticky_pair(system)
    return ContinualCommon(nonfaulty_and_ones(sticky), Exists(0))


def _e5_prop43a_belief(system: System) -> Formula:
    from ..core.optimality import proposition_4_3_conditions
    from ..protocols.f_lambda import f_lambda_sequence
    from ..protocols.fip import fip

    _, _, second = f_lambda_sequence(system)
    sticky = fip(second).sticky_pair(system)
    condition_a, _ = proposition_4_3_conditions(sticky)
    implication = condition_a(0)
    return implication.consequent


def _catalog() -> Dict[str, Dict[str, CatalogEntry]]:
    from .formulas import Exists
    from .nonrigid import NONFAULTY

    entries = [
        CatalogEntry(
            "common-exists1", "E4", "crash",
            "C_N ∃1 — common knowledge among the nonfaulty",
            lambda system: Common(NONFAULTY, Exists(1)),
        ),
        CatalogEntry(
            "continual-exists1", "E4", "crash",
            "C□_N ∃1 via Corollary 3.3 components",
            lambda system: ContinualCommon(NONFAULTY, Exists(1)),
        ),
        CatalogEntry(
            "continual-exists1-fixpoint", "E4", "crash",
            "C□_N ∃1 via the greatest-fixed-point definition",
            lambda system: ContinualCommon(
                NONFAULTY, Exists(1), force_fixpoint=True
            ),
        ),
        CatalogEntry(
            "everyone-exists1", "E4", "crash",
            "E_N ∃1 — everyone nonfaulty believes ∃1",
            lambda system: Everyone(NONFAULTY, Exists(1)),
        ),
        CatalogEntry(
            "cbox-zero-flambda2", "E5", "crash",
            "C□_{N∧O} ∃0 for F^{Λ,2}'s sticky pair (Prop 4.3(a) core)",
            _e5_cbox_zero,
        ),
        CatalogEntry(
            "prop43a-belief", "E5", "crash",
            "B_0^N(∃0 ∧ C□_{N∧O}∃0 ∧ ¬decide_0(1)) — Prop 4.3(a) consequent",
            _e5_prop43a_belief,
        ),
        CatalogEntry(
            "eventual-exists1", "E21", "crash",
            "C◇_N ∃1 — eventual common knowledge",
            lambda system: EventualCommon(NONFAULTY, Exists(1)),
        ),
        CatalogEntry(
            "knows0-exists1", "E21", "crash",
            "K_0 ∃1 — plain knowledge baseline",
            lambda system: Knows(0, Exists(1)),
        ),
    ]
    catalog: Dict[str, Dict[str, CatalogEntry]] = {}
    for entry in entries:
        catalog.setdefault(entry.experiment_id, {})[entry.key] = entry
    return catalog


#: ``experiment id -> formula key -> entry`` for the CLI and tests.
EXPLAIN_CATALOG = _catalog()


def catalog_system(entry: CatalogEntry, n: int = 3, t: int = 1) -> System:
    """The exhaustive system an entry's formula is evaluated over."""
    from ..model.builder import crash_system, omission_system

    if entry.mode == "omission":
        return omission_system(n, t)
    return crash_system(n, t)


def default_point(system: System, formula: Formula) -> Point:
    """The first point where the formula fails, else ``(0, 0)``.

    Failures carry the richer evidence (chains + counterexamples), so the
    CLI defaults there.
    """
    truth = formula.evaluate(system)
    for run_index in range(len(system.runs)):
        for time in range(system.horizon + 1):
            if not truth.at(run_index, time):
                return (run_index, time)
    return (0, 0)
